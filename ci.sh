#!/usr/bin/env bash
# Full local gate, in the order a reviewer would want failures surfaced:
# formatting first (cheapest), then the lint gates, then the test suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo run -p xtask -- lint"
cargo run -q -p xtask -- lint

# Token-level determinism / panic-reachability / overflow-audit pass.
# The --budget-ms gate keeps the analyzer honest about its own cost: the
# whole workspace must lex, parse, and graph-walk in under 5 seconds.
echo "==> cargo run -p xtask -- analyze (budget 5s)"
cargo run -q -p xtask -- analyze --budget-ms 5000

# The machine-readable surface: --json must emit a valid
# sachi.analyze.v1 document even on a clean tree.
echo "==> cargo run -p xtask -- analyze --json | xtask validate-analysis"
cargo run -q -p xtask -- analyze --json 2>/dev/null \
  | cargo run -q -p xtask -- validate-analysis

echo "==> cargo test -q"
cargo test -q --workspace

# The ensemble determinism contract must hold with the worker pool to
# itself and under heavy harness contention: run the suite serially and
# with 8 concurrent test threads.
echo "==> ensemble determinism (--test-threads=1)"
cargo test -q --test ensemble_determinism -- --test-threads=1

echo "==> ensemble determinism (--test-threads=8)"
cargo test -q --test ensemble_determinism -- --test-threads=8

# Fast fault-injection sweep: asserts the zero-rate identity and the
# thread-count independence of the fault stream on a small instance.
echo "==> disc_faults --smoke"
cargo run -q -p sachi-bench --bin disc_faults -- --smoke

# Scalar vs bit-plane kernel tripwire: asserts H equality between the
# two compute paths on the dense acceptance tuple and a full sweep
# (timing ratios are only gated in the full, non-smoke run).
echo "==> perf_kernels --smoke"
cargo run -q -p sachi-bench --bin perf_kernels -- --smoke

# Model drift report: asserts the closed-form PerfModel reproduces the
# functional machine's metered compute cycles exactly on uniform-degree
# graphs, and prints the load-side cycle deltas for the record.
echo "==> disc_drift --smoke"
cargo run -q -p sachi-bench --bin disc_drift -- --smoke

# Observability smoke: a real solve's --metrics json snapshot must pass
# the sachi.metrics.v1 schema validation, including counter coverage of
# every subsystem (sram/l1/dram/machine/solver/recovery).
echo "==> sachi solve --metrics json | xtask validate-metrics"
cargo run -q -p sachi-cli --bin sachi -- \
  solve --cop md --size 64 --restarts 2 --metrics json --trace-phases \
  | cargo run -q -p xtask -- validate-metrics

# Solution-quality gate: the one-cell-per-family smoke subset of the
# seeded corpus (3-SAT, coloring, scheduling) must stay within the
# stated tolerances of the committed BENCH_quality.json, and the
# committed baseline itself must pass sachi.quality.v1 schema + the
# three-families x four-designs coverage check.
echo "==> disc_quality --smoke"
cargo run -q -p sachi-bench --bin disc_quality -- --smoke

echo "==> xtask validate-quality BENCH_quality.json"
cargo run -q -p xtask -- validate-quality BENCH_quality.json

echo "ci: all gates passed"
