#!/usr/bin/env bash
# Full local gate, in the order a reviewer would want failures surfaced:
# formatting first (cheapest), then the lint gates, then the test suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo run -p xtask -- lint"
cargo run -q -p xtask -- lint

echo "==> cargo test -q"
cargo test -q --workspace

echo "ci: all gates passed"
