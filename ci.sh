#!/usr/bin/env bash
# Full local gate, in the order a reviewer would want failures surfaced:
# formatting first (cheapest), then the lint gates, then the test suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo run -p xtask -- lint"
cargo run -q -p xtask -- lint

# Token-level determinism / panic-reachability / overflow-audit pass.
# The --budget-ms gate keeps the analyzer honest about its own cost: the
# whole workspace must lex, parse, and graph-walk in under 5 seconds.
echo "==> cargo run -p xtask -- analyze (budget 5s)"
cargo run -q -p xtask -- analyze --budget-ms 5000

# The machine-readable surface: --json must emit a valid
# sachi.analyze.v1 document even on a clean tree.
echo "==> cargo run -p xtask -- analyze --json | xtask validate-analysis"
cargo run -q -p xtask -- analyze --json 2>/dev/null \
  | cargo run -q -p xtask -- validate-analysis

echo "==> cargo test -q"
cargo test -q --workspace

# The ensemble determinism contract must hold with the worker pool to
# itself and under heavy harness contention: run the suite serially and
# with 8 concurrent test threads.
echo "==> ensemble determinism (--test-threads=1)"
cargo test -q --test ensemble_determinism -- --test-threads=1

echo "==> ensemble determinism (--test-threads=8)"
cargo test -q --test ensemble_determinism -- --test-threads=8

# Fast fault-injection sweep: asserts the zero-rate identity and the
# thread-count independence of the fault stream on a small instance.
echo "==> disc_faults --smoke"
cargo run -q -p sachi-bench --bin disc_faults -- --smoke

# Kernel/sweep equality tripwire: asserts H equality between scalar,
# bit-plane fast, and SoA tuple-plane paths on the dense acceptance
# tuple, a King's-graph sweep, and a dense SoA sweep — and that banked
# multi-round sweeps keep the H trajectory and compute cycles
# bit-identical (timing ratios are only gated in the full run).
echo "==> perf_kernels --smoke"
cargo run -q -p sachi-bench --bin perf_kernels -- --smoke

# Model drift report: asserts the closed-form PerfModel reproduces the
# functional machine's metered compute cycles exactly on uniform-degree
# graphs, and prints the load-side cycle deltas for the record.
echo "==> disc_drift --smoke"
cargo run -q -p sachi-bench --bin disc_drift -- --smoke

# Observability smoke: a real solve's --metrics json snapshot must pass
# the sachi.metrics.v1 schema validation, including counter coverage of
# every subsystem (sram/l1/dram/machine/solver/recovery).
echo "==> sachi solve --metrics json | xtask validate-metrics"
cargo run -q -p sachi-cli --bin sachi -- \
  solve --cop md --size 64 --restarts 2 --metrics json --trace-phases \
  | cargo run -q -p xtask -- validate-metrics

# Solution-quality gate: the one-cell-per-family smoke subset of the
# seeded corpus (3-SAT, coloring, scheduling) must stay within the
# stated tolerances of the committed BENCH_quality.json — including the
# replica-exchange (+pt) twins, which must also match or beat the
# independent-restart best energy at an equal sweep budget in every
# (cell, design) pair (the tempering dominance gate, enforced inside
# disc_quality) — and the committed baseline itself must pass
# sachi.quality.v1 schema + coverage + tempered-twin pairing checks.
echo "==> disc_quality --smoke"
cargo run -q -p sachi-bench --bin disc_quality -- --smoke

echo "==> xtask validate-quality BENCH_quality.json"
cargo run -q -p xtask -- validate-quality BENCH_quality.json

# Daemon smoke: start `sachi serve`, then assert the protocol contract
# end to end — a daemon-solved job is byte-identical to the one-shot
# CLI (multi-tenant determinism), malformed input answers code 2,
# over-limit jobs answer code 5, /metrics is valid Prometheus text,
# and shutdown drains cleanly (daemon exits 0).
echo "==> sachi serve e2e smoke"
cargo build -q -p sachi-cli
SACHI=target/debug/sachi
PORT=17853
"$SACHI" serve --port "$PORT" --threads 2 --queue-depth 4 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
  if "$SACHI" submit --addr "127.0.0.1:$PORT" --ping >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
"$SACHI" submit --addr "127.0.0.1:$PORT" --ping

JOB=(--cop sat --size 12 --seed 9 --restarts 3 --step-budget 60000)
REF=$("$SACHI" solve "${JOB[@]}" | grep 'result  : H =')
# A co-tenant job runs concurrently so the determinism check exercises
# real replica interleaving on the shared pool, not an idle daemon.
"$SACHI" submit --addr "127.0.0.1:$PORT" \
  --cop md --size 24 --seed 4 --restarts 2 --step-budget 200000 \
  >/dev/null &
COTENANT_PID=$!
GOT=$("$SACHI" submit --addr "127.0.0.1:$PORT" "${JOB[@]}" | grep 'result  : H =')
wait "$COTENANT_PID"
if [ "$GOT" != "$REF" ]; then
  echo "serve smoke: daemon result diverged from one-shot CLI" >&2
  echo "  one-shot: $REF" >&2
  echo "  daemon:   $GOT" >&2
  exit 1
fi
echo "serve smoke: daemon result matches one-shot CLI"

# Same contract for a replica-exchange job: the coupled rungs must be
# byte-identical between the daemon's shared pool and the one-shot CLI.
PTJOB=(--cop sat --size 12 --seed 9 --restarts 3 --step-budget 60000
       --tempering --ladder adaptive)
PTREF=$("$SACHI" solve "${PTJOB[@]}" | grep 'result  : H =')
PTGOT=$("$SACHI" submit --addr "127.0.0.1:$PORT" "${PTJOB[@]}" | grep 'result  : H =')
if [ "$PTGOT" != "$PTREF" ]; then
  echo "serve smoke: tempered daemon result diverged from one-shot CLI" >&2
  echo "  one-shot: $PTREF" >&2
  echo "  daemon:   $PTGOT" >&2
  exit 1
fi
echo "serve smoke: tempered daemon result matches one-shot CLI"

set +e
"$SACHI" submit --addr "127.0.0.1:$PORT" --raw 'this is not json' >/dev/null 2>&1
CODE_PARSE=$?
"$SACHI" submit --addr "127.0.0.1:$PORT" \
  --cop md --size 8 --restarts 2 --step-budget 999999999 >/dev/null 2>&1
CODE_LIMIT=$?
set -e
if [ "$CODE_PARSE" -ne 2 ] || [ "$CODE_LIMIT" -ne 5 ]; then
  echo "serve smoke: wrong protocol codes (parse=$CODE_PARSE want 2, limit=$CODE_LIMIT want 5)" >&2
  exit 1
fi
echo "serve smoke: typed refusals answer codes 2 and 5"

"$SACHI" submit --addr "127.0.0.1:$PORT" --fetch-metrics \
  | cargo run -q -p xtask -- validate-exposition

"$SACHI" submit --addr "127.0.0.1:$PORT" --shutdown
wait "$SERVE_PID"
trap - EXIT
echo "serve smoke: daemon drained cleanly"

echo "ci: all gates passed"
