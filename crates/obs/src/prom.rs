//! Prometheus text exposition (version 0.0.4) writer and validator.
//!
//! The writer emits one `# TYPE` comment per metric followed by its
//! sample lines, all names prefixed `sachi_` and sanitized to the
//! Prometheus name grammar `[a-zA-Z_:][a-zA-Z0-9_:]*`. Histograms use
//! the conventional cumulative `_bucket{le="..."}` samples plus `_sum`
//! and `_count`. Output order matches the registry's sorted key order,
//! so the document is deterministic.
//!
//! The validator is a line-grammar check (not a full client): enough to
//! assert "this exposition parses" in golden tests and CI without an
//! external dependency.

use crate::registry::{Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};

/// Sanitizes a metric name to the Prometheus grammar: every byte
/// outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit gets a
/// `_` prefix.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn write_histogram(out: &mut String, name: &str, h: &Histogram) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let counts = h.bucket_counts();
    let mut cumulative: u64 = 0;
    for (k, &c) in counts.iter().enumerate().take(HISTOGRAM_BUCKETS) {
        cumulative += c;
        // Keep the exposition compact: emit a finite bucket only when it
        // changes the cumulative count (plus bucket 0 as the floor).
        if c == 0 && k != 0 {
            continue;
        }
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            Histogram::bucket_bound(k)
        ));
    }
    cumulative += counts[HISTOGRAM_BUCKETS];
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
    out.push_str(&format!("{name}_sum {}\n", h.sum()));
    out.push_str(&format!("{name}_count {}\n", h.count()));
}

/// Serializes a registry as a Prometheus text exposition document.
pub fn write_exposition(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, v) in reg.counters() {
        let name = format!("sachi_{}", sanitize(name));
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (name, v) in reg.gauges() {
        let name = format!("sachi_{}", sanitize(name));
        out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", fmt_value(v)));
    }
    for (name, h) in reg.histograms() {
        let name = format!("sachi_{}", sanitize(name));
        write_histogram(&mut out, &name, h);
    }
    out
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_sample(line: &str) -> bool {
    // name[{label="value",...}] value
    let (name_part, value_part) = match line.rsplit_once(' ') {
        Some(parts) => parts,
        None => return false,
    };
    let name = match name_part.split_once('{') {
        Some((n, labels)) => {
            if !labels.ends_with('}') {
                return false;
            }
            let body = &labels[..labels.len() - 1];
            for pair in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = match pair.split_once('=') {
                    Some(kv) => kv,
                    None => return false,
                };
                if !valid_name(k) || !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                    return false;
                }
            }
            n
        }
        None => name_part,
    };
    if !valid_name(name) {
        return false;
    }
    value_part == "NaN"
        || value_part == "+Inf"
        || value_part == "-Inf"
        || value_part.parse::<f64>().is_ok()
}

/// Validates a Prometheus text exposition document line by line:
/// every line must be blank, a `#` comment (`TYPE`/`HELP` shape
/// checked), or a well-formed sample. Returns the first offending line.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            // Only `TYPE` comments carry checkable structure; `HELP` and
            // free-form comments pass through untouched.
            if words.next() == Some("TYPE") {
                let name = words
                    .next()
                    .ok_or(format!("line {lineno}: TYPE without name"))?;
                if !valid_name(name) {
                    return Err(format!("line {lineno}: invalid metric name '{name}'"));
                }
                let kind = words
                    .next()
                    .ok_or(format!("line {lineno}: TYPE without kind"))?;
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                    return Err(format!("line {lineno}: unknown TYPE kind '{kind}'"));
                }
            }
            continue;
        }
        if !valid_sample(line) {
            return Err(format!("line {lineno}: malformed sample '{line}'"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_to_name_grammar() {
        assert_eq!(sanitize("sram_rbl"), "sram_rbl");
        assert_eq!(sanitize("weird-name.x"), "weird_name_x");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn exposition_round_trips_through_validator() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("sram_rbl_discharges", 42);
        reg.gauge_set("l1_hit_rate", 0.75);
        reg.observe("replica_total_cycles", 3);
        reg.observe("replica_total_cycles", 1000);
        let doc = write_exposition(&reg);
        assert!(doc.contains("# TYPE sachi_sram_rbl_discharges counter"));
        assert!(doc.contains("sachi_sram_rbl_discharges 42"));
        assert!(doc.contains("# TYPE sachi_l1_hit_rate gauge"));
        assert!(doc.contains("sachi_l1_hit_rate 0.75"));
        assert!(doc.contains("sachi_replica_total_cycles_bucket{le=\"4\"} 1"));
        // Cumulative: the le=1024 bucket includes the earlier sample.
        assert!(doc.contains("sachi_replica_total_cycles_bucket{le=\"1024\"} 2"));
        assert!(doc.contains("sachi_replica_total_cycles_bucket{le=\"+Inf\"} 2"));
        assert!(doc.contains("sachi_replica_total_cycles_sum 1003"));
        assert!(doc.contains("sachi_replica_total_cycles_count 2"));
        validate_exposition(&doc).expect("exposition parses");
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_exposition("metric with spaces in name 1\n").is_err());
        assert!(validate_exposition("ok_name notanumber\n").is_err());
        assert!(validate_exposition("bad{le=1} 2\n").is_err());
        assert!(validate_exposition("# TYPE name wrongkind\n").is_err());
        assert!(validate_exposition("# TYPE 1bad counter\n").is_err());
        validate_exposition("# HELP anything goes here\nok 1\nok{le=\"x\"} 2\n")
            .expect("valid lines pass");
    }
}
