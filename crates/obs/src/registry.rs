//! The metrics registry: counters, gauges, power-of-two histograms.
//!
//! Design constraints, in order:
//!
//! 1. **Zero overhead when disabled.** Every mutator checks the
//!    `enabled` flag first and returns before touching a map. A
//!    [`MetricsRegistry::disabled`] registry never allocates after
//!    construction (the maps start empty and stay empty).
//! 2. **Deterministic.** Keys live in `BTreeMap`s so iteration — and
//!    therefore every exported document — has one stable order.
//!    [`MetricsRegistry::merge`] is a plain sum over counters and
//!    histograms, so folding per-replica registries in replica order
//!    yields the same snapshot for any worker-thread count.
//! 3. **No wall-clock.** Nothing here reads a clock; histogram samples
//!    and span timestamps arrive from the simulator's cycle domain.

use std::collections::BTreeMap;

/// Number of finite histogram buckets. Bucket `k` has upper bound
/// `2^k` (so the finite bounds are `1, 2, 4, …, 2^63`); one extra
/// overflow bucket catches values above `2^63`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-shape histogram with power-of-two bucket bounds.
///
/// Bucket `k` counts observations `v` with `prev < v <= 2^k` (bucket 0
/// holds `v <= 1`, including zero); the overflow bucket holds
/// `v > 2^63`. The shape is fixed so two histograms always merge
/// bucket-by-bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS + 1],
    count: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS + 1],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Index of the bucket that holds `v`.
    fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            // Smallest k with v <= 2^k, i.e. ceil(log2(v)); v - 1 has
            // bit length k exactly when 2^(k-1) < v <= 2^k.
            (u64::BITS - (v - 1).leading_zeros()) as usize
        }
    }

    /// Upper bound (`le` label) of finite bucket `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= HISTOGRAM_BUCKETS`.
    pub fn bucket_bound(k: usize) -> u64 {
        assert!(k < HISTOGRAM_BUCKETS, "finite buckets only");
        1u64 << k
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (u128: 2^64 samples of u64::MAX fit).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Per-bucket (non-cumulative) counts; index [`HISTOGRAM_BUCKETS`]
    /// is the overflow (`+Inf`) bucket.
    pub fn bucket_counts(&self) -> &[u64; HISTOGRAM_BUCKETS + 1] {
        &self.counts
    }

    /// Adds every bucket, the count, and the sum of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// Names are expected to be `snake_case` with a subsystem prefix
/// (`sram_`, `l1_`, `dram_`, `machine_`, `solver_`, `recovery_`,
/// `ensemble_`, `workload_`, `energy_`); the JSON schema validator
/// checks coverage by those prefixes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an enabled (recording) registry.
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: true,
            ..MetricsRegistry::default()
        }
    }

    /// Creates a disabled registry: every mutator is a no-op and the
    /// registry never allocates after this call.
    pub fn disabled() -> Self {
        MetricsRegistry::default()
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `delta` to the named monotonic counter (creating it at 0).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `v` (last write wins).
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        if !self.enabled {
            return;
        }
        self.gauges.insert(name.to_string(), v);
    }

    /// Current value of a gauge, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &str, v: u64) {
        if !self.enabled {
            return;
        }
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// The named histogram, if it has any observations.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Folds `other` into `self`: counters and histograms add; gauges
    /// take `other`'s value (last write wins — deterministic as long as
    /// callers merge in a fixed order, which the ensemble fold does by
    /// walking replicas in index order).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        if !self.enabled {
            return;
        }
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Counters in sorted name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Gauges in sorted name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Histograms in sorted name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let mut reg = MetricsRegistry::disabled();
        reg.counter_add("a", 5);
        reg.gauge_set("g", 1.5);
        reg.observe("h", 100);
        assert!(reg.is_empty());
        assert!(!reg.is_enabled());
        assert_eq!(reg.counter("a"), 0);
        assert_eq!(reg.gauge("g"), None);
        assert!(reg.histogram("h").is_none());
    }

    #[test]
    fn counters_accumulate_and_iterate_sorted() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("zeta", 1);
        reg.counter_add("alpha", 2);
        reg.counter_add("zeta", 3);
        let names: Vec<_> = reg.counters().collect();
        assert_eq!(names, vec![("alpha", 2), ("zeta", 4)]);
    }

    #[test]
    fn histogram_bucket_boundaries_are_powers_of_two() {
        // v lands in the bucket whose bound is the smallest 2^k >= v.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1 << 10), 10);
        assert_eq!(Histogram::bucket_index((1 << 10) + 1), 11);
        assert_eq!(Histogram::bucket_index(1u64 << 63), 63);
        assert_eq!(Histogram::bucket_index((1u64 << 63) + 1), HISTOGRAM_BUCKETS);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS);
        assert_eq!(Histogram::bucket_bound(0), 1);
        assert_eq!(Histogram::bucket_bound(13), 8192);
    }

    #[test]
    fn histogram_observe_and_merge() {
        let mut a = Histogram::new();
        a.observe(3);
        a.observe(4);
        a.observe(u64::MAX);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 7 + u128::from(u64::MAX));
        assert_eq!(a.bucket_counts()[2], 2);
        assert_eq!(a.bucket_counts()[HISTOGRAM_BUCKETS], 1);

        let mut b = Histogram::new();
        b.observe(4);
        b.merge(&a);
        assert_eq!(b.count(), 4);
        assert_eq!(b.bucket_counts()[2], 3);
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1);
        a.observe("h", 2);
        a.gauge_set("g", 1.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 10);
        b.counter_add("only_b", 7);
        b.observe("h", 2);
        b.gauge_set("g", 2.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 11);
        assert_eq!(a.counter("only_b"), 7);
        assert_eq!(a.gauge("g"), Some(2.0));
        assert_eq!(a.histogram("h").expect("merged").count(), 2);
    }

    #[test]
    fn merge_is_order_insensitive_for_counters_and_histograms() {
        let mk = |c: u64, h: u64| {
            let mut r = MetricsRegistry::new();
            r.counter_add("c", c);
            r.observe("h", h);
            r
        };
        let parts = [mk(1, 8), mk(2, 9), mk(3, 1000)];
        let mut fwd = MetricsRegistry::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = MetricsRegistry::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
    }
}
