//! # sachi-obs — observability substrate for the SACHI simulator
//!
//! The paper's whole evaluation (Figs. 15–19) is a story told through
//! counters: cycles, energy ledgers, prefetch leads, fault and recovery
//! outcomes. This crate gives those counters one first-class home:
//!
//! * [`MetricsRegistry`] — monotonic counters, gauges, and histograms
//!   with fixed power-of-two buckets. A disabled registry is a guaranteed
//!   no-op: every mutator returns before touching a map, so nothing
//!   allocates and nothing is measured.
//! * [`PhaseSpan`] / [`SolvePhase`] — hierarchical solve-phase spans
//!   (`upload → round → h_compute → update → writeback → prefetch`)
//!   stamped in the **cycle domain**, never wall-clock: timestamps come
//!   from the simulator's own `Cycles` bookkeeping, so traces are
//!   bit-identical across hosts and thread counts.
//! * [`json`] — a snapshot writer plus a minimal recursive-descent
//!   parser and schema validator (used by `xtask validate-metrics` and
//!   the golden tests).
//! * [`prom`] — a Prometheus text exposition (version 0.0.4) writer and
//!   line-grammar validator.
//!
//! The crate is deliberately dependency-free so every runtime crate can
//! use it without cycles. Instrumentation is **harvest-based**: hot
//! kernels keep their plain integer counters (free to maintain, already
//! present), and the registry is populated once per solve from those
//! structs. No registry call ever appears inside a `compute_*` kernel —
//! the xtask hot-path lint enforces exactly that.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod json;
pub mod prom;
pub mod registry;
pub mod span;

pub use registry::{Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use span::{render_span_tree, PhaseSpan, SolvePhase};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::json::{validate_snapshot, write_snapshot, JsonValue};
    pub use crate::prom::{validate_exposition, write_exposition};
    pub use crate::registry::{Histogram, MetricsRegistry};
    pub use crate::span::{render_span_tree, PhaseSpan, SolvePhase};
}
