//! Hierarchical solve-phase spans in the cycle domain.
//!
//! A span is an interval `[start, end)` of machine cycles plus an event
//! count, tagged with the phase it measures and the sweep/round it
//! belongs to. Two phases are top-level ([`SolvePhase::Upload`] and
//! [`SolvePhase::Round`]); the other four are children of the enclosing
//! round — the hierarchy is implied by the phase kind, so a flat
//! `Vec<PhaseSpan>` reconstructs the tree without parent pointers.
//!
//! Timestamps are **cycles, not wall-clock**: they come straight from
//! the simulator's `total_cycles` bookkeeping, so a trace is
//! bit-identical across hosts, replica orders, and thread counts.

use std::fmt;

/// The phases of one solve, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolvePhase {
    /// Initial DRAM streaming of tuples/ICs into the tile arrays.
    Upload,
    /// One round of one sweep (the unit the DRAM overlap reasons about).
    Round,
    /// In-SRAM XNOR + popcount local-field computation within a round.
    HCompute,
    /// Annealer decisions applied to the spin vector (event count).
    Update,
    /// Spin write-back into tile row 0 / spin copies (event count).
    Writeback,
    /// DRAM prefetch activity overlapped with compute within a round.
    Prefetch,
}

impl SolvePhase {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            SolvePhase::Upload => "upload",
            SolvePhase::Round => "round",
            SolvePhase::HCompute => "h_compute",
            SolvePhase::Update => "update",
            SolvePhase::Writeback => "writeback",
            SolvePhase::Prefetch => "prefetch",
        }
    }

    /// Whether this phase nests inside a [`SolvePhase::Round`].
    pub fn is_round_child(self) -> bool {
        matches!(
            self,
            SolvePhase::HCompute
                | SolvePhase::Update
                | SolvePhase::Writeback
                | SolvePhase::Prefetch
        )
    }
}

impl fmt::Display for SolvePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded span: a cycle interval plus an event count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Which phase this span measures.
    pub phase: SolvePhase,
    /// Sweep index (0 for [`SolvePhase::Upload`]).
    pub sweep: u64,
    /// Round index within the sweep (0 for [`SolvePhase::Upload`]).
    pub round: u64,
    /// Start timestamp, machine cycles.
    pub start: u64,
    /// End timestamp, machine cycles (`end >= start`).
    pub end: u64,
    /// Events inside the span (tuple computes, spin flips, writebacks,
    /// prefetches issued — whatever the phase counts).
    pub events: u64,
}

impl PhaseSpan {
    /// Span length in cycles.
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// Renders a span list as an indented tree, one span per line.
///
/// Top-level phases sit flush left; round children are indented under
/// their round. Durations print in cycles; pure event spans (zero
/// duration) print the event count only.
pub fn render_span_tree(spans: &[PhaseSpan]) -> String {
    let mut out = String::new();
    for s in spans {
        let indent = if s.phase.is_round_child() { "  " } else { "" };
        let label = match s.phase {
            SolvePhase::Upload => s.phase.name().to_string(),
            _ => format!("{} s{} r{}", s.phase.name(), s.sweep, s.round),
        };
        if s.duration() == 0 && s.events > 0 {
            out.push_str(&format!("{indent}{label:<22} {} events\n", s.events));
        } else {
            out.push_str(&format!(
                "{indent}{label:<22} [{} .. {})  {} cycles  {} events\n",
                s.start,
                s.end,
                s.duration(),
                s.events
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_stable() {
        let all = [
            SolvePhase::Upload,
            SolvePhase::Round,
            SolvePhase::HCompute,
            SolvePhase::Update,
            SolvePhase::Writeback,
            SolvePhase::Prefetch,
        ];
        let names: Vec<_> = all.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "upload",
                "round",
                "h_compute",
                "update",
                "writeback",
                "prefetch"
            ]
        );
        assert!(!SolvePhase::Upload.is_round_child());
        assert!(!SolvePhase::Round.is_round_child());
        assert!(SolvePhase::HCompute.is_round_child());
        assert!(SolvePhase::Prefetch.is_round_child());
    }

    #[test]
    fn tree_renders_hierarchy_and_durations() {
        let spans = [
            PhaseSpan {
                phase: SolvePhase::Upload,
                sweep: 0,
                round: 0,
                start: 0,
                end: 128,
                events: 1,
            },
            PhaseSpan {
                phase: SolvePhase::Round,
                sweep: 0,
                round: 0,
                start: 128,
                end: 256,
                events: 16,
            },
            PhaseSpan {
                phase: SolvePhase::HCompute,
                sweep: 0,
                round: 0,
                start: 128,
                end: 250,
                events: 16,
            },
            PhaseSpan {
                phase: SolvePhase::Update,
                sweep: 0,
                round: 0,
                start: 256,
                end: 256,
                events: 7,
            },
        ];
        let tree = render_span_tree(&spans);
        let lines: Vec<_> = tree.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("upload"));
        assert!(lines[1].starts_with("round s0 r0"));
        assert!(lines[2].starts_with("  h_compute"));
        assert!(lines[3].starts_with("  update"));
        assert!(lines[3].contains("7 events"));
        assert!(lines[1].contains("128 cycles"));
    }

    #[test]
    fn duration_saturates() {
        let s = PhaseSpan {
            phase: SolvePhase::Round,
            sweep: 0,
            round: 0,
            start: 10,
            end: 10,
            events: 0,
        };
        assert_eq!(s.duration(), 0);
    }
}
