//! JSON snapshot writer, minimal parser, and schema validator.
//!
//! The snapshot document (`schema: "sachi.metrics.v1"`) is:
//!
//! ```json
//! {
//!   "schema": "sachi.metrics.v1",
//!   "counters": { "sram_rbl_discharges": 123 },
//!   "gauges": { "l1_hit_rate": 0.5 },
//!   "histograms": {
//!     "replica_total_cycles": {
//!       "count": 4, "sum": 4096,
//!       "buckets": [ { "le": "1024", "count": 4 }, { "le": "+Inf", "count": 0 } ]
//!     }
//!   },
//!   "spans": [
//!     { "phase": "upload", "sweep": 0, "round": 0, "start": 0, "end": 128, "events": 1 }
//!   ]
//! }
//! ```
//!
//! Writer guarantees: keys emit in `BTreeMap` (sorted) order, strings
//! are escaped per RFC 8259, histogram buckets list the non-empty
//! finite buckets in ascending bound order followed by the `+Inf`
//! bucket (counts are **non-cumulative**; the Prometheus writer is the
//! cumulative one). The parser is a strict recursive-descent RFC 8259
//! subset (no comments, no trailing commas) used by the golden tests
//! and `xtask validate-metrics` — it exists so validation needs no
//! external dependency.

use crate::registry::{Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
use crate::span::PhaseSpan;

/// Escapes a string for embedding in a JSON document (quotes excluded).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 the way the snapshot stores gauges: shortest
/// round-trip form, with a trailing `.0` for integral values so the
/// value reads as a float.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        return "null".to_string();
    }
    if v.is_infinite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_histogram(out: &mut String, h: &Histogram) {
    out.push_str(&format!(
        "{{\"count\":{},\"sum\":{},\"buckets\":[",
        h.count(),
        h.sum()
    ));
    let counts = h.bucket_counts();
    let mut first = true;
    for (k, &c) in counts.iter().enumerate().take(HISTOGRAM_BUCKETS) {
        if c == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"le\":\"{}\",\"count\":{}}}",
            Histogram::bucket_bound(k),
            c
        ));
    }
    if !first {
        out.push(',');
    }
    out.push_str(&format!(
        "{{\"le\":\"+Inf\",\"count\":{}}}",
        counts[HISTOGRAM_BUCKETS]
    ));
    out.push_str("]}");
}

/// Serializes a registry (and optional spans) as a `sachi.metrics.v1`
/// snapshot. Deterministic: sorted keys, stable number formatting.
pub fn write_snapshot(reg: &MetricsRegistry, spans: &[PhaseSpan]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"sachi.metrics.v1\",\n  \"counters\": {");
    let mut first = true;
    for (name, v) in reg.counters() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {}", escape(name), v));
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });
    out.push_str("  \"gauges\": {");
    first = true;
    for (name, v) in reg.gauges() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {}", escape(name), fmt_f64(v)));
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });
    out.push_str("  \"histograms\": {");
    first = true;
    for (name, h) in reg.histograms() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": ", escape(name)));
        write_histogram(&mut out, h);
    }
    out.push_str(if first { "}" } else { "\n  }" });
    if !spans.is_empty() {
        out.push_str(",\n  \"spans\": [");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"phase\":\"{}\",\"sweep\":{},\"round\":{},\"start\":{},\"end\":{},\"events\":{}}}",
                s.phase.name(),
                s.sweep,
                s.round,
                s.start,
                s.end,
                s.events
            ));
        }
        out.push_str("\n  ]");
    }
    out.push_str("\n}\n");
    out
}

/// A parsed JSON value. Object members keep document order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as f64.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(m) => Some(m.as_slice()),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {}", self.pos, msg)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_lit("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected byte '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(&format!("invalid number '{text}'")))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates unsupported (the writer never emits them).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("unsupported surrogate escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("empty string tail"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a JSON document (strict RFC 8259 subset, no trailing input).
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

/// Counter-name prefixes a full solve snapshot must cover (one counter
/// per subsystem at minimum): SRAM tile, L1, DRAM prefetch, design/
/// machine, solver, and fault-recovery counters.
pub const REQUIRED_COUNTER_PREFIXES: [&str; 6] =
    ["sram_", "l1_", "dram_", "machine_", "solver_", "recovery_"];

fn validate_histogram(name: &str, h: &JsonValue) -> Result<(), String> {
    let count = h
        .get("count")
        .and_then(JsonValue::as_num)
        .ok_or_else(|| format!("histogram '{name}': missing numeric 'count'"))?;
    h.get("sum")
        .and_then(JsonValue::as_num)
        .ok_or_else(|| format!("histogram '{name}': missing numeric 'sum'"))?;
    let buckets = h
        .get("buckets")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| format!("histogram '{name}': missing 'buckets' array"))?;
    if buckets.is_empty() {
        return Err(format!("histogram '{name}': empty bucket list"));
    }
    let mut prev_bound: Option<u64> = None;
    let mut total = 0.0;
    for (i, b) in buckets.iter().enumerate() {
        let le = b
            .get("le")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("histogram '{name}': bucket {i} missing 'le'"))?;
        let c = b
            .get("count")
            .and_then(JsonValue::as_num)
            .ok_or_else(|| format!("histogram '{name}': bucket {i} missing 'count'"))?;
        total += c;
        let last = i == buckets.len() - 1;
        if last {
            if le != "+Inf" {
                return Err(format!(
                    "histogram '{name}': last bucket must be '+Inf', got '{le}'"
                ));
            }
        } else {
            let bound: u64 = le
                .parse()
                .map_err(|_| format!("histogram '{name}': non-numeric bound '{le}'"))?;
            if !bound.is_power_of_two() {
                return Err(format!(
                    "histogram '{name}': bound {bound} is not a power of two"
                ));
            }
            if let Some(p) = prev_bound {
                if bound <= p {
                    return Err(format!(
                        "histogram '{name}': bounds not increasing at '{le}'"
                    ));
                }
            }
            prev_bound = Some(bound);
        }
    }
    if (total - count).abs() > 0.5 {
        return Err(format!(
            "histogram '{name}': bucket counts sum to {total}, 'count' says {count}"
        ));
    }
    Ok(())
}

fn validate_structure(root: &JsonValue) -> Result<(), String> {
    let schema = root
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing 'schema' string")?;
    if schema != "sachi.metrics.v1" {
        return Err(format!("unknown schema '{schema}'"));
    }
    let counters = root
        .get("counters")
        .and_then(JsonValue::as_obj)
        .ok_or("missing 'counters' object")?;
    for (name, v) in counters {
        let n = v
            .as_num()
            .ok_or_else(|| format!("counter '{name}' is not a number"))?;
        if n < 0.0 {
            return Err(format!("counter '{name}' is negative"));
        }
    }
    let gauges = root
        .get("gauges")
        .and_then(JsonValue::as_obj)
        .ok_or("missing 'gauges' object")?;
    for (name, v) in gauges {
        if !matches!(v, JsonValue::Num(_) | JsonValue::Null) {
            return Err(format!("gauge '{name}' is not a number"));
        }
    }
    let histograms = root
        .get("histograms")
        .and_then(JsonValue::as_obj)
        .ok_or("missing 'histograms' object")?;
    for (name, h) in histograms {
        validate_histogram(name, h)?;
    }
    if let Some(spans) = root.get("spans") {
        let spans = spans.as_arr().ok_or("'spans' is not an array")?;
        for (i, s) in spans.iter().enumerate() {
            for field in ["sweep", "round", "start", "end", "events"] {
                s.get(field)
                    .and_then(JsonValue::as_num)
                    .ok_or_else(|| format!("span {i}: missing numeric '{field}'"))?;
            }
            let phase = s
                .get("phase")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("span {i}: missing 'phase'"))?;
            let known = [
                "upload",
                "round",
                "h_compute",
                "update",
                "writeback",
                "prefetch",
            ];
            if !known.contains(&phase) {
                return Err(format!("span {i}: unknown phase '{phase}'"));
            }
        }
    }
    Ok(())
}

/// Structurally validates a `sachi.metrics.v1` snapshot document.
pub fn validate_snapshot(text: &str) -> Result<(), String> {
    let root = parse(text)?;
    validate_structure(&root)
}

/// Validates a snapshot from a full `sachi solve` run: structure plus
/// counter coverage of every subsystem in
/// [`REQUIRED_COUNTER_PREFIXES`].
pub fn validate_solve_snapshot(text: &str) -> Result<(), String> {
    let root = parse(text)?;
    validate_structure(&root)?;
    let counters = root
        .get("counters")
        .and_then(JsonValue::as_obj)
        .ok_or("missing 'counters' object")?;
    for prefix in REQUIRED_COUNTER_PREFIXES {
        if !counters.iter().any(|(name, _)| name.starts_with(prefix)) {
            return Err(format!("no counter with required prefix '{prefix}'"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SolvePhase;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("sram_rbl_discharges", 42);
        reg.counter_add("alpha", 1);
        reg.gauge_set("l1_hit_rate", 0.75);
        reg.gauge_set("whole", 2.0);
        reg.observe("replica_total_cycles", 3);
        reg.observe("replica_total_cycles", 1000);
        reg
    }

    #[test]
    fn writer_emits_sorted_keys_and_round_trips() {
        let reg = sample_registry();
        let doc = write_snapshot(&reg, &[]);
        // Sorted: "alpha" before "sram_".
        let a = doc.find("\"alpha\"").expect("alpha");
        let s = doc.find("\"sram_rbl_discharges\"").expect("sram");
        assert!(a < s);
        assert!(doc.contains("\"whole\": 2.0"));
        validate_snapshot(&doc).expect("snapshot validates");
        let root = parse(&doc).expect("parses");
        assert_eq!(
            root.get("counters")
                .and_then(|c| c.get("sram_rbl_discharges"))
                .and_then(JsonValue::as_num),
            Some(42.0)
        );
    }

    #[test]
    fn writer_escapes_strings() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("weird\"name\\with\ncontrol\u{1}", 1);
        let doc = write_snapshot(&reg, &[]);
        assert!(doc.contains("weird\\\"name\\\\with\\ncontrol\\u0001"));
        let root = parse(&doc).expect("escaped doc parses");
        let counters = root
            .get("counters")
            .and_then(JsonValue::as_obj)
            .expect("counters");
        assert_eq!(counters[0].0, "weird\"name\\with\ncontrol\u{1}");
    }

    #[test]
    fn histogram_buckets_serialize_bounds() {
        let reg = sample_registry();
        let doc = write_snapshot(&reg, &[]);
        // 3 lands in (2,4] -> le 4; 1000 in (512,1024] -> le 1024.
        assert!(doc.contains("{\"le\":\"4\",\"count\":1}"));
        assert!(doc.contains("{\"le\":\"1024\",\"count\":1}"));
        assert!(doc.contains("{\"le\":\"+Inf\",\"count\":0}"));
    }

    #[test]
    fn spans_serialize_and_validate() {
        let reg = sample_registry();
        let spans = [PhaseSpan {
            phase: SolvePhase::HCompute,
            sweep: 1,
            round: 2,
            start: 10,
            end: 20,
            events: 5,
        }];
        let doc = write_snapshot(&reg, &spans);
        assert!(doc.contains("\"phase\":\"h_compute\""));
        validate_snapshot(&doc).expect("validates with spans");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\":01x}").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let v = parse(r#"{"s":"aA\n","n":-1.5e2,"b":true,"x":null}"#).expect("parses");
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("aA\n"));
        assert_eq!(v.get("n").and_then(JsonValue::as_num), Some(-150.0));
        assert_eq!(v.get("b"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("x"), Some(&JsonValue::Null));
    }

    #[test]
    fn validator_rejects_bad_snapshots() {
        assert!(validate_snapshot("{}").is_err());
        assert!(validate_snapshot(
            r#"{"schema":"sachi.metrics.v1","counters":{"a":-1},"gauges":{},"histograms":{}}"#
        )
        .is_err());
        assert!(validate_snapshot(
            r#"{"schema":"wrong","counters":{},"gauges":{},"histograms":{}}"#
        )
        .is_err());
        // Histogram without +Inf terminal bucket.
        assert!(validate_snapshot(
            r#"{"schema":"sachi.metrics.v1","counters":{},"gauges":{},
                "histograms":{"h":{"count":1,"sum":1,"buckets":[{"le":"1","count":1}]}}}"#
        )
        .is_err());
        // Non-power-of-two bound.
        assert!(validate_snapshot(
            r#"{"schema":"sachi.metrics.v1","counters":{},"gauges":{},
                "histograms":{"h":{"count":1,"sum":3,
                "buckets":[{"le":"3","count":1},{"le":"+Inf","count":0}]}}}"#
        )
        .is_err());
    }

    #[test]
    fn solve_snapshot_requires_subsystem_coverage() {
        let reg = sample_registry();
        let doc = write_snapshot(&reg, &[]);
        let err = validate_solve_snapshot(&doc).expect_err("missing prefixes");
        assert!(err.contains("l1_") || err.contains("dram_") || err.contains("machine_"));

        let mut full = MetricsRegistry::new();
        for p in REQUIRED_COUNTER_PREFIXES {
            full.counter_add(&format!("{p}x"), 1);
        }
        validate_solve_snapshot(&write_snapshot(&full, &[])).expect("full coverage passes");
    }
}
