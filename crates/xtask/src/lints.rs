//! The six repo-specific lints and the driver that runs them.
//!
//! | lint | what it enforces |
//! |------|------------------|
//! | `unit-safety` | no raw numeric `as` casts in memory-model and energy/cycle accounting code — arithmetic goes through the `units.rs` newtypes |
//! | `panic-freedom` | no `.unwrap()` / `panic!` in library code of `sachi-core`, `sachi-mem`, `sachi-ising` (`.expect("invariant …")` is the sanctioned escape hatch) |
//! | `fault-strict` | the fault-injection and recovery modules may not even `.expect(…)` — fault handling code must never be a panic source itself |
//! | `bench-registration` | every `fig*` / `abl_*` / `disc_*` / `perf_*` bench binary has a `fn main`, is declared in `crates/bench/src/lib.rs`, and is referenced in `EXPERIMENTS.md` |
//! | `hot-path` | no heap allocation (`vec!`, `.collect(…)`, `.to_vec(…)`, `Vec::…`) and no metrics/span instrumentation (`counter_add`, `.observe`, `MetricsRegistry`, …) inside `compute_*` / `upload_*` / `writeback_*` kernel bodies — the per-sweep hot path runs on caller-provided scratch buffers and is metered by post-sweep harvest, never inline |
//! | `hygiene` | `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]` stay present in every crate root |
//!
//! Findings are suppressed by matching [`crate::allowlist`] entries; a
//! stale (unused) allowlist entry is itself reported, so the committed
//! exception list can never silently outlive the code it excuses.

use crate::allowlist::{self, AllowEntry};
use crate::scan::scan_lines;
use std::path::{Path, PathBuf};

/// The six classic lint families (used with [`crate::analyze::FAMILIES`]
/// to scope allowlist staleness to the families actually run).
pub const CLASSIC_FAMILIES: &[&str] = &[
    "unit-safety",
    "panic-freedom",
    "fault-strict",
    "bench-registration",
    "hot-path",
    "hygiene",
];

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lint that fired (`unit-safety`, `panic-freedom`, …).
    pub lint: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Explanation shown to the developer.
    pub message: String,
    /// Original source line (empty for whole-file findings). Allowlist
    /// `contains` patterns match against this.
    pub raw: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "[{}] {}: {}", self.lint, self.path, self.message)
        } else {
            write!(
                f,
                "[{}] {}:{}: {}",
                self.lint, self.path, self.line, self.message
            )?;
            if !self.raw.trim().is_empty() {
                write!(f, "\n    {}", self.raw.trim())?;
            }
            Ok(())
        }
    }
}

/// Files whose energy/cycle arithmetic must go through the `units.rs`
/// newtypes. All of `sachi-mem`, plus the accounting paths of
/// `sachi-core` (closed-form model, functional machine, tiled machine,
/// per-design schedules).
const UNIT_SAFETY_SCOPE: &[&str] = &[
    "crates/mem/src",
    "crates/core/src/perf.rs",
    "crates/core/src/machine.rs",
    "crates/core/src/tiled.rs",
    "crates/core/src/designs.rs",
    "crates/core/src/ensemble.rs",
];

/// Library crates that must not panic on library paths, plus the
/// `sachi serve` daemon modules: a panic there takes down every
/// co-tenant, so the daemon side is held to library standards.
const PANIC_FREEDOM_SCOPE: &[&str] = &[
    "crates/core/src",
    "crates/mem/src",
    "crates/ising/src",
    "crates/cli/src/serve.rs",
    "crates/cli/src/clock.rs",
];

/// Fault-handling modules held to the stricter no-`expect` standard:
/// code that models failures must not introduce its own abort paths.
/// The serve wire-protocol decoder joins them — every byte it touches
/// arrives from an untrusted client, so even an "impossible" `expect`
/// is a remotely reachable abort.
const FAULT_STRICT_SCOPE: &[&str] = &[
    "crates/mem/src/fault.rs",
    "crates/ising/src/recovery.rs",
    "crates/cli/src/protocol.rs",
];

/// Files whose `compute_*` / `upload_*` / `writeback_*` function bodies
/// are the per-sweep hot path: the designs' tuple kernels and spin-row
/// upload/writeback helpers, the resident array's H-compute, the SoA
/// tuple-plane writeback, and the SRAM compute kernels. Allocation there
/// is an N·R-per-sweep tax the bit-plane fast path exists to remove; the
/// scalar reference paths are excused by audited `lint.allow.toml`
/// entries.
const HOT_PATH_SCOPE: &[&str] = &[
    "crates/core/src/designs.rs",
    "crates/core/src/tiled.rs",
    "crates/core/src/tuple.rs",
    "crates/mem/src/sram.rs",
];

/// Function-name prefixes that mark a body as per-sweep hot path.
const HOT_PATH_FN_PREFIXES: &[&str] = &["compute_", "upload_", "writeback_"];

/// Heap-allocation spellings banned inside hot-path kernel bodies.
const HOT_PATH_PATTERNS: &[&str] = &[
    "vec!",
    ".collect(",
    ".to_vec(",
    "Vec::with_capacity(",
    "Vec::new(",
];

/// Observability spellings banned inside hot-path kernel bodies. The
/// metrics layer is harvest-based: counters are read out of the plain
/// counter structs *after* a sweep, so instrumentation expands to
/// nothing inside `compute_*` kernels. These patterns keep it that way —
/// a registry call per tuple would be an N·R-per-sweep tax and a
/// BTreeMap lookup on the innermost loop.
const INSTRUMENTATION_PATTERNS: &[&str] = &[
    "MetricsRegistry",
    "counter_add(",
    "gauge_set(",
    ".observe(",
    "PhaseSpan",
    "sachi_obs::",
];

/// Numeric primitive names that make an `as` cast a unit-safety concern.
const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Runs the six classic lints from `root`, pre-allowlist. Callers apply
/// [`crate::allowlist::apply`].
pub fn run_classic(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    unit_safety(root, &mut findings)?;
    panic_freedom(root, &mut findings)?;
    fault_strict(root, &mut findings)?;
    bench_registration(root, &mut findings)?;
    hot_path(root, &mut findings)?;
    hygiene(root, &mut findings)?;
    Ok(findings)
}

/// Surviving findings, parsed allowlist entries, and the indices of
/// stale entries (for `lint --fix-allowlist`).
pub type LintOutcome = (Vec<Finding>, Vec<AllowEntry>, Vec<usize>);

/// Runs every lint family from `root` (the workspace root) — the six
/// classic families plus the three analyze families — applying the
/// allowlist at `root/lint.allow.toml` if present. Returns a
/// [`LintOutcome`], or an error string for infrastructure problems
/// (unreadable files, malformed allowlist).
pub fn run_all(root: &Path) -> Result<LintOutcome, String> {
    let entries = allowlist::load(root)?;
    let mut findings = run_classic(root)?;
    findings.extend(crate::analyze::run(root)?.findings);
    let mut families: Vec<&str> = CLASSIC_FAMILIES.to_vec();
    families.extend_from_slice(crate::analyze::FAMILIES);
    let stale = allowlist::apply(root, &entries, &families, &mut findings);
    findings.sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
    Ok((findings, entries, stale))
}

/// [`run_all`] without the allowlist bookkeeping — the surviving
/// findings only.
#[cfg(test)]
pub fn run(root: &Path) -> Result<Vec<Finding>, String> {
    run_all(root).map(|(findings, _, _)| findings)
}

/// Recursively collects `.rs` files under `dir` (or the file itself),
/// sorted for deterministic output. A missing path yields no files: lint
/// scopes name paths that may not exist in every tree (self-test trees,
/// future crate removals).
pub(crate) fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    if dir.is_file() {
        out.push(dir.to_path_buf());
        return Ok(out);
    }
    if !dir.exists() {
        return Ok(out);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let iter = std::fs::read_dir(&d).map_err(|e| format!("read_dir {}: {e}", d.display()))?;
        for entry in iter {
            let path = entry
                .map_err(|e| format!("read_dir {}: {e}", d.display()))?
                .path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

pub(crate) fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

pub(crate) fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))
}

/// Returns the target type of every raw numeric `as` cast in a scrubbed
/// code line. `use foo as bar` never matches: the token after `as` must
/// be a numeric primitive.
fn numeric_casts(code: &str) -> Vec<&'static str> {
    let mut hits = Vec::new();
    let mut i = 0;
    while let Some(pos) = code[i..].find(" as ") {
        i += pos + 4;
        let after = code[i..].trim_start();
        let ident: String = after
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if let Some(t) = NUMERIC_TYPES.iter().find(|t| **t == ident) {
            hits.push(*t);
        }
    }
    hits
}

fn unit_safety(root: &Path, findings: &mut Vec<Finding>) -> Result<(), String> {
    for scope in UNIT_SAFETY_SCOPE {
        for file in rust_files(&root.join(scope))? {
            let text = read(&file)?;
            for line in scan_lines(&text) {
                for ty in numeric_casts(&line.code) {
                    findings.push(Finding {
                        lint: "unit-safety",
                        path: rel(root, &file),
                        line: line.number,
                        message: format!(
                            "raw `as {ty}` cast in unit-accounting code; use the units.rs \
                             newtypes or a checked conversion (TryFrom / from_f64_ceil / \
                             scale_by_fraction)"
                        ),
                        raw: line.raw.clone(),
                    });
                }
            }
        }
    }
    Ok(())
}

fn panic_freedom(root: &Path, findings: &mut Vec<Finding>) -> Result<(), String> {
    for scope in PANIC_FREEDOM_SCOPE {
        for file in rust_files(&root.join(scope))? {
            let text = read(&file)?;
            for line in scan_lines(&text) {
                for pattern in [".unwrap()", "panic!(", "unimplemented!(", "todo!("] {
                    if line.code.contains(pattern) {
                        findings.push(Finding {
                            lint: "panic-freedom",
                            path: rel(root, &file),
                            line: line.number,
                            message: format!(
                                "`{pattern}…` in library code; return a Result or use \
                                 `.expect(\"<invariant>\")` with a message stating why \
                                 failure is impossible"
                            ),
                            raw: line.raw.clone(),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

fn fault_strict(root: &Path, findings: &mut Vec<Finding>) -> Result<(), String> {
    for scope in FAULT_STRICT_SCOPE {
        for file in rust_files(&root.join(scope))? {
            let text = read(&file)?;
            for line in scan_lines(&text) {
                for pattern in [".unwrap()", ".expect("] {
                    if line.code.contains(pattern) {
                        findings.push(Finding {
                            lint: "fault-strict",
                            path: rel(root, &file),
                            line: line.number,
                            message: format!(
                                "`{pattern}…` in fault-handling code; the injection and \
                                 recovery layer must stay panic-free — return a Result or \
                                 restructure so the fallible case cannot arise"
                            ),
                            raw: line.raw.clone(),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

fn bench_registration(root: &Path, findings: &mut Vec<Finding>) -> Result<(), String> {
    let bin_dir = root.join("crates/bench/src/bin");
    if !bin_dir.exists() {
        return Ok(());
    }
    let registry = read(&root.join("crates/bench/src/lib.rs"))?;
    let experiments = read(&root.join("EXPERIMENTS.md"))?;
    for file in rust_files(&bin_dir)? {
        let stem = file
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let is_experiment = stem.starts_with("fig")
            || stem.starts_with("abl_")
            || stem.starts_with("disc_")
            || stem.starts_with("perf_");
        if !is_experiment {
            continue;
        }
        let path = rel(root, &file);
        let text = read(&file)?;
        if !scan_lines(&text).iter().any(|l| l.code.contains("fn main")) {
            findings.push(Finding {
                lint: "bench-registration",
                path: path.clone(),
                line: 0,
                message: format!("bench binary `{stem}` has no `fn main` and cannot build"),
                raw: String::new(),
            });
        }
        if !registry.contains(&stem) {
            findings.push(Finding {
                lint: "bench-registration",
                path: path.clone(),
                line: 0,
                message: format!(
                    "bench binary `{stem}` is not declared in crates/bench/src/lib.rs"
                ),
                raw: String::new(),
            });
        }
        if !experiments.contains(&stem) {
            findings.push(Finding {
                lint: "bench-registration",
                path,
                line: 0,
                message: format!("bench binary `{stem}` is not referenced in EXPERIMENTS.md"),
                raw: String::new(),
            });
        }
    }
    Ok(())
}

fn hot_path(root: &Path, findings: &mut Vec<Finding>) -> Result<(), String> {
    for scope in HOT_PATH_SCOPE {
        for file in rust_files(&root.join(scope))? {
            let text = read(&file)?;
            let parsed = crate::parser::parse_source(&text);
            let lines = scan_lines(&text);
            let line_of = |byte: usize| -> usize {
                1 + text.as_bytes()[..byte.min(text.len())]
                    .iter()
                    .filter(|&&b| b == b'\n')
                    .count()
            };
            // One finding per (line, pattern): a compute kernel nested
            // inside another compute kernel is scanned once.
            let mut seen: std::collections::BTreeSet<(usize, &str)> =
                std::collections::BTreeSet::new();
            for f in &parsed.fns {
                if f.is_test || !HOT_PATH_FN_PREFIXES.iter().any(|p| f.name.starts_with(p)) {
                    continue;
                }
                // A bodyless trait declaration has nothing to scan.
                let Some((_, close)) = f.body else {
                    continue;
                };
                let end_line = line_of(parsed.code[close].start);
                for line in lines
                    .iter()
                    .filter(|l| l.number >= f.line as usize && l.number <= end_line)
                {
                    for pattern in HOT_PATH_PATTERNS {
                        if line.code.contains(pattern) && seen.insert((line.number, pattern)) {
                            findings.push(Finding {
                                lint: "hot-path",
                                path: rel(root, &file),
                                line: line.number,
                                message: format!(
                                    "heap allocation `{pattern}…` inside hot-path kernel \
                                     `{}`; use the caller-provided scratch buffers \
                                     (ComputeScratch, compute_xnor_packed/plane) — the \
                                     scalar reference path is excused via lint.allow.toml",
                                    f.name
                                ),
                                raw: line.raw.clone(),
                            });
                        }
                    }
                    for pattern in INSTRUMENTATION_PATTERNS {
                        if line.code.contains(pattern) && seen.insert((line.number, pattern)) {
                            findings.push(Finding {
                                lint: "hot-path",
                                path: rel(root, &file),
                                line: line.number,
                                message: format!(
                                    "instrumentation `{pattern}…` inside hot-path kernel \
                                     `{}`; the metrics layer is harvest-based — \
                                     accumulate into the plain counter structs and export \
                                     to the registry after the sweep",
                                    f.name
                                ),
                                raw: line.raw.clone(),
                            });
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn hygiene(root: &Path, findings: &mut Vec<Finding>) -> Result<(), String> {
    let mut roots: Vec<PathBuf> = Vec::new();
    for group in ["crates", "compat"] {
        let dir = root.join(group);
        if !dir.exists() {
            continue;
        }
        let iter =
            std::fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in iter {
            let path = entry
                .map_err(|e| format!("read_dir {}: {e}", dir.display()))?
                .path();
            if path.join("Cargo.toml").exists() {
                roots.push(path);
            }
        }
    }
    if root.join("Cargo.toml").exists() && root.join("src").exists() {
        roots.push(root.to_path_buf());
    }
    roots.sort();
    for crate_dir in roots {
        let lib = crate_dir.join("src/lib.rs");
        let main = crate_dir.join("src/main.rs");
        let crate_root = if lib.exists() {
            lib
        } else if main.exists() {
            main
        } else {
            findings.push(Finding {
                lint: "hygiene",
                path: rel(root, &crate_dir),
                line: 0,
                message: "crate has neither src/lib.rs nor src/main.rs".into(),
                raw: String::new(),
            });
            continue;
        };
        let text = read(&crate_root)?;
        for header in ["#![forbid(unsafe_code)]", "#![deny(missing_docs)]"] {
            if !text.contains(header) {
                findings.push(Finding {
                    lint: "hygiene",
                    path: rel(root, &crate_root),
                    line: 0,
                    message: format!("crate root is missing the `{header}` header"),
                    raw: String::new(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_casts_finds_real_casts_only() {
        assert_eq!(numeric_casts("let x = y as u64;"), vec!["u64"]);
        assert_eq!(numeric_casts("let z = (a * b) as f64 * 0.5;").len(), 1);
        assert!(numeric_casts("use foo as bar;").is_empty());
        assert!(numeric_casts("let x = y as MyType;").is_empty());
        assert_eq!(numeric_casts("a as u32 + b as usize").len(), 2);
    }

    /// End-to-end self-test: seed a fake repo with one violation of each
    /// lint, assert every lint fires, then allowlist one finding and
    /// assert suppression plus stale-entry reporting.
    #[test]
    fn seeded_violations_are_reported_and_allowlist_suppresses() {
        let root = std::env::temp_dir().join(format!("xtask-selftest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mk = |p: &str, content: &str| {
            let path = root.join(p);
            std::fs::create_dir_all(path.parent().expect("file paths have parents"))
                .expect("create self-test dirs");
            std::fs::write(path, content).expect("write self-test file");
        };
        // unit-safety + panic-freedom violations in mem library code.
        mk(
            "crates/mem/src/lib.rs",
            "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! d\npub fn f(x: u32) -> u64 { let y = x as u64; y }\npub fn g(o: Option<u8>) -> u8 { o.unwrap() }\n",
        );
        mk("crates/mem/Cargo.toml", "[package]\nname = \"m\"\n");
        // fault-strict violation: `.expect` is fine elsewhere in the
        // library but not in the fault module.
        mk(
            "crates/mem/src/fault.rs",
            "//! d\npub fn h(o: Option<u8>) -> u8 { o.expect(\"invariant\") }\n",
        );
        // hygiene violation: missing deny(missing_docs).
        mk("crates/core/src/lib.rs", "#![forbid(unsafe_code)]\n//! d\n");
        // hot-path violations: allocation AND inline instrumentation
        // inside a compute kernel body, plus allocations in the upload
        // and writeback sweep-loop helpers; the allocation in `layout`
        // must NOT fire (not a hot-path prefix), nor the bodyless trait
        // declaration's surroundings, nor the registry export outside
        // any kernel (`harvest` is the sanctioned pattern).
        mk(
            "crates/core/src/designs.rs",
            "//! d\ntrait T {\n    fn compute_tuple(&self) -> i64;\n}\npub fn layout() { let _ = vec![1]; }\npub fn harvest(reg: &mut R) { reg.counter_add(\"x\", 1); }\npub fn compute_h(reg: &mut R) -> i64 {\n    let v = vec![0u64; 4];\n    reg.counter_add(\"machine_xnor_ops\", 1);\n    i64::from(!v.is_empty())\n}\npub fn upload_row() { let _ = Vec::with_capacity(4); }\npub fn writeback_row(xs: &[u64]) { let _ = xs.to_vec(); }\n",
        );
        mk("crates/core/Cargo.toml", "[package]\nname = \"c\"\n");
        mk(
            "crates/ising/src/lib.rs",
            "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! d\n",
        );
        mk("crates/ising/Cargo.toml", "[package]\nname = \"i\"\n");
        // bench-registration violation: fig binary never mentioned anywhere.
        mk("crates/bench/src/lib.rs", "//! registry: fig_other\n");
        mk("crates/bench/src/bin/fig99_missing.rs", "fn main() {}\n");
        mk("crates/bench/Cargo.toml", "[package]\nname = \"b\"\n");
        mk("EXPERIMENTS.md", "# experiments\nfig_other\n");

        let findings = run(&root).expect("lint run succeeds");
        let lints: Vec<&str> = findings.iter().map(|f| f.lint).collect();
        assert!(lints.contains(&"unit-safety"), "{findings:?}");
        assert!(lints.contains(&"panic-freedom"), "{findings:?}");
        assert!(lints.contains(&"fault-strict"), "{findings:?}");
        assert!(lints.contains(&"bench-registration"), "{findings:?}");
        assert!(lints.contains(&"hot-path"), "{findings:?}");
        assert!(lints.contains(&"hygiene"), "{findings:?}");
        // hot-path scans the compute/upload/writeback kernels only: the
        // `vec!` in `layout`, the registry export in `harvest`, and the
        // bodyless trait declaration never fire — but the allocation and
        // inline `counter_add` inside `compute_h` do, as do the
        // allocations in `upload_row` and `writeback_row`.
        let hot: Vec<&Finding> = findings.iter().filter(|f| f.lint == "hot-path").collect();
        assert_eq!(hot.len(), 4, "{hot:?}");
        assert_eq!(
            hot.iter()
                .filter(|f| f.message.contains("compute_h"))
                .count(),
            2,
            "{hot:?}"
        );
        assert!(
            hot.iter().any(|f| f.message.contains("upload_row")),
            "{hot:?}"
        );
        assert!(
            hot.iter().any(|f| f.message.contains("writeback_row")),
            "{hot:?}"
        );
        assert!(
            hot.iter()
                .any(|f| f.message.contains("instrumentation `counter_add(")),
            "{hot:?}"
        );
        // The `.expect` in the fault module fires fault-strict only — it
        // is sanctioned for ordinary library code.
        assert!(
            !findings
                .iter()
                .any(|f| f.lint == "panic-freedom" && f.path.ends_with("fault.rs")),
            "{findings:?}"
        );
        let baseline = findings.len();

        // Allowlist the cast; one fewer finding, no stale entries.
        mk(
            "lint.allow.toml",
            "[[allow]]\nlint = \"unit-safety\"\npath = \"crates/mem/src/lib.rs\"\ncontains = \"x as u64\"\nreason = \"self-test exception\"\n",
        );
        let after = run(&root).expect("lint run succeeds");
        assert_eq!(after.len(), baseline - 1);
        assert!(after.iter().all(|f| f.lint != "unit-safety"), "{after:?}");

        // A non-matching entry is reported as stale.
        mk(
            "lint.allow.toml",
            "[[allow]]\nlint = \"unit-safety\"\npath = \"crates/mem/src/lib.rs\"\ncontains = \"no such line\"\nreason = \"stale\"\n",
        );
        let stale = run(&root).expect("lint run succeeds");
        assert!(stale.iter().any(|f| f.lint == "allowlist"), "{stale:?}");

        std::fs::remove_dir_all(&root).expect("clean up self-test tree");
    }

    #[test]
    fn cfg_test_code_is_exempt_from_panic_freedom() {
        let root = std::env::temp_dir().join(format!("xtask-cfgtest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates/core/src")).expect("create dirs");
        std::fs::write(
            root.join("crates/core/src/lib.rs"),
            "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! d\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n",
        )
        .expect("write lib.rs");
        let mut findings = Vec::new();
        panic_freedom(&root, &mut findings).expect("runs");
        assert!(findings.is_empty(), "{findings:?}");
        std::fs::remove_dir_all(&root).expect("clean up");
    }
}
