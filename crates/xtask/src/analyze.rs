//! `cargo run -p xtask -- analyze`: the three contract-level lint
//! families built on the lexer/parser/call-graph stack.
//!
//! | family | what it enforces |
//! |--------|------------------|
//! | `determinism` | the result-affecting crates (`sachi-core`, `sachi-ising`, `sachi-mem`, `sachi-obs`) plus the `sachi serve` daemon modules (`crates/cli/src/{protocol,serve}.rs`) never touch unordered containers (`HashMap`/`HashSet`/`RandomState`/`DefaultHasher`), wall-clock time (`std::time`, `Instant`, `SystemTime`), thread identity (`thread::current`), or process environment (`env::var` & friends) — test code included, since iteration-order flakiness in goldens masks real nondeterminism. `crates/cli/src/clock.rs` is the one sanctioned `std::time` doorway and stays outside the scope |
//! | `panic-reachability` | no slice indexing, non-literal `/`‍/`%`, or `.unwrap()` in any `sachi-core`/`sachi-ising`/`sachi-mem` fn *transitively reachable* from a `solve*`/`compute_*`/`run*` entry point via the conservative call graph — not merely textually present in a scoped file (workloads are input encoders, gated by `overflow-audit` instead, mirroring the classic `panic-freedom` scope) |
//! | `overflow-audit` | no unchecked `+`/`-`/`*` integer *value* arithmetic in `crates/workloads` fns reachable from the encoding entry points (signatures mentioning `QuboProblem`/`IsingGraph`/`EncodeError`) — the standing gate behind `EncodeError::CoefficientOverflow`. Arithmetic inside an index-bracket group is address math, exempt by design: an overflowed address trips the bounds check (a loud panic), it cannot silently corrupt a coefficient |
//!
//! Reachability findings are reported **per function** (line = the
//! `fn` line, allowlist `contains` patterns match the signature text):
//! one audited `lint.allow.toml` entry vouches for one function, which
//! keeps the exception list reviewable. The message carries the op
//! breakdown with line numbers and a sample call chain from the entry
//! point.

use crate::callgraph::{self, Workspace, WsFile};
use crate::lexer::TokenKind;
use crate::lints::Finding;
use crate::parser::{is_keyword, FnItem};
use std::path::Path;

/// The lint families this module owns (used to scope allowlist
/// staleness when `analyze` runs without the six classic lints).
pub const FAMILIES: &[&str] = &["determinism", "panic-reachability", "overflow-audit"];

/// Crates whose behavior feeds solver results: bit-exact, seed-
/// reproducible output depends on them and only them.
const DETERMINISM_SCOPE: &[&str] = &[
    "crates/core/src",
    "crates/ising/src",
    "crates/mem/src",
    "crates/obs/src",
];

/// The `sachi serve` daemon modules, held to the same determinism bans:
/// the daemon's contract is that a job's result is byte-identical to
/// the one-shot CLI, so its wire decoder and server loop must not read
/// wall clocks, thread identity, or the environment either. The single
/// sanctioned `std::time` doorway is `crates/cli/src/clock.rs`, which
/// is deliberately *not* in this scope — everything else handles
/// opaque `Duration`s minted there.
const SERVER_DETERMINISM_SCOPE: &[&str] =
    &["crates/cli/src/protocol.rs", "crates/cli/src/serve.rs"];

/// The full analysis domain: determinism scope plus the workload
/// encoders (for the overflow audit and cross-crate call resolution).
const DOMAIN: &[&str] = &[
    "crates/core/src",
    "crates/ising/src",
    "crates/mem/src",
    "crates/obs/src",
    "crates/workloads/src",
];

/// Unordered-container identifiers banned by the determinism lint.
const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet", "RandomState", "DefaultHasher"];

/// Wall-clock identifiers banned by the determinism lint.
const CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];

/// Macros whose argument tokens are exempt from op scanning: their
/// panics are deliberate invariant checks (repo policy sanctions them
/// the way `.expect("invariant")` is sanctioned), and `matches!` arms
/// are patterns, not executed arithmetic.
const SKIP_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "matches",
    "panic",
    "unreachable",
];

/// Run statistics, surfaced in the human report and the JSON output.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Files lexed and parsed across the domain.
    pub files_scanned: usize,
    /// `fn` items recovered.
    pub functions: usize,
    /// Entry points the reachability passes started from.
    pub entry_points: usize,
}

/// Result of an analyze run (findings are pre-allowlist).
pub struct Analysis {
    /// All findings from the three families.
    pub findings: Vec<Finding>,
    /// Run statistics.
    pub stats: Stats,
}

/// Panic-capable / overflow-capable operations found in one fn body.
#[derive(Debug, Default, Clone)]
struct OpCounts {
    /// Lines with `.unwrap()` calls.
    unwrap: Vec<u32>,
    /// Lines with slice/array index expressions (`x[i]`, except `x[..]`).
    index: Vec<u32>,
    /// Lines with `/` or `%` whose divisor is not a nonzero literal.
    divmod: Vec<u32>,
    /// Lines with unchecked binary `+`/`-`/`*` on non-float operands.
    arith: Vec<u32>,
}

/// True when the token at `k-1` can end an operand expression — the
/// discriminator between binary and unary/structural uses of `[`, `-`,
/// `*`, `/`.
fn prev_is_operand(file: &WsFile, k: usize) -> bool {
    if k == 0 {
        return false;
    }
    let prev = file.parsed.code[k - 1];
    let text = prev.text(&file.src);
    match prev.kind {
        TokenKind::Ident => !is_keyword(text),
        TokenKind::NumLit => true,
        TokenKind::Punct => text == ")" || text == "]" || text == "?",
        _ => false,
    }
}

/// True when a numeric literal token text denotes zero (`0`, `0x00`,
/// `0.0`, `0_u32`).
fn literal_is_zero(text: &str) -> bool {
    let t = text
        .trim_start_matches("0x")
        .trim_start_matches("0X")
        .trim_start_matches("0b")
        .trim_start_matches("0B")
        .trim_start_matches("0o")
        .trim_start_matches("0O");
    !t.chars().any(|c| c.is_ascii_digit() && c != '0')
}

/// True when a numeric literal token is a float (`1.5`, `2e3`, `1f64`).
fn literal_is_float(text: &str) -> bool {
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || (!text.starts_with("0x")
            && !text.starts_with("0X")
            && (text.contains('e') || text.contains('E')))
}

/// The right-hand operand token of the operator at `k`, skipping a
/// compound-assignment `=` and a unary `-`.
fn rhs_token(file: &WsFile, k: usize) -> Option<(usize, TokenKind, String)> {
    let code = &file.parsed.code;
    let mut j = k + 1;
    if code.get(j).is_some_and(|t| t.text(&file.src) == "=") {
        j += 1;
    }
    if code.get(j).is_some_and(|t| t.text(&file.src) == "-") {
        j += 1;
    }
    code.get(j)
        .map(|t| (j, t.kind, t.text(&file.src).to_string()))
}

/// Scans fn `idx`'s body for panic- and overflow-capable operations.
/// Nested fn items and [`SKIP_MACROS`] argument groups are excluded.
fn scan_ops(file: &WsFile, idx: usize) -> OpCounts {
    let parsed = &file.parsed;
    let mut ops = OpCounts::default();
    let Some((b0, b1)) = parsed.fns[idx].body else {
        return ops;
    };
    let nested: Vec<(usize, usize)> = parsed
        .nested_fns(idx)
        .into_iter()
        .filter_map(|i| {
            parsed.fns[i]
                .body
                .map(|(_, e)| (parsed.fns[i].sig_start, e))
        })
        .collect();
    let code = &parsed.code;
    let src = file.src.as_str();
    // Open-delimiter stack: `true` marks an index-bracket group. Value
    // arithmetic inside one is address math — an overflow there lands
    // in the bounds check, so the overflow audit exempts it.
    let mut delims: Vec<bool> = Vec::new();
    let mut k = b0 + 1;
    while k < b1 {
        if let Some(&(_, n1)) = nested.iter().find(|(n0, n1)| *n0 <= k && k <= *n1) {
            k = n1 + 1;
            continue;
        }
        let tok = code[k];
        let text = tok.text(src);
        // Sanctioned-macro groups: skip `assert!( … )` bodies wholesale.
        if tok.kind == TokenKind::Ident
            && SKIP_MACROS.contains(&text)
            && code.get(k + 1).is_some_and(|t| t.text(src) == "!")
        {
            if let Some(open) = code.get(k + 2) {
                let open_text = open.text(src);
                let close = match open_text {
                    "(" => ")",
                    "[" => "]",
                    "{" => "}",
                    _ => {
                        k += 2;
                        continue;
                    }
                };
                let mut depth = 0usize;
                let mut j = k + 2;
                while j < b1 {
                    let t = code[j].text(src);
                    if t == open_text {
                        depth += 1;
                    } else if t == close {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                k = j + 1;
                continue;
            }
        }
        if tok.kind == TokenKind::Ident
            && text == "unwrap"
            && k > 0
            && code[k - 1].text(src) == "."
            && code.get(k + 1).is_some_and(|t| t.text(src) == "(")
        {
            ops.unwrap.push(tok.line);
        }
        if tok.kind == TokenKind::Punct {
            match text {
                "[" => {
                    let indexing = prev_is_operand(file, k);
                    delims.push(indexing);
                    // `x[..]` (full-range) can never panic; anything
                    // else can.
                    let full_range = code.get(k + 1).is_some_and(|t| t.text(src) == ".")
                        && code.get(k + 2).is_some_and(|t| t.text(src) == ".")
                        && code.get(k + 3).is_some_and(|t| t.text(src) == "]");
                    if indexing && !full_range {
                        ops.index.push(tok.line);
                    }
                }
                "(" | "{" => delims.push(false),
                "]" | ")" | "}" => {
                    delims.pop();
                }
                "/" | "%" if prev_is_operand(file, k) => {
                    let literal_nonzero = matches!(
                        rhs_token(file, k),
                        Some((_, TokenKind::NumLit, ref t)) if !literal_is_zero(t)
                    );
                    if !literal_nonzero {
                        ops.divmod.push(tok.line);
                    }
                }
                "+" | "-" | "*" if prev_is_operand(file, k) => {
                    // `->` return arrows are two tokens; not arithmetic.
                    let arrow = text == "-"
                        && code
                            .get(k + 1)
                            .is_some_and(|t| t.text(src) == ">" && tok.adjacent(t));
                    let prev_float = matches!(code[k - 1].kind, TokenKind::NumLit)
                        && literal_is_float(code[k - 1].text(src));
                    let rhs_float = matches!(
                        rhs_token(file, k),
                        Some((_, TokenKind::NumLit, ref t)) if literal_is_float(t)
                    );
                    let in_index = delims.contains(&true);
                    if !arrow && !prev_float && !rhs_float && !in_index {
                        ops.arith.push(tok.line);
                    }
                }
                _ => {}
            }
        }
        k += 1;
    }
    ops
}

/// Renders "lines 12, 40, 88 (+3 more)" from a line list.
fn lines_summary(lines: &[u32]) -> String {
    let shown: Vec<String> = lines.iter().take(5).map(|l| l.to_string()).collect();
    let extra = lines.len().saturating_sub(5);
    if extra > 0 {
        format!("lines {} (+{extra} more)", shown.join(", "))
    } else if lines.len() == 1 {
        format!("line {}", shown[0])
    } else {
        format!("lines {}", shown.join(", "))
    }
}

/// Renders a call chain, eliding the middle of very deep chains.
fn chain_summary(chain: &[String]) -> String {
    if chain.len() <= 6 {
        chain.join(" → ")
    } else {
        format!(
            "{} → … → {}",
            chain[..3].join(" → "),
            chain[chain.len() - 2..].join(" → ")
        )
    }
}

/// The determinism family: token-level scan of every file in scope
/// (test code included).
fn determinism(ws: &Workspace, scopes: &[&str], findings: &mut Vec<Finding>) {
    for file in &ws.files {
        if !scopes.iter().any(|s| file.path.starts_with(s)) {
            continue;
        }
        let src = file.src.as_str();
        let lines: Vec<&str> = src.lines().collect();
        let raw_line = |n: u32| -> String {
            lines
                .get(n.saturating_sub(1) as usize)
                .map(|l| l.to_string())
                .unwrap_or_default()
        };
        let code = &file.parsed.code;
        for (k, tok) in code.iter().enumerate() {
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let text = tok.text(src);
            let mut report = |what: &str, policy: &str| {
                findings.push(Finding {
                    lint: "determinism",
                    path: file.path.clone(),
                    line: tok.line as usize,
                    message: format!("{what} in a result-affecting crate; {policy}"),
                    raw: raw_line(tok.line),
                });
            };
            if UNORDERED_TYPES.contains(&text) {
                report(
                    &format!("`{text}` (unordered container)"),
                    "iteration order varies run to run — use BTreeMap/BTreeSet or a Vec keyed \
                     by index (test code included: order-dependent goldens mask real \
                     nondeterminism)",
                );
                continue;
            }
            if CLOCK_TYPES.contains(&text) {
                report(
                    &format!("`{text}` (wall clock)"),
                    "results must be a function of (input, seed) only — meter work in the \
                     cycle domain (sachi-obs spans) instead",
                );
                continue;
            }
            // Qualified-path sequences: `std::time`, `thread::current`,
            // `env::var*`.
            let path_next = |j: usize| -> Option<&str> {
                let colon1 = code.get(j + 1)?;
                let colon2 = code.get(j + 2)?;
                if colon1.text(src) == ":" && colon2.text(src) == ":" {
                    code.get(j + 3).map(|t| t.text(src))
                } else {
                    None
                }
            };
            match text {
                "std" if path_next(k) == Some("time") => report(
                    "`std::time`",
                    "results must be a function of (input, seed) only — meter work in the \
                     cycle domain (sachi-obs spans) instead",
                ),
                "thread" if path_next(k) == Some("current") => report(
                    "`thread::current`",
                    "thread identity is scheduler-dependent; the determinism contract makes \
                     thread count unobservable — derive per-replica state from the SplitMix64 \
                     replica seed instead",
                ),
                "env" => {
                    if let Some(next) = path_next(k) {
                        if matches!(
                            next,
                            "var"
                                | "vars"
                                | "var_os"
                                | "vars_os"
                                | "args"
                                | "args_os"
                                | "set_var"
                                | "remove_var"
                        ) {
                            report(
                                &format!("`env::{next}`"),
                                "process environment is host state; configuration reaches the \
                                 solver through SolveOptions/SachiConfig only",
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

/// Builds per-fn reachability findings for one family.
#[allow(clippy::too_many_arguments)]
fn reachability_findings(
    ws: &Workspace,
    reach: &callgraph::Reachable,
    lint: &'static str,
    in_scope: impl Fn(&WsFile) -> bool,
    categories: impl Fn(&OpCounts) -> Vec<(String, Vec<u32>)>,
    advice: &str,
    findings: &mut Vec<Finding>,
) {
    for (&(fi, gi), chain) in reach {
        let file = &ws.files[fi];
        if !in_scope(file) {
            continue;
        }
        let f = &file.parsed.fns[gi];
        let ops = scan_ops(file, gi);
        let cats = categories(&ops);
        if cats.is_empty() {
            continue;
        }
        let breakdown = cats
            .iter()
            .map(|(what, lines)| format!("{what} ({})", lines_summary(lines)))
            .collect::<Vec<_>>()
            .join(", ");
        findings.push(Finding {
            lint,
            path: file.path.clone(),
            line: f.line as usize,
            message: format!(
                "fn `{}` is reachable from entry `{}` (via {}) and contains {breakdown}; \
                 {advice}",
                f.name,
                chain.first().map(String::as_str).unwrap_or(""),
                chain_summary(chain),
            ),
            raw: f.signature.clone(),
        });
    }
}

/// Runs the three analyze families over the workspace at `root`.
/// Returned findings are pre-allowlist; callers apply
/// [`crate::allowlist::apply`].
pub fn run(root: &Path) -> Result<Analysis, String> {
    let ws = Workspace::load(root, DOMAIN)?;
    let mut findings = Vec::new();

    determinism(&ws, DETERMINISM_SCOPE, &mut findings);

    // The serve daemon lives outside DOMAIN (cli fn names like `run`
    // would alias into the name-based call graph and distort the
    // reachability families), so its determinism scan runs over a
    // separate mini-workspace that never touches the graph.
    let server_ws = Workspace::load(root, SERVER_DETERMINISM_SCOPE)?;
    determinism(&server_ws, SERVER_DETERMINISM_SCOPE, &mut findings);

    let cg = callgraph::build(&ws);

    // Panic-reachability: entries are the solver-contract surfaces of
    // the result-affecting compute crates.
    let panic_entry = |file: &WsFile, f: &FnItem| {
        (file.path.starts_with("crates/core/src")
            || file.path.starts_with("crates/ising/src")
            || file.path.starts_with("crates/mem/src"))
            && (f.name.starts_with("solve")
                || f.name.starts_with("compute_")
                || f.name.starts_with("run"))
    };
    let panic_reach = callgraph::reachable(&ws, &cg, panic_entry);
    let mut entry_points = panic_reach.values().filter(|c| c.len() == 1).count();
    reachability_findings(
        &ws,
        &panic_reach,
        "panic-reachability",
        // Reported in the panic-freedom crates only: workloads are
        // input encoders whose arithmetic the overflow audit owns.
        |file| {
            file.path.starts_with("crates/core/src")
                || file.path.starts_with("crates/ising/src")
                || file.path.starts_with("crates/mem/src")
        },
        |ops| {
            let mut cats = Vec::new();
            if !ops.index.is_empty() {
                cats.push((
                    format!("{} slice-index op(s)", ops.index.len()),
                    ops.index.clone(),
                ));
            }
            if !ops.divmod.is_empty() {
                cats.push((
                    format!("{} non-literal `/`‍/`%` op(s)", ops.divmod.len()),
                    ops.divmod.clone(),
                ));
            }
            if !ops.unwrap.is_empty() {
                cats.push((
                    format!("{} `.unwrap()` call(s)", ops.unwrap.len()),
                    ops.unwrap.clone(),
                ));
            }
            cats
        },
        "bound the index/divisor (get/checked_div, slices via iterators) or vouch for the \
         whole fn with one audited lint.allow.toml entry matching its signature",
        &mut findings,
    );

    // Overflow-audit: entries are the workload-encoding surfaces; only
    // workloads fns are reported.
    let encode_entry = |file: &WsFile, f: &FnItem| {
        file.path.starts_with("crates/workloads/src")
            && (f.name.starts_with("encode")
                || f.signature.contains("QuboProblem")
                || f.signature.contains("IsingGraph")
                || f.signature.contains("EncodeError"))
    };
    let encode_reach = callgraph::reachable(&ws, &cg, encode_entry);
    entry_points += encode_reach.values().filter(|c| c.len() == 1).count();
    reachability_findings(
        &ws,
        &encode_reach,
        "overflow-audit",
        |file| file.path.starts_with("crates/workloads/src"),
        |ops| {
            if ops.arith.is_empty() {
                Vec::new()
            } else {
                vec![(
                    format!("{} unchecked `+`/`-`/`*` op(s)", ops.arith.len()),
                    ops.arith.clone(),
                )]
            }
        },
        "accumulate in i64 and narrow through workloads::encode::checked_coefficient \
         (or checked_*), or vouch for the fn with an audited lint.allow.toml entry",
        &mut findings,
    );

    findings
        .sort_by(|a, b| (a.lint, a.path.as_str(), a.line).cmp(&(b.lint, b.path.as_str(), b.line)));
    let stats = Stats {
        files_scanned: ws.files.len() + server_ws.files.len(),
        functions: ws.files.iter().map(|f| f.parsed.fns.len()).sum(),
        entry_points,
    };
    Ok(Analysis { findings, stats })
}

/// Serializes findings + stats as a `sachi.analyze.v1` JSON document
/// (validated by [`validate_analysis`]; schema-smoked in ci.sh).
pub fn to_json(findings: &[Finding], stats: &Stats, elapsed_ms: u64) -> String {
    use sachi_obs::json::escape;
    let mut by_family: Vec<(String, usize)> =
        FAMILIES.iter().map(|f| (f.to_string(), 0usize)).collect();
    by_family.push(("allowlist".to_string(), 0));
    for f in findings {
        if let Some(slot) = by_family.iter_mut().find(|(name, _)| name == f.lint) {
            slot.1 += 1;
        }
    }
    let mut out = String::with_capacity(1024);
    out.push_str("{\n  \"schema\": \"sachi.analyze.v1\",\n  \"summary\": {");
    for (i, (name, n)) in by_family.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    \"{}\": {n}",
            escape(&name.replace('-', "_"))
        ));
    }
    out.push_str(&format!(",\n    \"total\": {}\n  }},\n", findings.len()));
    out.push_str(&format!(
        "  \"stats\": {{\n    \"files_scanned\": {},\n    \"functions\": {},\n    \
         \"entry_points\": {},\n    \"elapsed_ms\": {elapsed_ms}\n  }},\n",
        stats.files_scanned, stats.functions, stats.entry_points
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"lint\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape(f.lint),
            escape(&f.path),
            f.line,
            escape(&f.message)
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Validates a `sachi.analyze.v1` document: structure, required keys,
/// and summary/total consistency. The ci.sh schema smoke pipes
/// `analyze --json` through this.
pub fn validate_analysis(text: &str) -> Result<(), String> {
    let doc = sachi_obs::json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(|v| v.as_str())
        .ok_or("missing `schema`")?;
    if schema != "sachi.analyze.v1" {
        return Err(format!("unexpected schema `{schema}`"));
    }
    let summary = doc
        .get("summary")
        .and_then(|v| v.as_obj())
        .ok_or("missing `summary` object")?;
    for family in FAMILIES {
        let key = family.replace('-', "_");
        if !summary.iter().any(|(k, _)| *k == key) {
            return Err(format!("summary missing `{key}`"));
        }
    }
    let total = doc
        .get("summary")
        .and_then(|v| v.get("total"))
        .and_then(|v| v.as_num())
        .ok_or("summary missing numeric `total`")?;
    let stats = doc
        .get("stats")
        .and_then(|v| v.as_obj())
        .ok_or("missing `stats` object")?;
    for key in ["files_scanned", "functions", "entry_points", "elapsed_ms"] {
        if !stats.iter().any(|(k, v)| k == key && v.as_num().is_some()) {
            return Err(format!("stats missing numeric `{key}`"));
        }
    }
    let findings = doc
        .get("findings")
        .and_then(|v| v.as_arr())
        .ok_or("missing `findings` array")?;
    if findings.len() as f64 != total {
        return Err(format!(
            "summary.total = {total} but findings array has {} entries",
            findings.len()
        ));
    }
    for (i, f) in findings.iter().enumerate() {
        for key in ["lint", "path", "message"] {
            if f.get(key).and_then(|v| v.as_str()).is_none() {
                return Err(format!("findings[{i}] missing string `{key}`"));
            }
        }
        if f.get("line").and_then(|v| v.as_num()).is_none() {
            return Err(format!("findings[{i}] missing numeric `line`"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(root: &Path, p: &str, content: &str) {
        let path = root.join(p);
        std::fs::create_dir_all(path.parent().expect("file paths have parents"))
            .expect("create fixture dirs");
        std::fs::write(path, content).expect("write fixture file");
    }

    fn fixture_root(tag: &str) -> std::path::PathBuf {
        let root = std::env::temp_dir().join(format!("xtask-analyze-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    /// The acceptance fixture from ISSUE 6: a `HashMap` iteration in
    /// `sachi-ising` and an unchecked index reachable from `solve`
    /// through a helper in another crate must both be reported.
    #[test]
    fn seeded_fixture_fires_determinism_and_reachability() {
        let root = fixture_root("seeded");
        mk(
            &root,
            "crates/ising/src/lib.rs",
            "//! d\npub fn order(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {\n    m.iter().map(|(k, _)| *k).collect()\n}\n",
        );
        mk(
            &root,
            "crates/core/src/lib.rs",
            "//! d\npub fn solve(v: &[u8]) -> u8 {\n    helper(v)\n}\nfn helper(v: &[u8]) -> u8 {\n    v[3]\n}\nfn unreachable_helper(v: &[u8]) -> u8 {\n    v[0]\n}\n",
        );
        let analysis = run(&root).expect("analyze runs");
        let lints: Vec<&str> = analysis.findings.iter().map(|f| f.lint).collect();
        assert!(lints.contains(&"determinism"), "{:?}", analysis.findings);
        assert!(
            lints.contains(&"panic-reachability"),
            "{:?}",
            analysis.findings
        );
        // The index in `helper` is reported (reachable via solve) with
        // its chain; the one in `unreachable_helper` is not.
        let pr: Vec<&Finding> = analysis
            .findings
            .iter()
            .filter(|f| f.lint == "panic-reachability")
            .collect();
        assert!(
            pr.iter()
                .any(|f| f.message.contains("`helper`") && f.message.contains("solve → helper")),
            "{pr:?}"
        );
        assert!(
            !pr.iter().any(|f| f.message.contains("unreachable_helper")),
            "{pr:?}"
        );
        std::fs::remove_dir_all(&root).expect("clean up fixture");
    }

    #[test]
    fn determinism_flags_clocks_thread_identity_and_env() {
        let root = fixture_root("det");
        mk(
            &root,
            "crates/obs/src/lib.rs",
            "//! d\npub fn now() -> std::time::Instant { std::time::Instant::now() }\npub fn who() -> String { format!(\"{:?}\", std::thread::current().id()) }\npub fn cfg() -> Option<String> { std::env::var(\"SACHI\").ok() }\n",
        );
        let analysis = run(&root).expect("analyze runs");
        let msgs: Vec<&str> = analysis
            .findings
            .iter()
            .filter(|f| f.lint == "determinism")
            .map(|f| f.message.as_str())
            .collect();
        assert!(msgs.iter().any(|m| m.contains("std::time")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("Instant")), "{msgs:?}");
        assert!(
            msgs.iter().any(|m| m.contains("thread::current")),
            "{msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.contains("env::var")), "{msgs:?}");
        std::fs::remove_dir_all(&root).expect("clean up fixture");
    }

    /// ISSUE 8 acceptance: the daemon modules are in the determinism
    /// scope (a wall-clock read in the frame decoder would be flagged),
    /// while `clock.rs` — the sanctioned `std::time` shim — is not.
    #[test]
    fn determinism_covers_the_serve_modules_but_not_the_clock_shim() {
        let root = fixture_root("srv");
        mk(
            &root,
            "crates/cli/src/protocol.rs",
            "//! d\npub fn stamp() -> std::time::Instant { std::time::Instant::now() }\n",
        );
        mk(
            &root,
            "crates/cli/src/serve.rs",
            "//! d\npub fn who() -> String { format!(\"{:?}\", std::thread::current().id()) }\n",
        );
        mk(
            &root,
            "crates/cli/src/clock.rs",
            "//! d\npub fn millis(ms: u64) -> std::time::Duration { std::time::Duration::from_millis(ms) }\n",
        );
        let analysis = run(&root).expect("analyze runs");
        let det: Vec<&Finding> = analysis
            .findings
            .iter()
            .filter(|f| f.lint == "determinism")
            .collect();
        assert!(
            det.iter()
                .any(|f| f.path.ends_with("protocol.rs") && f.message.contains("std::time")),
            "{det:?}"
        );
        assert!(
            det.iter()
                .any(|f| f.path.ends_with("serve.rs") && f.message.contains("thread::current")),
            "{det:?}"
        );
        assert!(!det.iter().any(|f| f.path.ends_with("clock.rs")), "{det:?}");
        std::fs::remove_dir_all(&root).expect("clean up fixture");
    }

    /// ISSUE 10 acceptance: the tempering module lives in
    /// `crates/ising/src`, inside both lint scopes — a wall-clock read
    /// in a swap scheduler and an unchecked rung index reachable from
    /// the tempered solve entry must both be reported there. (The real
    /// module passes these lints; ci.sh's `xtask analyze` gate proves
    /// it on every run.)
    #[test]
    fn tempering_module_is_covered_by_determinism_and_reachability() {
        let root = fixture_root("pt");
        mk(
            &root,
            "crates/ising/src/tempering.rs",
            "//! d\npub fn solve_tempered(energies: &[f64]) -> f64 {\n    swap_pair(energies, 1)\n}\nfn swap_pair(energies: &[f64], i: usize) -> f64 {\n    energies[i] - energies[i + 1]\n}\npub fn swap_clock() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
        );
        let analysis = run(&root).expect("analyze runs");
        let det: Vec<&Finding> = analysis
            .findings
            .iter()
            .filter(|f| f.lint == "determinism")
            .collect();
        assert!(
            det.iter()
                .any(|f| f.path.ends_with("tempering.rs") && f.message.contains("std::time")),
            "{det:?}"
        );
        let pr: Vec<&Finding> = analysis
            .findings
            .iter()
            .filter(|f| f.lint == "panic-reachability")
            .collect();
        assert!(
            pr.iter().any(|f| f.path.ends_with("tempering.rs")
                && f.message.contains("`swap_pair`")
                && f.message.contains("solve_tempered → swap_pair")),
            "{pr:?}"
        );
        std::fs::remove_dir_all(&root).expect("clean up fixture");
    }

    #[test]
    fn determinism_ignores_comments_and_strings() {
        let root = fixture_root("detcs");
        mk(
            &root,
            "crates/mem/src/lib.rs",
            "//! HashMap in docs is fine\npub fn f() -> &'static str {\n    // HashMap in a comment\n    \"HashMap in a string\"\n}\n",
        );
        let analysis = run(&root).expect("analyze runs");
        assert!(
            analysis.findings.iter().all(|f| f.lint != "determinism"),
            "{:?}",
            analysis.findings
        );
        std::fs::remove_dir_all(&root).expect("clean up fixture");
    }

    #[test]
    fn overflow_audit_scopes_to_encoding_paths() {
        let root = fixture_root("ovf");
        mk(
            &root,
            "crates/workloads/src/lib.rs",
            "//! d\npub struct QuboProblem;\npub fn encode_thing(a: i32, b: i32) -> QuboProblem {\n    let _ = scale(a, b);\n    QuboProblem\n}\nfn scale(a: i32, b: i32) -> i32 {\n    a * b + 1\n}\npub fn unrelated_math(a: i32) -> i32 {\n    a * 3\n}\n",
        );
        let analysis = run(&root).expect("analyze runs");
        let ovf: Vec<&Finding> = analysis
            .findings
            .iter()
            .filter(|f| f.lint == "overflow-audit")
            .collect();
        assert!(ovf.iter().any(|f| f.message.contains("`scale`")), "{ovf:?}");
        assert!(
            !ovf.iter().any(|f| f.message.contains("unrelated_math")),
            "{ovf:?}"
        );
        std::fs::remove_dir_all(&root).expect("clean up fixture");
    }

    #[test]
    fn ops_respect_sanctioned_macros_and_literals() {
        let root = fixture_root("ops");
        mk(
            &root,
            "crates/core/src/lib.rs",
            "//! d\npub fn solve(v: &[u8], n: u8) -> u8 {\n    assert!(v[0] > 0);\n    debug_assert_eq!(v[1], 1);\n    let half = n / 2;\n    let all = &v[..];\n    half + all.len() as u8\n}\n",
        );
        let analysis = run(&root).expect("analyze runs");
        let pr: Vec<&Finding> = analysis
            .findings
            .iter()
            .filter(|f| f.lint == "panic-reachability")
            .collect();
        // Indexing inside assert!/debug_assert_eq! is sanctioned, `/ 2`
        // is a literal divisor, `[..]` cannot panic → no findings.
        assert!(pr.is_empty(), "{pr:?}");
        std::fs::remove_dir_all(&root).expect("clean up fixture");
    }

    #[test]
    fn json_round_trips_through_validator() {
        let findings = vec![Finding {
            lint: "determinism",
            path: "crates/ising/src/lib.rs".into(),
            line: 7,
            message: "a \"quoted\" message".into(),
            raw: "let m = HashMap::new();".into(),
        }];
        let stats = Stats {
            files_scanned: 3,
            functions: 9,
            entry_points: 2,
        };
        let doc = to_json(&findings, &stats, 42);
        validate_analysis(&doc).expect("valid document");
        // Tampered totals fail.
        let bad = doc.replace("\"total\": 1", "\"total\": 5");
        assert!(validate_analysis(&bad).is_err());
    }
}
