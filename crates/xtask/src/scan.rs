//! AST-lite source model shared by the lints.
//!
//! The lints need three things a plain `grep` cannot give: (1) comment
//! and string-literal contents must not trigger findings, (2) code inside
//! `#[cfg(test)]` modules is exempt from library-code lints, and (3)
//! findings must carry the *original* line text for allowlist matching
//! and diagnostics. [`scan_lines`] provides exactly that: it walks a file
//! once, strips comments and string literals with a small state machine,
//! tracks brace depth to skip `#[cfg(test)]` modules, and yields one
//! [`CodeLine`] per non-test source line.

/// One line of library (non-test) code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeLine {
    /// 1-based line number in the file.
    pub number: usize,
    /// The line with comments and string-literal contents blanked out —
    /// what the lints pattern-match against.
    pub code: String,
    /// The original line text — what diagnostics and allowlists see.
    pub raw: String,
}

/// Lexer state carried across lines.
#[derive(Debug, Default)]
struct LexState {
    in_block_comment: bool,
    /// `Some(hash_count)` while inside a raw string (`r"…"`, `r#"…"#`).
    in_raw_string: Option<usize>,
    in_string: bool,
}

/// Blanks comments and string-literal contents from `line`, updating
/// `state` for constructs that span lines. Returns the scrubbed text.
fn scrub_line(line: &str, state: &mut LexState) -> String {
    let bytes = line.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if state.in_block_comment {
            if bytes[i..].starts_with(b"*/") {
                state.in_block_comment = false;
                out.extend_from_slice(b"  ");
                i += 2;
            } else {
                out.push(b' ');
                i += 1;
            }
            continue;
        }
        if let Some(hashes) = state.in_raw_string {
            let closer: Vec<u8> = std::iter::once(b'"')
                .chain(std::iter::repeat_n(b'#', hashes))
                .collect();
            if bytes[i..].starts_with(&closer) {
                state.in_raw_string = None;
                out.extend(std::iter::repeat_n(b' ', closer.len()));
                i += closer.len();
            } else {
                out.push(b' ');
                i += 1;
            }
            continue;
        }
        if state.in_string {
            match bytes[i] {
                b'\\' if i + 1 < bytes.len() => {
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
                b'"' => {
                    state.in_string = false;
                    out.push(b'"');
                    i += 1;
                }
                _ => {
                    out.push(b' ');
                    i += 1;
                }
            }
            continue;
        }
        match bytes[i] {
            b'/' if bytes[i..].starts_with(b"//") => break, // line comment
            b'/' if bytes[i..].starts_with(b"/*") => {
                state.in_block_comment = true;
                out.extend_from_slice(b"  ");
                i += 2;
            }
            b'r' if is_raw_string_start(bytes, i) => {
                let hashes = bytes[i + 1..].iter().take_while(|&&b| b == b'#').count();
                state.in_raw_string = Some(hashes);
                out.extend(std::iter::repeat_n(b' ', hashes + 2));
                i += hashes + 2;
            }
            b'"' => {
                state.in_string = true;
                out.push(b'"');
                i += 1;
            }
            b'\'' if is_char_literal(bytes, i) => {
                // Blank char literals ('"' would otherwise open a string).
                let len = char_literal_len(bytes, i);
                out.extend(std::iter::repeat_n(b' ', len));
                i += len;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    // Unterminated ordinary string literals do not span lines in valid
    // Rust unless continued with a trailing backslash; treat end-of-line
    // as terminating to stay robust on that rare construct.
    if state.in_string && !line.trim_end().ends_with('\\') {
        state.in_string = false;
    }
    String::from_utf8(out).unwrap_or_default()
}

/// True if position `i` starts a raw string literal (`r"`, `r#"`, …) and
/// is not part of an identifier like `for` or a lifetime.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 {
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return false;
        }
    }
    let mut j = i + 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

/// True if position `i` starts a character literal rather than a lifetime.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    // 'x' or '\x' — a closing quote within 3 bytes distinguishes a char
    // literal from a lifetime such as `'static`.
    let rest = &bytes[i + 1..];
    match rest {
        [b'\\', _, b'\'', ..] => true,
        [c, b'\'', ..] if *c != b'\'' => true,
        _ => false,
    }
}

/// Byte length of the char literal starting at `i` (only called when
/// [`is_char_literal`] holds).
fn char_literal_len(bytes: &[u8], i: usize) -> usize {
    if bytes.get(i + 1) == Some(&b'\\') {
        4
    } else {
        3
    }
}

/// Scans `source`, yielding scrubbed library lines. Lines inside
/// `#[cfg(test)]`-attributed items (test modules, test-only impls) are
/// skipped: when the attribute is seen, the scanner waits for the item's
/// opening `{` and swallows everything until its matching `}`.
pub fn scan_lines(source: &str) -> Vec<CodeLine> {
    let mut state = LexState::default();
    let mut out = Vec::new();
    let mut pending_cfg_test = false;
    // Depth of `{` nesting at which a cfg(test) item began, once entered.
    let mut skip_from_depth: Option<usize> = None;
    let mut depth: usize = 0;
    for (idx, raw) in source.lines().enumerate() {
        let code = scrub_line(raw, &mut state);
        let opens = code.bytes().filter(|&b| b == b'{').count();
        let closes = code.bytes().filter(|&b| b == b'}').count();

        if skip_from_depth.is_none() && code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        let in_skipped = skip_from_depth.is_some();
        if pending_cfg_test && opens > 0 {
            skip_from_depth = Some(depth);
            pending_cfg_test = false;
        }

        depth = depth + opens - closes.min(depth + opens);
        if let Some(base) = skip_from_depth {
            if depth <= base {
                skip_from_depth = None;
            }
            continue;
        }
        if in_skipped {
            continue;
        }
        out.push(CodeLine {
            number: idx + 1,
            code,
            raw: raw.to_string(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        scan_lines(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strips_line_and_block_comments() {
        let src = "let a = 1; // x as u64\nlet b /* as u64 */ = 2;\n/* spans\nlines as u64\n*/ let c = 3;";
        let got = codes(src);
        assert_eq!(got[0], "let a = 1; ");
        assert!(!got.concat().contains("as u64"));
        assert!(got[4].contains("let c = 3;"));
    }

    #[test]
    fn blanks_string_contents_but_keeps_quotes() {
        let got = codes("let s = \"call .unwrap() now\"; s.len();");
        assert_eq!(
            got[0].matches('"').count(),
            2,
            "both quotes survive: {:?}",
            got[0]
        );
        assert!(!got[0].contains("unwrap"));
        assert!(got[0].contains("s.len();"));
    }

    #[test]
    fn blanks_raw_strings_and_escapes() {
        let got = codes("let s = r#\"panic!(\"x\")\"#; let t = \"a\\\"b panic!\";");
        assert!(!got[0].contains("panic!"));
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let got = codes("let q = '\"'; let p = x.unwrap();");
        assert!(got[0].contains(".unwrap()"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let got = codes("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(got[0].contains("fn f<'a>"));
    }

    #[test]
    fn skips_cfg_test_modules() {
        let src = "fn lib() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\nfn lib2() {}";
        let all: Vec<CodeLine> = scan_lines(src);
        let joined: String = all
            .iter()
            .map(|l| l.code.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(joined.contains("a.unwrap()"));
        assert!(!joined.contains("b.unwrap()"));
        assert!(joined.contains("fn lib2"));
        assert_eq!(all.last().map(|l| l.number), Some(6));
    }

    #[test]
    fn nested_braces_inside_test_module_stay_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { if x { y.unwrap(); } }\n}\nfn after() { z.unwrap(); }";
        let joined: String = scan_lines(src)
            .iter()
            .map(|l| l.code.clone())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!joined.contains("y.unwrap()"));
        assert!(joined.contains("z.unwrap()"));
    }
}
