//! Line-model adapter over the token-level lexer and item parser.
//!
//! The six classic lints pattern-match against *lines* of library
//! code. This module derives that line model from [`crate::lexer`]
//! tokens and [`crate::parser`] item recovery instead of the per-line
//! state machine it used before: comment extents, string-literal
//! contents, and `#[cfg(test)]` item bodies now come from the same
//! lexer/parser the analyze families use, so the two layers can never
//! disagree about what is code.
//!
//! Scrub rules (unchanged semantics from the original line scanner):
//! line comments are dropped to end of line; block comments, raw
//! strings, and char literals are blanked to spaces; ordinary string
//! literals keep their delimiting quotes with blanked contents;
//! everything else passes through byte-for-byte. Lines inside
//! `#[cfg(test)]` item bodies (from the opening `{` line through the
//! closing `}` line) are omitted entirely.

use crate::lexer::TokenKind;
use crate::parser::parse_source;

/// One line of library (non-test) code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeLine {
    /// 1-based line number in the file.
    pub number: usize,
    /// The line with comments and string-literal contents blanked out —
    /// what the lints pattern-match against.
    pub code: String,
    /// The original line text — what diagnostics and allowlists see.
    pub raw: String,
}

/// Per-byte scrub action derived from the token stream.
#[derive(Clone, Copy, PartialEq)]
enum Action {
    Keep,
    Space,
    Drop,
}

/// Scans `source`, yielding scrubbed library lines (test-item bodies
/// omitted). Built on the real lexer: raw strings, nested block
/// comments, char-vs-lifetime, and multi-line literals are handled by
/// construction.
pub fn scan_lines(source: &str) -> Vec<CodeLine> {
    let parsed = parse_source(source);
    let bytes = source.as_bytes();
    let mut actions = vec![Action::Keep; bytes.len()];
    for tok in crate::lexer::lex(source) {
        let span = tok.start..tok.end.min(bytes.len());
        match tok.kind {
            TokenKind::LineComment => {
                for a in &mut actions[span] {
                    *a = Action::Drop;
                }
            }
            TokenKind::BlockComment | TokenKind::RawStrLit | TokenKind::CharLit => {
                for a in &mut actions[span] {
                    *a = Action::Space;
                }
            }
            TokenKind::StrLit => {
                // Keep the opening prefix+quote (`"`, `b"`) and the
                // closing quote; blank the contents.
                let text = tok.text(source);
                let open = text.find('"').map(|q| tok.start + q).unwrap_or(tok.start);
                let terminated = text.len() >= open - tok.start + 2 && text.ends_with('"');
                for (i, a) in actions[span].iter_mut().enumerate() {
                    let pos = tok.start + i;
                    let is_open = pos <= open;
                    let is_close = terminated && pos == tok.end - 1;
                    *a = if is_open || is_close {
                        Action::Keep
                    } else {
                        Action::Space
                    };
                }
            }
            _ => {}
        }
    }
    // Newlines always survive so the line structure is preserved.
    for (i, b) in bytes.iter().enumerate() {
        if *b == b'\n' {
            actions[i] = Action::Keep;
        }
    }

    // Line ranges covered by test-item bodies: skip from the opening
    // `{` line through the closing `}` line.
    let line_of = |byte: usize| -> usize {
        1 + bytes[..byte.min(bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
    };
    let skip_ranges: Vec<(usize, usize)> = parsed
        .test_spans
        .iter()
        .map(|&(s, e)| (line_of(s), line_of(e.saturating_sub(1))))
        .collect();

    let mut out = Vec::new();
    let mut offset = 0usize;
    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let start = offset;
        offset += raw.len() + 1; // +1 for the newline (absent on last line is harmless)
        if skip_ranges.iter().any(|&(s, e)| number >= s && number <= e) {
            continue;
        }
        let mut code = String::with_capacity(raw.len());
        for (i, &b) in raw.as_bytes().iter().enumerate() {
            match actions.get(start + i).copied().unwrap_or(Action::Keep) {
                Action::Keep => code.push(b as char),
                Action::Space => code.push(' '),
                Action::Drop => {}
            }
        }
        out.push(CodeLine {
            number,
            code,
            raw: raw.to_string(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        scan_lines(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strips_line_and_block_comments() {
        let src = "let a = 1; // x as u64\nlet b /* as u64 */ = 2;\n/* spans\nlines as u64\n*/ let c = 3;";
        let got = codes(src);
        assert_eq!(got[0], "let a = 1; ");
        assert!(!got.concat().contains("as u64"));
        assert!(got[4].contains("let c = 3;"));
    }

    #[test]
    fn blanks_string_contents_but_keeps_quotes() {
        let got = codes("let s = \"call .unwrap() now\"; s.len();");
        assert_eq!(
            got[0].matches('"').count(),
            2,
            "both quotes survive: {:?}",
            got[0]
        );
        assert!(!got[0].contains("unwrap"));
        assert!(got[0].contains("s.len();"));
    }

    #[test]
    fn blanks_raw_strings_and_escapes() {
        let got = codes("let s = r#\"panic!(\"x\")\"#; let t = \"a\\\"b panic!\";");
        assert!(!got[0].contains("panic!"));
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let got = codes("let q = '\"'; let p = x.unwrap();");
        assert!(got[0].contains(".unwrap()"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let got = codes("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(got[0].contains("fn f<'a>"));
    }

    #[test]
    fn skips_cfg_test_modules() {
        let src = "fn lib() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\nfn lib2() {}";
        let all: Vec<CodeLine> = scan_lines(src);
        let joined: String = all
            .iter()
            .map(|l| l.code.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(joined.contains("a.unwrap()"));
        assert!(!joined.contains("b.unwrap()"));
        assert!(joined.contains("fn lib2"));
        assert_eq!(all.last().map(|l| l.number), Some(6));
    }

    #[test]
    fn nested_braces_inside_test_module_stay_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { if x { y.unwrap(); } }\n}\nfn after() { z.unwrap(); }";
        let joined: String = scan_lines(src)
            .iter()
            .map(|l| l.code.clone())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!joined.contains("y.unwrap()"));
        assert!(joined.contains("z.unwrap()"));
    }

    #[test]
    fn multiline_strings_stay_blanked_across_lines() {
        // The old per-line scanner reset string state at end of line;
        // the lexer-backed model tracks the literal's true extent.
        let src = "let s = \"spans\nlines .unwrap()\";\nlet t = x.unwrap();";
        let got = codes(src);
        assert!(!got[1].contains("unwrap"), "{got:?}");
        assert!(got[2].contains("x.unwrap()"));
    }

    #[test]
    fn test_only_impl_blocks_are_skipped() {
        let src = "fn lib() {}\n#[cfg(test)]\nimpl Helper {\n    fn h(&self) { panic!(\"x\"); }\n}\nfn lib3() {}";
        let joined: String = scan_lines(src)
            .iter()
            .map(|l| l.code.clone())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!joined.contains("panic!"));
        assert!(joined.contains("fn lib3"));
    }
}
