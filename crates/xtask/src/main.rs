//! Workspace automation for the SACHI reproduction.
//!
//! Currently one subcommand:
//!
//! ```text
//! cargo run -p xtask -- lint [--root <dir>]
//! ```
//!
//! runs six repo-specific static-analysis lints (unit-safety,
//! panic-freedom, fault-strict, bench-registration, hot-path,
//! hygiene — see [`lints`]) over the
//! workspace and exits non-zero if any unsuppressed finding remains.
//! Exceptions live in `lint.allow.toml` at the workspace root; every
//! entry needs a one-line `reason` and stale entries are themselves
//! errors. No external dependencies: plain line/AST-lite scanning, works
//! in offline builds.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod allowlist;
mod lints;
mod scan;

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: cargo run -p xtask -- lint [--root <dir>]");
    std::process::exit(2);
}

/// Workspace root: `--root` override, else the parent of this crate's
/// manifest directory (`crates/xtask` → repo root).
fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(root) = explicit {
        return root;
    }
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .expect("CARGO_MANIFEST_DIR is <root>/crates/xtask and has two parents")
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(subcommand) = args.next() else {
        usage()
    };
    if subcommand != "lint" {
        eprintln!("unknown subcommand `{subcommand}`");
        usage();
    }
    let mut root_override = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => match args.next() {
                Some(dir) => root_override = Some(PathBuf::from(dir)),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let root = workspace_root(root_override);
    match lints::run(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("xtask lint: clean (unit-safety, panic-freedom, fault-strict, bench-registration, hot-path, hygiene)");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                eprintln!("{finding}");
            }
            eprintln!(
                "\nxtask lint: {} finding(s). Fix them or add an audited entry to lint.allow.toml.",
                findings.len()
            );
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("xtask lint: error: {message}");
            ExitCode::FAILURE
        }
    }
}
