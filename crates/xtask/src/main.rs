//! Workspace automation for the SACHI reproduction.
//!
//! Subcommands:
//!
//! ```text
//! cargo run -p xtask -- lint [--root <dir>] [--fix-allowlist]
//! ```
//!
//! runs all nine repo-specific static-analysis families — the six
//! classic lints (unit-safety, panic-freedom, fault-strict,
//! bench-registration, hot-path, hygiene — see [`lints`]) plus the
//! three analyze families (determinism, panic-reachability,
//! overflow-audit — see [`analyze`]) — over the workspace and exits
//! non-zero if any unsuppressed finding remains. Exceptions live in
//! `lint.allow.toml` at the workspace root; every entry needs a
//! one-line `reason` and stale entries are themselves errors.
//! `--fix-allowlist` rewrites `lint.allow.toml` with the stale entries
//! pruned (other findings still fail the run).
//!
//! ```text
//! cargo run -p xtask -- analyze [--root <dir>] [--json] [--budget-ms <n>]
//! ```
//!
//! runs just the three analyze families on the lexer/parser/call-graph
//! stack ([`lexer`], [`parser`], [`callgraph`]). Human-readable report
//! goes to stderr; `--json` writes a `sachi.analyze.v1` document to
//! stdout. `--budget-ms` turns the wall-clock budget into a hard gate
//! (ci.sh uses 5000). Exit is non-zero on findings or budget overrun.
//!
//! ```text
//! cargo run -p xtask -- validate-metrics [<file>]
//! cargo run -p xtask -- validate-analysis [<file>]
//! cargo run -p xtask -- validate-quality [<file>]
//! cargo run -p xtask -- validate-exposition [<file>]
//! ```
//!
//! validate a `sachi solve --metrics json` snapshot
//! (`sachi.metrics.v1`), an `analyze --json` document
//! (`sachi.analyze.v1`), a `disc_quality` report
//! (`sachi.quality.v1`, including three-families × four-designs
//! coverage), or a Prometheus text exposition (as served by
//! `sachi serve`'s `/metrics` endpoint and fetched by
//! `sachi submit --fetch-metrics`) from `<file>` or stdin — the CI
//! gates behind the schema smokes in `ci.sh`.
//!
//! No external dependencies: a small hand-rolled Rust lexer, item
//! parser, and call graph plus the workspace's own dependency-free
//! `sachi-obs` validator, works in offline builds.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod allowlist;
mod analyze;
mod callgraph;
mod lexer;
mod lints;
mod parser;
mod quality;
mod scan;

use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: cargo run -p xtask -- lint [--root <dir>] [--fix-allowlist]");
    eprintln!("       cargo run -p xtask -- analyze [--root <dir>] [--json] [--budget-ms <n>]");
    eprintln!("       cargo run -p xtask -- validate-metrics [<file>]    (stdin when no file)");
    eprintln!("       cargo run -p xtask -- validate-analysis [<file>]   (stdin when no file)");
    eprintln!("       cargo run -p xtask -- validate-quality [<file>]    (stdin when no file)");
    eprintln!("       cargo run -p xtask -- validate-exposition [<file>] (stdin when no file)");
    std::process::exit(2);
}

/// Workspace root: `--root` override, else the parent of this crate's
/// manifest directory (`crates/xtask` → repo root).
fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(root) = explicit {
        return root;
    }
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .expect("CARGO_MANIFEST_DIR is <root>/crates/xtask and has two parents")
}

fn run_lint(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut root_override = None;
    let mut fix_allowlist = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => match args.next() {
                Some(dir) => root_override = Some(PathBuf::from(dir)),
                None => usage(),
            },
            "--fix-allowlist" => fix_allowlist = true,
            _ => usage(),
        }
    }

    let root = workspace_root(root_override);
    let (mut findings, entries, stale) = match lints::run_all(&root) {
        Ok(result) => result,
        Err(message) => {
            eprintln!("xtask lint: error: {message}");
            return ExitCode::FAILURE;
        }
    };

    if fix_allowlist && !stale.is_empty() {
        let allow_path = root.join("lint.allow.toml");
        let pruned = match std::fs::read_to_string(&allow_path) {
            Ok(text) => allowlist::remove_entries(&text, &entries, &stale),
            Err(e) => {
                eprintln!("xtask lint: error: read {}: {e}", allow_path.display());
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(&allow_path, pruned) {
            eprintln!("xtask lint: error: write {}: {e}", allow_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "xtask lint: pruned {} stale allowlist entr{} from lint.allow.toml",
            stale.len(),
            if stale.len() == 1 { "y" } else { "ies" }
        );
        // The stale findings are resolved by the prune; everything else
        // still counts.
        findings.retain(|f| f.lint != "allowlist");
    }

    if findings.is_empty() {
        println!(
            "xtask lint: clean (unit-safety, panic-freedom, fault-strict, bench-registration, \
             hot-path, hygiene, determinism, panic-reachability, overflow-audit)"
        );
        return ExitCode::SUCCESS;
    }
    for finding in &findings {
        eprintln!("{finding}");
    }
    eprintln!(
        "\nxtask lint: {} finding(s). Fix them or add an audited entry to lint.allow.toml.",
        findings.len()
    );
    ExitCode::FAILURE
}

/// Runs the three analyze families standalone: human report on stderr,
/// optional `sachi.analyze.v1` JSON on stdout, optional hard wall-clock
/// budget. The allowlist applies with staleness scoped to the analyze
/// families only, so classic-lint entries do not read as stale here.
fn run_analyze(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut root_override = None;
    let mut json = false;
    let mut budget_ms: Option<u64> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => match args.next() {
                Some(dir) => root_override = Some(PathBuf::from(dir)),
                None => usage(),
            },
            "--json" => json = true,
            "--budget-ms" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => budget_ms = Some(n),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let root = workspace_root(root_override);
    // Wall-clock here meters the *tool*, not the simulation — the
    // determinism contract constrains solver results, and this binary
    // produces none.
    let started = std::time::Instant::now();
    let analysis = match analyze::run(&root) {
        Ok(analysis) => analysis,
        Err(message) => {
            eprintln!("xtask analyze: error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let entries = match allowlist::load(&root) {
        Ok(entries) => entries,
        Err(message) => {
            eprintln!("xtask analyze: error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let mut findings = analysis.findings;
    allowlist::apply(&root, &entries, analyze::FAMILIES, &mut findings);
    findings
        .sort_by(|a, b| (a.lint, a.path.as_str(), a.line).cmp(&(b.lint, b.path.as_str(), b.line)));
    let elapsed_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);

    if json {
        print!(
            "{}",
            analyze::to_json(&findings, &analysis.stats, elapsed_ms)
        );
    }
    for finding in &findings {
        eprintln!("{finding}");
    }
    eprintln!(
        "xtask analyze: {} finding(s) across {} file(s), {} fn(s), {} entry point(s) in {elapsed_ms} ms",
        findings.len(),
        analysis.stats.files_scanned,
        analysis.stats.functions,
        analysis.stats.entry_points,
    );

    let mut failed = !findings.is_empty();
    if let Some(budget) = budget_ms {
        if elapsed_ms > budget {
            eprintln!(
                "xtask analyze: budget exceeded: {elapsed_ms} ms > {budget} ms — the analyzer \
                 must stay cheap enough to run on every CI invocation"
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Validates a metrics snapshot against the full `sachi solve` schema:
/// structure plus counter coverage of every subsystem
/// ([`sachi_obs::json::REQUIRED_COUNTER_PREFIXES`]).
fn run_validate_metrics(mut args: impl Iterator<Item = String>) -> ExitCode {
    let Some(text) = read_doc(args.next(), args.next(), "validate-metrics") else {
        return ExitCode::FAILURE;
    };
    match sachi_obs::json::validate_solve_snapshot(&text) {
        Ok(()) => {
            println!(
                "xtask validate-metrics: ok (sachi.metrics.v1, counters cover {})",
                sachi_obs::json::REQUIRED_COUNTER_PREFIXES
                    .map(|p| p.trim_end_matches('_'))
                    .join("/")
            );
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("xtask validate-metrics: invalid snapshot: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Validates an `analyze --json` document against `sachi.analyze.v1`.
fn run_validate_analysis(mut args: impl Iterator<Item = String>) -> ExitCode {
    let Some(text) = read_doc(args.next(), args.next(), "validate-analysis") else {
        return ExitCode::FAILURE;
    };
    match analyze::validate_analysis(&text) {
        Ok(()) => {
            println!("xtask validate-analysis: ok (sachi.analyze.v1)");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("xtask validate-analysis: invalid document: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Validates a `disc_quality` report against `sachi.quality.v1`,
/// including the three-families × four-designs coverage gate.
fn run_validate_quality(mut args: impl Iterator<Item = String>) -> ExitCode {
    let Some(text) = read_doc(args.next(), args.next(), "validate-quality") else {
        return ExitCode::FAILURE;
    };
    match quality::validate_quality(&text) {
        Ok(()) => {
            println!(
                "xtask validate-quality: ok (sachi.quality.v1, {} families x {} designs covered)",
                quality::REQUIRED_FAMILIES.len(),
                quality::REQUIRED_DESIGNS.len()
            );
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("xtask validate-quality: invalid document: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Validates a Prometheus text exposition (the `sachi serve` `/metrics`
/// output): HELP/TYPE preambles, name/label syntax, numeric samples.
fn run_validate_exposition(mut args: impl Iterator<Item = String>) -> ExitCode {
    let Some(text) = read_doc(args.next(), args.next(), "validate-exposition") else {
        return ExitCode::FAILURE;
    };
    match sachi_obs::prom::validate_exposition(&text) {
        Ok(()) => {
            let samples = text
                .lines()
                .filter(|l| !l.trim_start().starts_with('#') && !l.trim().is_empty())
                .count();
            println!("xtask validate-exposition: ok (prometheus text format, {samples} sample(s))");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("xtask validate-exposition: invalid exposition: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Reads the document for a validate subcommand from `<file>` or stdin.
/// `extra` must be `None` (one positional argument at most).
fn read_doc(source: Option<String>, extra: Option<String>, cmd: &str) -> Option<String> {
    if extra.is_some() {
        usage();
    }
    let text = match &source {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}")),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map(|_| buf)
                .map_err(|e| format!("read stdin: {e}"))
        }
    };
    match text {
        Ok(text) => Some(text),
        Err(message) => {
            eprintln!("xtask {cmd}: error: {message}");
            None
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(subcommand) = args.next() else {
        usage()
    };
    match subcommand.as_str() {
        "lint" => run_lint(args),
        "analyze" => run_analyze(args),
        "validate-metrics" => run_validate_metrics(args),
        "validate-analysis" => run_validate_analysis(args),
        "validate-quality" => run_validate_quality(args),
        "validate-exposition" => run_validate_exposition(args),
        other => {
            eprintln!("unknown subcommand `{other}`");
            usage();
        }
    }
}
