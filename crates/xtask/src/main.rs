//! Workspace automation for the SACHI reproduction.
//!
//! Two subcommands:
//!
//! ```text
//! cargo run -p xtask -- lint [--root <dir>]
//! ```
//!
//! runs six repo-specific static-analysis lints (unit-safety,
//! panic-freedom, fault-strict, bench-registration, hot-path,
//! hygiene — see [`lints`]) over the
//! workspace and exits non-zero if any unsuppressed finding remains.
//! Exceptions live in `lint.allow.toml` at the workspace root; every
//! entry needs a one-line `reason` and stale entries are themselves
//! errors.
//!
//! ```text
//! cargo run -p xtask -- validate-metrics [<file>]
//! ```
//!
//! validates a `sachi solve --metrics json` snapshot (from `<file>` or
//! stdin) against the `sachi.metrics.v1` schema, including the
//! required-counter-prefix coverage of every subsystem — the CI gate
//! behind the `--metrics` smoke in `ci.sh`.
//!
//! No external dependencies: plain line/AST-lite scanning plus the
//! workspace's own dependency-free `sachi-obs` validator, works in
//! offline builds.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod allowlist;
mod lints;
mod scan;

use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: cargo run -p xtask -- lint [--root <dir>]");
    eprintln!("       cargo run -p xtask -- validate-metrics [<file>]   (stdin when no file)");
    std::process::exit(2);
}

/// Workspace root: `--root` override, else the parent of this crate's
/// manifest directory (`crates/xtask` → repo root).
fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(root) = explicit {
        return root;
    }
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .expect("CARGO_MANIFEST_DIR is <root>/crates/xtask and has two parents")
}

fn run_lint(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut root_override = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => match args.next() {
                Some(dir) => root_override = Some(PathBuf::from(dir)),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let root = workspace_root(root_override);
    match lints::run(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("xtask lint: clean (unit-safety, panic-freedom, fault-strict, bench-registration, hot-path, hygiene)");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                eprintln!("{finding}");
            }
            eprintln!(
                "\nxtask lint: {} finding(s). Fix them or add an audited entry to lint.allow.toml.",
                findings.len()
            );
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("xtask lint: error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Validates a metrics snapshot against the full `sachi solve` schema:
/// structure plus counter coverage of every subsystem
/// ([`sachi_obs::json::REQUIRED_COUNTER_PREFIXES`]).
fn run_validate_metrics(mut args: impl Iterator<Item = String>) -> ExitCode {
    let source = args.next();
    if args.next().is_some() {
        usage();
    }
    let text = match &source {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}")),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map(|_| buf)
                .map_err(|e| format!("read stdin: {e}"))
        }
    };
    let text = match text {
        Ok(text) => text,
        Err(message) => {
            eprintln!("xtask validate-metrics: error: {message}");
            return ExitCode::FAILURE;
        }
    };
    match sachi_obs::json::validate_solve_snapshot(&text) {
        Ok(()) => {
            println!(
                "xtask validate-metrics: ok (sachi.metrics.v1, counters cover {})",
                sachi_obs::json::REQUIRED_COUNTER_PREFIXES
                    .map(|p| p.trim_end_matches('_'))
                    .join("/")
            );
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("xtask validate-metrics: invalid snapshot: {message}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(subcommand) = args.next() else {
        usage()
    };
    match subcommand.as_str() {
        "lint" => run_lint(args),
        "validate-metrics" => run_validate_metrics(args),
        other => {
            eprintln!("unknown subcommand `{other}`");
            usage();
        }
    }
}
