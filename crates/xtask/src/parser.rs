//! Item-level parser over the [`crate::lexer`] token stream.
//!
//! Recovers exactly what the static-analysis lints need — no more:
//!
//! * every `fn` item with its name, signature extent, and body extent
//!   as *token-index ranges* (so downstream passes walk tokens, not
//!   re-scanned text);
//! * which items are test code (`#[cfg(test)]` / `#[test]`, inherited
//!   by nesting), as both a per-fn flag and byte spans for the line
//!   model in [`crate::scan`];
//! * proper delimiter tracking, so `;` inside `[u8; 4]`, braces inside
//!   match arms, and fn-pointer types (`fn(` with no name) never
//!   confuse item recovery.
//!
//! Known approximations, accepted deliberately (documented in
//! DESIGN.md): const-generic default braces in signatures
//! (`fn f<const N: usize = {16}>`) would be taken for a body start,
//! and `#[cfg(any(test, feature = "…"))]` counts as test code. Neither
//! construct appears in this workspace; the golden tests pin the
//! behaviors that do.

use crate::lexer::{lex, Token, TokenKind};

/// One recovered `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's bare name (`solve_detailed`, `compute_tuple`).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Index of the `fn` keyword in [`ParsedFile::code`].
    pub sig_start: usize,
    /// Indices of the body's `{` and matching `}` in
    /// [`ParsedFile::code`], inclusive. `None` for bodyless trait/extern
    /// declarations.
    pub body: Option<(usize, usize)>,
    /// True when the fn is test code: `#[test]`, `#[cfg(test)]`, or
    /// nested anywhere under a `#[cfg(test)]` item.
    pub is_test: bool,
    /// First line of the signature text, trimmed — diagnostics and
    /// allowlist `contains` patterns match against this.
    pub signature: String,
}

/// A parsed source file: comment-free tokens plus recovered items.
#[derive(Debug)]
pub struct ParsedFile {
    /// The code tokens (comments filtered out), in source order.
    pub code: Vec<Token>,
    /// Every `fn` item, in source order (nested fns included).
    pub fns: Vec<FnItem>,
    /// Byte spans (opening `{` to closing `}`, inclusive) of items that
    /// are test code roots — the extents [`crate::scan`] skips.
    pub test_spans: Vec<(usize, usize)>,
}

/// One open delimiter on the parse stack.
struct Scope {
    delim: u8,
    /// Test-code flag for everything inside this scope.
    test: bool,
    /// True when this scope made `test` newly true (a test *root*).
    test_root: bool,
    /// Byte offset of the opening delimiter (for test span recording).
    open_byte: usize,
    /// Token index of the opening delimiter in `code`.
    open_k: usize,
    /// `Some(fn index)` when this brace is a fn body.
    open_fn: Option<usize>,
}

/// True for identifiers that are Rust keywords — excluded when deciding
/// whether an `ident(` sequence is a call, or whether `ident[` is an
/// index expression.
pub fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "async"
            | "await"
            | "box"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "Self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}

/// Lexes and parses `src`. Never panics; item recovery degrades
/// gracefully on malformed input (unclosed delimiters simply leave
/// items bodyless or spans open-ended).
pub fn parse_source(src: &str) -> ParsedFile {
    let code: Vec<Token> = lex(src).into_iter().filter(Token::is_code).collect();
    let mut fns: Vec<FnItem> = Vec::new();
    let mut test_spans: Vec<(usize, usize)> = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    // Attribute state: a `#[…]` group containing `test` (and not `not`)
    // marks the next item as test code.
    let mut pending_test_attr = false;
    // A `fn name` seen whose body `{` (or terminating `;`) is pending.
    let mut pending_fn: Option<usize> = None;

    let cur_test = |scopes: &[Scope]| scopes.last().is_some_and(|s| s.test);

    let mut k = 0usize;
    while k < code.len() {
        let tok = code[k];
        let text = tok.text(src);
        match tok.kind {
            TokenKind::Punct if text == "#" => {
                // Attribute: `#[…]` (outer) or `#![…]` (inner). Consume
                // the bracket group; only outer attributes mark items.
                let mut j = k + 1;
                let inner = code.get(j).is_some_and(|t| t.text(src) == "!");
                if inner {
                    j += 1;
                }
                if code.get(j).is_some_and(|t| t.text(src) == "[") {
                    let mut depth = 0usize;
                    let mut saw_test = false;
                    let mut saw_not = false;
                    while j < code.len() {
                        let t = code[j].text(src);
                        match t {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            "test" => saw_test = true,
                            "not" => saw_not = true,
                            _ => {}
                        }
                        j += 1;
                    }
                    if !inner && saw_test && !saw_not {
                        pending_test_attr = true;
                    }
                    k = j + 1;
                    continue;
                }
            }
            TokenKind::Ident if text == "fn" => {
                // An item fn has a name; `fn(`/`Fn(` pointer types don't.
                if let Some(name_tok) = code.get(k + 1) {
                    if name_tok.kind == TokenKind::Ident && !is_keyword(name_tok.text(src)) {
                        let is_test = cur_test(&scopes) || pending_test_attr;
                        pending_test_attr = false;
                        // Extend the signature back over visibility and
                        // qualifier tokens: `pub(crate) const unsafe
                        // extern "C" fn …`.
                        let mut sig_start = k;
                        while sig_start > 0 {
                            let prev = code[sig_start - 1];
                            let pt = prev.text(src);
                            let qualifier = matches!(
                                pt,
                                "pub"
                                    | "const"
                                    | "async"
                                    | "unsafe"
                                    | "extern"
                                    | "default"
                                    | "crate"
                                    | "super"
                                    | "self"
                                    | "in"
                                    | "("
                                    | ")"
                            ) || prev.kind == TokenKind::StrLit;
                            if !qualifier {
                                break;
                            }
                            sig_start -= 1;
                        }
                        fns.push(FnItem {
                            name: name_tok.text(src).trim_start_matches("r#").to_string(),
                            line: code[sig_start].line,
                            sig_start,
                            body: None,
                            is_test,
                            signature: String::new(),
                        });
                        pending_fn = Some(fns.len() - 1);
                    }
                }
            }
            TokenKind::Punct if text == "{" || text == "(" || text == "[" => {
                let delim = text.as_bytes()[0];
                let in_sig_group = matches!(scopes.last(), Some(s) if s.delim != b'{');
                let mut open_fn = None;
                let mut test = cur_test(&scopes);
                let mut test_root = false;
                if delim == b'{' && !in_sig_group {
                    if let Some(idx) = pending_fn.take() {
                        // This brace opens the pending fn's body.
                        open_fn = Some(idx);
                        let sig_span = src
                            .get(code[fns[idx].sig_start].start..tok.start)
                            .unwrap_or("");
                        fns[idx].signature =
                            sig_span.lines().next().unwrap_or("").trim().to_string();
                        if fns[idx].is_test && !test {
                            test = true;
                            test_root = true;
                        }
                    } else if pending_test_attr && !test {
                        // `#[cfg(test)] mod tests {`, test-only impl, …
                        test = true;
                        test_root = true;
                    }
                    pending_test_attr = false;
                }
                scopes.push(Scope {
                    delim,
                    test,
                    test_root,
                    open_byte: tok.start,
                    open_k: k,
                    open_fn,
                });
            }
            TokenKind::Punct if text == "}" || text == ")" || text == "]" => {
                let want = match text.as_bytes()[0] {
                    b'}' => b'{',
                    b')' => b'(',
                    _ => b'[',
                };
                // Pop to the matching opener; tolerate mismatches from
                // malformed input by popping at most the innermost.
                if let Some(pos) = scopes.iter().rposition(|s| s.delim == want) {
                    let closed: Vec<Scope> = scopes.drain(pos..).collect();
                    for s in closed {
                        if let Some(idx) = s.open_fn {
                            fns[idx].body = Some((s.open_k, k));
                        }
                        if s.test_root {
                            test_spans.push((s.open_byte, tok.end));
                        }
                    }
                }
            }
            TokenKind::Punct if text == ";" => {
                let in_sig_group = matches!(scopes.last(), Some(s) if s.delim != b'{');
                if !in_sig_group {
                    // Bodyless fn declaration, or an attribute consumed
                    // by a non-item statement (`#[cfg(test)] use …;`).
                    if let Some(idx) = pending_fn.take() {
                        let sig_span = src
                            .get(code[fns[idx].sig_start].start..tok.start)
                            .unwrap_or("");
                        fns[idx].signature =
                            sig_span.lines().next().unwrap_or("").trim().to_string();
                    }
                    pending_test_attr = false;
                }
            }
            _ => {}
        }
        k += 1;
    }
    // Unterminated scopes at EOF: close any open test roots and fn
    // bodies at the end of input so spans stay usable.
    for s in scopes.drain(..).rev() {
        if let Some(idx) = s.open_fn {
            fns[idx].body = Some((s.open_k, code.len().saturating_sub(1).max(s.open_k)));
        }
        if s.test_root {
            test_spans.push((s.open_byte, src.len()));
        }
    }
    ParsedFile {
        code,
        fns,
        test_spans,
    }
}

impl ParsedFile {
    /// Indices (into [`ParsedFile::fns`]) of fns whose body lies
    /// strictly inside `outer`'s body — used to attribute nested fns'
    /// tokens to the nested fn, not the parent.
    pub fn nested_fns(&self, outer: usize) -> Vec<usize> {
        let Some((o0, o1)) = self.fns[outer].body else {
            return Vec::new();
        };
        self.fns
            .iter()
            .enumerate()
            .filter(|(i, f)| *i != outer && f.body.is_some_and(|(b0, b1)| b0 > o0 && b1 < o1))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(p: &ParsedFile) -> Vec<(&str, bool, bool)> {
        p.fns
            .iter()
            .map(|f| (f.name.as_str(), f.is_test, f.body.is_some()))
            .collect()
    }

    #[test]
    fn recovers_fn_items_and_bodies() {
        let src = "pub fn a(x: [u8; 4]) -> u8 { x[0] }\nfn b();\nimpl T for S {\n    fn c(&self) { if true { } }\n}";
        let p = parse_source(src);
        assert_eq!(
            names(&p),
            [("a", false, true), ("b", false, false), ("c", false, true)]
        );
        assert_eq!(p.fns[0].signature, "pub fn a(x: [u8; 4]) -> u8");
        // `;` inside `[u8; 4]` did not end item `a` early.
        let (b0, b1) = p.fns[0].body.expect("a has a body");
        assert!(b1 > b0);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn apply(f: fn(u8) -> u8, g: impl Fn() -> u8) -> u8 { f(g()) }";
        let p = parse_source(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "apply");
    }

    #[test]
    fn cfg_test_marks_items_and_spans() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    use super::*;\n    #[test]\n    fn t() { lib(); }\n}\nfn lib2() {}";
        let p = parse_source(src);
        assert_eq!(
            names(&p),
            [
                ("lib", false, true),
                ("t", true, true),
                ("lib2", false, true)
            ]
        );
        assert_eq!(p.test_spans.len(), 1, "one test root: the mod");
        let (s, e) = p.test_spans[0];
        let span = &src[s..e];
        assert!(span.starts_with('{') && span.ends_with('}'), "{span:?}");
        assert!(span.contains("fn t"));
    }

    #[test]
    fn test_attr_without_cfg_mod_marks_fn() {
        let src = "#[test]\nfn standalone() { assert!(true); }\nfn lib() {}";
        let p = parse_source(src);
        assert_eq!(
            names(&p),
            [("standalone", true, true), ("lib", false, true)]
        );
        assert_eq!(p.test_spans.len(), 1);
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))]\nfn shipping() {}\nfn lib() {}";
        let p = parse_source(src);
        assert_eq!(names(&p), [("shipping", false, true), ("lib", false, true)]);
        assert!(p.test_spans.is_empty());
    }

    #[test]
    fn nested_fns_are_attributed() {
        let src = "fn outer() {\n    fn inner(v: &[u8]) -> u8 { v[1] }\n    inner(&[2])\n}";
        let p = parse_source(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.nested_fns(0), vec![1]);
        assert!(p.nested_fns(1).is_empty());
    }

    #[test]
    fn match_arms_and_struct_literals_do_not_confuse_bodies() {
        let src = "fn f(x: u8) -> P { match x { 0 => P { a: 1 }, _ => P { a: 2 } } }\nfn g() {}";
        let p = parse_source(src);
        assert_eq!(names(&p), [("f", false, true), ("g", false, true)]);
        let (b0, b1) = p.fns[0].body.expect("f has a body");
        // The body spans the whole match, not just the first brace pair.
        assert!(p.code[b1].start > p.code[b0].start + 10);
    }

    #[test]
    fn raw_identifier_fns_are_named_without_prefix() {
        let src = "fn r#loop() {}";
        let p = parse_source(src);
        assert_eq!(p.fns[0].name, "loop");
    }

    #[test]
    fn malformed_input_never_panics() {
        for src in [
            "fn f( {",
            "}}}",
            "fn",
            "#[cfg(test)]",
            "fn f() { let x = \"unterminated",
            "#[cfg(test)] mod t { fn u() {",
        ] {
            let _ = parse_source(src);
        }
    }
}
