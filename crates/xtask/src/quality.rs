//! Schema validation for `sachi.quality.v1` documents
//! (`BENCH_quality.json`, written by `disc_quality`).
//!
//! Structural checks (schema tag, numeric header fields, per-row field
//! presence and types) plus the coverage gate the PR acceptance
//! criteria name: rows must exist for all three extension families ×
//! all four stationarity designs.

use sachi_obs::json::{self, JsonValue};

/// The families `disc_quality` must cover (the `family` row field).
pub const REQUIRED_FAMILIES: [&str; 3] = ["3-sat", "graph coloring", "job scheduling"];

/// The design keys `disc_quality` must cover (the `design` row field).
pub const REQUIRED_DESIGNS: [&str; 4] = ["n1a", "n1b", "n2", "n3"];

/// Id suffix of the replica-exchange twin `disc_quality` records for
/// every baseline cell (mirrors `sachi_bench::quality::TEMPERED_SUFFIX`).
pub const TEMPERED_SUFFIX: &str = "+pt";

fn str_field<'a>(row: &'a JsonValue, key: &str, index: usize) -> Result<&'a str, String> {
    row.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("rows[{index}]: missing string field '{key}'"))
}

fn num_field(row: &JsonValue, key: &str, index: usize) -> Result<f64, String> {
    row.get(key)
        .and_then(JsonValue::as_num)
        .ok_or_else(|| format!("rows[{index}]: missing numeric field '{key}'"))
}

/// Validates a `sachi.quality.v1` document.
///
/// # Errors
///
/// Returns a message naming the first violation: bad JSON, wrong
/// schema tag, missing/ill-typed fields, accuracy outside `[0, 1]`,
/// an unknown design key, or a missing (family × design) cell.
pub fn validate_quality(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema tag")?;
    if schema != "sachi.quality.v1" {
        return Err(format!(
            "unexpected schema '{schema}' (want sachi.quality.v1)"
        ));
    }
    doc.get("master_seed")
        .and_then(JsonValue::as_num)
        .ok_or("missing numeric 'master_seed'")?;
    let restarts = doc
        .get("restarts")
        .and_then(JsonValue::as_num)
        .ok_or("missing numeric 'restarts'")?;
    if restarts < 1.0 {
        return Err(format!("restarts must be >= 1, got {restarts}"));
    }
    let rows = doc
        .get("rows")
        .and_then(JsonValue::as_arr)
        .ok_or("missing rows array")?;
    if rows.is_empty() {
        return Err("rows array is empty".to_string());
    }

    let mut covered: Vec<(String, String)> = Vec::new();
    let mut ids: Vec<(String, String, String)> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let id = str_field(row, "id", i)?;
        if id.is_empty() {
            return Err(format!("rows[{i}]: empty id"));
        }
        let family = str_field(row, "family", i)?;
        let design = str_field(row, "design", i)?;
        if !REQUIRED_DESIGNS.contains(&design) {
            return Err(format!("rows[{i}]: unknown design '{design}'"));
        }
        for key in ["spins", "best_energy", "total_cycles", "domain_metric"] {
            num_field(row, key, i)?;
        }
        let accuracy = num_field(row, "accuracy", i)?;
        if !(0.0..=1.0).contains(&accuracy) {
            return Err(format!("rows[{i}]: accuracy {accuracy} outside [0, 1]"));
        }
        let unit = str_field(row, "domain_unit", i)?;
        if unit.is_empty() {
            return Err(format!("rows[{i}]: empty domain_unit"));
        }
        match row.get("smoke") {
            Some(JsonValue::Bool(_)) => {}
            _ => return Err(format!("rows[{i}]: missing boolean field 'smoke'")),
        }
        covered.push((family.to_string(), design.to_string()));
        ids.push((id.to_string(), family.to_string(), design.to_string()));
    }

    // Tempered-twin pairing: disc_quality writes a replica-exchange
    // twin (`<id>+pt`, same family/design) for every baseline cell and
    // gates it on dominance, so a document missing either side of a
    // pair is stale or hand-thinned.
    for (id, family, design) in &ids {
        let (twin, missing) = match id.strip_suffix(TEMPERED_SUFFIX) {
            Some(base) => (base.to_string(), "baseline twin"),
            None => (format!("{id}{TEMPERED_SUFFIX}"), "tempered twin"),
        };
        if !ids
            .iter()
            .any(|(i, f, d)| *i == twin && f == family && d == design)
        {
            return Err(format!("row '{id}' ({design}) has no {missing} '{twin}'"));
        }
    }

    for family in REQUIRED_FAMILIES {
        for design in REQUIRED_DESIGNS {
            if !covered.iter().any(|(f, d)| f == family && d == design) {
                return Err(format!(
                    "no row covers family '{family}' on design '{design}'"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_doc() -> String {
        let mut rows = Vec::new();
        for family in REQUIRED_FAMILIES {
            for design in REQUIRED_DESIGNS {
                for suffix in ["", TEMPERED_SUFFIX] {
                    rows.push(format!(
                        "{{\"id\": \"{f}_{design}{suffix}\", \"family\": \"{family}\", \
                         \"design\": \"{design}\", \
                         \"spins\": 100, \"best_energy\": -5, \"total_cycles\": 999, \
                         \"accuracy\": 0.95, \"domain_metric\": 7, \"domain_unit\": \"u\", \
                         \"smoke\": false}}",
                        f = family.replace(' ', "_"),
                    ));
                }
            }
        }
        format!(
            "{{\"schema\": \"sachi.quality.v1\", \"master_seed\": 1, \"restarts\": 4, \
             \"rows\": [{}]}}",
            rows.join(", ")
        )
    }

    #[test]
    fn full_document_validates() {
        validate_quality(&full_doc()).expect("full coverage validates");
    }

    #[test]
    fn wrong_schema_or_structure_rejected() {
        assert!(validate_quality("not json").is_err());
        assert!(validate_quality("{\"schema\": \"sachi.metrics.v1\"}").is_err());
        let empty =
            "{\"schema\": \"sachi.quality.v1\", \"master_seed\": 1, \"restarts\": 4, \"rows\": []}";
        assert!(validate_quality(empty).is_err());
    }

    #[test]
    fn missing_family_design_cell_rejected() {
        // Drop every n3 row: coverage check must name the hole.
        let doc = full_doc();
        let thinned = doc.replace("\"design\": \"n3\"", "\"design\": \"n2\"");
        let err = validate_quality(&thinned).expect_err("missing n3 coverage");
        assert!(err.contains("n3"), "{err}");
    }

    #[test]
    fn missing_tempered_twin_rejected() {
        // Strip one tempered row's suffix: its baseline twin now has
        // two copies and the orphaned pair must be named.
        let doc = full_doc();
        let thinned = doc.replacen("\"id\": \"3-sat_n1a+pt\"", "\"id\": \"3-sat_n1a\"", 1);
        let err = validate_quality(&thinned).expect_err("missing tempered twin");
        assert!(err.contains("3-sat_n1a") && err.contains("+pt"), "{err}");
    }

    #[test]
    fn field_violations_rejected() {
        let doc = full_doc();
        for (from, to, what) in [
            ("\"accuracy\": 0.95", "\"accuracy\": 1.5", "accuracy range"),
            ("\"design\": \"n1a\"", "\"design\": \"brim\"", "design key"),
            ("\"smoke\": false", "\"smoke\": 0", "smoke type"),
            ("\"total_cycles\": 999, ", "", "missing cycles"),
        ] {
            let mutated = doc.replacen(from, to, 1);
            assert!(validate_quality(&mutated).is_err(), "{what} must fail");
        }
    }
}
