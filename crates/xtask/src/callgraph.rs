//! Conservative intra-workspace call graph over parsed files.
//!
//! Call sites are recovered from the token stream of each fn body:
//! `name(…)` free/associated calls, `.name(…)` method calls, and
//! `name::<T>(…)` turbofish calls. Resolution is **by bare name**: a
//! call to `new` adds an edge to *every* workspace fn named `new`.
//! That over-approximates reachability (sound for a panic lint — a
//! function is never wrongly considered unreachable because of a
//! merged name) at the cost of precision.
//!
//! Known false-**negative** edges, documented in DESIGN.md: calls made
//! through trait objects or generic bounds resolve by method name only
//! (covered), but function *values* — closures, `fn` pointers passed
//! as arguments (`map(solve)`) — produce no edge, and neither does
//! operator sugar (`a[i]` never links to an `Index` impl; the index
//! expression itself is what the panic lint flags).

use crate::lints;
use crate::parser::{is_keyword, parse_source, FnItem, ParsedFile};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::Path;

/// One parsed workspace file.
pub struct WsFile {
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// File contents.
    pub src: String,
    /// Token stream and recovered items.
    pub parsed: ParsedFile,
}

/// A set of parsed files — the analysis domain.
pub struct Workspace {
    /// Files in deterministic (sorted-path) order.
    pub files: Vec<WsFile>,
}

/// Identifies one fn: (index into [`Workspace::files`], index into that
/// file's [`ParsedFile::fns`]).
pub type FnKey = (usize, usize);

impl Workspace {
    /// Loads and parses every `.rs` file under `root/<scope>` for each
    /// scope, in deterministic order.
    pub fn load(root: &Path, scopes: &[&str]) -> Result<Workspace, String> {
        let mut files = Vec::new();
        for scope in scopes {
            for file in lints::rust_files(&root.join(scope))? {
                let src = lints::read(&file)?;
                let parsed = parse_source(&src);
                files.push(WsFile {
                    path: lints::rel(root, &file),
                    src,
                    parsed,
                });
            }
        }
        Ok(Workspace { files })
    }

    /// The fn item for a key.
    pub fn item(&self, key: FnKey) -> &FnItem {
        &self.files[key.0].parsed.fns[key.1]
    }
}

/// The call graph: per fn, the set of bare names it calls.
pub struct CallGraph {
    /// `calls[file][fn]` = sorted, deduplicated called names.
    pub calls: Vec<Vec<Vec<String>>>,
    /// Resolution map: bare name → every non-test fn with that name.
    pub by_name: BTreeMap<String, Vec<FnKey>>,
}

/// Extracts the bare names called from `fns[idx]`'s body, skipping
/// token spans belonging to nested fn items.
fn called_names(file: &WsFile, idx: usize) -> Vec<String> {
    let parsed = &file.parsed;
    let Some((b0, b1)) = parsed.fns[idx].body else {
        return Vec::new();
    };
    // Skip nested fn items entirely — from their `fn` keyword through
    // their closing brace — so a nested definition is neither a call
    // edge nor a source of misattributed calls.
    let nested: Vec<(usize, usize)> = parsed
        .nested_fns(idx)
        .into_iter()
        .filter_map(|i| {
            parsed.fns[i]
                .body
                .map(|(_, b1)| (parsed.fns[i].sig_start, b1))
        })
        .collect();
    let code = &parsed.code;
    let src = file.src.as_str();
    let mut names = BTreeSet::new();
    let mut k = b0 + 1;
    while k < b1 {
        if let Some(&(n0, n1)) = nested.iter().find(|(n0, n1)| *n0 <= k && k <= *n1) {
            k = n1.max(n0) + 1;
            continue;
        }
        let tok = code[k];
        if tok.kind == crate::lexer::TokenKind::Ident {
            let text = tok.text(src);
            let after_fn_kw = k > 0 && code[k - 1].text(src) == "fn";
            if !is_keyword(text) && !after_fn_kw {
                // Direct call: `name(`.
                if code.get(k + 1).is_some_and(|t| t.text(src) == "(") {
                    names.insert(text.trim_start_matches("r#").to_string());
                }
                // Turbofish call: `name::<…>(`.
                else if code.get(k + 1).is_some_and(|t| t.text(src) == ":")
                    && code.get(k + 2).is_some_and(|t| t.text(src) == ":")
                    && code.get(k + 3).is_some_and(|t| t.text(src) == "<")
                {
                    let mut depth = 0i32;
                    let mut j = k + 3;
                    while j < b1 && j < k + 64 {
                        match code[j].text(src) {
                            "<" => depth += 1,
                            ">" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            ";" | "{" => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    if depth == 0 && code.get(j + 1).is_some_and(|t| t.text(src) == "(") {
                        names.insert(text.trim_start_matches("r#").to_string());
                    }
                }
            }
        }
        k += 1;
    }
    names.into_iter().collect()
}

/// Builds the call graph for a workspace.
pub fn build(ws: &Workspace) -> CallGraph {
    let mut by_name: BTreeMap<String, Vec<FnKey>> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        for (gi, f) in file.parsed.fns.iter().enumerate() {
            if !f.is_test {
                by_name.entry(f.name.clone()).or_default().push((fi, gi));
            }
        }
    }
    let calls = ws
        .files
        .iter()
        .map(|file| {
            (0..file.parsed.fns.len())
                .map(|gi| called_names(file, gi))
                .collect()
        })
        .collect();
    CallGraph { calls, by_name }
}

/// Reachability result: every reachable fn mapped to the call chain
/// that first reached it (entry-point name first, the fn's own name
/// last).
pub type Reachable = BTreeMap<FnKey, Vec<String>>;

/// BFS over name-resolved call edges from every fn accepted by
/// `entry`. Test fns are neither entry points nor resolution targets.
pub fn reachable(
    ws: &Workspace,
    cg: &CallGraph,
    entry: impl Fn(&WsFile, &FnItem) -> bool,
) -> Reachable {
    let mut reached: Reachable = BTreeMap::new();
    let mut queue: VecDeque<FnKey> = VecDeque::new();
    for (fi, file) in ws.files.iter().enumerate() {
        for (gi, f) in file.parsed.fns.iter().enumerate() {
            if !f.is_test && entry(file, f) {
                reached.insert((fi, gi), vec![f.name.clone()]);
                queue.push_back((fi, gi));
            }
        }
    }
    while let Some(key) = queue.pop_front() {
        let chain = reached.get(&key).cloned().unwrap_or_default();
        for name in &cg.calls[key.0][key.1] {
            let Some(targets) = cg.by_name.get(name) else {
                continue;
            };
            for &t in targets {
                if let std::collections::btree_map::Entry::Vacant(e) = reached.entry(t) {
                    let mut c = chain.clone();
                    c.push(ws.item(t).name.clone());
                    e.insert(c);
                    queue.push_back(t);
                }
            }
        }
    }
    reached
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_source;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: files
                .iter()
                .map(|(path, src)| WsFile {
                    path: path.to_string(),
                    src: src.to_string(),
                    parsed: parse_source(src),
                })
                .collect(),
        }
    }

    #[test]
    fn direct_method_and_turbofish_calls_are_edges() {
        let ws = ws_of(&[(
            "a.rs",
            "fn solve(x: &S) { helper(); x.step(); parse::<u64>(\"1\"); }\nfn helper() {}\nfn step(&self) {}\nfn parse(s: &str) -> u64 { 0 }",
        )]);
        let cg = build(&ws);
        assert_eq!(cg.calls[0][0], ["helper", "parse", "step"]);
    }

    #[test]
    fn macros_are_not_call_edges_but_their_args_are() {
        let ws = ws_of(&[(
            "a.rs",
            "fn solve() { assert_eq!(helper(), 1); vec![other()]; }\nfn helper() -> u8 { 1 }\nfn other() -> u8 { 2 }",
        )]);
        let cg = build(&ws);
        assert_eq!(cg.calls[0][0], ["helper", "other"]);
    }

    #[test]
    fn reachability_crosses_files_and_records_chains() {
        let ws = ws_of(&[
            ("a.rs", "pub fn solve() { middle(); }"),
            (
                "b.rs",
                "pub fn middle() { leaf(); }\npub fn leaf() {}\npub fn unrelated() {}",
            ),
        ]);
        let cg = build(&ws);
        let reach = reachable(&ws, &cg, |_, f| f.name.starts_with("solve"));
        let names: Vec<&str> = reach.keys().map(|&k| ws.item(k).name.as_str()).collect();
        assert!(names.contains(&"solve"));
        assert!(names.contains(&"middle"));
        assert!(names.contains(&"leaf"));
        assert!(!names.contains(&"unrelated"));
        let leaf_key = *reach
            .keys()
            .find(|&&k| ws.item(k).name == "leaf")
            .expect("leaf reached");
        assert_eq!(reach[&leaf_key], ["solve", "middle", "leaf"]);
    }

    #[test]
    fn test_fns_are_neither_entries_nor_targets() {
        let ws = ws_of(&[(
            "a.rs",
            "#[cfg(test)]\nmod tests {\n    fn solve_fake() { buried(); }\n}\npub fn buried() {}\npub fn solve_real() {}",
        )]);
        let cg = build(&ws);
        let reach = reachable(&ws, &cg, |_, f| f.name.starts_with("solve"));
        let names: Vec<&str> = reach.keys().map(|&k| ws.item(k).name.as_str()).collect();
        assert_eq!(names, ["solve_real"]);
    }

    #[test]
    fn nested_fn_calls_belong_to_the_nested_fn() {
        let ws = ws_of(&[(
            "a.rs",
            "pub fn outer() {\n    fn inner() { leaf(); }\n    other();\n}\npub fn leaf() {}\npub fn other() {}",
        )]);
        let cg = build(&ws);
        // outer calls other (and nothing from inner's body).
        assert_eq!(cg.calls[0][0], ["other"]);
        assert_eq!(cg.calls[0][1], ["leaf"]);
    }
}
