//! Parser for `lint.allow.toml`, the audited-exception list.
//!
//! The file is a TOML *subset* parsed by hand (the workspace builds
//! offline, so no `toml` crate): `#` comments, blank lines, `[[allow]]`
//! section headers, and `key = "string"` pairs. Anything else is a hard
//! error — an allowlist that cannot be audited at a glance defeats its
//! purpose.
//!
//! Each entry must carry four keys:
//!
//! ```toml
//! [[allow]]
//! lint = "unit-safety"
//! path = "crates/mem/src/units.rs"
//! contains = "self.0 as f64"
//! reason = "one-line justification"
//! ```
//!
//! A finding is suppressed when an entry's `lint` and `path` match
//! exactly and the finding's source line contains `contains`.

use crate::lints::Finding;
use std::path::Path;

/// One audited exception.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Lint name the exception applies to.
    pub lint: String,
    /// Repo-relative path (forward slashes) of the file.
    pub path: String,
    /// Substring of the offending source line.
    pub contains: String,
    /// One-line human justification. Must be non-empty.
    pub reason: String,
    /// Line in `lint.allow.toml` where the entry starts (for diagnostics).
    pub line: usize,
    /// Line of the entry's last `key = "value"` pair (for pruning).
    pub end_line: usize,
}

/// Parses the allowlist. Returns entries or a description of the first
/// syntax problem.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    // (lint, path, contains, reason, header line, last key line) for the
    // section being built.
    type PartialEntry = (
        Option<String>,
        Option<String>,
        Option<String>,
        Option<String>,
        usize,
        usize,
    );
    let mut current: Option<PartialEntry> = None;

    fn finish(current: Option<PartialEntry>, entries: &mut Vec<AllowEntry>) -> Result<(), String> {
        let Some((lint, path, contains, reason, line, end_line)) = current else {
            return Ok(());
        };
        let missing = |k: &str| format!("entry at line {line}: missing key `{k}`");
        let entry = AllowEntry {
            lint: lint.ok_or_else(|| missing("lint"))?,
            path: path.ok_or_else(|| missing("path"))?,
            contains: contains.ok_or_else(|| missing("contains"))?,
            reason: reason.ok_or_else(|| missing("reason"))?,
            line,
            end_line,
        };
        if entry.reason.trim().is_empty() {
            return Err(format!("entry at line {line}: `reason` must not be empty"));
        }
        if entry.contains.is_empty() {
            return Err(format!(
                "entry at line {line}: `contains` must not be empty"
            ));
        }
        entries.push(entry);
        Ok(())
    }

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finish(current.take(), &mut entries)?;
            current = Some((None, None, None, None, lineno, lineno));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "line {lineno}: expected `key = \"value\"`, got: {line}"
            ));
        };
        let key = key.trim();
        let value = value.trim();
        if !(value.starts_with('"') && value.ends_with('"') && value.len() >= 2) {
            return Err(format!(
                "line {lineno}: value for `{key}` must be a double-quoted string"
            ));
        }
        let value = value[1..value.len() - 1].to_string();
        if value.contains('"') || value.contains('\\') {
            return Err(format!(
                "line {lineno}: escapes are not supported in this TOML subset; \
                 pick a `contains` substring without quotes or backslashes"
            ));
        }
        let Some(slot) = current.as_mut() else {
            return Err(format!(
                "line {lineno}: `{key}` outside any [[allow]] section"
            ));
        };
        let field = match key {
            "lint" => &mut slot.0,
            "path" => &mut slot.1,
            "contains" => &mut slot.2,
            "reason" => &mut slot.3,
            other => return Err(format!("line {lineno}: unknown key `{other}`")),
        };
        if field.is_some() {
            return Err(format!("line {lineno}: duplicate key `{key}`"));
        }
        *field = Some(value);
        slot.5 = lineno;
    }
    finish(current, &mut entries)?;
    Ok(entries)
}

/// Loads and parses `root/lint.allow.toml`; a missing file is an empty
/// allowlist.
pub fn load(root: &Path) -> Result<Vec<AllowEntry>, String> {
    let path = root.join("lint.allow.toml");
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("lint.allow.toml: {e}"))
}

/// True when `entry` suppresses `finding`.
fn allows(entry: &AllowEntry, finding: &Finding) -> bool {
    entry.lint == finding.lint
        && entry.path == finding.path
        && finding.raw.contains(&entry.contains)
}

/// Applies the allowlist to `findings` in place: matched findings are
/// removed, and every *unused* entry whose `lint` belongs to one of the
/// `families` being run is reported as a stale-entry finding (with the
/// nearest surviving line, so the fix is obvious). Returns the indices
/// (into `entries`) of the stale entries — `lint --fix-allowlist`
/// prunes exactly those.
pub fn apply(
    root: &Path,
    entries: &[AllowEntry],
    families: &[&str],
    findings: &mut Vec<Finding>,
) -> Vec<usize> {
    let mut used = vec![false; entries.len()];
    findings.retain(|f| {
        let hit = entries.iter().position(|e| allows(e, f));
        if let Some(i) = hit {
            used[i] = true;
        }
        hit.is_none()
    });
    let mut stale = Vec::new();
    for (i, entry) in entries.iter().enumerate() {
        if used[i] || !families.contains(&entry.lint.as_str()) {
            continue;
        }
        stale.push(i);
        let nearest = std::fs::read_to_string(root.join(&entry.path))
            .ok()
            .and_then(|text| {
                text.lines()
                    .position(|l| l.contains(&entry.contains))
                    .map(|idx| idx + 1)
            });
        let hint = match nearest {
            Some(line) => format!(
                "the pattern still matches {}:{line}, but no `{}` finding fires there — \
                 the code may have moved out of the lint's scope, or the finding was fixed \
                 for a different reason",
                entry.path, entry.lint
            ),
            None => format!(
                "no line in `{}` contains the pattern any more — the excused code is gone",
                entry.path
            ),
        };
        findings.push(Finding {
            lint: "allowlist",
            path: "lint.allow.toml".into(),
            line: entry.line,
            message: format!(
                "stale `{}` entry (contains = \"{}\"): {hint}; delete it or fix the pattern \
                 (`cargo run -p xtask -- lint --fix-allowlist` prunes dead entries)",
                entry.lint, entry.contains
            ),
            raw: String::new(),
        });
    }
    stale
}

/// Returns `text` with the given entries (by index into the parse
/// order) removed — the `[[allow]]` header through the last key line —
/// and runs of multiple blank lines collapsed. Comments are preserved.
pub fn remove_entries(text: &str, entries: &[AllowEntry], stale: &[usize]) -> String {
    let doomed: Vec<(usize, usize)> = stale
        .iter()
        .filter_map(|&i| entries.get(i).map(|e| (e.line, e.end_line)))
        .collect();
    let mut out: Vec<&str> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        if doomed.iter().any(|&(s, e)| lineno >= s && lineno <= e) {
            continue;
        }
        out.push(raw);
    }
    let mut collapsed = String::new();
    let mut prev_blank = false;
    for line in out {
        let blank = line.trim().is_empty();
        if blank && prev_blank {
            continue;
        }
        prev_blank = blank;
        collapsed.push_str(line);
        collapsed.push('\n');
    }
    collapsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_two_entries_with_comments() {
        let text = "# header\n\n[[allow]]\nlint = \"unit-safety\"\npath = \"a/b.rs\"\ncontains = \"x as f64\"\nreason = \"ratio\"\n\n[[allow]]\nlint = \"panic-freedom\"\npath = \"c.rs\"\ncontains = \".unwrap()\"\nreason = \"infallible\"\n";
        let entries = parse(text).expect("parses");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].lint, "unit-safety");
        assert_eq!(entries[0].line, 3);
        assert_eq!(entries[1].contains, ".unwrap()");
    }

    #[test]
    fn rejects_missing_reason() {
        let text = "[[allow]]\nlint = \"x\"\npath = \"p\"\ncontains = \"c\"\n";
        let err = parse(text).unwrap_err();
        assert!(err.contains("missing key `reason`"), "{err}");
    }

    #[test]
    fn rejects_empty_reason() {
        let text = "[[allow]]\nlint = \"x\"\npath = \"p\"\ncontains = \"c\"\nreason = \" \"\n";
        assert!(parse(text).unwrap_err().contains("must not be empty"));
    }

    #[test]
    fn rejects_unquoted_values_and_stray_keys() {
        assert!(parse("[[allow]]\nlint = bare\n").is_err());
        assert!(parse("lint = \"x\"\n").unwrap_err().contains("outside any"));
        assert!(parse("[[allow]]\nwat = \"x\"\n")
            .unwrap_err()
            .contains("unknown key"));
    }

    #[test]
    fn rejects_duplicate_keys() {
        let text = "[[allow]]\nlint = \"a\"\nlint = \"b\"\n";
        assert!(parse(text).unwrap_err().contains("duplicate key"));
    }
}
