//! A small, dependency-free Rust lexer with exact byte offsets.
//!
//! This is the foundation the static-analysis subsystem builds on: the
//! [`crate::parser`] recovers `fn` items from the token stream, the
//! [`crate::callgraph`] extracts call sites from it, and
//! [`crate::scan`] derives its comment/string-scrubbed line model from
//! it. It replaces the per-line state-machine heuristics the lints used
//! before: tokens carry `[start, end)` byte ranges into the original
//! source, so every downstream consumer agrees on exactly which bytes
//! are code and which are comments or literal contents.
//!
//! Design constraints:
//!
//! * **Never panics, on any input.** Unterminated literals and stray
//!   bytes become best-effort tokens that extend to end of input; the
//!   workspace proptest feeds the lexer random byte soup to hold this.
//! * **Byte-exact round-trip.** Tokens are ordered, non-overlapping,
//!   and every byte not covered by a token is ASCII/Unicode whitespace
//!   (asserted by [`coverage_gaps_are_whitespace`] and the golden
//!   tests).
//! * **Token-level fidelity where the lints need it**: nested block
//!   comments, raw strings with arbitrary `#` counts, byte/raw-byte
//!   strings, raw identifiers (`r#fn`), char literals vs lifetimes,
//!   numeric literals with underscores/suffixes/exponents, and float
//!   vs range ambiguity (`0..n` is three tokens, `0.5` is one).
//!
//! The lexer does **not** glue multi-character operators (`::`, `->`,
//! `>>`) into single tokens: each punctuation byte is its own token.
//! That sidesteps the `Vec<Vec<u64>>`-style `>>` ambiguity entirely —
//! consumers that care about two-character operators check adjacency
//! via byte offsets ([`Token::adjacent`]).

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`, `'_`).
    Lifetime,
    /// Character literal (`'x'`, `'\n'`) or byte char (`b'x'`).
    CharLit,
    /// String literal (`"…"`) or byte string (`b"…"`), escapes handled.
    StrLit,
    /// Raw string (`r"…"`, `r#"…"#`) or raw byte string (`br#"…"#`).
    RawStrLit,
    /// Numeric literal: integer, float, hex/octal/binary, with
    /// underscores, type suffixes, and exponents.
    NumLit,
    /// `// …` comment (including `///` and `//!` doc comments), newline
    /// exclusive.
    LineComment,
    /// `/* … */` comment, nesting handled; doc variants included.
    BlockComment,
    /// One punctuation byte (`{`, `+`, `:`; multi-byte operators are
    /// consecutive `Punct` tokens).
    Punct,
    /// Any byte sequence the lexer does not recognize (keeps the
    /// never-panic and full-coverage guarantees on malformed input).
    Unknown,
}

/// One token: a classified `[start, end)` byte range of the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the range holds.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    /// Returns an empty string rather than panicking if `src` is not
    /// that source.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// True when `next` begins exactly where `self` ends — used to
    /// recognize two-character operators (`::`, `->`) from consecutive
    /// `Punct` tokens.
    pub fn adjacent(&self, next: &Token) -> bool {
        self.end == next.start
    }

    /// True for token kinds that participate in code structure
    /// (everything except comments).
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// True for bytes that may start or continue an identifier. Non-ASCII
/// bytes are treated as identifier characters: Rust permits Unicode
/// identifiers and the lexer must group multi-byte sequences into one
/// token rather than splitting them mid-codepoint.
fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// True when `bytes[i..]` starts a raw-string opener: zero or more `#`
/// then `"`.
fn raw_string_opener(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'"' {
        Some(j - i) // number of hashes
    } else {
        None
    }
}

/// Scans a raw string starting at the opening quote, with `hashes`
/// closing hashes required. Returns the end offset (one past the final
/// hash), or the input length for unterminated literals.
fn scan_raw_string(bytes: &[u8], quote: usize, hashes: usize) -> usize {
    let mut i = quote + 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let have = bytes[i + 1..].iter().take_while(|&&b| b == b'#').count();
            if have >= hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    bytes.len()
}

/// Scans an ordinary (escaped) string starting at the opening quote.
/// Returns the offset one past the closing quote, or the input length.
fn scan_string(bytes: &[u8], quote: usize) -> usize {
    let mut i = quote + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if i + 1 < bytes.len() => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// Scans a numeric literal starting at a digit. Handles `0x…`/`0o…`/
/// `0b…`, underscores, type suffixes (`u64`, `f32` — consumed as the
/// trailing alphanumeric run), decimal points (`1.5` but not `1..5` or
/// `1.max(2)`), and signed exponents (`1.5e-3`).
fn scan_number(bytes: &[u8], start: usize) -> usize {
    let mut i = start;
    let radix_prefix = bytes[i] == b'0'
        && matches!(
            bytes.get(i + 1),
            Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B')
        );
    if radix_prefix {
        i += 2;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        return i;
    }
    let mut seen_dot = false;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphanumeric() || b == b'_' {
            // A signed exponent: `e`/`E` directly followed by `+`/`-`
            // and a digit continues the literal.
            if (b == b'e' || b == b'E')
                && matches!(bytes.get(i + 1), Some(b'+' | b'-'))
                && bytes.get(i + 2).is_some_and(u8::is_ascii_digit)
            {
                i += 3;
                continue;
            }
            i += 1;
        } else if b == b'.' && !seen_dot && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
            // `1.5` continues the literal; `1..5` and `1.max(2)` do not.
            seen_dot = true;
            i += 2;
        } else {
            break;
        }
    }
    i
}

/// Scans a `'`-introduced token: char literal, lifetime, or loop label.
/// Returns (kind, end offset).
fn scan_quote(src: &str, bytes: &[u8], start: usize) -> (TokenKind, usize) {
    // Escaped char literal: '\…' — the byte after the backslash is
    // payload (`'\''`, `'\\'`), then scan to the closing quote
    // (`\x41`, `\u{…}` digits are plain bytes).
    if bytes.get(start + 1) == Some(&b'\\') {
        let mut i = start + 3;
        while i < bytes.len() {
            match bytes[i] {
                b'\'' => return (TokenKind::CharLit, i + 1),
                // Malformed: never swallow past end of line.
                b'\n' => return (TokenKind::CharLit, i),
                _ => i += 1,
            }
        }
        return (TokenKind::CharLit, bytes.len());
    }
    // Unescaped char literal: 'X' where X is one codepoint. Decode via
    // char boundaries so multi-byte codepoints stay intact.
    if let Some(c) = src.get(start + 1..).and_then(|s| s.chars().next()) {
        let after = start + 1 + c.len_utf8();
        if c != '\'' && bytes.get(after) == Some(&b'\'') {
            return (TokenKind::CharLit, after + 1);
        }
    }
    // Lifetime or label: consume identifier bytes after the quote.
    let mut i = start + 1;
    while i < bytes.len() && is_ident_byte(bytes[i]) {
        i += 1;
    }
    if i == start + 1 {
        // Lone quote — malformed input; classify so coverage holds.
        return (TokenKind::Unknown, start + 1);
    }
    (TokenKind::Lifetime, i)
}

/// Lexes `src` into a complete, ordered, non-overlapping token stream.
/// Whitespace is the only uncovered content. Never panics.
pub fn lex(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::with_capacity(src.len() / 4);
    let mut line: u32 = 1;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let start_line = line;
        let kind = match b {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                TokenKind::LineComment
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comments nest in Rust.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i..].starts_with(b"/*") {
                        depth += 1;
                        i += 2;
                    } else if bytes[i..].starts_with(b"*/") {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                TokenKind::BlockComment
            }
            b'r' if raw_string_opener(bytes, i + 1).is_some() => {
                let hashes = raw_string_opener(bytes, i + 1)
                    .expect("guard above checked raw_string_opener is Some");
                i = scan_raw_string(bytes, i + 1 + hashes, hashes);
                TokenKind::RawStrLit
            }
            b'b' if bytes.get(i + 1) == Some(&b'r')
                && raw_string_opener(bytes, i + 2).is_some() =>
            {
                let hashes = raw_string_opener(bytes, i + 2)
                    .expect("guard above checked raw_string_opener is Some");
                i = scan_raw_string(bytes, i + 2 + hashes, hashes);
                TokenKind::RawStrLit
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                i = scan_string(bytes, i + 1);
                TokenKind::StrLit
            }
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                let (_, end) = scan_quote(src, bytes, i + 1);
                i = end;
                TokenKind::CharLit
            }
            b'r' if bytes.get(i + 1) == Some(&b'#')
                && bytes.get(i + 2).is_some_and(|&c| is_ident_byte(c)) =>
            {
                // Raw identifier: r#type, r#fn.
                i += 3;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                TokenKind::Ident
            }
            b'"' => {
                i = scan_string(bytes, i);
                TokenKind::StrLit
            }
            b'\'' => {
                let (kind, end) = scan_quote(src, bytes, i);
                i = end;
                kind
            }
            b if b.is_ascii_digit() => {
                i = scan_number(bytes, i);
                TokenKind::NumLit
            }
            b if is_ident_byte(b) => {
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                TokenKind::Ident
            }
            b if b.is_ascii_punctuation() => {
                i += 1;
                TokenKind::Punct
            }
            _ => {
                // Control bytes and other oddities: one-byte Unknown.
                i += 1;
                TokenKind::Unknown
            }
        };
        // Multi-line tokens advanced `line` already only for block
        // comments; strings may span lines too — recount their newlines.
        if !matches!(kind, TokenKind::BlockComment) {
            line += bytes[start..i].iter().filter(|&&b| b == b'\n').count() as u32;
        }
        tokens.push(Token {
            kind,
            start,
            end: i,
            line: start_line,
        });
    }
    tokens
}

/// Debug/validation helper: returns every `[start, end)` gap between
/// consecutive tokens (and before/after the stream) that contains a
/// non-whitespace byte. Empty on well-lexed input — the round-trip
/// tests assert exactly that.
#[cfg(test)]
pub fn coverage_gaps_are_whitespace(src: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let bytes = src.as_bytes();
    let mut bad = Vec::new();
    let mut prev_end = 0usize;
    for t in tokens {
        if t.start < prev_end || t.end < t.start || t.end > bytes.len() {
            bad.push((t.start, t.end));
            continue;
        }
        if bytes[prev_end..t.start]
            .iter()
            .any(|b| !b.is_ascii_whitespace())
        {
            bad.push((prev_end, t.start));
        }
        prev_end = t.end;
    }
    if bytes[prev_end..].iter().any(|b| !b.is_ascii_whitespace()) {
        bad.push((prev_end, bytes.len()));
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds_and_texts(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn assert_round_trip(src: &str) {
        let tokens = lex(src);
        let bad = coverage_gaps_are_whitespace(src, &tokens);
        assert!(bad.is_empty(), "uncovered bytes {bad:?} in {src:?}");
        // Tokens are ordered and non-overlapping.
        for pair in tokens.windows(2) {
            assert!(pair[0].end <= pair[1].start, "{pair:?} overlap in {src:?}");
        }
    }

    #[test]
    fn golden_raw_strings() {
        let src = r####"let s = r#"panic!("x")"#; let t = r"y"; let u = br##"z"##;"####;
        let toks = kinds_and_texts(src);
        let raws: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::RawStrLit)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(raws.len(), 3, "{toks:?}");
        assert_eq!(raws[0], r###"r#"panic!("x")"#"###);
        assert_eq!(raws[1], r#"r"y""#);
        assert_eq!(raws[2], r###"br##"z"##"###);
        assert_round_trip(src);
    }

    #[test]
    fn golden_nested_generics_shift_ambiguity() {
        // `>>` closing nested generics lexes as two `>` puncts; a real
        // shift expression lexes identically — consumers decide by
        // context, the lexer never mis-groups surrounding tokens.
        let src = "let v: Vec<Vec<u64>> = x >> 2;";
        let toks = kinds_and_texts(src);
        let gt = toks.iter().filter(|(_, t)| t == ">").count();
        assert_eq!(gt, 4, "{toks:?}");
        assert!(toks.contains(&(TokenKind::NumLit, "2".into())));
        assert_round_trip(src);
    }

    #[test]
    fn golden_char_vs_lifetime() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = 'x'; let n = '\\n'; let q = '\\''; let u = '日'; drop::<&'_ str>(x); c }";
        let toks = kinds_and_texts(src);
        let lifetimes: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'_"], "{toks:?}");
        let chars: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(chars, ["'x'", "'\\n'", "'\\''", "'日'"], "{toks:?}");
        assert_round_trip(src);
    }

    #[test]
    fn golden_doc_comments_and_nesting() {
        let src = "/// doc\n//! inner\n/* a /* nested */ b */ fn f() {}\n// tail";
        let toks = lex(src);
        let comments: Vec<TokenKind> = toks
            .iter()
            .filter(|t| !t.is_code())
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            comments,
            [
                TokenKind::LineComment,
                TokenKind::LineComment,
                TokenKind::BlockComment,
                TokenKind::LineComment
            ]
        );
        // The nested block comment is one token covering both levels.
        let block = toks
            .iter()
            .find(|t| t.kind == TokenKind::BlockComment)
            .expect("block comment token exists");
        assert_eq!(block.text(src), "/* a /* nested */ b */");
        // `fn` lands on line 3.
        let fn_tok = toks
            .iter()
            .find(|t| t.text(src) == "fn")
            .expect("fn token exists");
        assert_eq!(fn_tok.line, 3);
        assert_round_trip(src);
    }

    #[test]
    fn golden_numbers() {
        let src = "let a = 0xfF_u32; let b = 1_000u64; let c = 1.5e-3; let d = 0..n; let e = 2.0f64; let f = x.0; let g = 0b1010;";
        let toks = kinds_and_texts(src);
        let nums: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::NumLit)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(
            nums,
            ["0xfF_u32", "1_000u64", "1.5e-3", "0", "2.0f64", "0", "0b1010"],
            "{toks:?}"
        );
        assert_round_trip(src);
    }

    #[test]
    fn golden_raw_identifiers_and_strings_with_escapes() {
        let src = "let r#type = \"a\\\"b\"; let b = b\"bytes\"; for x in y {}";
        let toks = kinds_and_texts(src);
        assert!(
            toks.contains(&(TokenKind::Ident, "r#type".into())),
            "{toks:?}"
        );
        assert!(toks.contains(&(TokenKind::StrLit, "\"a\\\"b\"".into())));
        assert!(toks.contains(&(TokenKind::StrLit, "b\"bytes\"".into())));
        // `for` is a plain ident (not a raw-string opener despite the r).
        assert!(toks.contains(&(TokenKind::Ident, "for".into())));
        assert_round_trip(src);
    }

    #[test]
    fn unterminated_literals_never_panic() {
        for src in [
            "let s = \"unterminated",
            "let s = r#\"unterminated",
            "/* unterminated",
            "let c = '",
            "let c = '\\",
        ] {
            let toks = lex(src);
            assert!(!toks.is_empty());
            assert_round_trip(src);
        }
    }

    #[test]
    fn line_numbers_across_multiline_tokens() {
        let src = "let a = \"x\ny\";\nlet b = 1;";
        let toks = lex(src);
        let b = toks
            .iter()
            .find(|t| t.text(src) == "b")
            .expect("b token exists");
        assert_eq!(b.line, 3);
    }

    /// The strongest guarantee the analyzer rests on: every `.rs` file in
    /// the workspace lexes without panicking, with every non-whitespace
    /// byte covered by exactly one token (no gaps, no overlaps). A lexer
    /// bug that drops or double-counts bytes shows up here before it can
    /// silently blind a lint family.
    #[test]
    fn lexes_every_workspace_file_with_full_byte_coverage() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .expect("xtask lives at crates/xtask")
            .to_path_buf();
        let files = crate::lints::rust_files(&root).expect("workspace scan");
        assert!(
            files.len() > 30,
            "expected a full workspace, found only {} .rs files",
            files.len()
        );
        for path in files {
            let src = crate::lints::read(&path).expect("readable source");
            let tokens = lex(&src);
            let bad = coverage_gaps_are_whitespace(&src, &tokens);
            assert!(
                bad.is_empty(),
                "uncovered bytes {bad:?} in {}",
                path.display()
            );
            for pair in tokens.windows(2) {
                assert!(
                    pair[0].end <= pair[1].start,
                    "overlapping tokens {pair:?} in {}",
                    path.display()
                );
            }
        }
    }

    /// Deterministic fuzz (xorshift, no `rand`, no wall clock): byte soup
    /// over-weighted with quote/backslash/hash/slash characters so the
    /// string, raw-string, char, and comment state machines are hit
    /// constantly. The lexer must never panic and must keep full byte
    /// coverage even on garbage.
    #[test]
    fn lexing_arbitrary_input_never_panics_and_keeps_coverage() {
        let alphabet: &[char] = &[
            '\'', '"', '\\', 'r', '#', 'b', '/', ' ', '*', '\n', '_', 'a', '0', '<', '>', 'λ', '∀',
        ];
        let mut state = 0x9e37_79b9_u64;
        for case in 0usize..500 {
            let len = (case % 64) + 1;
            let mut s = String::new();
            for _ in 0..len {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                s.push(alphabet[(state % alphabet.len() as u64) as usize]);
            }
            let tokens = lex(&s);
            let bad = coverage_gaps_are_whitespace(&s, &tokens);
            assert!(bad.is_empty(), "uncovered bytes {bad:?} in {s:?}");
            for pair in tokens.windows(2) {
                assert!(pair[0].end <= pair[1].start, "overlap {pair:?} in {s:?}");
            }
        }
    }
}
