//! BRIM: the bistable resistively-coupled Ising machine baseline
//! (Afoakwa et al., HPCA 2021), modeled per Sec. V.5 of the SACHI paper.
//!
//! BRIM stores spins on capacitors and programs ICs as resistances through
//! ZIV diodes, with per-bank DACs converting digital ICs into analog
//! levels. The SACHI paper compares against an analytic model of BRIM, not
//! against silicon, with these parameters (all from Sec. V.5):
//!
//! * H compute takes 4–13 cycles; the *best case* (used for comparison)
//!   is 1 cycle each for memory read, DAC, oscillator compute, and
//!   annealing control;
//! * spins update serially in practice: the storage capacitor delays fast
//!   0→1 transitions and leakage through unconnected paths corrupts nodes
//!   near the ZIV trip point, defeating the nominal analog parallelism;
//! * 16 banks, one 8-bit DAC per bank (0.004 mW each) with 16:1 muxes and
//!   16x8 flops per bank;
//! * coupled-oscillator power is 250 mW for 2000 spins at 100 neighbors
//!   each, proportional to `spins x neighbors`;
//! * reuse is 1 — every IC fetched from memory feeds exactly one compute;
//! * maximum resolution: signed 4-bit; maximum problem size: 1000 nodes
//!   (Fig. 3).
//!
//! Functionally BRIM runs the same iterative protocol as every machine in
//! this workspace, so its H trajectory matches the golden model; only the
//! cycle/energy accounting differs.

use sachi_ising::anneal::Annealer;
use sachi_ising::graph::IsingGraph;
use sachi_ising::hamiltonian::{energy, local_field};
use sachi_ising::solver::{decide_update, IterativeSolver, SolveOptions, SolveResult};
use sachi_ising::spin::SpinVector;
use sachi_mem::energy::{EnergyComponent, EnergyLedger};
use sachi_mem::params::TechnologyParams;
use sachi_mem::units::{Cycles, Nanoseconds, Picojoules};
use std::fmt;

/// BRIM's architectural limits (Fig. 3).
pub const BRIM_MAX_NODES: usize = 1_000;
/// BRIM's maximum IC resolution in bits (signed 4-bit).
pub const BRIM_MAX_RESOLUTION: u32 = 4;

/// Error constructing a BRIM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrimError {
    /// More nodes than the coupled-oscillator fabric supports.
    TooManyNodes {
        /// Requested node count.
        nodes: usize,
    },
    /// Coefficients need more than signed 4-bit resolution.
    ResolutionTooHigh {
        /// Bits required by the graph.
        required: u32,
    },
}

impl fmt::Display for BrimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrimError::TooManyNodes { nodes } => {
                write!(
                    f,
                    "BRIM supports at most {BRIM_MAX_NODES} nodes, got {nodes}"
                )
            }
            BrimError::ResolutionTooHigh { required } => {
                write!(f, "BRIM supports signed {BRIM_MAX_RESOLUTION}-bit ICs, graph needs {required}-bit")
            }
        }
    }
}

impl std::error::Error for BrimError {}

/// Configuration of the BRIM model.
#[derive(Debug, Clone)]
pub struct BrimConfig {
    /// Technology constants shared with SACHI for a fair comparison.
    pub tech: TechnologyParams,
    /// Base cycles per H compute (read + DAC + oscillator + anneal);
    /// best case 4, worst case 13.
    pub cycles_per_h: u64,
    /// Number of DAC banks (ICs converted per cycle).
    pub dac_banks: u64,
    /// Oscillator fabric power at the 2000-spin / 100-neighbor reference
    /// point, in milliwatts.
    pub oscillator_ref_mw: f64,
    /// Power of one DAC, in milliwatts.
    pub dac_mw: f64,
    /// Mux/flop digital logic power per bank, in milliwatts.
    pub bank_logic_mw: f64,
}

impl BrimConfig {
    /// The paper's best-case BRIM (the variant it compares SACHI against).
    pub fn best_case() -> Self {
        BrimConfig {
            tech: TechnologyParams::freepdk45(),
            cycles_per_h: 4,
            dac_banks: 16,
            oscillator_ref_mw: 250.0,
            dac_mw: 0.004,
            bank_logic_mw: 0.01,
        }
    }

    /// The paper's worst-case BRIM (13 cycles per H compute).
    pub fn worst_case() -> Self {
        BrimConfig {
            cycles_per_h: 13,
            ..BrimConfig::best_case()
        }
    }
}

impl Default for BrimConfig {
    fn default() -> Self {
        BrimConfig::best_case()
    }
}

/// Architecture report of a BRIM solve.
#[derive(Debug, Clone)]
pub struct BrimReport {
    /// Sweeps executed.
    pub sweeps: u64,
    /// Total cycles including IC programming.
    pub total_cycles: Cycles,
    /// Wall-clock time.
    pub wall_time: Nanoseconds,
    /// Energy ledger.
    pub energy: EnergyLedger,
    /// Reuse (1 by construction).
    pub reuse: f64,
    /// IC bits fetched from memory.
    pub ic_bits_fetched: u64,
}

/// The BRIM machine model.
#[derive(Debug, Clone)]
pub struct BrimMachine {
    config: BrimConfig,
}

impl BrimMachine {
    /// Creates a best-case BRIM.
    pub fn new() -> Self {
        BrimMachine {
            config: BrimConfig::best_case(),
        }
    }

    /// Creates a BRIM with an explicit configuration.
    pub fn with_config(config: BrimConfig) -> Self {
        BrimMachine { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BrimConfig {
        &self.config
    }

    /// Checks a graph against BRIM's architectural limits.
    ///
    /// # Errors
    ///
    /// Returns [`BrimError`] if the graph exceeds 1000 nodes or needs more
    /// than signed 4-bit coefficients.
    pub fn check_limits(&self, graph: &IsingGraph) -> Result<(), BrimError> {
        if graph.num_spins() > BRIM_MAX_NODES {
            return Err(BrimError::TooManyNodes {
                nodes: graph.num_spins(),
            });
        }
        let required = graph.bits_required();
        if required > BRIM_MAX_RESOLUTION {
            return Err(BrimError::ResolutionTooHigh { required });
        }
        Ok(())
    }

    /// Cycles one sweep takes: spins update serially (capacitor settling +
    /// leakage defeat the nominal analog parallelism), each paying the
    /// base pipeline plus a *sequential* DAC conversion of its
    /// neighborhood — one IC per cycle through the spin's bank DAC (the
    /// 16 banks serve different array regions, not one spin's fan-in).
    pub fn cycles_per_sweep(&self, spins: u64, max_degree: u64) -> u64 {
        spins * (self.config.cycles_per_h + max_degree.max(1))
    }

    /// Oscillator fabric power for a problem, scaled from the 2000x100
    /// reference point.
    pub fn oscillator_power_mw(&self, spins: u64, max_degree: u64) -> f64 {
        self.config.oscillator_ref_mw * (spins as f64 * max_degree as f64) / (2_000.0 * 100.0)
    }

    /// Analytic energy of one sweep (the same arithmetic the functional
    /// solve books): IC re-fetch movement at reuse 1, plus the oscillator,
    /// DAC, and bank-logic power integrated over the sweep, plus the
    /// annealer block.
    pub fn sweep_energy(&self, spins: u64, max_degree: u64, resolution_bits: u32) -> Picojoules {
        let tech = &self.config.tech;
        let movement =
            tech.movement_energy_per_bit() * (spins * max_degree * resolution_bits as u64);
        let sweep_time_ns = Cycles::new(self.cycles_per_sweep(spins, max_degree))
            .to_time(tech.cycle_time)
            .get();
        let power_mw = self.oscillator_power_mw(spins, max_degree)
            + self.config.dac_mw * self.config.dac_banks as f64
            + self.config.bank_logic_mw * self.config.dac_banks as f64;
        movement
            + Picojoules::new(power_mw * sweep_time_ns)
            + tech.annealer_energy_per_decision() * spins
    }

    /// Runs a solve with full accounting.
    ///
    /// # Errors
    ///
    /// Returns [`BrimError`] if the graph exceeds BRIM's limits.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len()` does not match the graph.
    pub fn solve_detailed(
        &mut self,
        graph: &IsingGraph,
        initial: &SpinVector,
        options: &SolveOptions,
    ) -> Result<(SolveResult, BrimReport), BrimError> {
        self.check_limits(graph)?;
        assert_eq!(
            initial.len(),
            graph.num_spins(),
            "initial spins must match graph size"
        );
        let tech = &self.config.tech;
        let r = BRIM_MAX_RESOLUTION as u64;
        let n = graph.num_spins();
        let max_degree = graph.max_degree() as u64;

        let mut spins = initial.clone();
        let mut annealer = Annealer::new(options.schedule, options.seed);
        let mut ledger = EnergyLedger::new();

        // IC programming: every resistance is written once from DRAM
        // (n^2-ish switch fabric, but only existing edges carry data).
        let ic_bits_program = 2 * graph.num_edges() as u64 * r;
        let mut total_cycles = tech.dram_stream_cycles(ic_bits_program.div_ceil(8));
        ledger.record(
            EnergyComponent::DramAccess,
            tech.movement_energy_per_bit() * ic_bits_program,
        );

        let cycles_per_sweep = self.cycles_per_sweep(n as u64, max_degree);
        let sweep_time_ns = Cycles::new(cycles_per_sweep).to_time(tech.cycle_time).get();
        let osc_mw = self.oscillator_power_mw(n as u64, max_degree);
        let dac_mw = self.config.dac_mw * self.config.dac_banks as f64;
        let logic_mw = self.config.bank_logic_mw * self.config.dac_banks as f64;

        let mut ic_bits_fetched = 0u64;
        let mut sweeps = 0u64;
        let mut total_flips = 0u64;
        let mut converged = false;
        let mut trace = Vec::new();

        let max_sweeps = options.effective_max_sweeps(graph.num_spins());
        while sweeps < max_sweeps {
            let mut flips_this_sweep = 0u64;
            for i in 0..n {
                let h_sigma = local_field(graph, &spins, i);
                // Reuse = 1: every IC is re-fetched from memory and
                // DAC-converted for this single compute.
                let fetched = graph.degree(i) as u64 * r;
                ic_bits_fetched += fetched;
                ledger.record(
                    EnergyComponent::DataMovement,
                    tech.movement_energy_per_bit() * fetched,
                );
                let current = spins.get(i);
                let new = decide_update(current, h_sigma, &mut annealer);
                if new != current {
                    spins.set(i, new);
                    flips_this_sweep += 1;
                }
            }
            // Power-derived per-sweep energy: oscillator + DAC + logic run
            // for the sweep duration. mW x ns = pJ.
            ledger.record(
                EnergyComponent::Oscillator,
                Picojoules::new(osc_mw * sweep_time_ns),
            );
            ledger.record(
                EnergyComponent::Dac,
                Picojoules::new(dac_mw * sweep_time_ns),
            );
            ledger.record(
                EnergyComponent::DigitalLogic,
                Picojoules::new(logic_mw * sweep_time_ns),
            );
            ledger.record(
                EnergyComponent::Annealer,
                tech.annealer_energy_per_decision() * n as u64,
            );
            total_cycles += Cycles::new(cycles_per_sweep);

            sweeps += 1;
            total_flips += flips_this_sweep;
            if options.record_trace {
                trace.push(energy(graph, &spins));
            }
            let frozen = annealer.is_frozen();
            annealer.cool();
            if flips_this_sweep == 0 && frozen {
                converged = true;
                break;
            }
        }

        let report = BrimReport {
            sweeps,
            total_cycles,
            wall_time: total_cycles.to_time(tech.cycle_time),
            energy: ledger,
            reuse: 1.0,
            ic_bits_fetched,
        };
        let result = SolveResult {
            energy: energy(graph, &spins),
            spins,
            sweeps,
            flips: total_flips,
            converged,
            trace,
            uphill_accepted: annealer.uphill_accepted(),
            uphill_rejected: annealer.uphill_rejected(),
            degraded: false,
        };
        Ok((result, report))
    }
}

impl Default for BrimMachine {
    fn default() -> Self {
        BrimMachine::new()
    }
}

impl IterativeSolver for BrimMachine {
    /// Runs the solve, panicking on architectural limit violations (use
    /// [`BrimMachine::solve_detailed`] for recoverable handling).
    fn solve(
        &mut self,
        graph: &IsingGraph,
        initial: &SpinVector,
        options: &SolveOptions,
    ) -> SolveResult {
        self.solve_detailed(graph, initial, options)
            .expect("graph exceeds BRIM limits")
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sachi_ising::graph::topology;
    use sachi_ising::solver::CpuReferenceSolver;

    fn small_problem() -> (IsingGraph, SpinVector, SolveOptions) {
        let g = topology::king(5, 5, |i, j| ((i + j) % 7) as i32 - 3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let init = SpinVector::random(25, &mut rng);
        let opts = SolveOptions::for_graph(&g, 2).with_trace();
        (g, init, opts)
    }

    #[test]
    fn brim_matches_golden_trajectory() {
        let (g, init, opts) = small_problem();
        let mut reference = CpuReferenceSolver::new();
        let golden = reference.solve(&g, &init, &opts);
        let mut brim = BrimMachine::new();
        let (result, report) = brim.solve_detailed(&g, &init, &opts).unwrap();
        assert_eq!(result.energy, golden.energy);
        assert_eq!(result.trace, golden.trace);
        assert_eq!(result.sweeps, golden.sweeps);
        assert_eq!(report.sweeps, golden.sweeps);
        assert!((report.reuse - 1.0).abs() < 1e-12);
    }

    #[test]
    fn limits_enforced() {
        let brim = BrimMachine::new();
        let big = topology::star(1_001, |_| 1).unwrap();
        assert_eq!(
            brim.check_limits(&big).unwrap_err(),
            BrimError::TooManyNodes { nodes: 1_001 }
        );
        let precise = topology::star(4, |_| 100).unwrap();
        assert_eq!(
            brim.check_limits(&precise).unwrap_err(),
            BrimError::ResolutionTooHigh { required: 8 }
        );
        let fine = topology::star(100, |_| 7).unwrap();
        assert!(brim.check_limits(&fine).is_ok());
        assert!(format!("{}", BrimError::TooManyNodes { nodes: 5000 }).contains("5000"));
    }

    #[test]
    fn cycles_scale_serially_with_spins_and_neighbors() {
        let brim = BrimMachine::new();
        // 4 base cycles + one sequential DAC cycle per IC.
        assert_eq!(brim.cycles_per_sweep(1_000, 1), 5_000);
        assert_eq!(brim.cycles_per_sweep(1_000, 8), 12_000);
        // Complete 1K graph: 999 sequential conversions per spin.
        assert_eq!(brim.cycles_per_sweep(1_000, 999), 1_003_000);
    }

    #[test]
    fn oscillator_power_matches_reference_point() {
        let brim = BrimMachine::new();
        assert!((brim.oscillator_power_mw(2_000, 100) - 250.0).abs() < 1e-9);
        assert!((brim.oscillator_power_mw(1_000, 100) - 125.0).abs() < 1e-9);
        assert!(brim.oscillator_power_mw(1_000, 999) > brim.oscillator_power_mw(1_000, 8));
    }

    #[test]
    fn worst_case_is_slower_than_best_case() {
        let (g, init, opts) = small_problem();
        let mut best = BrimMachine::new();
        let mut worst = BrimMachine::with_config(BrimConfig::worst_case());
        let (_, rb) = best.solve_detailed(&g, &init, &opts).unwrap();
        let (_, rw) = worst.solve_detailed(&g, &init, &opts).unwrap();
        assert!(rw.total_cycles > rb.total_cycles);
        assert_eq!(rb.sweeps, rw.sweeps); // functionally identical
    }

    #[test]
    fn energy_ledger_contains_brim_specific_components() {
        let (g, init, opts) = small_problem();
        let mut brim = BrimMachine::new();
        let (_, report) = brim.solve_detailed(&g, &init, &opts).unwrap();
        assert!(report.energy.component(EnergyComponent::Oscillator).get() > 0.0);
        assert!(report.energy.component(EnergyComponent::Dac).get() > 0.0);
        assert!(report.energy.component(EnergyComponent::DataMovement).get() > 0.0);
        assert!(report.ic_bits_fetched > 0);
        assert!(report.wall_time.get() > 0.0);
    }
}
