//! # sachi-baselines — every system SACHI is compared against
//!
//! The SACHI paper's evaluation (Secs. V–VI) compares against two Ising
//! accelerators and three classes of classical solvers. All are
//! implemented here, parameterized exactly as Sec. V.5 describes:
//!
//! * [`brim`] — BRIM, the bistable resistively-coupled Ising machine
//!   (coupled oscillators + DACs, serial updates, reuse 1, signed 4-bit,
//!   <= 1000 nodes);
//! * [`ising_cim`] — Ising-CIM, the eDRAM compute-in-memory annealer
//!   (King's graph only, unsigned 2-bit, 2-step compute/update, 1.2x
//!   XNOR power);
//! * [`ga`] — genetic algorithm (GALib stand-in, Figs. 1/16);
//! * [`pso`] — binary particle swarm optimization;
//! * [`optsolv`] — the dedicated solvers: 2-opt TSP (Concorde stand-in),
//!   Edmonds-Karp min-cut (Ford-Fulkerson), Karmarkar-Karp partitioning,
//!   and greedy lattice descent (LAMMPS stand-in).
//!
//! The two Ising machines run the *same* iterative protocol as
//! `sachi-core`'s machine and the golden CPU solver, so comparisons vary
//! only the architecture model, never the algorithm.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod brim;
pub mod cmos_annealer;
pub mod ga;
pub mod ising_cim;
pub mod optsolv;
pub mod pso;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::brim::{BrimConfig, BrimError, BrimMachine, BrimReport};
    pub use crate::cmos_annealer::{CmosAnnealer, CmosAnnealerError, CmosAnnealerReport};
    pub use crate::ga::{run_ga, run_ga_on_graph, GaOptions, GaOutcome};
    pub use crate::ising_cim::{CimConfig, CimError, CimMachine, CimReport};
    pub use crate::optsolv::{
        edmonds_karp_segmentation, karmarkar_karp, lattice_descent, tsp_reference,
    };
    pub use crate::pso::{run_pso, run_pso_on_graph, PsoOptions, PsoOutcome};
}
