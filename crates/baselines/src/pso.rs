//! Binary particle swarm optimization baseline (Fig. 16).
//!
//! "In PSO, the selection criterion considers personal best (pbest) and
//! global best (gbest) for all candidates, where pbest is compared against
//! gbest at the end of each iteration to update the fitness." The paper
//! notes PSO converges faster than GA because, like Ising, its updates are
//! informed by neighbors (here: the swarm's bests).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sachi_ising::graph::IsingGraph;
use sachi_ising::hamiltonian::energy;
use sachi_ising::spin::{Spin, SpinVector};

/// PSO hyperparameters.
#[derive(Debug, Clone)]
pub struct PsoOptions {
    /// Number of particles.
    pub particles: usize,
    /// Iterations to run.
    pub iterations: u64,
    /// Inertia weight.
    pub inertia: f64,
    /// Cognitive (pbest) coefficient.
    pub cognitive: f64,
    /// Social (gbest) coefficient.
    pub social: f64,
    /// Velocity clamp.
    pub v_max: f64,
    /// RNG seed.
    pub seed: u64,
}

impl PsoOptions {
    /// A reasonable default budget for the Fig. 16 comparison.
    pub fn standard(seed: u64) -> Self {
        PsoOptions {
            particles: 32,
            iterations: 200,
            inertia: 0.7,
            cognitive: 1.5,
            social: 1.5,
            v_max: 4.0,
            seed,
        }
    }
}

/// Result of a PSO run.
#[derive(Debug, Clone)]
pub struct PsoOutcome {
    /// Global-best bitstring.
    pub best: Vec<bool>,
    /// Its fitness.
    pub best_fitness: f64,
    /// Global-best fitness per iteration.
    pub history: Vec<f64>,
    /// Total fitness evaluations.
    pub evaluations: u64,
}

impl PsoOutcome {
    /// Global best as spins (bit 1 = +1).
    pub fn best_spins(&self) -> SpinVector {
        self.best.iter().map(|&b| Spin::from_bit(b)).collect()
    }
}

#[inline]
fn sigmoid(v: f64) -> f64 {
    1.0 / (1.0 + (-v).exp())
}

/// Runs binary PSO on bitstrings of `len` bits, maximizing `fitness`.
///
/// # Panics
///
/// Panics if `len == 0` or there are no particles.
pub fn run_pso(
    len: usize,
    mut fitness: impl FnMut(&[bool]) -> f64,
    opts: &PsoOptions,
) -> PsoOutcome {
    assert!(len > 0, "bitstring length must be positive");
    assert!(opts.particles >= 1, "need at least one particle");
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut evaluations = 0u64;

    let mut position: Vec<Vec<bool>> = (0..opts.particles)
        .map(|_| (0..len).map(|_| rng.gen::<bool>()).collect())
        .collect();
    let mut velocity: Vec<Vec<f64>> = vec![vec![0.0; len]; opts.particles];
    let mut pbest = position.clone();
    let mut pbest_score: Vec<f64> = position
        .iter()
        .map(|p| {
            evaluations += 1;
            fitness(p)
        })
        .collect();
    let mut gbest_idx = pbest_score
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite fitness"))
        .map(|(i, _)| i)
        .expect("non-empty swarm");
    let mut gbest = pbest[gbest_idx].clone();
    let mut gbest_score = pbest_score[gbest_idx];

    let mut history = Vec::with_capacity(opts.iterations as usize);
    for _ in 0..opts.iterations {
        for p in 0..opts.particles {
            for b in 0..len {
                let r1: f64 = rng.gen();
                let r2: f64 = rng.gen();
                let x = if position[p][b] { 1.0 } else { 0.0 };
                let pb = if pbest[p][b] { 1.0 } else { 0.0 };
                let gb = if gbest[b] { 1.0 } else { 0.0 };
                let v = opts.inertia * velocity[p][b]
                    + opts.cognitive * r1 * (pb - x)
                    + opts.social * r2 * (gb - x);
                velocity[p][b] = v.clamp(-opts.v_max, opts.v_max);
                position[p][b] = rng.gen::<f64>() < sigmoid(velocity[p][b]);
            }
            evaluations += 1;
            let score = fitness(&position[p]);
            if score > pbest_score[p] {
                pbest_score[p] = score;
                pbest[p] = position[p].clone();
            }
        }
        // pbest vs gbest comparison at the end of each iteration.
        gbest_idx = pbest_score
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite fitness"))
            .map(|(i, _)| i)
            .expect("non-empty swarm");
        if pbest_score[gbest_idx] > gbest_score {
            gbest_score = pbest_score[gbest_idx];
            gbest = pbest[gbest_idx].clone();
        }
        history.push(gbest_score);
    }

    PsoOutcome {
        best: gbest,
        best_fitness: gbest_score,
        history,
        evaluations,
    }
}

/// Runs PSO against an Ising graph, maximizing `-H`.
pub fn run_pso_on_graph(graph: &IsingGraph, opts: &PsoOptions) -> PsoOutcome {
    run_pso(
        graph.num_spins(),
        |bits| {
            let spins: SpinVector = bits.iter().map(|&b| Spin::from_bit(b)).collect();
            -(energy(graph, &spins) as f64)
        },
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sachi_ising::graph::topology;

    #[test]
    fn pso_maximizes_ones_count() {
        let opts = PsoOptions {
            iterations: 80,
            ..PsoOptions::standard(1)
        };
        let outcome = run_pso(24, |bits| bits.iter().filter(|&&b| b).count() as f64, &opts);
        assert!(
            outcome.best_fitness >= 22.0,
            "found only {}",
            outcome.best_fitness
        );
        assert_eq!(outcome.history.len(), 80);
    }

    #[test]
    fn gbest_history_is_monotone() {
        let outcome = run_pso(
            16,
            |bits| bits.iter().filter(|&&b| b).count() as f64,
            &PsoOptions::standard(5),
        );
        for pair in outcome.history.windows(2) {
            assert!(pair[1] >= pair[0], "gbest regressed: {pair:?}");
        }
    }

    #[test]
    fn pso_deterministic_per_seed() {
        let f = |bits: &[bool]| bits.iter().filter(|&&b| b).count() as f64;
        let a = run_pso(16, f, &PsoOptions::standard(9));
        let b = run_pso(16, f, &PsoOptions::standard(9));
        assert_eq!(a.best, b.best);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn pso_on_ferromagnet_aligns_spins() {
        let g = topology::king(4, 4, |_, _| 1).unwrap();
        let outcome = run_pso_on_graph(&g, &PsoOptions::standard(2));
        let ups = outcome.best_spins().count_up();
        assert!(ups <= 2 || ups >= 14, "PSO left mixed state: {ups} up");
    }

    #[test]
    fn sigmoid_behaves() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.99);
        assert!(sigmoid(-10.0) < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one particle")]
    fn empty_swarm_rejected() {
        let opts = PsoOptions {
            particles: 0,
            ..PsoOptions::standard(0)
        };
        let _ = run_pso(8, |_| 0.0, &opts);
    }
}
