//! Genetic algorithm baseline (the paper's GALib stand-in; Figs. 1 & 16).
//!
//! A deliberately classical GA: tournament selection, one-point
//! crossover, per-bit mutation, elitism — "global-only search for
//! selecting the best candidates in each generation", which is exactly the
//! weakness the paper contrasts against neighbor-driven Ising updates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sachi_ising::graph::IsingGraph;
use sachi_ising::hamiltonian::energy;
use sachi_ising::spin::{Spin, SpinVector};

/// GA hyperparameters.
#[derive(Debug, Clone)]
pub struct GaOptions {
    /// Population size.
    pub population: usize,
    /// Generations to run.
    pub generations: u64,
    /// Probability of crossover per offspring.
    pub crossover_rate: f64,
    /// Per-bit mutation probability; `None` uses `1/len`.
    pub mutation_rate: Option<f64>,
    /// Tournament size.
    pub tournament: usize,
    /// Elites copied unchanged each generation.
    pub elitism: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GaOptions {
    /// A reasonable default budget for the Fig. 1/16 comparisons.
    pub fn standard(seed: u64) -> Self {
        GaOptions {
            population: 64,
            generations: 200,
            crossover_rate: 0.9,
            mutation_rate: None,
            tournament: 3,
            elitism: 2,
            seed,
        }
    }
}

/// Result of a GA run.
#[derive(Debug, Clone)]
pub struct GaOutcome {
    /// Best bitstring found.
    pub best: Vec<bool>,
    /// Its fitness.
    pub best_fitness: f64,
    /// Best fitness per generation.
    pub history: Vec<f64>,
    /// Total fitness evaluations.
    pub evaluations: u64,
}

impl GaOutcome {
    /// Best bitstring as spins (bit 1 = +1).
    pub fn best_spins(&self) -> SpinVector {
        self.best.iter().map(|&b| Spin::from_bit(b)).collect()
    }
}

/// Runs the GA on bitstrings of `len` bits, maximizing `fitness`.
///
/// # Panics
///
/// Panics if `len == 0`, the population is smaller than 2, or the
/// tournament size is 0.
pub fn run_ga(len: usize, mut fitness: impl FnMut(&[bool]) -> f64, opts: &GaOptions) -> GaOutcome {
    assert!(len > 0, "bitstring length must be positive");
    assert!(opts.population >= 2, "population must be at least 2");
    assert!(opts.tournament >= 1, "tournament size must be at least 1");
    let mutation = opts.mutation_rate.unwrap_or(1.0 / len as f64);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut evaluations = 0u64;

    let mut population: Vec<Vec<bool>> = (0..opts.population)
        .map(|_| (0..len).map(|_| rng.gen::<bool>()).collect())
        .collect();
    let mut scores: Vec<f64> = population
        .iter()
        .map(|ind| {
            evaluations += 1;
            fitness(ind)
        })
        .collect();

    let mut history = Vec::with_capacity(opts.generations as usize);
    for _ in 0..opts.generations {
        // Elites survive unchanged.
        let mut order: Vec<usize> = (0..population.len()).collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite fitness"));
        let mut next: Vec<Vec<bool>> = order
            .iter()
            .take(opts.elitism)
            .map(|&i| population[i].clone())
            .collect();

        let tournament_pick = |rng: &mut StdRng| -> usize {
            (0..opts.tournament)
                .map(|_| rng.gen_range(0..population.len()))
                .max_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite fitness"))
                .expect("tournament size >= 1")
        };

        while next.len() < opts.population {
            let a = tournament_pick(&mut rng);
            let b = tournament_pick(&mut rng);
            let mut child = if rng.gen::<f64>() < opts.crossover_rate {
                let cut = rng.gen_range(1..len.max(2));
                let mut c = population[a][..cut.min(len)].to_vec();
                c.extend_from_slice(&population[b][cut.min(len)..]);
                c
            } else {
                population[a].clone()
            };
            for bit in &mut child {
                if rng.gen::<f64>() < mutation {
                    *bit = !*bit;
                }
            }
            next.push(child);
        }
        population = next;
        scores = population
            .iter()
            .map(|ind| {
                evaluations += 1;
                fitness(ind)
            })
            .collect();
        let gen_best = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        history.push(gen_best);
    }

    let (best_idx, _) = scores
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite fitness"))
        .expect("non-empty population");
    GaOutcome {
        best: population[best_idx].clone(),
        best_fitness: scores[best_idx],
        history,
        evaluations,
    }
}

/// Runs the GA against an Ising graph, maximizing `-H` (the same objective
/// every Ising machine minimizes).
pub fn run_ga_on_graph(graph: &IsingGraph, opts: &GaOptions) -> GaOutcome {
    run_ga(
        graph.num_spins(),
        |bits| {
            let spins: SpinVector = bits.iter().map(|&b| Spin::from_bit(b)).collect();
            -(energy(graph, &spins) as f64)
        },
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sachi_ising::graph::topology;

    #[test]
    fn ga_maximizes_ones_count() {
        let opts = GaOptions {
            generations: 60,
            ..GaOptions::standard(1)
        };
        let outcome = run_ga(32, |bits| bits.iter().filter(|&&b| b).count() as f64, &opts);
        assert!(
            outcome.best_fitness >= 30.0,
            "found only {}",
            outcome.best_fitness
        );
        assert_eq!(outcome.history.len(), 60);
        assert!(outcome.evaluations > 0);
    }

    #[test]
    fn ga_history_is_monotone_with_elitism() {
        let opts = GaOptions::standard(2);
        let outcome = run_ga(24, |bits| bits.iter().filter(|&&b| b).count() as f64, &opts);
        for pair in outcome.history.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-9, "elitism violated: {pair:?}");
        }
    }

    #[test]
    fn ga_deterministic_per_seed() {
        let opts = GaOptions::standard(7);
        let a = run_ga(16, |bits| bits.iter().filter(|&&b| b).count() as f64, &opts);
        let b = run_ga(16, |bits| bits.iter().filter(|&&b| b).count() as f64, &opts);
        assert_eq!(a.best, b.best);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn ga_on_ferromagnet_aligns_spins() {
        let g = topology::king(4, 4, |_, _| 1).unwrap();
        let outcome = run_ga_on_graph(&g, &GaOptions::standard(3));
        let spins = outcome.best_spins();
        let ups = spins.count_up();
        // GA should get close to alignment (the paper shows GA is weaker
        // than Ising but still competent).
        assert!(ups <= 2 || ups >= 14, "GA left mixed state: {ups} up");
    }

    #[test]
    #[should_panic(expected = "population")]
    fn tiny_population_rejected() {
        let opts = GaOptions {
            population: 1,
            ..GaOptions::standard(0)
        };
        let _ = run_ga(8, |_| 0.0, &opts);
    }
}
