//! Ising-CIM: the eDRAM compute-in-memory baseline (Xie et al., JSSC
//! 2022), modeled per Sec. V.5 of the SACHI paper.
//!
//! Ising-CIM computes spin updates inside a modified embedded-DRAM array.
//! Its architectural envelope, as the SACHI paper characterizes it:
//!
//! * King's graph only (8-neighbor lattices) — the edge-cell
//!   duplication/broadcast partitioning scheme relies on that locality;
//! * unsigned 2-bit ICs;
//! * every compute is a 2-step operation: 3 cycles to compute the updated
//!   spin value and 3 cycles to perform the local read-modify-write
//!   update (vs SACHI's 1-cycle compute+update) — "XNOR compute requires
//!   3 cycles each for computing the updated spin values and performing
//!   the update";
//! * eDRAM XNOR needs 1.2x the power of 8T SRAM due to the higher
//!   operating voltage;
//! * reuse is 1: every IC bit participates in exactly one `H_σ` compute,
//!   and the whole array row discharges per access (the Fig. 5c
//!   redundant-compute energy);
//! * partitioned graphs duplicate edge cells into adjacent arrays and
//!   broadcast updated edge spins (Fig. 8a).

use sachi_ising::anneal::Annealer;
use sachi_ising::graph::IsingGraph;
use sachi_ising::hamiltonian::{energy, local_field};
use sachi_ising::solver::{decide_update, IterativeSolver, SolveOptions, SolveResult};
use sachi_ising::spin::SpinVector;
use sachi_mem::energy::{EnergyComponent, EnergyLedger};
use sachi_mem::params::TechnologyParams;
use sachi_mem::units::{Cycles, Nanoseconds};
use std::fmt;

/// Ising-CIM's maximum IC resolution (unsigned 2-bit).
pub const CIM_MAX_RESOLUTION: u32 = 2;
/// Maximum degree of a King's graph.
pub const KINGS_GRAPH_MAX_DEGREE: usize = 8;

/// Error constructing an Ising-CIM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CimError {
    /// The graph is not a King's graph (degree above 8).
    NotKingsGraph {
        /// Maximum degree found.
        max_degree: usize,
    },
    /// Coefficients outside the unsigned 2-bit range `0..=3`.
    CoefficientOutOfRange {
        /// The offending coefficient.
        value: i32,
    },
}

impl fmt::Display for CimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CimError::NotKingsGraph { max_degree } => {
                write!(
                    f,
                    "Ising-CIM supports King's graphs (degree <= 8), got degree {max_degree}"
                )
            }
            CimError::CoefficientOutOfRange { value } => {
                write!(
                    f,
                    "Ising-CIM supports unsigned 2-bit ICs (0..=3), got {value}"
                )
            }
        }
    }
}

impl std::error::Error for CimError {}

/// Configuration of the Ising-CIM model.
#[derive(Debug, Clone)]
pub struct CimConfig {
    /// Technology constants shared with SACHI.
    pub tech: TechnologyParams,
    /// Cycles to compute one updated spin value (paper: 3).
    pub compute_cycles: u64,
    /// Cycles to perform the read-modify-write update (paper: 3).
    pub update_cycles: u64,
    /// Columns of one eDRAM compute array (all discharge per access).
    pub array_columns: u64,
    /// Rows of one eDRAM compute array (capacity for partitioning).
    pub array_rows: u64,
}

impl CimConfig {
    /// The paper's Ising-CIM parameters.
    pub fn paper() -> Self {
        CimConfig {
            tech: TechnologyParams::freepdk45(),
            compute_cycles: 3,
            update_cycles: 3,
            array_columns: 256,
            array_rows: 256,
        }
    }
}

impl Default for CimConfig {
    fn default() -> Self {
        CimConfig::paper()
    }
}

/// Architecture report of an Ising-CIM solve.
#[derive(Debug, Clone)]
pub struct CimReport {
    /// Sweeps executed.
    pub sweeps: u64,
    /// Total cycles including loading.
    pub total_cycles: Cycles,
    /// Wall-clock time.
    pub wall_time: Nanoseconds,
    /// Energy ledger.
    pub energy: EnergyLedger,
    /// Reuse (1 by construction).
    pub reuse: f64,
    /// Number of compute arrays the problem was partitioned across.
    pub arrays_used: u64,
    /// Edge cells duplicated into adjacent arrays (Fig. 8a).
    pub duplicated_edge_cells: u64,
}

/// The Ising-CIM machine model.
#[derive(Debug, Clone)]
pub struct CimMachine {
    config: CimConfig,
}

impl CimMachine {
    /// Creates the paper-parameterized model.
    pub fn new() -> Self {
        CimMachine {
            config: CimConfig::paper(),
        }
    }

    /// Creates a model with an explicit configuration.
    pub fn with_config(config: CimConfig) -> Self {
        CimMachine { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CimConfig {
        &self.config
    }

    /// Checks a graph against Ising-CIM's envelope.
    ///
    /// # Errors
    ///
    /// Returns [`CimError`] for non-King's graphs or out-of-range ICs.
    pub fn check_limits(&self, graph: &IsingGraph) -> Result<(), CimError> {
        if graph.max_degree() > KINGS_GRAPH_MAX_DEGREE {
            return Err(CimError::NotKingsGraph {
                max_degree: graph.max_degree(),
            });
        }
        for (_, _, w) in graph.edges() {
            if !(0..=3).contains(&w) {
                return Err(CimError::CoefficientOutOfRange { value: w });
            }
        }
        for i in 0..graph.num_spins() {
            let h = graph.field(i);
            if !(0..=3).contains(&h) {
                return Err(CimError::CoefficientOutOfRange { value: h });
            }
        }
        Ok(())
    }

    /// Cycles per sweep: each spin pays the 3+3 compute/update sequence
    /// (the 2x CPI the paper attributes to the read-modify-write).
    pub fn cycles_per_sweep(&self, spins: u64) -> u64 {
        spins * (self.config.compute_cycles + self.config.update_cycles)
    }

    /// Analytic energy of one sweep: per-spin row discharges over the full
    /// eDRAM array width at 1.2x power (reuse 1 plus redundant columns),
    /// word-line pulses per IC bit, the RMW update write, and the annealer.
    pub fn sweep_energy(&self, spins: u64, degree: u64) -> sachi_mem::units::Picojoules {
        let tech = &self.config.tech;
        let edram = tech.edram_xnor_power_factor;
        let r = CIM_MAX_RESOLUTION as u64;
        tech.rwl_energy_per_bit() * ((spins * degree * r * 2) as f64 * edram)
            + tech.rbl_energy_per_bit()
                * ((spins * degree * self.config.array_columns) as f64 * 0.5 * edram)
            + tech.sram_write_energy_per_bit() * (spins as f64 * edram)
            + tech.annealer_energy_per_decision() * spins
    }

    /// How many compute arrays a lattice of `spins` cells needs, and how
    /// many edge cells get duplicated across array boundaries.
    pub fn partitioning(&self, spins: u64) -> (u64, u64) {
        let per_array = self.config.array_rows * self.config.array_columns
            / (2 * CIM_MAX_RESOLUTION as u64 * KINGS_GRAPH_MAX_DEGREE as u64);
        let arrays = spins.div_ceil(per_array).max(1);
        if arrays == 1 {
            return (1, 0);
        }
        // A square-ish tiling duplicates one boundary row/column per seam.
        let side = (spins as f64).sqrt().ceil() as u64;
        let seams = arrays - 1;
        (arrays, seams * side)
    }

    /// Runs a solve with full accounting.
    ///
    /// # Errors
    ///
    /// Returns [`CimError`] if the graph violates the envelope.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len()` does not match the graph.
    pub fn solve_detailed(
        &mut self,
        graph: &IsingGraph,
        initial: &SpinVector,
        options: &SolveOptions,
    ) -> Result<(SolveResult, CimReport), CimError> {
        self.check_limits(graph)?;
        assert_eq!(
            initial.len(),
            graph.num_spins(),
            "initial spins must match graph size"
        );
        let tech = &self.config.tech;
        let n = graph.num_spins();
        let r = CIM_MAX_RESOLUTION as u64;
        let edram = tech.edram_xnor_power_factor;

        let mut spins = initial.clone();
        let mut annealer = Annealer::new(options.schedule, options.seed);
        let mut ledger = EnergyLedger::new();

        let (arrays_used, duplicated) = self.partitioning(n as u64);
        // Loading: spins + ICs streamed from DRAM, duplicated edge cells
        // written twice.
        let payload_bits = n as u64 * (KINGS_GRAPH_MAX_DEGREE as u64 * r + 1) + duplicated * r;
        let mut total_cycles = tech.dram_stream_cycles(payload_bits.div_ceil(8));
        ledger.record(
            EnergyComponent::DramAccess,
            tech.movement_energy_per_bit() * payload_bits,
        );
        ledger.record(
            EnergyComponent::SramWrite,
            tech.sram_write_energy_per_bit() * payload_bits * edram,
        );

        let cycles_per_sweep = self.cycles_per_sweep(n as u64);
        let mut sweeps = 0u64;
        let mut total_flips = 0u64;
        let mut converged = false;
        let mut trace = Vec::new();

        let max_sweeps = options.effective_max_sweeps(graph.num_spins());
        while sweeps < max_sweeps {
            let mut flips_this_sweep = 0u64;
            for i in 0..n {
                let h_sigma = local_field(graph, &spins, i);
                let degree = graph.degree(i) as u64;
                // Per compute: the full array row discharges (reuse 1 and
                // redundant columns, at eDRAM's 1.2x power), word-lines
                // pulse per IC bit.
                ledger.record(
                    EnergyComponent::RwlDrive,
                    tech.rwl_energy_per_bit() * ((degree * r * 2) as f64 * edram),
                );
                ledger.record(
                    EnergyComponent::RblDischarge,
                    tech.rbl_energy_per_bit()
                        * ((degree * self.config.array_columns) as f64 * 0.5 * edram),
                );
                // Read-modify-write update traffic.
                ledger.record(
                    EnergyComponent::SramWrite,
                    tech.sram_write_energy_per_bit() * (1.0 * edram),
                );
                let current = spins.get(i);
                let new = decide_update(current, h_sigma, &mut annealer);
                if new != current {
                    spins.set(i, new);
                    flips_this_sweep += 1;
                    // Edge-cell broadcast to adjacent arrays when the spin
                    // is duplicated.
                    if arrays_used > 1 {
                        ledger.record(
                            EnergyComponent::DataMovement,
                            tech.movement_energy_per_bit() * 1u64,
                        );
                    }
                }
            }
            ledger.record(
                EnergyComponent::Annealer,
                tech.annealer_energy_per_decision() * n as u64,
            );
            total_cycles += Cycles::new(cycles_per_sweep);

            sweeps += 1;
            total_flips += flips_this_sweep;
            if options.record_trace {
                trace.push(energy(graph, &spins));
            }
            let frozen = annealer.is_frozen();
            annealer.cool();
            if flips_this_sweep == 0 && frozen {
                converged = true;
                break;
            }
        }

        let report = CimReport {
            sweeps,
            total_cycles,
            wall_time: total_cycles.to_time(tech.cycle_time),
            energy: ledger,
            reuse: 1.0,
            arrays_used,
            duplicated_edge_cells: duplicated,
        };
        let result = SolveResult {
            energy: energy(graph, &spins),
            spins,
            sweeps,
            flips: total_flips,
            converged,
            trace,
            uphill_accepted: annealer.uphill_accepted(),
            uphill_rejected: annealer.uphill_rejected(),
            degraded: false,
        };
        Ok((result, report))
    }
}

impl Default for CimMachine {
    fn default() -> Self {
        CimMachine::new()
    }
}

impl IterativeSolver for CimMachine {
    /// Runs the solve, panicking on envelope violations (use
    /// [`CimMachine::solve_detailed`] for recoverable handling).
    fn solve(
        &mut self,
        graph: &IsingGraph,
        initial: &SpinVector,
        options: &SolveOptions,
    ) -> SolveResult {
        self.solve_detailed(graph, initial, options)
            .expect("graph outside Ising-CIM envelope")
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sachi_ising::graph::topology;
    use sachi_ising::solver::CpuReferenceSolver;

    fn kings_problem() -> (IsingGraph, SpinVector, SolveOptions) {
        let g = topology::king(6, 6, |i, j| ((i + j) % 3 + 1) as i32).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let init = SpinVector::random(36, &mut rng);
        let opts = SolveOptions::for_graph(&g, 4).with_trace();
        (g, init, opts)
    }

    #[test]
    fn cim_matches_golden_trajectory() {
        let (g, init, opts) = kings_problem();
        let mut reference = CpuReferenceSolver::new();
        let golden = reference.solve(&g, &init, &opts);
        let mut cim = CimMachine::new();
        let (result, report) = cim.solve_detailed(&g, &init, &opts).unwrap();
        assert_eq!(result.energy, golden.energy);
        assert_eq!(result.trace, golden.trace);
        assert_eq!(report.sweeps, golden.sweeps);
        assert!((report.reuse - 1.0).abs() < 1e-12);
    }

    #[test]
    fn envelope_enforced() {
        let cim = CimMachine::new();
        let complete = topology::complete(10, |_, _| 1).unwrap();
        assert_eq!(
            cim.check_limits(&complete).unwrap_err(),
            CimError::NotKingsGraph { max_degree: 9 }
        );
        let signed = topology::king(3, 3, |_, _| -1).unwrap();
        assert_eq!(
            cim.check_limits(&signed).unwrap_err(),
            CimError::CoefficientOutOfRange { value: -1 }
        );
        let wide = topology::king(3, 3, |_, _| 4).unwrap();
        assert!(cim.check_limits(&wide).is_err());
        let ok = topology::king(3, 3, |_, _| 3).unwrap();
        assert!(cim.check_limits(&ok).is_ok());
    }

    #[test]
    fn two_cycle_compute_update_sequence() {
        let cim = CimMachine::new();
        // 3 + 3 cycles per spin per sweep.
        assert_eq!(cim.cycles_per_sweep(500), 3_000);
        assert_eq!(cim.cycles_per_sweep(1_000_000), 6_000_000);
    }

    #[test]
    fn partitioning_duplicates_edge_cells() {
        let cim = CimMachine::new();
        let (arrays_small, dup_small) = cim.partitioning(500);
        assert_eq!(arrays_small, 1);
        assert_eq!(dup_small, 0);
        let (arrays_big, dup_big) = cim.partitioning(1_000_000);
        assert!(arrays_big > 1);
        assert!(dup_big > 0);
    }

    #[test]
    fn edram_factor_inflates_energy() {
        let (g, init, opts) = kings_problem();
        let mut cim = CimMachine::new();
        let (_, base) = cim.solve_detailed(&g, &init, &opts).unwrap();
        let mut cheaper_config = CimConfig::paper();
        cheaper_config.tech.edram_xnor_power_factor = 1.0;
        let mut cheaper = CimMachine::with_config(cheaper_config);
        let (_, flat) = cheaper.solve_detailed(&g, &init, &opts).unwrap();
        assert!(base.energy.total() > flat.energy.total());
    }

    #[test]
    fn error_messages() {
        assert!(format!("{}", CimError::NotKingsGraph { max_degree: 12 }).contains("12"));
        assert!(format!("{}", CimError::CoefficientOutOfRange { value: 9 }).contains('9'));
    }
}
