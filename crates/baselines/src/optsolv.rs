//! Dedicated optimized solvers ("OPTSolv" in Fig. 16).
//!
//! The paper compares against Concorde (TSP), Ford-Fulkerson network flow
//! (image segmentation), LAMMPS (molecular dynamics) and a number
//! partitioner for asset allocation. None of those code bases is
//! redistributable here, so each is replaced by a solver of the same
//! algorithmic family (see the DESIGN.md substitution table):
//!
//! * [`tsp_reference`] — nearest-neighbor + 2-opt (Concorde stand-in);
//! * [`edmonds_karp_segmentation`] — BFS-augmenting max-flow min-cut
//!   (Ford-Fulkerson family, as the paper itself cites);
//! * [`karmarkar_karp`] — largest-differencing number partitioning;
//! * [`lattice_descent`] — greedy spin relaxation (LAMMPS stand-in for
//!   the ferromagnetic ground-state search).

use sachi_ising::spin::{Spin, SpinVector};
use sachi_workloads::molecular::MolecularDynamics;
use sachi_workloads::segmentation::ImageSegmentation;
use sachi_workloads::spec::Workload;
use sachi_workloads::tsp::{tour_length, two_opt_tour};
use std::collections::{BinaryHeap, VecDeque};

/// Concorde stand-in: returns `(tour, length)` for a distance matrix.
pub fn tsp_reference(dist: &[Vec<i64>]) -> (Vec<usize>, i64) {
    let tour = two_opt_tour(dist);
    let len = if tour.is_empty() {
        0
    } else {
        tour_length(&tour, dist)
    };
    (tour, len)
}

/// Karmarkar-Karp largest-differencing number partitioning with full
/// assignment reconstruction. Returns the `+1/-1` assignment and the
/// absolute imbalance.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn karmarkar_karp(values: &[i64]) -> (SpinVector, i64) {
    assert!(!values.is_empty(), "cannot partition zero values");
    let n = values.len();
    // Node arena: leaves 0..n are the inputs; internal nodes record that
    // their `same` child shares their side and `opposite` child takes the
    // other side.
    let mut same_child: Vec<Option<usize>> = vec![None; n];
    let mut opposite_child: Vec<Option<usize>> = vec![None; n];
    let mut heap: BinaryHeap<(i64, usize)> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| (v.abs(), i))
        .collect();
    while heap.len() > 1 {
        let (a, na) = heap.pop().expect("len > 1");
        let (b, nb) = heap.pop().expect("len > 1");
        let m = same_child.len();
        same_child.push(Some(na));
        opposite_child.push(Some(nb));
        heap.push((a - b, m));
    }
    let (imbalance, root) = heap.pop().expect("one node remains");
    // Color the difference tree.
    let mut assignment = vec![Spin::Up; n];
    let mut stack = vec![(root, Spin::Up)];
    while let Some((node, color)) = stack.pop() {
        if node < n {
            assignment[node] = color;
            continue;
        }
        if let Some(s) = same_child[node] {
            stack.push((s, color));
        }
        if let Some(o) = opposite_child[node] {
            stack.push((o, color.flipped()));
        }
    }
    (SpinVector::from_spins(&assignment), imbalance)
}

/// Ford-Fulkerson-family (Edmonds-Karp) min-cut segmentation of an image
/// instance. Source connects to bright pixels, dark pixels to the sink,
/// and neighbors share a similarity capacity; the min cut separates
/// foreground from background. Returns the label vector (`+1`
/// foreground) and the max-flow value.
pub fn edmonds_karp_segmentation(image: &ImageSegmentation) -> (SpinVector, i64) {
    let w = image.width();
    let h = image.height();
    let n = w * h;
    let source = n;
    let sink = n + 1;
    let nodes = n + 2;

    // Adjacency with residual capacities.
    let mut heads: Vec<Vec<usize>> = vec![Vec::new(); nodes];
    let mut to: Vec<usize> = Vec::new();
    let mut cap: Vec<i64> = Vec::new();
    let add_edge = |heads: &mut Vec<Vec<usize>>,
                    to: &mut Vec<usize>,
                    cap: &mut Vec<i64>,
                    u: usize,
                    v: usize,
                    c: i64| {
        heads[u].push(to.len());
        to.push(v);
        cap.push(c);
        heads[v].push(to.len());
        to.push(u);
        cap.push(0);
    };
    let pixels = image.pixels();
    for (i, &p) in pixels.iter().enumerate() {
        // Terminal affinities.
        add_edge(&mut heads, &mut to, &mut cap, source, i, p as i64);
        add_edge(&mut heads, &mut to, &mut cap, i, sink, 255 - p as i64);
    }
    // 4-neighbor smoothness, symmetric.
    for r in 0..h {
        for c_ in 0..w {
            let u = r * w + c_;
            for (nr, nc) in [(r + 1, c_), (r, c_ + 1)] {
                if nr < h && nc < w {
                    let v = nr * w + nc;
                    let sim = 64 - ((pixels[u] as i64 - pixels[v] as i64).abs() / 4).min(63);
                    add_edge(&mut heads, &mut to, &mut cap, u, v, sim);
                    add_edge(&mut heads, &mut to, &mut cap, v, u, sim);
                }
            }
        }
    }

    // Edmonds-Karp: BFS shortest augmenting paths.
    let mut flow = 0i64;
    loop {
        let mut parent_edge = vec![usize::MAX; nodes];
        let mut visited = vec![false; nodes];
        visited[source] = true;
        let mut queue = VecDeque::from([source]);
        'bfs: while let Some(u) = queue.pop_front() {
            for &e in &heads[u] {
                let v = to[e];
                if !visited[v] && cap[e] > 0 {
                    visited[v] = true;
                    parent_edge[v] = e;
                    if v == sink {
                        break 'bfs;
                    }
                    queue.push_back(v);
                }
            }
        }
        if !visited[sink] {
            break;
        }
        // Bottleneck along the path.
        let mut bottleneck = i64::MAX;
        let mut v = sink;
        while v != source {
            let e = parent_edge[v];
            bottleneck = bottleneck.min(cap[e]);
            v = to[e ^ 1];
        }
        let mut v = sink;
        while v != source {
            let e = parent_edge[v];
            cap[e] -= bottleneck;
            cap[e ^ 1] += bottleneck;
            v = to[e ^ 1];
        }
        flow += bottleneck;
    }

    // Min cut: source-side of the residual graph is foreground.
    let mut reachable = vec![false; nodes];
    reachable[source] = true;
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        for &e in &heads[u] {
            let v = to[e];
            if !reachable[v] && cap[e] > 0 {
                reachable[v] = true;
                queue.push_back(v);
            }
        }
    }
    let labels: SpinVector = (0..n).map(|i| Spin::from_bit(reachable[i])).collect();
    (labels, flow)
}

/// LAMMPS stand-in: greedy lattice relaxation — repeated deterministic
/// sweeps of the sign rule until quiescent. Returns the spins and the
/// number of sweeps used.
pub fn lattice_descent(
    md: &MolecularDynamics,
    initial: &SpinVector,
    max_sweeps: u64,
) -> (SpinVector, u64) {
    let graph = md.graph();
    let mut spins = initial.clone();
    let mut sweeps = 0;
    while sweeps < max_sweeps {
        let mut flips = 0;
        for i in 0..graph.num_spins() {
            let h = sachi_ising::hamiltonian::local_field(graph, &spins, i);
            let new = sachi_ising::hamiltonian::update_rule(h, spins.get(i));
            if new != spins.get(i) {
                spins.set(i, new);
                flips += 1;
            }
        }
        sweeps += 1;
        if flips == 0 {
            break;
        }
    }
    (spins, sweeps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sachi_workloads::segmentation::Connectivity;
    use sachi_workloads::tsp::{distance_matrix, random_cities};

    #[test]
    fn tsp_reference_produces_valid_tour() {
        let coords = random_cities(12, 1);
        let d = distance_matrix(&coords);
        let (tour, len) = tsp_reference(&d);
        assert_eq!(tour.len(), 12);
        assert!(len > 0);
        let mut sorted = tour.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn karmarkar_karp_exact_on_known_instance() {
        // {1, 2, 3, 4} partitions perfectly (1+4 | 2+3) and differencing
        // finds it.
        let (assignment, imbalance) = karmarkar_karp(&[1, 2, 3, 4]);
        assert_eq!(imbalance, 0);
        let signed: i64 = [1, 2, 3, 4]
            .iter()
            .zip(assignment.iter())
            .map(|(&v, s)| v * s.value())
            .sum();
        assert_eq!(signed.abs(), 0);
        // The classic {4..8} example: differencing stops at imbalance 2
        // even though a perfect split exists — KK is a heuristic, and the
        // reconstruction must agree with the differencing result.
        let (assignment, imbalance) = karmarkar_karp(&[4, 5, 6, 7, 8]);
        assert_eq!(imbalance, 2);
        let signed: i64 = [4, 5, 6, 7, 8]
            .iter()
            .zip(assignment.iter())
            .map(|(&v, s)| v * s.value())
            .sum();
        assert_eq!(signed.abs(), 2);
    }

    #[test]
    fn karmarkar_karp_assignment_matches_reported_imbalance() {
        let mut rng = StdRng::seed_from_u64(3);
        use rand::Rng;
        let values: Vec<i64> = (0..40).map(|_| rng.gen_range(1..10_000)).collect();
        let (assignment, imbalance) = karmarkar_karp(&values);
        let signed: i64 = values
            .iter()
            .zip(assignment.iter())
            .map(|(&v, s)| v * s.value())
            .sum();
        assert_eq!(
            signed.abs(),
            imbalance,
            "reconstruction inconsistent with differencing"
        );
        // KK is near-optimal on random instances: imbalance far below max value.
        assert!(imbalance < 10_000, "imbalance {imbalance}");
    }

    #[test]
    fn karmarkar_karp_single_value() {
        let (assignment, imbalance) = karmarkar_karp(&[42]);
        assert_eq!(imbalance, 42);
        assert_eq!(assignment.len(), 1);
    }

    #[test]
    fn edmonds_karp_separates_disc_from_background() {
        let image = ImageSegmentation::with_options(12, 12, 5, Connectivity::Grid4, 6);
        let (labels, flow) = edmonds_karp_segmentation(&image);
        assert!(flow > 0);
        let fg = labels.count_up();
        // The bright disc covers a meaningful minority of the image.
        assert!(
            fg > 5 && fg < 139,
            "degenerate segmentation: {fg} foreground"
        );
        // Foreground should be brighter on average than background.
        let pixels = image.pixels();
        let (mut fg_sum, mut fg_n, mut bg_sum, mut bg_n) = (0u64, 0u64, 0u64, 0u64);
        for (i, s) in labels.iter().enumerate() {
            if s.bit() {
                fg_sum += pixels[i] as u64;
                fg_n += 1;
            } else {
                bg_sum += pixels[i] as u64;
                bg_n += 1;
            }
        }
        assert!(
            fg_sum * bg_n > bg_sum * fg_n,
            "foreground darker than background"
        );
    }

    #[test]
    fn lattice_descent_reaches_ground_state_from_near_alignment() {
        let md = MolecularDynamics::new(5, 5, 2);
        let mut init = SpinVector::filled(25, Spin::Up);
        init.flip(7);
        init.flip(12);
        let (spins, sweeps) = lattice_descent(&md, &init, 100);
        assert!(sweeps < 100);
        assert!((md.accuracy(&spins) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lattice_descent_monotonically_reduces_energy() {
        let md = MolecularDynamics::new(6, 6, 4);
        let mut rng = StdRng::seed_from_u64(8);
        let init = SpinVector::random(36, &mut rng);
        let before = sachi_ising::hamiltonian::energy(md.graph(), &init);
        let (spins, _) = lattice_descent(&md, &init, 50);
        let after = sachi_ising::hamiltonian::energy(md.graph(), &spins);
        assert!(after <= before);
    }
}
