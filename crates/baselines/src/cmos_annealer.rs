//! CMOS annealing baseline: a Hitachi-style dedicated digital Ising chip
//! (Yamaoka et al., JSSC 2016 — the paper’s reference \[36\]).
//!
//! The third machine generation the paper positions SACHI against:
//! spins live in on-chip SRAM next to dedicated update logic; groups of
//! non-adjacent cells update *in parallel* each phase. Its envelope is
//! narrow — King's-graph connectivity, ternary coefficients
//! `{-1, 0, +1}`, 20k spins per chip — and, unlike every iterative
//! machine in this workspace, its **group-parallel update follows a
//! different trajectory** than the sequential golden protocol: cells in
//! one group see only the *previous* values of cells updated later. The
//! tests demonstrate both facts: trajectories differ, final solution
//! quality is comparable.
//!
//! A proper King's-graph update grouping needs 4 colors (the 2x2 block
//! classes): two same-class cells are never adjacent, so a phase's
//! parallel updates never race.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sachi_ising::anneal::Annealer;
use sachi_ising::graph::IsingGraph;
use sachi_ising::hamiltonian::{energy, local_field, update_rule};
use sachi_ising::solver::{SolveOptions, SolveResult};
use sachi_ising::spin::SpinVector;
use sachi_mem::energy::{EnergyComponent, EnergyLedger};
use sachi_mem::params::TechnologyParams;
use sachi_mem::units::{Cycles, Nanoseconds};
use std::fmt;

/// Chip capacity (the JSSC chip: 20k spins).
pub const CMOS_ANNEALER_MAX_SPINS: usize = 20_000;

/// Error for problems outside the chip's envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmosAnnealerError {
    /// More spins than the chip holds.
    TooManySpins {
        /// Requested spin count.
        spins: usize,
    },
    /// Degree above King's-graph connectivity.
    NotKingsGraph {
        /// Maximum degree found.
        max_degree: usize,
    },
    /// A coefficient outside `{-1, 0, +1}`.
    CoefficientNotTernary {
        /// The offending coefficient.
        value: i32,
    },
}

impl fmt::Display for CmosAnnealerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmosAnnealerError::TooManySpins { spins } => {
                write!(
                    f,
                    "CMOS annealer holds {CMOS_ANNEALER_MAX_SPINS} spins, got {spins}"
                )
            }
            CmosAnnealerError::NotKingsGraph { max_degree } => {
                write!(
                    f,
                    "CMOS annealer supports King's graphs (degree <= 8), got {max_degree}"
                )
            }
            CmosAnnealerError::CoefficientNotTernary { value } => {
                write!(
                    f,
                    "CMOS annealer supports ternary coefficients, got {value}"
                )
            }
        }
    }
}

impl std::error::Error for CmosAnnealerError {}

/// Report of a CMOS-annealer solve.
#[derive(Debug, Clone)]
pub struct CmosAnnealerReport {
    /// Sweeps executed (each = 4 parallel group phases).
    pub sweeps: u64,
    /// Total cycles including loading.
    pub total_cycles: Cycles,
    /// Wall-clock time.
    pub wall_time: Nanoseconds,
    /// Energy ledger.
    pub energy: EnergyLedger,
    /// Update groups per sweep (4 for King's graphs).
    pub groups: u64,
}

/// The group-parallel dedicated annealer.
#[derive(Debug, Clone)]
pub struct CmosAnnealer {
    tech: TechnologyParams,
    /// Cycles one parallel group phase takes (local read + MAC + write).
    pub cycles_per_phase: u64,
    /// Lattice width used to derive the 4-coloring; spins index as
    /// `row * width + col`.
    width: usize,
}

impl CmosAnnealer {
    /// Creates a chip model for a lattice of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "lattice width must be positive");
        CmosAnnealer {
            tech: TechnologyParams::freepdk45(),
            cycles_per_phase: 2,
            width,
        }
    }

    /// Checks the chip's envelope.
    ///
    /// # Errors
    ///
    /// Returns [`CmosAnnealerError`] outside the envelope.
    pub fn check_limits(&self, graph: &IsingGraph) -> Result<(), CmosAnnealerError> {
        if graph.num_spins() > CMOS_ANNEALER_MAX_SPINS {
            return Err(CmosAnnealerError::TooManySpins {
                spins: graph.num_spins(),
            });
        }
        if graph.max_degree() > 8 {
            return Err(CmosAnnealerError::NotKingsGraph {
                max_degree: graph.max_degree(),
            });
        }
        for (_, _, w) in graph.edges() {
            if !(-1..=1).contains(&w) {
                return Err(CmosAnnealerError::CoefficientNotTernary { value: w });
            }
        }
        Ok(())
    }

    /// The 2x2-block update group of spin `i` (0..4).
    fn group_of(&self, i: usize) -> usize {
        let (r, c) = (i / self.width, i % self.width);
        (r % 2) * 2 + (c % 2)
    }

    /// Cycles per sweep: 4 group phases, each a fixed-latency parallel
    /// read-MAC-write — the dedicated-logic speed the paper concedes to
    /// this generation, bought with its narrow envelope.
    pub fn cycles_per_sweep(&self) -> u64 {
        4 * self.cycles_per_phase
    }

    /// Runs a group-parallel annealed solve. NOTE: this machine does
    /// *not* follow the shared sequential protocol — within a phase every
    /// cell sees the pre-phase state of its own group (they are never
    /// adjacent, so this equals the sequential result *within* the
    /// group), but groups see each other's latest values only between
    /// phases.
    ///
    /// # Errors
    ///
    /// Returns [`CmosAnnealerError`] if the graph violates the envelope.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len()` does not match the graph.
    pub fn solve_detailed(
        &mut self,
        graph: &IsingGraph,
        initial: &SpinVector,
        options: &SolveOptions,
    ) -> Result<(SolveResult, CmosAnnealerReport), CmosAnnealerError> {
        self.check_limits(graph)?;
        assert_eq!(
            initial.len(),
            graph.num_spins(),
            "initial spins must match graph size"
        );
        let n = graph.num_spins();
        let mut spins = initial.clone();
        let mut annealer = Annealer::new(options.schedule, options.seed);
        let mut rng = StdRng::seed_from_u64(options.seed ^ 0xc3_05);
        let mut ledger = EnergyLedger::new();

        // Loading: spins + ternary ICs (2 bits each) into the on-chip SRAM.
        let payload_bits = n as u64 + 2 * graph.num_edges() as u64 * 2;
        let mut total_cycles = self.tech.dram_stream_cycles(payload_bits.div_ceil(8));
        ledger.record(
            EnergyComponent::DramAccess,
            self.tech.movement_energy_per_bit() * payload_bits,
        );
        ledger.record(
            EnergyComponent::SramWrite,
            self.tech.sram_write_energy_per_bit() * payload_bits,
        );

        let mut sweeps = 0u64;
        let mut total_flips = 0u64;
        let mut converged = false;
        let mut trace = Vec::new();
        let max_sweeps = options.effective_max_sweeps(graph.num_spins());
        while sweeps < max_sweeps {
            let mut flips_this_sweep = 0u64;
            for group in 0..4usize {
                // All cells of one group update in parallel from the
                // current state (no intra-group adjacency).
                let mut updates = Vec::new();
                for i in (0..n).filter(|&i| self.group_of(i) == group) {
                    let h = local_field(graph, &spins, i);
                    let current = spins.get(i);
                    let mut new = update_rule(h, current);
                    // Hitachi-style annealing: random bit injection with
                    // probability tied to the shared schedule temperature.
                    if new == current {
                        let p = annealer.acceptance_probability(2 * h.abs().max(1));
                        if p > 0.0 && rng.gen::<f64>() < p {
                            new = current.flipped();
                        }
                    }
                    if new != current {
                        updates.push((i, new));
                    }
                }
                for &(i, new) in &updates {
                    spins.set(i, new);
                    flips_this_sweep += 1;
                    // Local update write.
                    ledger.record(
                        EnergyComponent::SramWrite,
                        self.tech.sram_write_energy_per_bit() * 1u64,
                    );
                }
                // Phase energy: every cell reads its 8 neighbor spins and
                // ternary ICs into its MAC.
                let cells = n as u64 / 4;
                ledger.record(
                    EnergyComponent::SramRead,
                    self.tech.rbl_energy_per_bit() * (cells * 8 * 3),
                );
                ledger.record(
                    EnergyComponent::NearMemoryAdd,
                    self.tech.adder_energy_per_bit() * (cells * 8 * 2),
                );
            }
            ledger.record(
                EnergyComponent::Annealer,
                self.tech.annealer_energy_per_decision() * n as u64,
            );
            total_cycles += Cycles::new(self.cycles_per_sweep());
            sweeps += 1;
            total_flips += flips_this_sweep;
            if options.record_trace {
                trace.push(energy(graph, &spins));
            }
            let frozen = annealer.is_frozen();
            annealer.cool();
            if flips_this_sweep == 0 && frozen {
                converged = true;
                break;
            }
        }

        let report = CmosAnnealerReport {
            sweeps,
            total_cycles,
            wall_time: total_cycles.to_time(self.tech.cycle_time),
            energy: ledger,
            groups: 4,
        };
        let result = SolveResult {
            energy: energy(graph, &spins),
            spins,
            sweeps,
            flips: total_flips,
            converged,
            trace,
            uphill_accepted: annealer.uphill_accepted(),
            uphill_rejected: annealer.uphill_rejected(),
            degraded: false,
        };
        Ok((result, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sachi_ising::graph::topology;
    use sachi_ising::solver::{CpuReferenceSolver, IterativeSolver};

    fn lattice(side: usize, seed: u64) -> (IsingGraph, SpinVector, SolveOptions) {
        let g = topology::king(side, side, |_, _| 1).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let init = SpinVector::random(side * side, &mut rng);
        let opts = SolveOptions::for_graph(&g, seed + 1).with_trace();
        (g, init, opts)
    }

    #[test]
    fn group_coloring_is_proper_for_kings_graph() {
        let side = 8;
        let g = topology::king(side, side, |_, _| 1).unwrap();
        let chip = CmosAnnealer::new(side);
        for (u, v, _) in g.edges() {
            assert_ne!(
                chip.group_of(u as usize),
                chip.group_of(v as usize),
                "adjacent cells {u},{v} share an update group"
            );
        }
    }

    #[test]
    fn envelope_enforced() {
        let chip = CmosAnnealer::new(10);
        let dense = topology::complete(10, |_, _| 1).unwrap();
        assert!(matches!(
            chip.check_limits(&dense),
            Err(CmosAnnealerError::NotKingsGraph { .. })
        ));
        let heavy = topology::king(3, 3, |_, _| 2).unwrap();
        assert!(matches!(
            chip.check_limits(&heavy),
            Err(CmosAnnealerError::CoefficientNotTernary { value: 2 })
        ));
        let fine = topology::king(3, 3, |_, _| 1).unwrap();
        assert!(chip.check_limits(&fine).is_ok());
        let msg = format!("{}", CmosAnnealerError::TooManySpins { spins: 30_000 });
        assert!(msg.contains("30000"));
    }

    #[test]
    fn ferromagnet_reaches_comparable_quality_despite_different_trajectory() {
        let (g, init, opts) = lattice(8, 3);
        let mut chip = CmosAnnealer::new(8);
        let (chip_result, report) = chip.solve_detailed(&g, &init, &opts).unwrap();
        let golden = CpuReferenceSolver::new().solve(&g, &init, &opts);
        // Different update semantics -> different trajectory...
        assert_ne!(
            chip_result.trace, golden.trace,
            "group-parallel should diverge"
        );
        // ...but comparable final quality on the ferromagnet.
        let bound = golden.energy + (golden.energy.abs() / 5);
        assert!(
            chip_result.energy <= bound,
            "chip energy {} much worse than golden {}",
            chip_result.energy,
            golden.energy
        );
        assert_eq!(report.groups, 4);
        assert!(report.energy.total().get() > 0.0);
    }

    #[test]
    fn sweep_cost_is_constant_in_problem_size() {
        let small = CmosAnnealer::new(8);
        let large = CmosAnnealer::new(100);
        assert_eq!(small.cycles_per_sweep(), large.cycles_per_sweep());
        assert_eq!(small.cycles_per_sweep(), 8);
    }

    #[test]
    fn dedicated_chip_is_faster_in_envelope_than_sachi_per_sweep() {
        // The trade the paper describes: generation-3 dedicated logic is
        // fast inside its narrow envelope; SACHI is general.
        let chip = CmosAnnealer::new(100);
        // SACHI n3 on a 10K-spin King's lattice: ~10000/16 cycles/sweep.
        let sachi_per_sweep = 10_000u64 / 16;
        assert!(chip.cycles_per_sweep() < sachi_per_sweep);
        // ...but it cannot touch a 4-bit problem at all.
        let heavy = topology::king(4, 4, |_, _| 5).unwrap();
        assert!(chip.check_limits(&heavy).is_err());
    }
}
