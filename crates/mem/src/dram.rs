//! DRAM controller with the counter-based prefetcher of Sec. IV.A.
//!
//! CIM accesses have structured, predictable address patterns: the compute
//! array is consumed top-to-bottom, one row per cycle. SACHI's DRAM
//! controller therefore keeps a counter of the rows not yet computed; when
//! it drops to a threshold equal to the DRAM→storage + storage→compute
//! movement latency, a prefetch is issued so the next round's data arrives
//! exactly when the current round drains.

use crate::energy::{EnergyComponent, EnergyLedger};
use crate::fault::FaultInjector;
use crate::params::TechnologyParams;
use crate::units::{Bits, Cycles, Picojoules};

/// Counter-based prefetch unit.
///
/// ```
/// use sachi_mem::dram::PrefetchCounter;
///
/// // 10 rows left to compute, prefetch must lead by 4 cycles.
/// let mut pf = PrefetchCounter::new(10, 4);
/// let mut issued_at = None;
/// for cycle in 0..10 {
///     if pf.consume_row() {
///         issued_at = Some(cycle);
///     }
/// }
/// assert_eq!(issued_at, Some(5)); // fired when remaining hit the threshold
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchCounter {
    remaining_rows: u64,
    threshold: u64,
    issued: bool,
}

impl PrefetchCounter {
    /// Creates a counter for a round of `rows` compute-array rows with the
    /// given lead `threshold` (in rows == cycles, since one row is consumed
    /// per cycle).
    pub fn new(rows: u64, threshold: u64) -> Self {
        PrefetchCounter {
            remaining_rows: rows,
            threshold,
            issued: false,
        }
    }

    /// Rows not yet consumed.
    pub fn remaining(&self) -> u64 {
        self.remaining_rows
    }

    /// Whether the prefetch for the next round has been issued.
    pub fn issued(&self) -> bool {
        self.issued
    }

    /// Consumes one row (one compute cycle). Returns `true` on the cycle
    /// the prefetch request fires.
    pub fn consume_row(&mut self) -> bool {
        if self.remaining_rows == 0 {
            return false;
        }
        self.remaining_rows -= 1;
        if !self.issued && self.remaining_rows <= self.threshold {
            self.issued = true;
            return true;
        }
        false
    }

    /// Re-arms the counter for the next round.
    pub fn rearm(&mut self, rows: u64) {
        self.remaining_rows = rows;
        self.issued = false;
    }
}

/// Cumulative controller statistics, snapshot for metrics export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DramStats {
    /// Number of `load` calls.
    pub loads: u64,
    /// Total bits streamed from DRAM.
    pub bits_loaded: u64,
    /// Prefetches issued (rounds whose next-round load overlapped).
    pub prefetches_issued: u64,
    /// Stream cycles fully hidden behind compute by the prefetcher.
    pub prefetch_hidden_cycles: u64,
    /// Stream cycles exposed on the critical path despite prefetching
    /// (the load outlasted the round it overlapped).
    pub prefetch_exposed_cycles: u64,
    /// Prefetches that arrived late: the streamed payload outlasted the
    /// compute round it was meant to hide behind.
    pub prefetch_late_arrivals: u64,
}

impl DramStats {
    /// Exports the counters into `reg` under the `dram_` prefix.
    pub fn export(&self, reg: &mut sachi_obs::MetricsRegistry) {
        reg.counter_add("dram_loads", self.loads);
        reg.counter_add("dram_bits_loaded", self.bits_loaded);
        reg.counter_add("dram_prefetches_issued", self.prefetches_issued);
        reg.counter_add("dram_prefetch_hidden_cycles", self.prefetch_hidden_cycles);
        reg.counter_add("dram_prefetch_exposed_cycles", self.prefetch_exposed_cycles);
        reg.counter_add("dram_prefetch_late_arrivals", self.prefetch_late_arrivals);
    }

    /// Adds another controller's counters into this one.
    pub fn merge(&mut self, other: &DramStats) {
        self.loads += other.loads;
        self.bits_loaded += other.bits_loaded;
        self.prefetches_issued += other.prefetches_issued;
        self.prefetch_hidden_cycles += other.prefetch_hidden_cycles;
        self.prefetch_exposed_cycles += other.prefetch_exposed_cycles;
        self.prefetch_late_arrivals += other.prefetch_late_arrivals;
    }
}

/// Behavioural DRAM + controller model.
#[derive(Debug, Clone)]
pub struct DramController {
    params: TechnologyParams,
    prefetch_enabled: bool,
    /// Cumulative statistics.
    stats: DramStats,
}

impl DramController {
    /// Creates a controller with prefetching enabled (the paper's design).
    pub fn new(params: TechnologyParams) -> Self {
        DramController {
            params,
            prefetch_enabled: true,
            stats: DramStats::default(),
        }
    }

    /// Disables the prefetcher (ablation `abl_prefetch`).
    pub fn without_prefetch(mut self) -> Self {
        self.prefetch_enabled = false;
        self
    }

    /// Whether prefetching is enabled.
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetch_enabled
    }

    /// Technology parameters in use.
    pub fn params(&self) -> &TechnologyParams {
        &self.params
    }

    /// Cycles to stream `payload` from DRAM over the 64 B/cycle bus.
    pub fn stream_cycles(&self, payload: Bits) -> Cycles {
        self.params.dram_stream_cycles(payload.to_bytes_ceil())
    }

    /// The prefetch threshold in rows: the counter must fire early enough
    /// to cover DRAM→storage streaming plus storage→compute movement.
    pub fn prefetch_threshold_rows(&self, next_round_payload: Bits) -> u64 {
        (self.stream_cycles(next_round_payload) + self.params.storage_to_compute_cycles()).get()
    }

    /// Books one load of `payload` bits and returns the cycles it occupies
    /// on the bus. Call [`DramController::effective_round_cycles`] to decide
    /// how much of that shows up on the critical path.
    pub fn load(&mut self, payload: Bits, ledger: &mut EnergyLedger) -> Cycles {
        self.stats.loads += 1;
        self.stats.bits_loaded += payload.get();
        ledger.record(
            EnergyComponent::DramAccess,
            self.params.movement_energy_per_bit() * payload.get(),
        );
        // Controller bookkeeping: one counter update per streamed beat,
        // priced as an adder op per 64-byte beat.
        let beats = self.stream_cycles(payload).get();
        ledger.record(
            EnergyComponent::DramController,
            self.params.adder_energy_per_bit() * beats,
        );
        self.stream_cycles(payload)
    }

    /// [`DramController::load`] through a [`FaultInjector`]: cycle and
    /// energy accounting are identical to a clean load (corrupted beats
    /// still occupy the bus and burn the same energy); the injector
    /// additionally draws per-bit stream corruption and the corrupted
    /// bit count is returned alongside the cycles. With an inert model
    /// this is bit-identical to `load` and consumes no RNG draws.
    pub fn load_with_faults(
        &mut self,
        payload: Bits,
        ledger: &mut EnergyLedger,
        inj: &mut FaultInjector,
    ) -> (Cycles, u64) {
        let cycles = self.load(payload, ledger);
        let corrupted = inj.flips_in_dram_stream(payload.get());
        (cycles, corrupted)
    }

    /// Critical-path cycles of a compute round of `compute` cycles whose
    /// *next* round needs `load` cycles of DRAM streaming.
    ///
    /// With the prefetcher, the load overlaps compute and only the excess
    /// (if the load is longer than the round) is exposed. Without it, the
    /// full load serializes after the round.
    pub fn effective_round_cycles(&mut self, compute: Cycles, load: Cycles) -> Cycles {
        if load > Cycles::ZERO && self.prefetch_enabled {
            self.stats.prefetches_issued += 1;
            if load <= compute {
                // Fully hidden: the whole stream rode under the round.
                self.stats.prefetch_hidden_cycles += load.get();
            } else {
                // Late arrival: compute's worth hid, the rest is exposed.
                self.stats.prefetch_hidden_cycles += compute.get();
                self.stats.prefetch_exposed_cycles += load.saturating_sub(compute).get();
                self.stats.prefetch_late_arrivals += 1;
            }
        }
        if self.prefetch_enabled {
            compute.max(load)
        } else {
            compute + load
        }
    }

    /// Number of `load` calls so far.
    pub fn loads(&self) -> u64 {
        self.stats.loads
    }

    /// Total bits loaded so far.
    pub fn bits_loaded(&self) -> Bits {
        Bits::new(self.stats.bits_loaded)
    }

    /// Number of prefetches issued so far.
    pub fn prefetches_issued(&self) -> u64 {
        self.stats.prefetches_issued
    }

    /// Snapshot of the cumulative controller statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Energy to initially place `payload` bits into DRAM (the paper charges
    /// this "(a) storing input variables and ICs onto DRAM" phase to every
    /// design, SACHI and baselines alike).
    pub fn initial_store_energy(&self, payload: Bits) -> Picojoules {
        self.params.movement_energy_per_bit() * payload.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_counter_fires_at_threshold() {
        let mut pf = PrefetchCounter::new(5, 2);
        assert!(!pf.consume_row()); // remaining 4
        assert!(!pf.consume_row()); // remaining 3
        assert!(pf.consume_row()); // remaining 2 == threshold -> fire
        assert!(pf.issued());
        assert!(!pf.consume_row()); // already issued
        assert!(!pf.consume_row());
        assert_eq!(pf.remaining(), 0);
        assert!(!pf.consume_row()); // drained
        pf.rearm(3);
        assert!(!pf.issued());
        assert_eq!(pf.remaining(), 3);
    }

    #[test]
    fn threshold_larger_than_round_fires_immediately() {
        let mut pf = PrefetchCounter::new(3, 10);
        assert!(pf.consume_row());
    }

    #[test]
    fn stream_cycles_uses_bus_width() {
        let ctrl = DramController::new(TechnologyParams::default());
        assert_eq!(ctrl.stream_cycles(Bits::from_bytes(64)), Cycles::new(1));
        assert_eq!(ctrl.stream_cycles(Bits::from_bytes(100)), Cycles::new(2));
    }

    #[test]
    fn prefetch_threshold_covers_both_hops() {
        let ctrl = DramController::new(TechnologyParams::default());
        // 640 B -> 10 bus cycles; +20 cycles storage->compute movement.
        assert_eq!(ctrl.prefetch_threshold_rows(Bits::from_bytes(640)), 30);
    }

    #[test]
    fn load_books_energy_and_stats() {
        let mut ctrl = DramController::new(TechnologyParams::default());
        let mut ledger = EnergyLedger::new();
        let cycles = ctrl.load(Bits::from_bytes(128), &mut ledger);
        assert_eq!(cycles, Cycles::new(2));
        assert_eq!(ctrl.loads(), 1);
        assert_eq!(ctrl.bits_loaded(), Bits::from_bytes(128));
        // 1024 bits at 1 pJ/bit.
        assert!((ledger.component(EnergyComponent::DramAccess).get() - 1024.0).abs() < 1e-9);
        assert!(ledger.component(EnergyComponent::DramController).get() > 0.0);
    }

    #[test]
    fn prefetch_overlaps_load_with_compute() {
        let mut with = DramController::new(TechnologyParams::default());
        let mut without = DramController::new(TechnologyParams::default()).without_prefetch();
        let compute = Cycles::new(100);
        let load = Cycles::new(30);
        assert_eq!(with.effective_round_cycles(compute, load), Cycles::new(100));
        assert_eq!(
            without.effective_round_cycles(compute, load),
            Cycles::new(130)
        );
        assert_eq!(with.prefetches_issued(), 1);
        assert_eq!(without.prefetches_issued(), 0);
        // A load longer than the round exposes only the excess... i.e. max.
        assert_eq!(
            with.effective_round_cycles(Cycles::new(10), Cycles::new(40)),
            Cycles::new(40)
        );
    }

    #[test]
    fn faulted_load_keeps_clean_accounting_and_counts_corruption() {
        use crate::fault::{FaultModel, FaultRate};
        let mut clean = DramController::new(TechnologyParams::default());
        let mut faulted = DramController::new(TechnologyParams::default());
        let mut clean_ledger = EnergyLedger::new();
        let mut faulted_ledger = EnergyLedger::new();

        // Inert model: identical in every respect, no draws.
        let mut inert = FaultModel::new(4).injector(0);
        let state = inert.stream_state();
        let want = clean.load(Bits::from_bytes(128), &mut clean_ledger);
        let (got, corrupted) =
            faulted.load_with_faults(Bits::from_bytes(128), &mut faulted_ledger, &mut inert);
        assert_eq!(got, want);
        assert_eq!(corrupted, 0);
        assert_eq!(inert.stream_state(), state);
        assert_eq!(faulted.loads(), clean.loads());
        assert!((faulted_ledger.total().get() - clean_ledger.total().get()).abs() < 1e-12);

        // Certainty DRAM BER corrupts every streamed bit; cycles unchanged.
        let model = FaultModel::new(4).with_dram_ber(FaultRate::from_ppb(1_000_000_000));
        let mut inj = model.injector(0);
        let (cycles, corrupted) =
            faulted.load_with_faults(Bits::new(100), &mut faulted_ledger, &mut inj);
        assert_eq!(cycles, faulted.stream_cycles(Bits::new(100)));
        assert_eq!(corrupted, 100);
        assert_eq!(inj.counters().dram_flips, 100);
    }

    #[test]
    fn initial_store_energy_is_1pj_per_bit() {
        let ctrl = DramController::new(TechnologyParams::default());
        let e = ctrl.initial_store_energy(Bits::new(100));
        assert!((e.get() - 100.0).abs() < 1e-9);
    }
}
