//! Append-only energy accounting.
//!
//! Every architectural event in the simulator books its energy against a
//! [`EnergyComponent`], so a solve produces not just a total but the same
//! breakdown the paper uses to argue about redundant compute (RBL
//! discharges), data movement, and converter overheads (BRIM's DAC).

use crate::units::Picojoules;
use std::fmt;

/// The architectural source of an energy expenditure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EnergyComponent {
    /// Read word-line activation during in-memory compute.
    RwlDrive,
    /// Read bit-line discharge (includes redundant-compute discharges).
    RblDischarge,
    /// SRAM write (fills, spin write-back).
    SramWrite,
    /// SRAM normal-mode read.
    SramRead,
    /// Storage-array to compute-array movement.
    DataMovement,
    /// Near-memory full adders (shift-and-add, accumulation).
    NearMemoryAdd,
    /// Decision logic choosing XNOR vs XNOR+1 (eqn. 4/5 select).
    DecisionLogic,
    /// Simulated-annealing block (Metropolis compare/flip).
    Annealer,
    /// DRAM array access when loading spins/ICs.
    DramAccess,
    /// DRAM controller / prefetch bookkeeping.
    DramController,
    /// BRIM coupled-oscillator fabric.
    Oscillator,
    /// BRIM per-bank DACs.
    Dac,
    /// Miscellaneous synthesized digital logic (muxes, flops).
    DigitalLogic,
}

impl EnergyComponent {
    /// All components, in ledger order.
    pub const ALL: [EnergyComponent; 13] = [
        EnergyComponent::RwlDrive,
        EnergyComponent::RblDischarge,
        EnergyComponent::SramWrite,
        EnergyComponent::SramRead,
        EnergyComponent::DataMovement,
        EnergyComponent::NearMemoryAdd,
        EnergyComponent::DecisionLogic,
        EnergyComponent::Annealer,
        EnergyComponent::DramAccess,
        EnergyComponent::DramController,
        EnergyComponent::Oscillator,
        EnergyComponent::Dac,
        EnergyComponent::DigitalLogic,
    ];

    /// Short label used in harness tables.
    pub fn label(self) -> &'static str {
        match self {
            EnergyComponent::RwlDrive => "rwl",
            EnergyComponent::RblDischarge => "rbl",
            EnergyComponent::SramWrite => "sram-write",
            EnergyComponent::SramRead => "sram-read",
            EnergyComponent::DataMovement => "movement",
            EnergyComponent::NearMemoryAdd => "adder",
            EnergyComponent::DecisionLogic => "decision",
            EnergyComponent::Annealer => "annealer",
            EnergyComponent::DramAccess => "dram",
            EnergyComponent::DramController => "dram-ctrl",
            EnergyComponent::Oscillator => "oscillator",
            EnergyComponent::Dac => "dac",
            EnergyComponent::DigitalLogic => "logic",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            EnergyComponent::RwlDrive => 0,
            EnergyComponent::RblDischarge => 1,
            EnergyComponent::SramWrite => 2,
            EnergyComponent::SramRead => 3,
            EnergyComponent::DataMovement => 4,
            EnergyComponent::NearMemoryAdd => 5,
            EnergyComponent::DecisionLogic => 6,
            EnergyComponent::Annealer => 7,
            EnergyComponent::DramAccess => 8,
            EnergyComponent::DramController => 9,
            EnergyComponent::Oscillator => 10,
            EnergyComponent::Dac => 11,
            EnergyComponent::DigitalLogic => 12,
        }
    }
}

impl fmt::Display for EnergyComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-component energy ledger.
///
/// ```
/// use sachi_mem::energy::{EnergyComponent, EnergyLedger};
/// use sachi_mem::units::Picojoules;
///
/// let mut ledger = EnergyLedger::new();
/// ledger.record(EnergyComponent::RwlDrive, Picojoules::new(0.05));
/// ledger.record(EnergyComponent::RblDischarge, Picojoules::new(0.035));
/// assert!((ledger.total().get() - 0.085).abs() < 1e-12);
/// assert!((ledger.component(EnergyComponent::RwlDrive).get() - 0.05).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnergyLedger {
    entries: [f64; 13],
}

impl EnergyLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        EnergyLedger::default()
    }

    /// Books `energy` against `component`.
    pub fn record(&mut self, component: EnergyComponent, energy: Picojoules) {
        self.entries[component.index()] += energy.get();
    }

    /// Energy booked against one component so far.
    pub fn component(&self, component: EnergyComponent) -> Picojoules {
        Picojoules::new(self.entries[component.index()])
    }

    /// Total energy across all components.
    pub fn total(&self) -> Picojoules {
        Picojoules::new(self.entries.iter().sum())
    }

    /// Exports per-component and total energy as `energy_*_pj` gauges.
    pub fn export(&self, reg: &mut sachi_obs::MetricsRegistry) {
        for component in EnergyComponent::ALL {
            let pj = self.component(component).get();
            if pj > 0.0 {
                let name = format!("energy_{}_pj", component.label().replace('-', "_"));
                reg.gauge_set(&name, pj);
            }
        }
        reg.gauge_set("energy_total_pj", self.total().get());
    }

    /// Adds every entry of `other` into `self` (merging tile ledgers).
    pub fn merge(&mut self, other: &EnergyLedger) {
        for (a, b) in self.entries.iter_mut().zip(other.entries.iter()) {
            *a += b;
        }
    }

    /// Iterates `(component, energy)` pairs with non-zero energy.
    pub fn iter(&self) -> impl Iterator<Item = (EnergyComponent, Picojoules)> + '_ {
        EnergyComponent::ALL
            .iter()
            .copied()
            .filter(|c| self.entries[c.index()] > 0.0)
            .map(|c| (c, Picojoules::new(self.entries[c.index()])))
    }

    /// True if nothing has been booked.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|&e| e == 0.0)
    }
}

impl fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "EnergyLedger(empty)");
        }
        write!(f, "EnergyLedger(total={}", self.total())?;
        for (c, e) in self.iter() {
            write!(f, ", {c}={e}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let mut l = EnergyLedger::new();
        assert!(l.is_empty());
        l.record(EnergyComponent::Dac, Picojoules::new(2.0));
        l.record(EnergyComponent::Dac, Picojoules::new(3.0));
        l.record(EnergyComponent::Oscillator, Picojoules::new(10.0));
        assert!((l.component(EnergyComponent::Dac).get() - 5.0).abs() < 1e-12);
        assert!((l.total().get() - 15.0).abs() < 1e-12);
        assert!(!l.is_empty());
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = EnergyLedger::new();
        a.record(EnergyComponent::RwlDrive, Picojoules::new(1.0));
        let mut b = EnergyLedger::new();
        b.record(EnergyComponent::RwlDrive, Picojoules::new(2.0));
        b.record(EnergyComponent::Annealer, Picojoules::new(0.5));
        a.merge(&b);
        assert!((a.component(EnergyComponent::RwlDrive).get() - 3.0).abs() < 1e-12);
        assert!((a.component(EnergyComponent::Annealer).get() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn iter_skips_zero_components() {
        let mut l = EnergyLedger::new();
        l.record(EnergyComponent::SramWrite, Picojoules::new(4.0));
        let items: Vec<_> = l.iter().collect();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].0, EnergyComponent::SramWrite);
    }

    #[test]
    fn all_components_have_distinct_indices_and_labels() {
        let mut seen = std::collections::BTreeSet::new();
        let mut labels = std::collections::BTreeSet::new();
        for c in EnergyComponent::ALL {
            assert!(seen.insert(c.index()), "duplicate index for {c:?}");
            assert!(labels.insert(c.label()), "duplicate label for {c:?}");
        }
        assert_eq!(seen.len(), 13);
    }

    #[test]
    fn display_formats() {
        let mut l = EnergyLedger::new();
        assert_eq!(format!("{l}"), "EnergyLedger(empty)");
        l.record(EnergyComponent::RwlDrive, Picojoules::new(1.0));
        let s = format!("{l}");
        assert!(s.contains("rwl=1.000 pJ"), "{s}");
    }
}
