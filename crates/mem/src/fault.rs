//! Deterministic fault injection for the near-memory compute path.
//!
//! SACHI repurposes live SRAM as an in-situ XNOR array and an L2 as a
//! tuple storage array — exactly the structures where real silicon
//! suffers transient bit flips, read-disturb, and stuck-at faults. The
//! architecture is *all-digital*, so unlike the analog Ising machines
//! (BRIM, Ising-CIM) device noise is not absorbed intrinsically: every
//! injected fault propagates deterministically through the discharge
//! pattern. This module supplies the fault source:
//!
//! * [`FaultRate`] — a bit-error rate stored as an integer threshold
//!   over the `u64` draw space, so fault decisions never involve
//!   floating-point comparisons and are byte-identical everywhere;
//! * [`FaultModel`] — the configuration: transient read BER, DRAM
//!   stream BER, stuck-at cells, and the fault seed;
//! * [`FaultInjector`] — a per-replica SplitMix64 stream derived from
//!   `(fault seed, stream salt)`. The solve layer salts the stream with
//!   the replica's derived annealer seed, which is a pure function of
//!   `(master seed, replica index)` — so a given `(master seed, fault
//!   seed, rate)` triple reproduces the exact same fault sequence at
//!   any thread count.
//!
//! ## Zero-rate identity
//!
//! A zero [`FaultRate`] consumes **no** RNG draws: every injection
//! entry point returns early before touching the stream. A machine
//! configured with an all-zero model is therefore bit-identical to a
//! machine with no fault model at all — the conformance suites assert
//! this.

use crate::units::convert::{count_u64, scale_by_fraction, to_index};

/// SplitMix64 stream increment (odd, so adding it walks a full-period
/// sequence mod 2^64).
const SPLITMIX64_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 output mix: a bijection on `u64` (Steele, Lea & Flood,
/// OOPSLA 2014). Same finalizer the replica-seed derivation uses.
#[inline]
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Resolution of [`FaultRate`]: probabilities are quantized to parts
/// per billion, ample for the 1e-9..1e-2 BER range of interest.
const PPB: u64 = 1_000_000_000;

/// A per-bit fault probability, stored as an integer threshold over the
/// full `u64` draw space (`p ≈ threshold / 2^64`).
///
/// Keeping the comparison in integers makes the fault stream
/// bit-reproducible across platforms; probabilities are quantized to
/// parts per billion on construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultRate {
    threshold: u64,
}

impl FaultRate {
    /// Probability zero: never fires, consumes no RNG draws.
    pub const ZERO: FaultRate = FaultRate { threshold: 0 };

    /// Rate from parts per billion (clamped to `PPB` = certainty).
    pub fn from_ppb(ppb: u64) -> Self {
        FaultRate {
            threshold: ppb.min(PPB).saturating_mul(u64::MAX / PPB),
        }
    }

    /// Rate from a probability in `[0, 1]` (clamped, quantized to ppb).
    pub fn from_probability(p: f64) -> Self {
        Self::from_ppb(scale_by_fraction(PPB, p.clamp(0.0, 1.0)))
    }

    /// The quantized rate back as parts per billion.
    pub fn ppb(self) -> u64 {
        self.threshold / (u64::MAX / PPB)
    }

    /// Whether this rate can never fire.
    pub fn is_zero(self) -> bool {
        self.threshold == 0
    }
}

/// A cell whose read value is pinned regardless of the stored bit —
/// the classic manufacturing stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckCell {
    /// Tile row of the stuck cell.
    pub row: usize,
    /// Tile column of the stuck cell.
    pub col: usize,
    /// The value the cell always reads as.
    pub value: bool,
}

/// Fault-model configuration: which faults exist and the seed that
/// makes their placement reproducible.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultModel {
    /// Seed of the fault stream (independent of the annealer seeds).
    pub seed: u64,
    /// Transient bit-flip probability per bit read from SRAM / the
    /// storage array (soft errors, read disturb).
    pub read_ber: FaultRate,
    /// Corruption probability per bit streamed from DRAM.
    pub dram_ber: FaultRate,
    /// Stuck-at cells applied to SRAM reads.
    pub stuck: Vec<StuckCell>,
}

impl FaultModel {
    /// A model with the given fault seed and no faults enabled.
    pub fn new(seed: u64) -> Self {
        FaultModel {
            seed,
            ..FaultModel::default()
        }
    }

    /// Sets the transient read bit-error rate.
    #[must_use]
    pub fn with_read_ber(mut self, rate: FaultRate) -> Self {
        self.read_ber = rate;
        self
    }

    /// Sets the DRAM stream bit-error rate.
    #[must_use]
    pub fn with_dram_ber(mut self, rate: FaultRate) -> Self {
        self.dram_ber = rate;
        self
    }

    /// Adds a stuck-at cell.
    #[must_use]
    pub fn with_stuck_cell(mut self, row: usize, col: usize, value: bool) -> Self {
        self.stuck.push(StuckCell { row, col, value });
        self
    }

    /// Whether the model can never perturb anything (all rates zero and
    /// no stuck cells) — the configuration the zero-rate identity
    /// contract covers.
    pub fn is_inert(&self) -> bool {
        self.read_ber.is_zero() && self.dram_ber.is_zero() && self.stuck.is_empty()
    }

    /// Builds the injector for one consumer stream. `stream_salt`
    /// decouples independent consumers — the solve layer passes the
    /// replica's derived annealer seed, so every replica owns a
    /// distinct stream that is still a pure function of `(master seed,
    /// fault seed, replica index)`.
    pub fn injector(&self, stream_salt: u64) -> FaultInjector {
        FaultInjector {
            state: splitmix64_mix(self.seed.wrapping_add(splitmix64_mix(stream_salt))),
            read_threshold: self.read_ber.threshold,
            dram_threshold: self.dram_ber.threshold,
            stuck: self.stuck.clone(),
            counters: FaultCounters::default(),
        }
    }
}

/// Raw injection counters accumulated by a [`FaultInjector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Transient bit flips injected into reads.
    pub transient_flips: u64,
    /// Reads that carried at least one injected flip.
    pub reads_corrupted: u64,
    /// Bits corrupted in DRAM streams.
    pub dram_flips: u64,
    /// Reads whose value was overridden by a stuck-at cell.
    pub stuck_overrides: u64,
    /// Cache lines upset by read disturb.
    pub line_disturbs: u64,
}

/// A deterministic fault stream plus the model parameters it applies.
///
/// ```
/// use sachi_mem::fault::{FaultModel, FaultRate};
///
/// let model = FaultModel::new(7).with_read_ber(FaultRate::from_probability(0.5));
/// let mut a = model.injector(1);
/// let mut b = model.injector(1);
/// // Same (seed, salt) => byte-identical fault sequence.
/// assert_eq!(a.flips_in_read(64), b.flips_in_read(64));
/// // A different salt decouples the stream.
/// let mut c = model.injector(2);
/// let _ = c.flips_in_read(64); // almost surely differs; still deterministic
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    state: u64,
    read_threshold: u64,
    dram_threshold: u64,
    stuck: Vec<StuckCell>,
    counters: FaultCounters,
}

impl FaultInjector {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(SPLITMIX64_GAMMA);
        splitmix64_mix(self.state)
    }

    /// The injection counters so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// The raw stream state — lets tests prove a zero-rate model never
    /// consumes a draw.
    pub fn stream_state(&self) -> u64 {
        self.state
    }

    /// Draws transient faults for a read of `bits` bits and returns how
    /// many bits flipped. Zero rate or zero width consumes no draws.
    pub fn flips_in_read(&mut self, bits: u64) -> u64 {
        if self.read_threshold == 0 || bits == 0 {
            return 0;
        }
        let mut flips = 0u64;
        for _ in 0..bits {
            if self.next_u64() < self.read_threshold {
                flips += 1;
            }
        }
        if flips > 0 {
            self.counters.reads_corrupted += 1;
            self.counters.transient_flips += flips;
        }
        flips
    }

    /// Draws corruption for a DRAM stream of `bits` bits and returns
    /// the corrupted bit count. Zero rate consumes no draws.
    pub fn flips_in_dram_stream(&mut self, bits: u64) -> u64 {
        if self.dram_threshold == 0 || bits == 0 {
            return 0;
        }
        let mut flips = 0u64;
        for _ in 0..bits {
            if self.next_u64() < self.dram_threshold {
                flips += 1;
            }
        }
        self.counters.dram_flips += flips;
        flips
    }

    /// One read-disturb draw for a whole cache-line read. Zero rate
    /// consumes no draws.
    pub fn read_disturb(&mut self) -> bool {
        if self.read_threshold == 0 {
            return false;
        }
        let hit = self.next_u64() < self.read_threshold;
        if hit {
            self.counters.line_disturbs += 1;
        }
        hit
    }

    /// Deterministically picks an index in `0..len` from the stream
    /// (`0` for an empty range). Used to localize a corruption to one
    /// neighbor slot of a tuple.
    pub fn pick_index(&mut self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        to_index(self.next_u64() % count_u64(len))
    }

    /// Applies the model to a just-read bit slice: per-bit transient
    /// flips, then stuck-at overrides for cells inside the read window
    /// (`row`, columns `start_col..start_col + bits.len()`). Returns
    /// the number of transient flips applied.
    pub fn corrupt_sram_read(&mut self, row: usize, start_col: usize, bits: &mut [bool]) -> u64 {
        let mut flips = 0u64;
        if self.read_threshold != 0 {
            for bit in bits.iter_mut() {
                if self.next_u64() < self.read_threshold {
                    *bit = !*bit;
                    flips += 1;
                }
            }
            if flips > 0 {
                self.counters.reads_corrupted += 1;
                self.counters.transient_flips += flips;
            }
        }
        for k in 0..self.stuck.len() {
            let cell = self.stuck[k];
            if cell.row == row && cell.col >= start_col && cell.col - start_col < bits.len() {
                let i = cell.col - start_col;
                if bits[i] != cell.value {
                    bits[i] = cell.value;
                    self.counters.stuck_overrides += 1;
                }
            }
        }
        flips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_quantizes_and_clamps() {
        assert!(FaultRate::ZERO.is_zero());
        assert_eq!(FaultRate::from_probability(0.0), FaultRate::ZERO);
        assert_eq!(FaultRate::from_probability(-3.0), FaultRate::ZERO);
        assert_eq!(FaultRate::from_probability(0.5).ppb(), PPB / 2);
        assert_eq!(FaultRate::from_probability(2.0).ppb(), PPB);
        assert_eq!(FaultRate::from_ppb(123).ppb(), 123);
        assert_eq!(FaultRate::from_ppb(u64::MAX).ppb(), PPB);
        assert!(!FaultRate::from_ppb(1).is_zero());
    }

    #[test]
    fn same_seed_and_salt_reproduce_the_sequence() {
        let model = FaultModel::new(42).with_read_ber(FaultRate::from_probability(0.3));
        let mut a = model.injector(9);
        let mut b = model.injector(9);
        for bits in [1u64, 7, 64, 333] {
            assert_eq!(a.flips_in_read(bits), b.flips_in_read(bits));
        }
        assert_eq!(a.counters(), b.counters());
        assert_eq!(a.stream_state(), b.stream_state());
    }

    #[test]
    fn different_salts_decouple_streams() {
        let model = FaultModel::new(42).with_read_ber(FaultRate::from_probability(0.5));
        let mut a = model.injector(0);
        let mut b = model.injector(1);
        let sa: Vec<u64> = (0..8).map(|_| a.flips_in_read(64)).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.flips_in_read(64)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn zero_rate_consumes_no_draws() {
        let model = FaultModel::new(5);
        assert!(model.is_inert());
        let mut inj = model.injector(3);
        let state = inj.stream_state();
        assert_eq!(inj.flips_in_read(10_000), 0);
        assert_eq!(inj.flips_in_dram_stream(10_000), 0);
        assert!(!inj.read_disturb());
        let mut bits = vec![true; 64];
        assert_eq!(inj.corrupt_sram_read(0, 0, &mut bits), 0);
        assert_eq!(bits, vec![true; 64]);
        assert_eq!(
            inj.stream_state(),
            state,
            "zero-rate model touched the stream"
        );
        assert_eq!(inj.counters(), FaultCounters::default());
    }

    #[test]
    fn certainty_rate_flips_every_bit() {
        let model = FaultModel::new(1).with_read_ber(FaultRate::from_ppb(PPB));
        let mut inj = model.injector(0);
        let mut bits = vec![false; 32];
        // threshold is just below u64::MAX; a draw landing above it is a
        // ~3e-11 event per bit, so all 32 flip.
        assert_eq!(inj.corrupt_sram_read(0, 0, &mut bits), 32);
        assert_eq!(bits, vec![true; 32]);
    }

    #[test]
    fn stuck_cells_override_reads_inside_the_window() {
        let model = FaultModel::new(0)
            .with_stuck_cell(2, 5, true)
            .with_stuck_cell(2, 7, false)
            .with_stuck_cell(3, 0, true);
        assert!(!model.is_inert());
        let mut inj = model.injector(0);
        let mut bits = vec![false; 4]; // row 2, cols 4..8
        inj.corrupt_sram_read(2, 4, &mut bits);
        assert_eq!(bits, vec![false, true, false, false]);
        // col 7 already read false: no override counted for it.
        assert_eq!(inj.counters().stuck_overrides, 1);
        // Wrong row: untouched.
        let mut other = vec![false; 4];
        inj.corrupt_sram_read(4, 4, &mut other);
        assert_eq!(other, vec![false; 4]);
    }

    #[test]
    fn flip_rate_tracks_the_configured_ber() {
        let model = FaultModel::new(77).with_read_ber(FaultRate::from_probability(0.25));
        let mut inj = model.injector(0);
        let total: u64 = (0..100).map(|_| inj.flips_in_read(1000)).sum();
        // 100k draws at p = 0.25: expect 25k ± a generous tolerance.
        assert!((20_000..30_000).contains(&total), "got {total}");
        assert_eq!(inj.counters().transient_flips, total);
    }

    #[test]
    fn pick_index_stays_in_range() {
        let model = FaultModel::new(3).with_read_ber(FaultRate::from_ppb(1));
        let mut inj = model.injector(0);
        assert_eq!(inj.pick_index(0), 0);
        for len in [1usize, 2, 7, 63] {
            for _ in 0..50 {
                assert!(inj.pick_index(len) < len);
            }
        }
    }
}
