//! Chunked u64-lane kernels: the portable SIMD layer under the bit-plane
//! fast paths.
//!
//! The compute kernels in [`crate::sram`] and the bulk decode in
//! `sachi-core` all reduce to the same two word-level primitives — XNOR a
//! stored word against a drive word, and popcount a span of words. This
//! module implements both over explicit 4-lane `u64` chunks with
//! independent accumulators, which is the stable-Rust equivalent of
//! `std::simd`: the chunking removes the loop-carried dependence so the
//! compiler can keep four `popcnt`/`xor` streams in flight (and
//! autovectorize where the target allows).
//!
//! Everything here is bit-exact by construction — the chunked loops
//! compute the same words in the same two's-complement arithmetic as a
//! naive per-word loop, only the association of the *counters* changes,
//! and integer addition is associative.

/// Lanes processed per unrolled chunk.
const LANES: usize = 4;

/// Population count over a word span, accumulated in [`LANES`] independent
/// streams.
#[must_use]
pub fn popcount(words: &[u64]) -> u64 {
    let mut acc = [0u64; LANES];
    let mut chunks = words.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (a, &w) in acc.iter_mut().zip(chunk.iter()) {
            *a += u64::from(w.count_ones());
        }
    }
    let mut total: u64 = acc.iter().sum();
    for &w in chunks.remainder() {
        total += u64::from(w.count_ones());
    }
    total
}

/// Writes `!(stored[i] ^ drive[i])` into `out[i]` for the common span of
/// the three slices, returning the number of words processed. The caller
/// masks edge words itself — this kernel is the full-word inner run.
pub fn xnor_into(stored: &[u64], drive: &[u64], out: &mut [u64]) -> usize {
    let n = stored.len().min(drive.len()).min(out.len());
    let mut i = 0;
    while i + LANES <= n {
        // Four independent XNOR streams per iteration.
        out[i] = !(stored[i] ^ drive[i]);
        out[i + 1] = !(stored[i + 1] ^ drive[i + 1]);
        out[i + 2] = !(stored[i + 2] ^ drive[i + 2]);
        out[i + 3] = !(stored[i + 3] ^ drive[i + 3]);
        i += LANES;
    }
    while i < n {
        out[i] = !(stored[i] ^ drive[i]);
        i += 1;
    }
    n
}

/// Writes `!(stored[i] ^ broadcast)` into `out[i]` for the common span —
/// the single-drive-bit variant of [`xnor_into`] used by the row-pulse
/// kernels, where one word-line value fans out across the whole row.
pub fn xnor_broadcast_into(stored: &[u64], broadcast: u64, out: &mut [u64]) -> usize {
    let n = stored.len().min(out.len());
    let mut i = 0;
    while i + LANES <= n {
        out[i] = !(stored[i] ^ broadcast);
        out[i + 1] = !(stored[i + 1] ^ broadcast);
        out[i + 2] = !(stored[i + 2] ^ broadcast);
        out[i + 3] = !(stored[i + 3] ^ broadcast);
        i += LANES;
    }
    while i < n {
        out[i] = !(stored[i] ^ broadcast);
        i += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn popcount_empty_is_zero() {
        assert_eq!(popcount(&[]), 0);
    }

    #[test]
    fn xnor_into_empty_spans() {
        let mut out = [0u64; 2];
        assert_eq!(xnor_into(&[], &[1, 2], &mut out), 0);
        assert_eq!(out, [0, 0]);
    }

    proptest! {
        #[test]
        fn popcount_matches_per_word_sum(words in prop::collection::vec(any::<u64>(), 0..40)) {
            let naive: u64 = words.iter().map(|w| u64::from(w.count_ones())).sum();
            prop_assert_eq!(popcount(&words), naive);
        }

        #[test]
        fn xnor_into_matches_per_word(
            stored in prop::collection::vec(any::<u64>(), 0..24),
            drive in prop::collection::vec(any::<u64>(), 0..24),
        ) {
            let n = stored.len().min(drive.len());
            let mut out = vec![0u64; n];
            prop_assert_eq!(xnor_into(&stored, &drive, &mut out), n);
            for i in 0..n {
                prop_assert_eq!(out[i], !(stored[i] ^ drive[i]));
            }
        }

        #[test]
        fn xnor_broadcast_matches_per_word(
            stored in prop::collection::vec(any::<u64>(), 0..24),
            broadcast in any::<u64>(),
        ) {
            let mut out = vec![0u64; stored.len()];
            prop_assert_eq!(xnor_broadcast_into(&stored, broadcast, &mut out), stored.len());
            for i in 0..stored.len() {
                prop_assert_eq!(out[i], !(stored[i] ^ broadcast));
            }
        }
    }
}
