//! Cache geometry: the repurposed L1 (compute array) and L2 (storage array).
//!
//! SACHI does not modify the memory arrays; it only reinterprets them. This
//! module captures the capacity arithmetic the paper relies on in Fig. 4
//! ("does an R-bit COP fit in the L1?"), in the Fig. 17 overflow analysis,
//! and in the Sec. VII.2 cache-size scaling study.

use crate::units::convert::count_u64;
use crate::units::Bits;

/// Geometry of a memory structure repurposed as a SACHI array.
///
/// ```
/// use sachi_mem::cache::CacheGeometry;
///
/// let l1 = CacheGeometry::sachi_compute_default();
/// assert_eq!(l1.tiles(), 16);
/// assert_eq!(l1.rows_per_tile(), 100);
/// assert_eq!(l1.row_bits(), 800);            // 100 ICs x 8 bits
/// assert_eq!(l1.tile_bits().get(), 80_000);  // 10 KB minus nothing: 10 KB = 81920... see note
/// ```
///
/// Note on tile size: the paper quotes "16 tiles, each tile (size 10KB)
/// capable of storing 100 spins and 8-bit ICs". 100 rows x 800 bits is
/// 80,000 bits = 9.77 KiB, i.e. the quoted "10 KB" is the usual marketing
/// rounding. We keep the exact 100x800 geometry because every schedule in
/// Figs. 11-13 is expressed in those rows/columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    tiles: usize,
    rows_per_tile: usize,
    row_bits: usize,
    read_ports: usize,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(tiles: usize, rows_per_tile: usize, row_bits: usize, read_ports: usize) -> Self {
        assert!(
            tiles > 0 && rows_per_tile > 0 && row_bits > 0 && read_ports > 0,
            "geometry dimensions must be non-zero"
        );
        CacheGeometry {
            tiles,
            rows_per_tile,
            row_bits,
            read_ports,
        }
    }

    /// The paper's compute array: 16 tiles x 100 rows x 800 bits
    /// (100 spins with 8-bit ICs per tile), single read port per tile.
    pub fn sachi_compute_default() -> Self {
        CacheGeometry::new(16, 100, 800, 1)
    }

    /// The paper's storage array: 160 KB with 2 read ports. Modeled as one
    /// "tile" of 1,600 rows x 800 bits plus a 64-row adjacency region
    /// (see `sachi-core::storage`).
    pub fn sachi_storage_default() -> Self {
        CacheGeometry::new(1, 1_638, 800, 2)
    }

    /// Sec. VII.2 scaling preset: "64KB/1MB" modern CPU caches. Row width
    /// scales with the quoted L1 size (800 bits at 10 KB -> 5,120 bits at
    /// 64 KB); storage capacity scales to 1 MB.
    pub fn desktop_64k() -> Self {
        CacheGeometry::new(16, 100, 5_120, 1)
    }

    /// Storage-array companion of [`CacheGeometry::desktop_64k`] (1 MB).
    pub fn desktop_64k_storage() -> Self {
        CacheGeometry::new(1, 10_486, 800, 2)
    }

    /// Sec. VII.2 scaling preset: "256KB/8MB" server-class caches.
    pub fn server_256k() -> Self {
        CacheGeometry::new(16, 100, 20_480, 1)
    }

    /// Storage-array companion of [`CacheGeometry::server_256k`] (8 MB).
    pub fn server_256k_storage() -> Self {
        CacheGeometry::new(1, 83_886, 800, 2)
    }

    /// Number of independent tiles (sub-arrays computing in parallel).
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// Rows per tile.
    pub fn rows_per_tile(&self) -> usize {
        self.rows_per_tile
    }

    /// Bits per row.
    pub fn row_bits(&self) -> usize {
        self.row_bits
    }

    /// Read ports per tile (the storage array has 2).
    pub fn read_ports(&self) -> usize {
        self.read_ports
    }

    /// Capacity of one tile.
    pub fn tile_bits(&self) -> Bits {
        Bits::new(count_u64(self.rows_per_tile * self.row_bits))
    }

    /// Total capacity across tiles.
    pub fn total_bits(&self) -> Bits {
        Bits::new(count_u64(self.tiles * self.rows_per_tile * self.row_bits))
    }

    /// Total rows across tiles.
    pub fn total_rows(&self) -> usize {
        self.tiles * self.rows_per_tile
    }

    /// Whether a payload of `need` bits fits in the whole structure.
    pub fn fits(&self, need: Bits) -> bool {
        self.total_bits().holds(need)
    }

    /// Rows needed to hold one tuple of `tuple_bits` bits (a tuple wider
    /// than a row spills onto additional rows; Fig. 17's overflow effect).
    pub fn rows_per_tuple(&self, tuple_bits: u64) -> u64 {
        tuple_bits.div_ceil(count_u64(self.row_bits)).max(1)
    }

    /// How many tuples of `tuple_bits` bits the structure holds at once.
    pub fn tuple_capacity(&self, tuple_bits: u64) -> u64 {
        let per_tile = count_u64(self.rows_per_tile) / self.rows_per_tuple(tuple_bits);
        per_tile * count_u64(self.tiles)
    }

    /// Number of full load "rounds" required to stream `tuples` tuples of
    /// `tuple_bits` bits through the structure (1 if everything fits).
    pub fn rounds(&self, tuples: u64, tuple_bits: u64) -> u64 {
        let cap = self.tuple_capacity(tuple_bits);
        if cap == 0 {
            // A single tuple wider than the whole structure still streams,
            // one row-chunk at a time; treat each tuple as its own round.
            return tuples;
        }
        tuples.div_ceil(cap)
    }
}

/// A named pair of compute + storage geometries (Sec. VII.2 presets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheHierarchy {
    /// The repurposed L1 compute array.
    pub compute: CacheGeometry,
    /// The repurposed L2 storage array.
    pub storage: CacheGeometry,
}

impl CacheHierarchy {
    /// Paper default: "10KB/160KB".
    pub fn hpca_default() -> Self {
        CacheHierarchy {
            compute: CacheGeometry::sachi_compute_default(),
            storage: CacheGeometry::sachi_storage_default(),
        }
    }

    /// "64KB/1MB" preset of Sec. VII.2.
    pub fn desktop() -> Self {
        CacheHierarchy {
            compute: CacheGeometry::desktop_64k(),
            storage: CacheGeometry::desktop_64k_storage(),
        }
    }

    /// "256KB/8MB" preset of Sec. VII.2.
    pub fn server() -> Self {
        CacheHierarchy {
            compute: CacheGeometry::server_256k(),
            storage: CacheGeometry::server_256k_storage(),
        }
    }
}

impl Default for CacheHierarchy {
    fn default() -> Self {
        CacheHierarchy::hpca_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_compute_geometry_matches_paper() {
        let g = CacheGeometry::sachi_compute_default();
        assert_eq!(g.total_rows(), 1_600);
        assert_eq!(g.tile_bits(), Bits::new(80_000));
        assert_eq!(g.total_bits(), Bits::new(1_280_000));
        assert_eq!(g.read_ports(), 1);
    }

    #[test]
    fn storage_default_is_160kb_with_two_ports() {
        let g = CacheGeometry::sachi_storage_default();
        let kib = g.total_bits().get() as f64 / 8.0 / 1024.0;
        assert!((kib - 160.0).abs() < 0.5, "storage is {kib} KiB");
        assert_eq!(g.read_ports(), 2);
    }

    #[test]
    fn rows_per_tuple_spills_wide_tuples() {
        let g = CacheGeometry::sachi_compute_default();
        // 100 neighbors x 8-bit IC = 800 bits: exactly one row.
        assert_eq!(g.rows_per_tuple(800), 1);
        // TSP at 1K cities, 4-bit: 999 x 4 = 3996 bits -> 5 rows.
        assert_eq!(g.rows_per_tuple(3_996), 5);
        // Degenerate zero-bit tuple still occupies a row.
        assert_eq!(g.rows_per_tuple(0), 1);
    }

    #[test]
    fn tuple_capacity_and_rounds() {
        let g = CacheGeometry::sachi_compute_default();
        // One-row tuples: 100 per tile x 16 tiles.
        assert_eq!(g.tuple_capacity(800), 1_600);
        assert_eq!(g.rounds(1_600, 800), 1);
        assert_eq!(g.rounds(1_601, 800), 2);
        // Five-row tuples: 20 per tile x 16 tiles = 320.
        assert_eq!(g.tuple_capacity(3_996), 320);
        assert_eq!(g.rounds(1_000, 3_996), 4);
    }

    #[test]
    fn rounds_handles_tuple_wider_than_structure() {
        let g = CacheGeometry::new(1, 2, 8, 1);
        // 100-bit tuple in a 16-bit structure: capacity 0 -> per-tuple streaming.
        assert_eq!(g.tuple_capacity(100), 0);
        assert_eq!(g.rounds(7, 100), 7);
    }

    #[test]
    fn fits_checks_total_capacity() {
        let g = CacheGeometry::sachi_compute_default();
        assert!(g.fits(Bits::from_kib(100)));
        assert!(!g.fits(Bits::from_kib(200)));
    }

    #[test]
    fn hierarchy_presets_grow_monotonically() {
        let d = CacheHierarchy::hpca_default();
        let m = CacheHierarchy::desktop();
        let l = CacheHierarchy::server();
        assert!(m.compute.total_bits() > d.compute.total_bits());
        assert!(l.compute.total_bits() > m.compute.total_bits());
        assert!(m.storage.total_bits() > d.storage.total_bits());
        assert!(l.storage.total_bits() > m.storage.total_bits());
        assert_eq!(CacheHierarchy::default(), d);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_rejected() {
        let _ = CacheGeometry::new(0, 1, 1, 1);
    }
}
