//! Normal-mode L1 cache model and the compute/normal mode switch
//! (Sec. VII.1 and VII.3).
//!
//! SACHI repurposes the L1 *when needed*; the rest of the time it is an
//! ordinary cache. The paper claims conventional workloads are unaffected
//! because (i) the 8T array is unmodified, (ii) the only added logic on
//! the read path is a 2:1 mux absorbed by retiming, and (iii) the
//! near-memory compute periphery is a separate datapath. It also states
//! the cache "operates in a single mode at a time", switched by
//! programming a special-purpose register.
//!
//! [`L1Cache`] makes those claims checkable: a set-associative LRU cache
//! with hit/miss simulation, a [`CacheMode`] register, mode exclusion
//! (normal accesses are rejected in compute mode and vice versa), and a
//! flush-on-switch cost — the *real* price of repurposing, which the
//! `disc_conventional` harness measures.

use crate::fault::FaultInjector;
use crate::units::convert::{count_u64, ratio_u64, to_index};
use crate::units::Cycles;
use std::fmt;

/// The special-purpose-register mode of the repurposed L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheMode {
    /// Ordinary cache operation.
    Normal,
    /// Ising compute operation (the tile array belongs to SACHI).
    IsingCompute,
}

impl fmt::Display for CacheMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheMode::Normal => write!(f, "normal"),
            CacheMode::IsingCompute => write!(f, "ising-compute"),
        }
    }
}

/// Outcome of a normal-mode access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Tag match.
    Hit,
    /// Miss; the line was filled (and possibly evicted another).
    Miss {
        /// Whether a valid line was evicted to make room.
        evicted: bool,
    },
}

/// Error for accesses made in the wrong mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrongModeError {
    /// The mode the cache was in.
    pub mode: CacheMode,
}

impl fmt::Display for WrongModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "access rejected: cache is in {} mode", self.mode)
    }
}

impl std::error::Error for WrongModeError {}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Normal-mode hits.
    pub hits: u64,
    /// Normal-mode misses.
    pub misses: u64,
    /// Lines evicted by fills.
    pub evictions: u64,
    /// Mode switches performed.
    pub mode_switches: u64,
    /// Lines flushed by mode switches.
    pub lines_flushed: u64,
    /// Accesses rejected for being in the wrong mode.
    pub rejected: u64,
    /// Lines invalidated by injected read-disturb faults.
    pub fault_invalidations: u64,
}

impl CacheStats {
    /// Exports the counters into `reg` under the `l1_` prefix, plus the
    /// derived `l1_hit_rate` gauge.
    pub fn export(&self, reg: &mut sachi_obs::MetricsRegistry) {
        reg.counter_add("l1_hits", self.hits);
        reg.counter_add("l1_misses", self.misses);
        reg.counter_add("l1_evictions", self.evictions);
        reg.counter_add("l1_mode_switches", self.mode_switches);
        reg.counter_add("l1_lines_flushed", self.lines_flushed);
        reg.counter_add("l1_rejected", self.rejected);
        reg.counter_add("l1_fault_invalidations", self.fault_invalidations);
        reg.gauge_set("l1_hit_rate", self.hit_rate());
    }

    /// Hit rate over normal-mode accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        ratio_u64(self.hits, total)
    }
}

/// A set-associative, LRU, write-allocate L1 cache model with the SACHI
/// mode register.
///
/// ```
/// use sachi_mem::l1cache::{Access, CacheMode, L1Cache};
///
/// let mut l1 = L1Cache::new(1024, 2, 64);
/// assert!(matches!(l1.read(0x40).unwrap(), Access::Miss { .. }));
/// assert_eq!(l1.read(0x44).unwrap(), Access::Hit); // same line
/// l1.set_mode(CacheMode::IsingCompute);            // SACHI takes the array
/// assert!(l1.read(0x40).is_err());                 // single mode at a time
/// ```
#[derive(Debug, Clone)]
pub struct L1Cache {
    sets: usize,
    ways: usize,
    line_bytes: usize,
    /// `tags[set][way]`: Some(tag) if valid.
    tags: Vec<Vec<Option<u64>>>,
    /// LRU stamps, larger = more recent.
    stamps: Vec<Vec<u64>>,
    clock: u64,
    mode: CacheMode,
    stats: CacheStats,
}

impl L1Cache {
    /// Creates a cache of `capacity_bytes` with the given associativity
    /// and line size.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity_bytes` divides evenly into `ways` sets of
    /// power-of-two lines.
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(
            ways > 0 && line_bytes > 0,
            "ways and line size must be non-zero"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = capacity_bytes / line_bytes;
        assert!(
            lines > 0 && lines.is_multiple_of(ways),
            "capacity must hold a whole number of sets"
        );
        let sets = lines / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        L1Cache {
            sets,
            ways,
            line_bytes,
            tags: vec![vec![None; ways]; sets],
            stamps: vec![vec![0; ways]; sets],
            clock: 0,
            mode: CacheMode::Normal,
            stats: CacheStats::default(),
        }
    }

    /// The paper's default 64KB / 4-way / 64B L1.
    pub fn typical_l1() -> Self {
        L1Cache::new(64 * 1024, 4, 64)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Current mode.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Normal-mode read latency in cycles. The added 2:1 compute-mode mux
    /// is retimed into the existing periphery (Sec. VII.1), so the
    /// latency is the same with or without SACHI: 1 cycle.
    pub fn read_latency(&self) -> Cycles {
        Cycles::new(1)
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr / count_u64(self.line_bytes);
        (
            to_index(line % count_u64(self.sets)),
            line / count_u64(self.sets),
        )
    }

    /// Programs the mode register. Entering compute mode flushes the
    /// cache (SACHI owns the array); returning to normal mode starts
    /// cold. Returns the number of lines flushed.
    pub fn set_mode(&mut self, mode: CacheMode) -> u64 {
        if mode == self.mode {
            return 0;
        }
        self.stats.mode_switches += 1;
        let mut flushed = 0;
        for set in &mut self.tags {
            for way in set.iter_mut() {
                if way.take().is_some() {
                    flushed += 1;
                }
            }
        }
        self.stats.lines_flushed += flushed;
        self.mode = mode;
        flushed
    }

    /// Normal-mode read of `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`WrongModeError`] in compute mode.
    pub fn read(&mut self, addr: u64) -> Result<Access, WrongModeError> {
        self.access(addr)
    }

    /// Normal-mode write of `addr` (write-allocate; hit/miss behaviour
    /// identical to reads for this model).
    ///
    /// # Errors
    ///
    /// Returns [`WrongModeError`] in compute mode.
    pub fn write(&mut self, addr: u64) -> Result<Access, WrongModeError> {
        self.access(addr)
    }

    fn access(&mut self, addr: u64) -> Result<Access, WrongModeError> {
        if self.mode != CacheMode::Normal {
            self.stats.rejected += 1;
            return Err(WrongModeError { mode: self.mode });
        }
        self.clock += 1;
        let (set, tag) = self.index(addr);
        // Hit? One bounds-checked slice scan; tags are unique per set, so
        // the first match is the only match.
        if let Some(way) = self.tags[set].iter().position(|&t| t == Some(tag)) {
            self.stamps[set][way] = self.clock;
            self.stats.hits += 1;
            return Ok(Access::Hit);
        }
        // Miss: fill into an invalid way, else evict LRU.
        self.stats.misses += 1;
        let victim = (0..self.ways)
            .find(|&w| self.tags[set][w].is_none())
            .unwrap_or_else(|| {
                (0..self.ways)
                    .min_by_key(|&w| self.stamps[set][w])
                    .expect("ways > 0")
            });
        let evicted = self.tags[set][victim].is_some();
        if evicted {
            self.stats.evictions += 1;
        }
        self.tags[set][victim] = Some(tag);
        self.stamps[set][victim] = self.clock;
        Ok(Access::Miss { evicted })
    }

    /// Normal-mode read of `addr` through a [`FaultInjector`]: the
    /// access proceeds exactly as [`L1Cache::read`] would; on a hit, one
    /// read-disturb draw decides whether the accessed line is upset and
    /// invalidated *after* the read (the data returned this time is
    /// good; the next access to the line re-misses). With an inert model
    /// this is bit-identical to `read` and consumes no RNG draws.
    ///
    /// # Errors
    ///
    /// Returns [`WrongModeError`] in compute mode.
    pub fn read_with_faults(
        &mut self,
        addr: u64,
        inj: &mut FaultInjector,
    ) -> Result<Access, WrongModeError> {
        let access = self.access(addr)?;
        if access == Access::Hit && inj.read_disturb() {
            let (set, tag) = self.index(addr);
            // Tags are unique per set: invalidate the single match and stop.
            if let Some(way) = self.tags[set].iter().position(|&t| t == Some(tag)) {
                self.tags[set][way] = None;
                self.stats.fault_invalidations += 1;
            }
        }
        Ok(access)
    }

    /// Runs an address trace, returning `(hits, misses)`.
    ///
    /// # Errors
    ///
    /// Returns [`WrongModeError`] in compute mode.
    pub fn run_trace(
        &mut self,
        addrs: impl IntoIterator<Item = u64>,
    ) -> Result<(u64, u64), WrongModeError> {
        let (mut hits, mut misses) = (0, 0);
        for addr in addrs {
            match self.read(addr)? {
                Access::Hit => hits += 1,
                Access::Miss { .. } => misses += 1,
            }
        }
        Ok((hits, misses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill_same_line() {
        let mut l1 = L1Cache::new(1024, 2, 64);
        assert_eq!(l1.read(100).unwrap(), Access::Miss { evicted: false });
        assert_eq!(l1.read(101).unwrap(), Access::Hit);
        assert_eq!(l1.read(163).unwrap(), Access::Miss { evicted: false }); // next line
        assert_eq!(l1.stats().hits, 1);
        assert_eq!(l1.stats().misses, 2);
        assert!((l1.stats().hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way, 64B lines, 2 sets (256 B total). Lines mapping to set 0:
        // addresses 0, 128, 256, ...
        let mut l1 = L1Cache::new(256, 2, 64);
        l1.read(0).unwrap(); // A
        l1.read(128).unwrap(); // B
        l1.read(0).unwrap(); // touch A (B becomes LRU)
        assert_eq!(l1.read(256).unwrap(), Access::Miss { evicted: true }); // evicts B
        assert_eq!(l1.read(0).unwrap(), Access::Hit); // A survived
        assert_eq!(l1.read(128).unwrap(), Access::Miss { evicted: true }); // B gone
    }

    #[test]
    fn mode_exclusion_and_flush() {
        let mut l1 = L1Cache::new(1024, 2, 64);
        l1.read(0).unwrap();
        l1.read(64).unwrap();
        let flushed = l1.set_mode(CacheMode::IsingCompute);
        assert_eq!(flushed, 2);
        assert_eq!(l1.mode(), CacheMode::IsingCompute);
        let err = l1.read(0).unwrap_err();
        assert_eq!(err.mode, CacheMode::IsingCompute);
        assert!(format!("{err}").contains("ising-compute"));
        assert_eq!(l1.stats().rejected, 1);
        // Switching back: cold cache.
        assert_eq!(l1.set_mode(CacheMode::Normal), 0);
        assert_eq!(l1.read(0).unwrap(), Access::Miss { evicted: false });
        assert_eq!(l1.stats().mode_switches, 2);
        // No-op switch costs nothing.
        assert_eq!(l1.set_mode(CacheMode::Normal), 0);
        assert_eq!(l1.stats().mode_switches, 2);
    }

    #[test]
    fn sequential_trace_hit_rate_matches_line_size() {
        // Sequential word reads: one miss per 64B line, 15 hits.
        let mut l1 = L1Cache::typical_l1();
        let (hits, misses) = l1.run_trace((0..4096u64).map(|i| i * 4)).unwrap();
        assert_eq!(misses, 4096 * 4 / 64);
        assert_eq!(hits, 4096 - misses);
    }

    #[test]
    fn read_latency_is_one_cycle_in_normal_mode() {
        let l1 = L1Cache::typical_l1();
        assert_eq!(l1.read_latency(), Cycles::new(1));
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut l1 = L1Cache::new(1024, 2, 64); // 16 lines
                                                // Cycle through 32 distinct lines twice: all misses.
        let trace: Vec<u64> = (0..64u64).map(|i| (i % 32) * 64).collect();
        let (hits, misses) = l1.run_trace(trace).unwrap();
        assert_eq!(hits, 0);
        assert_eq!(misses, 64);
        assert!(l1.stats().evictions > 0);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn bad_geometry_rejected() {
        let _ = L1Cache::new(100, 3, 64);
    }

    #[test]
    fn inert_faulted_reads_match_plain_reads() {
        use crate::fault::FaultModel;
        let mut inj = FaultModel::new(9).injector(0);
        let mut faulted = L1Cache::new(1024, 2, 64);
        let mut plain = L1Cache::new(1024, 2, 64);
        for addr in [0u64, 64, 0, 128, 64, 0] {
            let a = faulted.read_with_faults(addr, &mut inj).unwrap();
            let b = plain.read(addr).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(faulted.stats(), plain.stats());
        assert_eq!(inj.counters().line_disturbs, 0);
    }

    #[test]
    fn read_disturb_invalidates_the_hit_line() {
        use crate::fault::{FaultModel, FaultRate};
        let model = FaultModel::new(1).with_read_ber(FaultRate::from_ppb(1_000_000_000));
        let mut inj = model.injector(0);
        let mut l1 = L1Cache::new(1024, 2, 64);
        assert!(matches!(
            l1.read_with_faults(0, &mut inj).unwrap(),
            Access::Miss { .. }
        ));
        // Hit — but the certainty-rate disturb upsets the line afterwards.
        assert_eq!(l1.read_with_faults(4, &mut inj).unwrap(), Access::Hit);
        assert_eq!(l1.stats().fault_invalidations, 1);
        assert_eq!(inj.counters().line_disturbs, 1);
        // The upset line must be re-fetched.
        assert!(matches!(
            l1.read_with_faults(0, &mut inj).unwrap(),
            Access::Miss { .. }
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    /// Reference LRU model: per-set vectors of tags ordered by recency.
    struct RefCache {
        sets: usize,
        ways: usize,
        line: u64,
        lru: BTreeMap<usize, Vec<u64>>, // most-recent last
    }

    impl RefCache {
        fn access(&mut self, addr: u64) -> bool {
            let line = addr / self.line;
            let set = (line % self.sets as u64) as usize;
            let tag = line / self.sets as u64;
            let entry = self.lru.entry(set).or_default();
            if let Some(pos) = entry.iter().position(|&t| t == tag) {
                entry.remove(pos);
                entry.push(tag);
                true
            } else {
                if entry.len() == self.ways {
                    entry.remove(0);
                }
                entry.push(tag);
                false
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The set-associative LRU cache matches a reference recency-list
        /// model hit-for-hit under arbitrary address streams.
        #[test]
        fn l1_matches_reference_lru(addrs in prop::collection::vec(0u64..4096, 1..300)) {
            let mut cache = L1Cache::new(512, 2, 32); // 8 sets x 2 ways x 32B
            let mut reference = RefCache { sets: 8, ways: 2, line: 32, lru: BTreeMap::new() };
            for addr in addrs {
                let got = matches!(cache.read(addr).unwrap(), Access::Hit);
                let want = reference.access(addr);
                prop_assert_eq!(got, want, "divergence at address {}", addr);
            }
        }

        /// Mode switches at arbitrary points never corrupt subsequent
        /// normal-mode behaviour: after a switch the cache behaves like a
        /// fresh one.
        #[test]
        fn mode_switch_resets_to_cold(warm in prop::collection::vec(0u64..4096, 0..100),
                                      probe in prop::collection::vec(0u64..4096, 1..50)) {
            let mut switched = L1Cache::new(512, 2, 32);
            for a in &warm {
                switched.read(*a).unwrap();
            }
            switched.set_mode(CacheMode::IsingCompute);
            switched.set_mode(CacheMode::Normal);
            let mut fresh = L1Cache::new(512, 2, 32);
            for a in &probe {
                let s = matches!(switched.read(*a).unwrap(), Access::Hit);
                let f = matches!(fresh.read(*a).unwrap(), Access::Hit);
                prop_assert_eq!(s, f);
            }
        }
    }
}
