//! Technology parameters of the simulated 45 nm node.
//!
//! Every constant here is taken from Section V (Experimental Methodology) of
//! the SACHI paper, which in turn extracted them from a FreePDK-45 Virtuoso
//! design and Synopsys synthesis. The simulator consumes only these scalars,
//! so substituting the SPICE flow with this table preserves the evaluation
//! (see DESIGN.md, substitution table).

use crate::units::{Cycles, Nanoseconds, Picojoules};

/// Per-technology energy/latency constants.
///
/// Defaults (via [`TechnologyParams::freepdk45`] or [`Default`]) reproduce
/// the paper's 45 nm setup: 1 V operation, 5 ns cycle, 2 ns SRAM array
/// latency, 50 fF RWL / 35 fF RBL capacitance, 1 pJ/bit data movement with
/// movement ≈ 800× an addition, 1.2× XNOR power for eDRAM (Ising-CIM).
///
/// ```
/// use sachi_mem::params::TechnologyParams;
/// let t = TechnologyParams::freepdk45();
/// // RWL drive energy: C * V^2 = 50 fF * 1 V^2 = 0.05 pJ/bit.
/// assert!((t.rwl_energy_per_bit().get() - 0.05).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TechnologyParams {
    /// Supply voltage in volts (paper: 1 V).
    pub vdd_volts: f64,
    /// Clock cycle time (paper: 5 ns at 45 nm standard cells).
    pub cycle_time: Nanoseconds,
    /// SRAM array access latency (paper: 2 ns, fits inside one cycle).
    pub sram_array_latency: Nanoseconds,
    /// Read word-line capacitance in femtofarads (paper: 50 fF,
    /// RWL under-driven approach).
    pub rwl_capacitance_ff: f64,
    /// Read bit-line capacitance in femtofarads (paper: 35 fF for a
    /// 100x100 array).
    pub rbl_capacitance_ff: f64,
    /// Energy to write one SRAM bit, in picojoules. Not separately reported
    /// by the paper; we use the RWL drive energy as a proxy (a write toggles
    /// one word-line plus a bit-line pair of comparable capacitance).
    pub sram_write_energy_pj_per_bit: f64,
    /// Data-movement energy between storage and compute arrays, and for
    /// DRAM loading (paper: fixed 1 pJ/bit).
    pub movement_energy_pj_per_bit: f64,
    /// Ratio of data-movement energy to full-adder energy
    /// (paper, citing Mutlu et al.: ~800x).
    pub movement_to_adder_ratio: f64,
    /// Storage-array to compute-array movement latency (paper: 100 ns).
    pub storage_to_compute_latency: Nanoseconds,
    /// DRAM bus width: bytes transferred per cycle when loading
    /// (paper: 64 B per cycle).
    pub dram_bus_bytes_per_cycle: u64,
    /// Power factor of eDRAM in-memory XNOR relative to 8T SRAM
    /// (paper: 1.2x due to increased operating voltage).
    pub edram_xnor_power_factor: f64,
    /// Energy of one annealer decision (Metropolis compare + flip), in
    /// picojoules. Same digital block for all designs (paper: "annealing
    /// power is the same for all designs"); modeled as a handful of adder
    /// equivalents.
    pub annealer_energy_pj_per_decision: f64,
}

impl TechnologyParams {
    /// The paper's FreePDK 45 nm configuration (Sec. V.3, V.4).
    pub fn freepdk45() -> Self {
        TechnologyParams {
            vdd_volts: 1.0,
            cycle_time: Nanoseconds::new(5.0),
            sram_array_latency: Nanoseconds::new(2.0),
            rwl_capacitance_ff: 50.0,
            rbl_capacitance_ff: 35.0,
            sram_write_energy_pj_per_bit: 0.05,
            movement_energy_pj_per_bit: 1.0,
            movement_to_adder_ratio: 800.0,
            storage_to_compute_latency: Nanoseconds::new(100.0),
            dram_bus_bytes_per_cycle: 64,
            edram_xnor_power_factor: 1.2,
            annealer_energy_pj_per_decision: 0.01,
        }
    }

    /// Energy to drive one RWL for one compute pulse: `C * V^2`.
    ///
    /// 50 fF at 1 V is 0.05 pJ per activation.
    pub fn rwl_energy_per_bit(&self) -> Picojoules {
        Picojoules::new(self.rwl_capacitance_ff * 1e-3 * self.vdd_volts * self.vdd_volts)
    }

    /// Energy of one RBL discharge event: `C * V^2`.
    ///
    /// 35 fF at 1 V is 0.035 pJ per discharging column.
    pub fn rbl_energy_per_bit(&self) -> Picojoules {
        Picojoules::new(self.rbl_capacitance_ff * 1e-3 * self.vdd_volts * self.vdd_volts)
    }

    /// Energy to write one SRAM bit.
    pub fn sram_write_energy_per_bit(&self) -> Picojoules {
        Picojoules::new(self.sram_write_energy_pj_per_bit)
    }

    /// Energy to move one bit between storage and compute array (or from
    /// DRAM).
    pub fn movement_energy_per_bit(&self) -> Picojoules {
        Picojoules::new(self.movement_energy_pj_per_bit)
    }

    /// Energy of one near-memory full-adder bit operation (movement / 800).
    pub fn adder_energy_per_bit(&self) -> Picojoules {
        Picojoules::new(self.movement_energy_pj_per_bit / self.movement_to_adder_ratio)
    }

    /// Energy of one annealer decision.
    pub fn annealer_energy_per_decision(&self) -> Picojoules {
        Picojoules::new(self.annealer_energy_pj_per_decision)
    }

    /// Cycles to move one tile row from the storage array to the compute
    /// array (100 ns at a 5 ns cycle is 20 cycles).
    pub fn storage_to_compute_cycles(&self) -> Cycles {
        self.storage_to_compute_latency.to_cycles(self.cycle_time)
    }

    /// Cycles to stream `bytes` over the DRAM bus (64 B per cycle,
    /// rounded up).
    ///
    /// The paper's example: a 100-spin King's-graph COP with 8-bit ICs is
    /// "~13 cycles for storage onto DRAM". 100 spins x 8 neighbors x
    /// (8-bit IC + 1-bit spin) is 7200 bits = 900 B, and 900/64 rounds up
    /// to 15; with the paper's 8 neighbors stored once per edge it lands
    /// around 13. We keep the exact bus arithmetic.
    pub fn dram_stream_cycles(&self, bytes: u64) -> Cycles {
        Cycles::new(bytes.div_ceil(self.dram_bus_bytes_per_cycle))
    }
}

impl Default for TechnologyParams {
    fn default() -> Self {
        TechnologyParams::freepdk45()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let t = TechnologyParams::default();
        assert!((t.rwl_energy_per_bit().get() - 0.05).abs() < 1e-12);
        assert!((t.rbl_energy_per_bit().get() - 0.035).abs() < 1e-12);
        assert!((t.movement_energy_per_bit().get() - 1.0).abs() < 1e-12);
        // movement ~ 800x addition
        assert!(
            (t.movement_energy_per_bit().get() / t.adder_energy_per_bit().get() - 800.0).abs()
                < 1e-9
        );
        assert_eq!(t.storage_to_compute_cycles(), Cycles::new(20));
        assert!((t.cycle_time.get() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dram_stream_is_64_bytes_per_cycle() {
        let t = TechnologyParams::default();
        assert_eq!(t.dram_stream_cycles(64), Cycles::new(1));
        assert_eq!(t.dram_stream_cycles(65), Cycles::new(2));
        assert_eq!(t.dram_stream_cycles(0), Cycles::new(0));
        // The paper's ~13 cycle example: ~832 bytes of spin+IC payload.
        assert_eq!(t.dram_stream_cycles(832), Cycles::new(13));
    }

    #[test]
    fn voltage_scaling_scales_line_energy() {
        let t = TechnologyParams {
            vdd_volts: 0.5,
            ..Default::default()
        };
        // C * V^2: quarter energy at half the voltage.
        assert!((t.rwl_energy_per_bit().get() - 0.0125).abs() < 1e-12);
    }
}
