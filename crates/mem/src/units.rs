//! Strongly-typed units used throughout the simulator.
//!
//! The SACHI evaluation reasons about three quantities: clock cycles
//! (performance), picojoules (energy), and bits/bytes (capacity and data
//! movement). Mixing these up silently is the classic architecture-simulator
//! bug, so each gets a newtype with only the arithmetic that makes physical
//! sense ([C-NEWTYPE]).
//!
//! ```
//! use sachi_mem::units::{Cycles, Nanoseconds, Picojoules};
//!
//! let per_iteration = Cycles::new(63);
//! let iterations = 1_000u64;
//! let total = per_iteration * iterations;
//! let wall = total.to_time(Nanoseconds::new(5.0));
//! assert_eq!(total, Cycles::new(63_000));
//! assert!((wall.get() - 315_000.0).abs() < 1e-9);
//! let e = Picojoules::new(0.05) * 800.0;
//! assert!((e.get() - 40.0).abs() < 1e-12);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A count of clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// Returns the raw count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Wall-clock time for this many cycles at the given cycle time.
    #[inline]
    pub fn to_time(self, cycle_time: Nanoseconds) -> Nanoseconds {
        Nanoseconds(self.0 as f64 * cycle_time.0)
    }

    /// Saturating subtraction, useful when computing overlap slack.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two counts (e.g. overlapping compute with prefetch).
    #[inline]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }

    /// Ratio of two cycle counts as `f64` (speedup computations).
    #[inline]
    pub fn ratio(self, rhs: Cycles) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// Energy in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Picojoules(f64);

impl Picojoules {
    /// Zero energy.
    pub const ZERO: Picojoules = Picojoules(0.0);

    /// Creates an energy value.
    ///
    /// # Panics
    ///
    /// Panics if `pj` is negative or not finite; energy ledgers are
    /// append-only and a negative entry would corrupt every total.
    #[inline]
    pub fn new(pj: f64) -> Self {
        assert!(pj.is_finite() && pj >= 0.0, "energy must be finite and non-negative, got {pj}");
        Picojoules(pj)
    }

    /// Returns the raw value in picojoules.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Converts to microjoules (used for whole-solve totals).
    #[inline]
    pub fn to_microjoules(self) -> f64 {
        self.0 * 1e-6
    }

    /// Ratio of two energies (improvement factors).
    #[inline]
    pub fn ratio(self, rhs: Picojoules) -> f64 {
        self.0 / rhs.0
    }
}

impl Add for Picojoules {
    type Output = Picojoules;
    #[inline]
    fn add(self, rhs: Picojoules) -> Picojoules {
        Picojoules(self.0 + rhs.0)
    }
}

impl AddAssign for Picojoules {
    #[inline]
    fn add_assign(&mut self, rhs: Picojoules) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Picojoules {
    type Output = Picojoules;
    #[inline]
    fn mul(self, rhs: f64) -> Picojoules {
        Picojoules::new(self.0 * rhs)
    }
}

impl Mul<u64> for Picojoules {
    type Output = Picojoules;
    #[inline]
    fn mul(self, rhs: u64) -> Picojoules {
        Picojoules(self.0 * rhs as f64)
    }
}

impl Div<f64> for Picojoules {
    type Output = Picojoules;
    #[inline]
    fn div(self, rhs: f64) -> Picojoules {
        Picojoules::new(self.0 / rhs)
    }
}

impl Sum for Picojoules {
    fn sum<I: Iterator<Item = Picojoules>>(iter: I) -> Picojoules {
        Picojoules(iter.map(|e| e.0).sum())
    }
}

impl fmt::Display for Picojoules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.3} uJ", self.0 * 1e-6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} nJ", self.0 * 1e-3)
        } else {
            write!(f, "{:.3} pJ", self.0)
        }
    }
}

/// Time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Nanoseconds(f64);

impl Nanoseconds {
    /// Creates a duration.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    #[inline]
    pub fn new(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "time must be finite and non-negative, got {ns}");
        Nanoseconds(ns)
    }

    /// Returns the raw value in nanoseconds.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Number of whole clock cycles needed to cover this duration
    /// (rounded up).
    #[inline]
    pub fn to_cycles(self, cycle_time: Nanoseconds) -> Cycles {
        Cycles((self.0 / cycle_time.0).ceil() as u64)
    }
}

impl Add for Nanoseconds {
    type Output = Nanoseconds;
    #[inline]
    fn add(self, rhs: Nanoseconds) -> Nanoseconds {
        Nanoseconds(self.0 + rhs.0)
    }
}

impl Mul<f64> for Nanoseconds {
    type Output = Nanoseconds;
    #[inline]
    fn mul(self, rhs: f64) -> Nanoseconds {
        Nanoseconds::new(self.0 * rhs)
    }
}

impl fmt::Display for Nanoseconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.3} ms", self.0 * 1e-6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} us", self.0 * 1e-3)
        } else {
            write!(f, "{:.3} ns", self.0)
        }
    }
}

/// A capacity or transfer size in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bits(u64);

impl Bits {
    /// Zero bits.
    pub const ZERO: Bits = Bits(0);

    /// Creates a bit count.
    #[inline]
    pub const fn new(bits: u64) -> Self {
        Bits(bits)
    }

    /// Creates a bit count from bytes.
    #[inline]
    pub const fn from_bytes(bytes: u64) -> Self {
        Bits(bytes * 8)
    }

    /// Creates a bit count from kibibytes.
    #[inline]
    pub const fn from_kib(kib: u64) -> Self {
        Bits(kib * 1024 * 8)
    }

    /// Returns the raw bit count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Whole bytes needed to hold this many bits (rounded up).
    #[inline]
    pub const fn to_bytes_ceil(self) -> u64 {
        self.0.div_ceil(8)
    }

    /// Whether this capacity can hold `other`.
    #[inline]
    pub const fn holds(self, other: Bits) -> bool {
        self.0 >= other.0
    }
}

impl Add for Bits {
    type Output = Bits;
    #[inline]
    fn add(self, rhs: Bits) -> Bits {
        Bits(self.0 + rhs.0)
    }
}

impl AddAssign for Bits {
    #[inline]
    fn add_assign(&mut self, rhs: Bits) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for Bits {
    type Output = Bits;
    #[inline]
    fn mul(self, rhs: u64) -> Bits {
        Bits(self.0 * rhs)
    }
}

impl Sum for Bits {
    fn sum<I: Iterator<Item = Bits>>(iter: I) -> Bits {
        Bits(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bytes = self.0 as f64 / 8.0;
        if bytes >= 1024.0 * 1024.0 {
            write!(f, "{:.2} MiB", bytes / (1024.0 * 1024.0))
        } else if bytes >= 1024.0 {
            write!(f, "{:.2} KiB", bytes / 1024.0)
        } else {
            write!(f, "{} bits", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(10);
        let b = Cycles::new(3);
        assert_eq!(a + b, Cycles::new(13));
        assert_eq!(a - b, Cycles::new(7));
        assert_eq!(a * 4, Cycles::new(40));
        assert_eq!(a.max(b), a);
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, Cycles::new(13));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn cycles_sum_and_ratio() {
        let total: Cycles = [Cycles::new(1), Cycles::new(2), Cycles::new(3)].into_iter().sum();
        assert_eq!(total, Cycles::new(6));
        assert!((Cycles::new(300).ratio(Cycles::new(100)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cycles_to_wall_clock() {
        // The paper's 5 ns cycle: 200 cycles -> 1 us.
        let t = Cycles::new(200).to_time(Nanoseconds::new(5.0));
        assert!((t.get() - 1000.0).abs() < 1e-9);
        assert_eq!(format!("{}", Cycles::new(7)), "7 cycles");
    }

    #[test]
    fn picojoules_arithmetic_and_display() {
        let rwl = Picojoules::new(0.05);
        let total = rwl * 1000u64 + Picojoules::new(1.0);
        assert!((total.get() - 51.0).abs() < 1e-12);
        assert_eq!(format!("{}", Picojoules::new(0.5)), "0.500 pJ");
        assert_eq!(format!("{}", Picojoules::new(2500.0)), "2.500 nJ");
        assert_eq!(format!("{}", Picojoules::new(3.2e6)), "3.200 uJ");
        assert!((Picojoules::new(80.0).ratio(Picojoules::new(1.0)) - 80.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "energy must be finite")]
    fn negative_energy_rejected() {
        let _ = Picojoules::new(-1.0);
    }

    #[test]
    fn nanoseconds_to_cycles_rounds_up() {
        // The 100 ns storage->compute movement at 5 ns/cycle is 20 cycles.
        let cycle = Nanoseconds::new(5.0);
        assert_eq!(Nanoseconds::new(100.0).to_cycles(cycle), Cycles::new(20));
        assert_eq!(Nanoseconds::new(101.0).to_cycles(cycle), Cycles::new(21));
        assert_eq!(format!("{}", Nanoseconds::new(0.5)), "0.500 ns");
        assert_eq!(format!("{}", Nanoseconds::new(1500.0)), "1.500 us");
        assert_eq!(format!("{}", Nanoseconds::new(2.5e6)), "2.500 ms");
    }

    #[test]
    fn bits_conversions() {
        assert_eq!(Bits::from_bytes(64), Bits::new(512));
        assert_eq!(Bits::from_kib(10), Bits::new(81920));
        assert_eq!(Bits::new(9).to_bytes_ceil(), 2);
        assert!(Bits::from_kib(64).holds(Bits::from_kib(10)));
        assert!(!Bits::from_kib(10).holds(Bits::from_kib(64)));
        assert_eq!(format!("{}", Bits::new(100)), "100 bits");
        assert_eq!(format!("{}", Bits::from_kib(10)), "10.00 KiB");
        assert_eq!(format!("{}", Bits::from_kib(4096)), "4.00 MiB");
    }

    #[test]
    fn bits_sum() {
        let total: Bits = [Bits::new(3), Bits::new(5)].into_iter().sum();
        assert_eq!(total, Bits::new(8));
        assert_eq!(Bits::new(3) * 4, Bits::new(12));
    }
}
