//! Strongly-typed units used throughout the simulator.
//!
//! The SACHI evaluation reasons about three quantities: clock cycles
//! (performance), picojoules (energy), and bits/bytes (capacity and data
//! movement). Mixing these up silently is the classic architecture-simulator
//! bug, so each gets a newtype with only the arithmetic that makes physical
//! sense ([C-NEWTYPE]).
//!
//! ```
//! use sachi_mem::units::{Cycles, Nanoseconds, Picojoules};
//!
//! let per_iteration = Cycles::new(63);
//! let iterations = 1_000u64;
//! let total = per_iteration * iterations;
//! let wall = total.to_time(Nanoseconds::new(5.0));
//! assert_eq!(total, Cycles::new(63_000));
//! assert!((wall.get() - 315_000.0).abs() < 1e-9);
//! let e = Picojoules::new(0.05) * 800.0;
//! assert!((e.get() - 40.0).abs() < 1e-12);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Checked crossings between the index domain (`usize`/`u32`/`u16`) and
/// the accounting domain (`u64` counts, `f64` ratios).
///
/// The workspace's `unit-safety` lint (`cargo run -p xtask -- lint`)
/// bans raw numeric `as` casts in accounting code; these helpers are the
/// blessed replacements. Each one states its loss and panic behaviour —
/// the two things a bare `as` hides.
pub mod convert {
    /// Widens an index or count into the `u64` accounting domain.
    ///
    /// Lossless for every unsigned source type on every supported
    /// target.
    ///
    /// # Panics
    ///
    /// Panics if `n` does not fit `u64` (only possible for signed
    /// negatives or 128-bit sources).
    #[inline]
    pub fn count_u64<T>(n: T) -> u64
    where
        T: TryInto<u64>,
        T::Error: std::fmt::Debug,
    {
        n.try_into()
            .expect("count must be non-negative and fit u64")
    }

    /// Narrows an accounting count back into a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the platform address space (cannot happen
    /// for in-memory structures that were indexed to produce `n`).
    #[inline]
    pub fn to_index<T>(n: T) -> usize
    where
        T: TryInto<usize>,
        T::Error: std::fmt::Debug,
    {
        n.try_into()
            .expect("index must fit the platform address space")
    }

    /// A `u64` counter as `f64`, for averages and percentages.
    ///
    /// Precision loss begins above 2^53 (~9e15) — five orders of
    /// magnitude past any counter this simulator produces — and rounds
    /// to the nearest representable value rather than truncating.
    #[inline]
    pub fn approx_f64(n: u64) -> f64 {
        n as f64
    }

    /// Ratio of two counters (hit rates, reuse factors, CPI).
    ///
    /// Returns `f64::NAN` when both are zero and `inf` when only the
    /// denominator is, mirroring IEEE division.
    #[inline]
    pub fn ratio_u64(numerator: u64, denominator: u64) -> f64 {
        approx_f64(numerator) / approx_f64(denominator)
    }

    /// `floor(count × fraction)` — the checked form of the
    /// `(count as f64 * fraction) as u64` idiom (e.g. expected spin
    /// flips per sweep).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative or not finite, or if the scaled
    /// result cannot round-trip to `u64`.
    #[inline]
    pub fn scale_by_fraction(count: u64, fraction: f64) -> u64 {
        assert!(
            fraction.is_finite() && fraction >= 0.0,
            "fraction must be finite and non-negative, got {fraction}"
        );
        let scaled = (approx_f64(count) * fraction).floor();
        assert!(
            scaled <= approx_f64(u64::MAX),
            "scaled count {scaled} overflows u64 (count {count} x fraction {fraction})"
        );
        scaled as u64
    }
}

/// A count of clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// Returns the raw count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Wall-clock time for this many cycles at the given cycle time.
    #[inline]
    pub fn to_time(self, cycle_time: Nanoseconds) -> Nanoseconds {
        Nanoseconds(convert::approx_f64(self.0) * cycle_time.0)
    }

    /// A cycle count from an `f64` computation, rounded up.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is negative, not finite, or too large for an
    /// exact `u64` representation (≥ 2^53).
    #[inline]
    pub fn from_f64_ceil(cycles: f64) -> Self {
        assert!(
            cycles.is_finite() && cycles >= 0.0,
            "cycle count must be finite and non-negative, got {cycles}"
        );
        let up = cycles.ceil();
        assert!(
            up < (1u64 << 53) as f64,
            "cycle count {up} exceeds exact u64 range"
        );
        Cycles(up as u64)
    }

    /// Saturating subtraction, useful when computing overlap slack.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two counts (e.g. overlapping compute with prefetch).
    #[inline]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }

    /// Ratio of two cycle counts as `f64` (speedup computations).
    #[inline]
    pub fn ratio(self, rhs: Cycles) -> f64 {
        convert::ratio_u64(self.0, rhs.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// Energy in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Picojoules(f64);

impl Picojoules {
    /// Zero energy.
    pub const ZERO: Picojoules = Picojoules(0.0);

    /// Creates an energy value.
    ///
    /// # Panics
    ///
    /// Panics if `pj` is negative or not finite; energy ledgers are
    /// append-only and a negative entry would corrupt every total.
    #[inline]
    pub fn new(pj: f64) -> Self {
        assert!(
            pj.is_finite() && pj >= 0.0,
            "energy must be finite and non-negative, got {pj}"
        );
        Picojoules(pj)
    }

    /// Returns the raw value in picojoules.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Converts to microjoules (used for whole-solve totals).
    #[inline]
    pub fn to_microjoules(self) -> f64 {
        self.0 * 1e-6
    }

    /// Ratio of two energies (improvement factors).
    #[inline]
    pub fn ratio(self, rhs: Picojoules) -> f64 {
        self.0 / rhs.0
    }
}

impl Add for Picojoules {
    type Output = Picojoules;
    #[inline]
    fn add(self, rhs: Picojoules) -> Picojoules {
        Picojoules(self.0 + rhs.0)
    }
}

impl AddAssign for Picojoules {
    #[inline]
    fn add_assign(&mut self, rhs: Picojoules) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Picojoules {
    type Output = Picojoules;
    #[inline]
    fn mul(self, rhs: f64) -> Picojoules {
        Picojoules::new(self.0 * rhs)
    }
}

impl Mul<u64> for Picojoules {
    type Output = Picojoules;
    #[inline]
    fn mul(self, rhs: u64) -> Picojoules {
        Picojoules(self.0 * convert::approx_f64(rhs))
    }
}

/// Error for [`TryFrom<f64>`] conversions into the `f64`-backed units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitRangeError {
    /// The rejected raw value.
    pub value: f64,
    /// The unit the value was destined for.
    pub unit: &'static str,
}

impl fmt::Display for UnitRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} must be finite and non-negative, got {}",
            self.unit, self.value
        )
    }
}

impl std::error::Error for UnitRangeError {}

impl TryFrom<f64> for Picojoules {
    type Error = UnitRangeError;

    /// Non-panicking alternative to [`Picojoules::new`] for values that
    /// arrive from config files or user input.
    fn try_from(pj: f64) -> Result<Self, Self::Error> {
        if pj.is_finite() && pj >= 0.0 {
            Ok(Picojoules(pj))
        } else {
            Err(UnitRangeError {
                value: pj,
                unit: "energy (pJ)",
            })
        }
    }
}

impl TryFrom<f64> for Nanoseconds {
    type Error = UnitRangeError;

    /// Non-panicking alternative to [`Nanoseconds::new`].
    fn try_from(ns: f64) -> Result<Self, Self::Error> {
        if ns.is_finite() && ns >= 0.0 {
            Ok(Nanoseconds(ns))
        } else {
            Err(UnitRangeError {
                value: ns,
                unit: "time (ns)",
            })
        }
    }
}

impl Div<f64> for Picojoules {
    type Output = Picojoules;
    #[inline]
    fn div(self, rhs: f64) -> Picojoules {
        Picojoules::new(self.0 / rhs)
    }
}

impl Sum for Picojoules {
    fn sum<I: Iterator<Item = Picojoules>>(iter: I) -> Picojoules {
        Picojoules(iter.map(|e| e.0).sum())
    }
}

impl fmt::Display for Picojoules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.3} uJ", self.0 * 1e-6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} nJ", self.0 * 1e-3)
        } else {
            write!(f, "{:.3} pJ", self.0)
        }
    }
}

/// Time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Nanoseconds(f64);

impl Nanoseconds {
    /// Creates a duration.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    #[inline]
    pub fn new(ns: f64) -> Self {
        assert!(
            ns.is_finite() && ns >= 0.0,
            "time must be finite and non-negative, got {ns}"
        );
        Nanoseconds(ns)
    }

    /// Returns the raw value in nanoseconds.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Number of whole clock cycles needed to cover this duration
    /// (rounded up).
    #[inline]
    pub fn to_cycles(self, cycle_time: Nanoseconds) -> Cycles {
        Cycles::from_f64_ceil(self.0 / cycle_time.0)
    }
}

impl Add for Nanoseconds {
    type Output = Nanoseconds;
    #[inline]
    fn add(self, rhs: Nanoseconds) -> Nanoseconds {
        Nanoseconds(self.0 + rhs.0)
    }
}

impl Mul<f64> for Nanoseconds {
    type Output = Nanoseconds;
    #[inline]
    fn mul(self, rhs: f64) -> Nanoseconds {
        Nanoseconds::new(self.0 * rhs)
    }
}

impl fmt::Display for Nanoseconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.3} ms", self.0 * 1e-6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} us", self.0 * 1e-3)
        } else {
            write!(f, "{:.3} ns", self.0)
        }
    }
}

/// A capacity or transfer size in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bits(u64);

impl Bits {
    /// Zero bits.
    pub const ZERO: Bits = Bits(0);

    /// Creates a bit count.
    #[inline]
    pub const fn new(bits: u64) -> Self {
        Bits(bits)
    }

    /// Creates a bit count from bytes.
    #[inline]
    pub const fn from_bytes(bytes: u64) -> Self {
        Bits(bytes * 8)
    }

    /// Creates a bit count from kibibytes.
    #[inline]
    pub const fn from_kib(kib: u64) -> Self {
        Bits(kib * 1024 * 8)
    }

    /// Returns the raw bit count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Whole bytes needed to hold this many bits (rounded up).
    #[inline]
    pub const fn to_bytes_ceil(self) -> u64 {
        self.0.div_ceil(8)
    }

    /// Whether this capacity can hold `other`.
    #[inline]
    pub const fn holds(self, other: Bits) -> bool {
        self.0 >= other.0
    }
}

impl Add for Bits {
    type Output = Bits;
    #[inline]
    fn add(self, rhs: Bits) -> Bits {
        Bits(self.0 + rhs.0)
    }
}

impl AddAssign for Bits {
    #[inline]
    fn add_assign(&mut self, rhs: Bits) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for Bits {
    type Output = Bits;
    #[inline]
    fn mul(self, rhs: u64) -> Bits {
        Bits(self.0 * rhs)
    }
}

impl Sum for Bits {
    fn sum<I: Iterator<Item = Bits>>(iter: I) -> Bits {
        Bits(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bytes = convert::approx_f64(self.0) / 8.0;
        if bytes >= 1024.0 * 1024.0 {
            write!(f, "{:.2} MiB", bytes / (1024.0 * 1024.0))
        } else if bytes >= 1024.0 {
            write!(f, "{:.2} KiB", bytes / 1024.0)
        } else {
            write!(f, "{} bits", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(10);
        let b = Cycles::new(3);
        assert_eq!(a + b, Cycles::new(13));
        assert_eq!(a - b, Cycles::new(7));
        assert_eq!(a * 4, Cycles::new(40));
        assert_eq!(a.max(b), a);
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, Cycles::new(13));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn cycles_sum_and_ratio() {
        let total: Cycles = [Cycles::new(1), Cycles::new(2), Cycles::new(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Cycles::new(6));
        assert!((Cycles::new(300).ratio(Cycles::new(100)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cycles_to_wall_clock() {
        // The paper's 5 ns cycle: 200 cycles -> 1 us.
        let t = Cycles::new(200).to_time(Nanoseconds::new(5.0));
        assert!((t.get() - 1000.0).abs() < 1e-9);
        assert_eq!(format!("{}", Cycles::new(7)), "7 cycles");
    }

    #[test]
    fn picojoules_arithmetic_and_display() {
        let rwl = Picojoules::new(0.05);
        let total = rwl * 1000u64 + Picojoules::new(1.0);
        assert!((total.get() - 51.0).abs() < 1e-12);
        assert_eq!(format!("{}", Picojoules::new(0.5)), "0.500 pJ");
        assert_eq!(format!("{}", Picojoules::new(2500.0)), "2.500 nJ");
        assert_eq!(format!("{}", Picojoules::new(3.2e6)), "3.200 uJ");
        assert!((Picojoules::new(80.0).ratio(Picojoules::new(1.0)) - 80.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "energy must be finite")]
    fn negative_energy_rejected() {
        let _ = Picojoules::new(-1.0);
    }

    #[test]
    fn nanoseconds_to_cycles_rounds_up() {
        // The 100 ns storage->compute movement at 5 ns/cycle is 20 cycles.
        let cycle = Nanoseconds::new(5.0);
        assert_eq!(Nanoseconds::new(100.0).to_cycles(cycle), Cycles::new(20));
        assert_eq!(Nanoseconds::new(101.0).to_cycles(cycle), Cycles::new(21));
        assert_eq!(format!("{}", Nanoseconds::new(0.5)), "0.500 ns");
        assert_eq!(format!("{}", Nanoseconds::new(1500.0)), "1.500 us");
        assert_eq!(format!("{}", Nanoseconds::new(2.5e6)), "2.500 ms");
    }

    #[test]
    fn bits_conversions() {
        assert_eq!(Bits::from_bytes(64), Bits::new(512));
        assert_eq!(Bits::from_kib(10), Bits::new(81920));
        assert_eq!(Bits::new(9).to_bytes_ceil(), 2);
        assert!(Bits::from_kib(64).holds(Bits::from_kib(10)));
        assert!(!Bits::from_kib(10).holds(Bits::from_kib(64)));
        assert_eq!(format!("{}", Bits::new(100)), "100 bits");
        assert_eq!(format!("{}", Bits::from_kib(10)), "10.00 KiB");
        assert_eq!(format!("{}", Bits::from_kib(4096)), "4.00 MiB");
    }

    #[test]
    fn convert_helpers() {
        assert_eq!(convert::count_u64(42usize), 42u64);
        assert_eq!(convert::count_u64(7u32), 7u64);
        assert_eq!(convert::to_index(9u64), 9usize);
        assert_eq!(convert::to_index(3u32), 3usize);
        assert!((convert::approx_f64(1000) - 1000.0).abs() < 1e-12);
        assert!((convert::ratio_u64(3, 4) - 0.75).abs() < 1e-12);
        assert_eq!(convert::scale_by_fraction(1000, 0.1), 100);
        assert_eq!(convert::scale_by_fraction(3, 0.5), 1, "floor semantics");
        assert_eq!(convert::scale_by_fraction(0, 0.9), 0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn scale_by_negative_fraction_rejected() {
        let _ = convert::scale_by_fraction(10, -0.5);
    }

    #[test]
    fn cycles_from_f64_ceil() {
        assert_eq!(Cycles::from_f64_ceil(0.0), Cycles::ZERO);
        assert_eq!(Cycles::from_f64_ceil(20.0), Cycles::new(20));
        assert_eq!(Cycles::from_f64_ceil(20.2), Cycles::new(21));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn cycles_from_negative_rejected() {
        let _ = Cycles::from_f64_ceil(-1.0);
    }

    #[test]
    fn try_from_f64_units() {
        assert_eq!(Picojoules::try_from(2.5), Ok(Picojoules::new(2.5)));
        assert!(Picojoules::try_from(-1.0).is_err());
        assert!(Picojoules::try_from(f64::NAN).is_err());
        assert_eq!(Nanoseconds::try_from(5.0), Ok(Nanoseconds::new(5.0)));
        let err = Nanoseconds::try_from(f64::INFINITY).unwrap_err();
        assert!(err.to_string().contains("time (ns)"));
    }

    #[test]
    fn bits_sum() {
        let total: Bits = [Bits::new(3), Bits::new(5)].into_iter().sum();
        assert_eq!(total, Bits::new(8));
        assert_eq!(Bits::new(3) * 4, Bits::new(12));
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn cycles_sum_matches_raw_sum(counts in proptest::collection::vec(0u64..1 << 40, 0..8)) {
                let total: Cycles = counts.iter().map(|&c| Cycles::new(c)).sum();
                prop_assert_eq!(total.get(), counts.iter().sum::<u64>());
            }

            #[test]
            fn cycles_mul_matches_raw_mul(count in 0u64..1 << 30, k in 0u64..1 << 30) {
                prop_assert_eq!((Cycles::new(count) * k).get(), count * k);
            }

            #[test]
            fn cycles_roundtrip_through_time(count in 0u64..1 << 20, period in 1u64..1000) {
                // to_time then to_cycles must land back on the same count:
                // the ceil in to_cycles can only ever round *up* from float
                // error, and an exact-multiple duration has none to round.
                let cycle_time = Nanoseconds::new(convert::approx_f64(period));
                let elapsed = Cycles::new(count).to_time(cycle_time);
                prop_assert_eq!(elapsed.to_cycles(cycle_time), Cycles::new(count));
            }

            #[test]
            fn picojoules_sum_matches_raw_sum(counts in proptest::collection::vec(0u64..1 << 30, 0..8)) {
                let total: Picojoules = counts.iter().map(|&c| Picojoules::new(convert::approx_f64(c))).sum();
                let raw = convert::approx_f64(counts.iter().sum::<u64>());
                prop_assert!((total.get() - raw).abs() < 1e-6);
            }

            #[test]
            fn picojoules_mul_matches_raw_mul(base in 0u64..1 << 20, k in 0u64..1 << 20) {
                let scaled = Picojoules::new(convert::approx_f64(base)) * k;
                prop_assert!((scaled.get() - convert::approx_f64(base * k)).abs() < 1e-6);
            }
        }
    }
}
