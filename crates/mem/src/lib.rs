//! # sachi-mem — memory substrate for the SACHI Ising architecture
//!
//! SACHI (HPCA 2024) repurposes a CPU's L1 cache as an in-memory XNOR
//! compute array and the L2 cache as a tuple storage array, fed by DRAM
//! through a counter-based prefetcher. This crate is the *hardware
//! substrate* of the reproduction:
//!
//! * [`units`] — `Cycles` / `Picojoules` / `Nanoseconds` / `Bits` newtypes;
//! * [`params`] — the FreePDK-45 technology constants of Sec. V;
//! * [`energy`] — append-only per-component energy ledger;
//! * [`sram`] — a bit-accurate 8T SRAM tile with normal and Ising-compute
//!   modes, including redundant-discharge accounting (Fig. 5c / Fig. 10);
//! * [`cache`] — geometry/capacity arithmetic for the repurposed L1/L2
//!   (Fig. 4, Fig. 17 overflow, Sec. VII.2 scaling presets);
//! * [`dram`] — DRAM controller with the Sec. IV.A prefetch counter;
//! * [`fault`] — deterministic seeded fault injection (transient BER,
//!   stuck-at cells, DRAM stream corruption) for the robustness layer.
//!
//! ## Example
//!
//! ```
//! use sachi_mem::prelude::*;
//!
//! // The in-memory XNOR primitive the whole architecture rests on:
//! let mut tile = SramTile::new(2, 4);
//! tile.write_row(0, &[true, false, true, true])?;
//! let xnor = tile.compute_xnor(0, true, 0..4)?; // drive RWL with J = 1
//! assert_eq!(xnor, vec![true, false, true, true]);
//!
//! // Price the access under the paper's 45 nm parameters:
//! let params = TechnologyParams::freepdk45();
//! let ledger = tile.stats().energy(&params);
//! assert!(ledger.total().get() > 0.0);
//! # Ok::<(), sachi_mem::sram::AccessError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod dram;
pub mod energy;
pub mod fault;
pub mod l1cache;
pub mod lanes;
pub mod params;
pub mod sram;
pub mod units;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::cache::{CacheGeometry, CacheHierarchy};
    pub use crate::dram::{DramController, PrefetchCounter};
    pub use crate::energy::{EnergyComponent, EnergyLedger};
    pub use crate::fault::{FaultCounters, FaultInjector, FaultModel, FaultRate, StuckCell};
    pub use crate::l1cache::{Access, CacheMode, CacheStats, L1Cache};
    pub use crate::params::TechnologyParams;
    pub use crate::sram::{SramTile, TileStats};
    pub use crate::units::{Bits, Cycles, Nanoseconds, Picojoules};
}
