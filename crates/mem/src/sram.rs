//! Bit-accurate functional model of an 8T SRAM compute tile.
//!
//! The SACHI compute array is built from unmodified 8T bitcells with
//! decoupled read and write ports (Sec. IV.C.2, Fig. 10). The cell has two
//! modes:
//!
//! * **Normal mode** — data is written via WWL/WBL and read via RWL/RBL,
//!   exactly like the L1 cache it repurposes.
//! * **Ising compute mode** — the read word-line is repurposed as a compute
//!   input. Two bitcells in the same column hold a stored bit `S` and its
//!   complement `S'`; driving their RWLs with an input `J` and its complement
//!   `J'` makes the shared read bit-line compute
//!   `(S AND J) OR (S' AND J') == S XNOR J`. The RBL *discharges* when the
//!   XNOR value is 1 and retains its precharge when it is 0.
//!
//! This module models the array at the bit level: a compute access returns
//! exactly the discharge pattern the silicon would produce, and the energy
//! counters distinguish *useful* discharges (columns whose bit-line select
//! was enabled and sensed) from *redundant* discharges (columns that
//! discharged anyway because they share the activated word-line). Redundant
//! discharge is the energy-waste mechanism of Fig. 5c that motivates
//! SACHI's reuse-aware designs.

use crate::energy::{EnergyComponent, EnergyLedger};
use crate::fault::FaultInjector;
use crate::params::TechnologyParams;
use crate::units::convert::count_u64;
use crate::units::Picojoules;
use std::fmt;
use std::ops::Range;

/// Error returned by [`SramTile`] operations on out-of-bounds accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessError {
    /// Human-readable description of the violated bound.
    what: String,
}

impl AccessError {
    fn new(what: impl Into<String>) -> Self {
        AccessError { what: what.into() }
    }
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sram access out of bounds: {}", self.what)
    }
}

impl std::error::Error for AccessError {}

/// Raw event counters accumulated by a tile.
///
/// Counters are converted to energy by [`TileStats::energy`] using a
/// [`TechnologyParams`]; keeping raw counts lets the same run be re-priced
/// under different technology assumptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TileStats {
    /// Read word-line activations (each compute access pulses the stored
    /// row and its complement row: 2 activations).
    pub rwl_activations: u64,
    /// Total bit-line discharge events, useful and redundant.
    pub rbl_discharges: u64,
    /// Discharges on columns whose output was *not* sensed (redundant
    /// compute energy, Fig. 5c).
    pub redundant_discharges: u64,
    /// Bits written through the write port.
    pub bits_written: u64,
    /// Bits read in normal (non-compute) mode.
    pub bits_read: u64,
    /// Number of compute-mode accesses (one per cycle per tile).
    pub compute_accesses: u64,
}

impl TileStats {
    /// Prices the accumulated events under `params`.
    pub fn energy(&self, params: &TechnologyParams) -> EnergyLedger {
        let mut ledger = EnergyLedger::new();
        ledger.record(
            EnergyComponent::RwlDrive,
            params.rwl_energy_per_bit() * self.rwl_activations,
        );
        ledger.record(
            EnergyComponent::RblDischarge,
            params.rbl_energy_per_bit() * self.rbl_discharges,
        );
        ledger.record(
            EnergyComponent::SramWrite,
            params.sram_write_energy_per_bit() * self.bits_written,
        );
        ledger.record(
            EnergyComponent::SramRead,
            params.rbl_energy_per_bit() * self.bits_read,
        );
        ledger
    }

    /// Energy attributable to redundant discharges alone.
    pub fn redundant_energy(&self, params: &TechnologyParams) -> Picojoules {
        params.rbl_energy_per_bit() * self.redundant_discharges
    }

    /// Adds another tile's counters into this one.
    pub fn merge(&mut self, other: &TileStats) {
        self.rwl_activations += other.rwl_activations;
        self.rbl_discharges += other.rbl_discharges;
        self.redundant_discharges += other.redundant_discharges;
        self.bits_written += other.bits_written;
        self.bits_read += other.bits_read;
        self.compute_accesses += other.compute_accesses;
    }
}

/// A single SRAM tile of `rows x cols` logical bits.
///
/// The complementary bitcell of each stored bit (required for compute mode)
/// is modeled implicitly: a compute access books two word-line activations
/// and the capacity bookkeeping in [`crate::cache::CacheGeometry`] follows
/// the paper in quoting logical capacity.
///
/// ```
/// use sachi_mem::sram::SramTile;
///
/// let mut tile = SramTile::new(4, 8);
/// tile.write_row(0, &[true, false, true, false, true, false, true, false]).unwrap();
/// // Drive the row's RWL with J = 1 and sense only columns 0..2:
/// let out = tile.compute_xnor(0, true, 0..2).unwrap();
/// assert_eq!(out, vec![true, false]); // 1 XNOR 1 = 1, 0 XNOR 1 = 0
/// ```
#[derive(Debug, Clone)]
pub struct SramTile {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    bits: Vec<u64>,
    stats: TileStats,
}

impl SramTile {
    /// Creates a zero-initialized tile.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "tile must have non-zero dimensions");
        let words_per_row = cols.div_ceil(64);
        SramTile {
            rows,
            cols,
            words_per_row,
            bits: vec![0; rows * words_per_row],
            stats: TileStats::default(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (bits per row).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The accumulated event counters.
    pub fn stats(&self) -> &TileStats {
        &self.stats
    }

    /// Resets the event counters (not the stored data).
    pub fn reset_stats(&mut self) {
        self.stats = TileStats::default();
    }

    #[inline]
    fn check(&self, row: usize, col: usize) -> Result<(), AccessError> {
        if row >= self.rows {
            return Err(AccessError::new(format!("row {row} >= {}", self.rows)));
        }
        if col >= self.cols {
            return Err(AccessError::new(format!("col {col} >= {}", self.cols)));
        }
        Ok(())
    }

    #[inline]
    fn bit_unchecked(&self, row: usize, col: usize) -> bool {
        let word = self.bits[row * self.words_per_row + col / 64];
        (word >> (col % 64)) & 1 == 1
    }

    #[inline]
    fn set_bit_unchecked(&mut self, row: usize, col: usize, value: bool) {
        let word = &mut self.bits[row * self.words_per_row + col / 64];
        if value {
            *word |= 1 << (col % 64);
        } else {
            *word &= !(1 << (col % 64));
        }
    }

    /// Writes one bit through the write port.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if `row`/`col` is out of bounds.
    pub fn write_bit(&mut self, row: usize, col: usize, value: bool) -> Result<(), AccessError> {
        self.check(row, col)?;
        self.set_bit_unchecked(row, col, value);
        self.stats.bits_written += 1;
        Ok(())
    }

    /// Writes a full row, starting at column 0.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if `row` is out of bounds or `values` is wider
    /// than the row.
    pub fn write_row(&mut self, row: usize, values: &[bool]) -> Result<(), AccessError> {
        if values.len() > self.cols {
            return Err(AccessError::new(format!(
                "row write of {} bits > {} cols",
                values.len(),
                self.cols
            )));
        }
        self.check(row, 0)?;
        for (col, &v) in values.iter().enumerate() {
            self.set_bit_unchecked(row, col, v);
        }
        self.stats.bits_written += count_u64(values.len());
        Ok(())
    }

    /// Writes `values` into a row starting at `start_col`.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] on out-of-bounds.
    pub fn write_slice(
        &mut self,
        row: usize,
        start_col: usize,
        values: &[bool],
    ) -> Result<(), AccessError> {
        if start_col + values.len() > self.cols {
            return Err(AccessError::new(format!(
                "slice write [{start_col}, {}) > {} cols",
                start_col + values.len(),
                self.cols
            )));
        }
        self.check(row, start_col.min(self.cols.saturating_sub(1)))?;
        for (i, &v) in values.iter().enumerate() {
            self.set_bit_unchecked(row, start_col + i, v);
        }
        self.stats.bits_written += count_u64(values.len());
        Ok(())
    }

    /// Reads one bit in normal mode.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if `row`/`col` is out of bounds.
    pub fn read_bit(&mut self, row: usize, col: usize) -> Result<bool, AccessError> {
        self.check(row, col)?;
        self.stats.bits_read += 1;
        Ok(self.bit_unchecked(row, col))
    }

    /// Reads a column range of a row in normal mode.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] on out-of-bounds.
    pub fn read_range(&mut self, row: usize, cols: Range<usize>) -> Result<Vec<bool>, AccessError> {
        if cols.end > self.cols {
            return Err(AccessError::new(format!(
                "read range end {} > {} cols",
                cols.end, self.cols
            )));
        }
        self.check(row, 0)?;
        self.stats.bits_read += count_u64(cols.len());
        Ok(cols.map(|c| self.bit_unchecked(row, c)).collect())
    }

    /// Peeks a bit without booking any access energy (testing/debug).
    pub fn peek(&self, row: usize, col: usize) -> Option<bool> {
        if row < self.rows && col < self.cols {
            Some(self.bit_unchecked(row, col))
        } else {
            None
        }
    }

    /// One Ising-compute-mode access: drives the RWL pair of `row` with
    /// `input` (and its complement), senses the columns in `sense`, and
    /// returns their XNOR values.
    ///
    /// Physics captured:
    ///
    /// * **every** column of the row discharges its RBL whenever
    ///   `stored XNOR input == 1` — whether or not it is sensed;
    /// * discharges outside `sense` are booked as redundant compute;
    /// * two word-lines pulse per access (true + complement row).
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if `row` is out of bounds or `sense` exceeds
    /// the row width.
    pub fn compute_xnor(
        &mut self,
        row: usize,
        input: bool,
        sense: Range<usize>,
    ) -> Result<Vec<bool>, AccessError> {
        let cols = self.cols;
        self.compute_xnor_windowed(row, input, 0..cols, sense)
    }

    /// Compute access with an explicit *active window*: only columns inside
    /// `active` are precharged (columns that never hold live data are
    /// statically power-gated, a standard column-gating technique), so only
    /// they can discharge. `sense` selects which of the active columns are
    /// read out; active-but-unsensed columns that discharge are booked as
    /// redundant compute.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if `row` is out of bounds, `active` exceeds
    /// the row width, or `sense` is not contained in `active`.
    pub fn compute_xnor_windowed(
        &mut self,
        row: usize,
        input: bool,
        active: Range<usize>,
        sense: Range<usize>,
    ) -> Result<Vec<bool>, AccessError> {
        if active.end > self.cols {
            return Err(AccessError::new(format!(
                "active range end {} > {} cols",
                active.end, self.cols
            )));
        }
        if !sense.is_empty() && (sense.start < active.start || sense.end > active.end) {
            return Err(AccessError::new(format!(
                "sense range {sense:?} outside active window {active:?}"
            )));
        }
        self.check(row, 0)?;
        self.stats.compute_accesses += 1;
        self.stats.rwl_activations += 2;

        // Word-level evaluation: XNOR(S, input) per 64-bit word, masked to
        // the active columns of the row.
        let base = row * self.words_per_row;
        let broadcast = if input { u64::MAX } else { 0 };
        let mut discharges = 0u64;
        let mut useful = 0u64;
        let mut out = Vec::with_capacity(sense.len());
        for w in 0..self.words_per_row {
            let word_start = w * 64;
            let valid_bits = (self.cols - word_start).min(64);
            // Active columns within this word.
            let alo = active.start.max(word_start);
            let ahi = active.end.min(word_start + valid_bits);
            if alo >= ahi {
                continue;
            }
            let span = ahi - alo;
            let amask = if span == 64 {
                u64::MAX
            } else {
                ((1u64 << span) - 1) << (alo - word_start)
            };
            let xnor = !(self.bits[base + w] ^ broadcast) & amask;
            discharges += u64::from(xnor.count_ones());
            // Sensed columns within this word.
            let lo = sense.start.max(word_start);
            let hi = sense.end.min(word_start + valid_bits);
            if lo < hi {
                let sensed = (xnor >> (lo - word_start))
                    & if hi - lo == 64 {
                        u64::MAX
                    } else {
                        (1u64 << (hi - lo)) - 1
                    };
                useful += u64::from(sensed.count_ones());
                for b in 0..(hi - lo) {
                    out.push((sensed >> b) & 1 == 1);
                }
            }
        }
        self.stats.rbl_discharges += discharges;
        self.stats.redundant_discharges += discharges - useful;
        Ok(out)
    }

    /// Single-column compute access within an active window (the SACHI(n1)
    /// designs sense exactly one bit-line per cycle while the whole active
    /// row discharges). Equivalent to [`SramTile::compute_xnor_windowed`]
    /// with a one-column sense range, without the output allocation.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if bounds are violated or `col` lies outside
    /// `active`.
    pub fn compute_xnor_bit(
        &mut self,
        row: usize,
        input: bool,
        active: Range<usize>,
        col: usize,
    ) -> Result<bool, AccessError> {
        if active.end > self.cols {
            return Err(AccessError::new(format!(
                "active range end {} > {} cols",
                active.end, self.cols
            )));
        }
        if !active.contains(&col) {
            return Err(AccessError::new(format!(
                "sensed col {col} outside active window {active:?}"
            )));
        }
        self.check(row, col)?;
        self.stats.compute_accesses += 1;
        self.stats.rwl_activations += 2;
        let base = row * self.words_per_row;
        let broadcast = if input { u64::MAX } else { 0 };
        let mut discharges = 0u64;
        for w in 0..self.words_per_row {
            let word_start = w * 64;
            let valid_bits = (self.cols - word_start).min(64);
            let alo = active.start.max(word_start);
            let ahi = active.end.min(word_start + valid_bits);
            if alo >= ahi {
                continue;
            }
            let span = ahi - alo;
            let amask = if span == 64 {
                u64::MAX
            } else {
                ((1u64 << span) - 1) << (alo - word_start)
            };
            discharges += u64::from((!(self.bits[base + w] ^ broadcast) & amask).count_ones());
        }
        let result = self.bit_unchecked(row, col) == input;
        self.stats.rbl_discharges += discharges;
        self.stats.redundant_discharges += discharges - u64::from(result);
        Ok(result)
    }

    /// Compute access that senses the *entire* row (SACHI(n3): "`σ_i` is
    /// shared across a complete row with no requirement of bit-line
    /// select").
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if `row` is out of bounds.
    pub fn compute_xnor_full_row(
        &mut self,
        row: usize,
        input: bool,
    ) -> Result<Vec<bool>, AccessError> {
        self.compute_xnor(row, input, 0..self.cols)
    }

    /// Normal-mode range read through a [`FaultInjector`]: the stored
    /// bits are read exactly as [`SramTile::read_range`] would, then the
    /// injector applies transient flips and stuck-at overrides to the
    /// *returned* values (a read fault corrupts the sensed data, not the
    /// cell contents). Returns the possibly-corrupted bits and the number
    /// of transient flips injected. With an inert model this is
    /// bit-identical to `read_range` and consumes no RNG draws.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] on out-of-bounds.
    pub fn read_range_with_faults(
        &mut self,
        row: usize,
        cols: Range<usize>,
        inj: &mut FaultInjector,
    ) -> Result<(Vec<bool>, u64), AccessError> {
        let start = cols.start;
        let mut bits = self.read_range(row, cols)?;
        let flips = inj.corrupt_sram_read(row, start, &mut bits);
        Ok((bits, flips))
    }

    /// Ising-compute access through a [`FaultInjector`]: the discharge
    /// pattern is computed exactly as [`SramTile::compute_xnor`] would,
    /// then transient flips / stuck-at overrides corrupt the *sensed*
    /// outputs. Energy accounting is untouched — a flipped sense
    /// amplifier output costs the same as a correct one. Returns the
    /// sensed values plus the transient flip count.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if `row` is out of bounds or `sense`
    /// exceeds the row width.
    pub fn compute_xnor_with_faults(
        &mut self,
        row: usize,
        input: bool,
        sense: Range<usize>,
        inj: &mut FaultInjector,
    ) -> Result<(Vec<bool>, u64), AccessError> {
        let start = sense.start;
        let mut out = self.compute_xnor(row, input, sense)?;
        let flips = inj.corrupt_sram_read(row, start, &mut out);
        Ok((out, flips))
    }

    /// Fault-injection hook: flips the stored bit at `(row, col)` without
    /// booking any access energy, returning the new value. Models a
    /// particle-strike/retention upset for resilience testing — the
    /// all-digital compute path makes such faults *observable* (the
    /// discharge pattern changes deterministically), unlike the analog
    /// accumulation of BRIM/Ising-CIM where a flipped cell only shifts a
    /// voltage.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if `row`/`col` is out of bounds.
    pub fn inject_bit_flip(&mut self, row: usize, col: usize) -> Result<bool, AccessError> {
        self.check(row, col)?;
        let new = !self.bit_unchecked(row, col);
        self.set_bit_unchecked(row, col, new);
        Ok(new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile_with_pattern() -> SramTile {
        let mut t = SramTile::new(3, 6);
        t.write_row(0, &[true, false, true, true, false, false])
            .unwrap();
        t.write_row(1, &[false, false, false, false, false, false])
            .unwrap();
        t.write_row(2, &[true, true, true, true, true, true])
            .unwrap();
        t
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut t = tile_with_pattern();
        assert!(t.read_bit(0, 0).unwrap());
        assert!(!t.read_bit(0, 1).unwrap());
        assert_eq!(
            t.read_range(0, 0..6).unwrap(),
            vec![true, false, true, true, false, false]
        );
    }

    #[test]
    fn xnor_against_one_is_identity() {
        let mut t = tile_with_pattern();
        let out = t.compute_xnor(0, true, 0..6).unwrap();
        assert_eq!(out, vec![true, false, true, true, false, false]);
    }

    #[test]
    fn xnor_against_zero_is_complement() {
        let mut t = tile_with_pattern();
        let out = t.compute_xnor(0, false, 0..6).unwrap();
        assert_eq!(out, vec![false, true, false, false, true, true]);
    }

    #[test]
    fn discharge_counts_match_xnor_ones() {
        let mut t = tile_with_pattern();
        // Row 2 all ones, input 1 -> every column discharges.
        t.compute_xnor(2, true, 0..6).unwrap();
        assert_eq!(t.stats().rbl_discharges, 6);
        assert_eq!(t.stats().redundant_discharges, 0);
        assert_eq!(t.stats().rwl_activations, 2);
        assert_eq!(t.stats().compute_accesses, 1);
    }

    #[test]
    fn unsensed_columns_are_redundant_discharges() {
        let mut t = tile_with_pattern();
        // Row 2 all ones, input 1, but only column 0 sensed: 5 redundant.
        let out = t.compute_xnor(2, true, 0..1).unwrap();
        assert_eq!(out, vec![true]);
        assert_eq!(t.stats().rbl_discharges, 6);
        assert_eq!(t.stats().redundant_discharges, 5);
    }

    #[test]
    fn no_discharge_when_xnor_zero() {
        let mut t = tile_with_pattern();
        // Row 1 all zeros, input 1 -> XNOR 0 everywhere, RBL retains.
        t.compute_xnor(1, true, 0..6).unwrap();
        assert_eq!(t.stats().rbl_discharges, 0);
        assert_eq!(t.stats().redundant_discharges, 0);
    }

    #[test]
    fn full_row_compute_has_no_redundancy() {
        let mut t = tile_with_pattern();
        t.compute_xnor_full_row(0, false).unwrap();
        assert_eq!(t.stats().redundant_discharges, 0);
        // Row 0 has three 0 bits; XNOR with 0 -> three discharges.
        assert_eq!(t.stats().rbl_discharges, 3);
    }

    #[test]
    fn energy_ledger_prices_counters() {
        let params = TechnologyParams::default();
        let mut t = tile_with_pattern();
        t.compute_xnor_full_row(2, true).unwrap();
        let ledger = t.stats().energy(&params);
        // 2 RWL activations * 0.05 pJ + 6 discharges * 0.035 pJ + 18 writes * 0.05 pJ.
        let expected = 2.0 * 0.05 + 6.0 * 0.035 + 18.0 * 0.05;
        assert!(
            (ledger.total().get() - expected).abs() < 1e-9,
            "{}",
            ledger.total()
        );
        assert!((t.stats().redundant_energy(&params).get() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut t = SramTile::new(2, 4);
        assert!(t.write_bit(2, 0, true).is_err());
        assert!(t.write_bit(0, 4, true).is_err());
        assert!(t.read_bit(0, 9).is_err());
        assert!(t.compute_xnor(0, true, 0..5).is_err());
        assert!(t.compute_xnor(5, true, 0..1).is_err());
        assert!(t.write_row(0, &[true; 5]).is_err());
        assert!(t.write_slice(0, 2, &[true; 3]).is_err());
        let err = t.write_bit(2, 0, true).unwrap_err();
        assert!(format!("{err}").contains("out of bounds"));
    }

    #[test]
    fn write_slice_places_bits() {
        let mut t = SramTile::new(1, 8);
        t.write_slice(0, 3, &[true, true]).unwrap();
        assert_eq!(t.peek(0, 2), Some(false));
        assert_eq!(t.peek(0, 3), Some(true));
        assert_eq!(t.peek(0, 4), Some(true));
        assert_eq!(t.peek(0, 5), Some(false));
        assert_eq!(t.peek(0, 8), None);
        assert_eq!(t.peek(1, 0), None);
    }

    #[test]
    fn stats_merge_and_reset() {
        let mut a = tile_with_pattern();
        a.compute_xnor_full_row(0, true).unwrap();
        let mut s = TileStats::default();
        s.merge(a.stats());
        s.merge(a.stats());
        assert_eq!(s.rwl_activations, 4);
        a.reset_stats();
        assert_eq!(a.stats().rwl_activations, 0);
        // Data survives a stats reset.
        assert_eq!(a.peek(0, 0), Some(true));
    }

    #[test]
    fn compute_xnor_bit_matches_range_variant() {
        let mut a = tile_with_pattern();
        let mut b = tile_with_pattern();
        for col in 0..6 {
            let single = a.compute_xnor_bit(0, true, 0..6, col).unwrap();
            let ranged = b
                .compute_xnor_windowed(0, true, 0..6, col..col + 1)
                .unwrap();
            assert_eq!(vec![single], ranged, "col {col}");
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.compute_xnor_bit(0, true, 0..6, 6).is_err());
        assert!(a.compute_xnor_bit(0, true, 0..2, 4).is_err());
    }

    #[test]
    fn active_window_gates_discharges() {
        let mut t = tile_with_pattern();
        // Row 2 is all ones; with input 1 every *active* column discharges.
        t.compute_xnor_windowed(2, true, 0..3, 0..3).unwrap();
        assert_eq!(t.stats().rbl_discharges, 3);
        assert_eq!(t.stats().redundant_discharges, 0);
        // Active beyond sensed: the excess is redundant.
        let mut u = tile_with_pattern();
        u.compute_xnor_windowed(2, true, 0..5, 1..2).unwrap();
        assert_eq!(u.stats().rbl_discharges, 5);
        assert_eq!(u.stats().redundant_discharges, 4);
        // Sense outside active is rejected.
        assert!(u.compute_xnor_windowed(2, true, 0..3, 2..5).is_err());
        assert!(u.compute_xnor_windowed(2, true, 0..9, 0..1).is_err());
    }

    #[test]
    fn injected_fault_changes_the_discharge_pattern_deterministically() {
        let mut healthy = tile_with_pattern();
        let mut faulty = tile_with_pattern();
        let flipped_to = faulty.inject_bit_flip(0, 2).unwrap();
        assert!(!flipped_to, "row 0 col 2 stored 1, fault flips to 0");
        let good = healthy.compute_xnor(0, true, 0..6).unwrap();
        let bad = faulty.compute_xnor(0, true, 0..6).unwrap();
        assert_ne!(good, bad, "fault must be observable in the XNOR output");
        // Exactly one column differs — the digital path localizes it.
        let diffs = good.iter().zip(bad.iter()).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
        // Fault injection books no access energy.
        assert_eq!(
            healthy.stats().rwl_activations,
            faulty.stats().rwl_activations
        );
        assert!(faulty.inject_bit_flip(9, 0).is_err());
    }

    #[test]
    fn faulted_reads_are_identity_under_an_inert_model() {
        use crate::fault::FaultModel;
        let mut t = tile_with_pattern();
        let mut clean = tile_with_pattern();
        let mut inj = FaultModel::new(7).injector(0);
        let (bits, flips) = t.read_range_with_faults(0, 0..6, &mut inj).unwrap();
        assert_eq!(flips, 0);
        assert_eq!(bits, clean.read_range(0, 0..6).unwrap());
        let (out, flips) = t.compute_xnor_with_faults(0, true, 0..6, &mut inj).unwrap();
        assert_eq!(flips, 0);
        assert_eq!(out, clean.compute_xnor(0, true, 0..6).unwrap());
        // Accounting identical to the fault-free path.
        assert_eq!(t.stats(), clean.stats());
    }

    #[test]
    fn faulted_reads_corrupt_outputs_not_cells() {
        use crate::fault::{FaultModel, FaultRate};
        let model = FaultModel::new(3).with_read_ber(FaultRate::from_ppb(1_000_000_000));
        let mut inj = model.injector(0);
        let mut t = tile_with_pattern();
        let (bits, flips) = t.read_range_with_faults(0, 0..6, &mut inj).unwrap();
        assert_eq!(flips, 6, "certainty BER flips every sensed bit");
        assert_eq!(bits, vec![false, true, false, false, true, true]);
        // The stored cells are untouched: a clean read still sees the truth.
        assert_eq!(
            t.read_range(0, 0..6).unwrap(),
            vec![true, false, true, true, false, false]
        );
        let (out, flips) = t.compute_xnor_with_faults(0, true, 2..5, &mut inj).unwrap();
        assert_eq!(flips, 3);
        assert_eq!(out, vec![false, false, true]);
    }

    #[test]
    fn stuck_cell_pins_the_sensed_window() {
        use crate::fault::FaultModel;
        let model = FaultModel::new(0).with_stuck_cell(0, 4, true);
        let mut inj = model.injector(0);
        let mut t = tile_with_pattern();
        // Window 2..6 of row 0: stored [1, 1, 0, 0]; col 4 stuck at 1.
        let (bits, flips) = t.read_range_with_faults(0, 2..6, &mut inj).unwrap();
        assert_eq!(flips, 0);
        assert_eq!(bits, vec![true, true, true, false]);
        assert_eq!(inj.counters().stuck_overrides, 1);
    }

    #[test]
    fn wide_rows_cross_word_boundaries() {
        let mut t = SramTile::new(2, 130);
        t.write_bit(1, 129, true).unwrap();
        t.write_bit(1, 63, true).unwrap();
        t.write_bit(1, 64, true).unwrap();
        assert!(t.read_bit(1, 129).unwrap());
        assert!(t.read_bit(1, 63).unwrap());
        assert!(t.read_bit(1, 64).unwrap());
        assert!(!t.read_bit(1, 128).unwrap());
        let out = t.compute_xnor(1, true, 128..130).unwrap();
        assert_eq!(out, vec![false, true]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A naive reference model: a plain bit matrix with the same
    /// semantics, including discharge counting.
    struct Reference {
        bits: Vec<Vec<bool>>,
    }

    impl Reference {
        fn new(rows: usize, cols: usize) -> Self {
            Reference {
                bits: vec![vec![false; cols]; rows],
            }
        }

        fn xnor(
            &self,
            row: usize,
            input: bool,
            active: std::ops::Range<usize>,
            sense: std::ops::Range<usize>,
        ) -> (Vec<bool>, u64, u64) {
            let mut discharges = 0;
            let mut useful = 0;
            let mut out = Vec::new();
            for col in active.clone() {
                let x = self.bits[row][col] == input;
                if x {
                    discharges += 1;
                }
                if sense.contains(&col) {
                    out.push(x);
                    if x {
                        useful += 1;
                    }
                }
            }
            (out, discharges, discharges - useful)
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        WriteBit {
            row: usize,
            col: usize,
            value: bool,
        },
        WriteSlice {
            row: usize,
            start: usize,
            values: Vec<bool>,
        },
        Xnor {
            row: usize,
            input: bool,
            active_start: usize,
            active_len: usize,
            sense_off: usize,
            sense_len: usize,
        },
    }

    fn op_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..rows, 0..cols, any::<bool>()).prop_map(|(row, col, value)| Op::WriteBit {
                row,
                col,
                value
            }),
            (0..rows, 0..cols, prop::collection::vec(any::<bool>(), 1..8)).prop_map(
                move |(row, start, values)| {
                    let start = start.min(cols - 1);
                    let len = values.len().min(cols - start);
                    Op::WriteSlice {
                        row,
                        start,
                        values: values[..len].to_vec(),
                    }
                }
            ),
            (0..rows, any::<bool>(), 0..cols, 1..cols, 0..cols, 1..cols).prop_map(
                move |(row, input, a_start, a_len, s_off, s_len)| Op::Xnor {
                    row,
                    input,
                    active_start: a_start,
                    active_len: a_len,
                    sense_off: s_off,
                    sense_len: s_len,
                }
            ),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Under arbitrary interleavings of writes and windowed compute
        /// accesses, the word-level tile matches the naive bit-matrix
        /// model: outputs, discharge counts, and redundancy counts.
        #[test]
        fn tile_matches_reference_model(ops in prop::collection::vec(op_strategy(6, 150), 1..40)) {
            let (rows, cols) = (6usize, 150usize);
            let mut tile = SramTile::new(rows, cols);
            let mut reference = Reference::new(rows, cols);
            for op in ops {
                match op {
                    Op::WriteBit { row, col, value } => {
                        tile.write_bit(row, col, value).unwrap();
                        reference.bits[row][col] = value;
                    }
                    Op::WriteSlice { row, start, values } => {
                        tile.write_slice(row, start, &values).unwrap();
                        for (i, &v) in values.iter().enumerate() {
                            reference.bits[row][start + i] = v;
                        }
                    }
                    Op::Xnor { row, input, active_start, active_len, sense_off, sense_len } => {
                        let a_start = active_start.min(cols - 1);
                        let a_end = (a_start + active_len).min(cols);
                        let s_start = (a_start + sense_off).min(a_end);
                        let s_end = (s_start + sense_len).min(a_end);
                        let before = *tile.stats();
                        let got = tile
                            .compute_xnor_windowed(row, input, a_start..a_end, s_start..s_end)
                            .unwrap();
                        let after = *tile.stats();
                        let (want, discharges, redundant) =
                            reference.xnor(row, input, a_start..a_end, s_start..s_end);
                        prop_assert_eq!(got, want);
                        prop_assert_eq!(after.rbl_discharges - before.rbl_discharges, discharges);
                        prop_assert_eq!(
                            after.redundant_discharges - before.redundant_discharges,
                            redundant
                        );
                        prop_assert_eq!(after.rwl_activations - before.rwl_activations, 2);
                    }
                }
            }
        }
    }
}
