//! Bit-accurate functional model of an 8T SRAM compute tile.
//!
//! The SACHI compute array is built from unmodified 8T bitcells with
//! decoupled read and write ports (Sec. IV.C.2, Fig. 10). The cell has two
//! modes:
//!
//! * **Normal mode** — data is written via WWL/WBL and read via RWL/RBL,
//!   exactly like the L1 cache it repurposes.
//! * **Ising compute mode** — the read word-line is repurposed as a compute
//!   input. Two bitcells in the same column hold a stored bit `S` and its
//!   complement `S'`; driving their RWLs with an input `J` and its complement
//!   `J'` makes the shared read bit-line compute
//!   `(S AND J) OR (S' AND J') == S XNOR J`. The RBL *discharges* when the
//!   XNOR value is 1 and retains its precharge when it is 0.
//!
//! This module models the array at the bit level: a compute access returns
//! exactly the discharge pattern the silicon would produce, and the energy
//! counters distinguish *useful* discharges (columns whose bit-line select
//! was enabled and sensed) from *redundant* discharges (columns that
//! discharged anyway because they share the activated word-line). Redundant
//! discharge is the energy-waste mechanism of Fig. 5c that motivates
//! SACHI's reuse-aware designs.

use crate::energy::{EnergyComponent, EnergyLedger};
use crate::fault::FaultInjector;
use crate::lanes;
use crate::params::TechnologyParams;
use crate::units::convert::count_u64;
use crate::units::Picojoules;
use std::fmt;
use std::ops::Range;

/// Generator-style tile parameters, the way sram22 exposes its bitcell
/// arrays: rows, columns, and the bank count as first-class knobs rather
/// than hard-coded geometry.
///
/// Banks partition the write port: a `B`-bank tile accepts `B` row
/// uploads per cycle (one per bank write port), so a chunk of `rows`
/// tuple rows streams in over `ceil(rows / B)` cycles instead of `rows`.
/// The compute side is unaffected — banking widens the *upload* path the
/// sweep pipeline overlaps against the prefetcher, not the XNOR arrays.
/// `banks == 1` is, by construction, exactly the unbanked tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileParams {
    /// Number of rows.
    pub rows: usize,
    /// Bits per row.
    pub cols: usize,
    /// Write-port banks (`>= 1`).
    pub banks: usize,
}

impl TileParams {
    /// Single-bank parameters for a `rows x cols` tile.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "tile must have non-zero dimensions");
        TileParams {
            rows,
            cols,
            banks: 1,
        }
    }

    /// Sets the bank count.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn with_banks(mut self, banks: usize) -> Self {
        assert!(banks >= 1, "tile needs at least one bank");
        self.banks = banks;
        self
    }

    /// Cycles to upload `rows` tuple rows through the banked write port:
    /// `ceil(rows / banks)`. With one bank this is the identity, which is
    /// what keeps `banks == 1` cycle-identical to the unbanked machine.
    #[must_use]
    pub fn upload_cycles(&self, rows: u64) -> u64 {
        rows.div_ceil(count_u64(self.banks))
    }
}

/// Error returned by [`SramTile`] operations on out-of-bounds accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessError {
    /// Human-readable description of the violated bound.
    what: String,
}

impl AccessError {
    fn new(what: impl Into<String>) -> Self {
        AccessError { what: what.into() }
    }
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sram access out of bounds: {}", self.what)
    }
}

impl std::error::Error for AccessError {}

/// Raw event counters accumulated by a tile.
///
/// Counters are converted to energy by [`TileStats::energy`] using a
/// [`TechnologyParams`]; keeping raw counts lets the same run be re-priced
/// under different technology assumptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TileStats {
    /// Read word-line activations (each compute access pulses the stored
    /// row and its complement row: 2 activations).
    pub rwl_activations: u64,
    /// Total bit-line discharge events, useful and redundant.
    pub rbl_discharges: u64,
    /// Discharges on columns whose output was *not* sensed (redundant
    /// compute energy, Fig. 5c).
    pub redundant_discharges: u64,
    /// Bits written through the write port.
    pub bits_written: u64,
    /// Bits read in normal (non-compute) mode.
    pub bits_read: u64,
    /// Number of compute-mode accesses (one per cycle per tile).
    pub compute_accesses: u64,
}

impl TileStats {
    /// Prices the accumulated events under `params`.
    pub fn energy(&self, params: &TechnologyParams) -> EnergyLedger {
        let mut ledger = EnergyLedger::new();
        ledger.record(
            EnergyComponent::RwlDrive,
            params.rwl_energy_per_bit() * self.rwl_activations,
        );
        ledger.record(
            EnergyComponent::RblDischarge,
            params.rbl_energy_per_bit() * self.rbl_discharges,
        );
        ledger.record(
            EnergyComponent::SramWrite,
            params.sram_write_energy_per_bit() * self.bits_written,
        );
        ledger.record(
            EnergyComponent::SramRead,
            params.rbl_energy_per_bit() * self.bits_read,
        );
        ledger
    }

    /// Energy attributable to redundant discharges alone.
    pub fn redundant_energy(&self, params: &TechnologyParams) -> Picojoules {
        params.rbl_energy_per_bit() * self.redundant_discharges
    }

    /// Exports the counters into `reg` under the `sram_` prefix.
    pub fn export(&self, reg: &mut sachi_obs::MetricsRegistry) {
        reg.counter_add("sram_rwl_activations", self.rwl_activations);
        reg.counter_add("sram_rbl_discharges", self.rbl_discharges);
        reg.counter_add("sram_redundant_discharges", self.redundant_discharges);
        reg.counter_add("sram_bits_written", self.bits_written);
        reg.counter_add("sram_bits_read", self.bits_read);
        reg.counter_add("sram_compute_accesses", self.compute_accesses);
    }

    /// Adds another tile's counters into this one.
    pub fn merge(&mut self, other: &TileStats) {
        self.rwl_activations += other.rwl_activations;
        self.rbl_discharges += other.rbl_discharges;
        self.redundant_discharges += other.redundant_discharges;
        self.bits_written += other.bits_written;
        self.bits_read += other.bits_read;
        self.compute_accesses += other.compute_accesses;
    }
}

/// A single SRAM tile of `rows x cols` logical bits.
///
/// The complementary bitcell of each stored bit (required for compute mode)
/// is modeled implicitly: a compute access books two word-line activations
/// and the capacity bookkeeping in [`crate::cache::CacheGeometry`] follows
/// the paper in quoting logical capacity.
///
/// ```
/// use sachi_mem::sram::SramTile;
///
/// let mut tile = SramTile::new(4, 8);
/// tile.write_row(0, &[true, false, true, false, true, false, true, false]).unwrap();
/// // Drive the row's RWL with J = 1 and sense only columns 0..2:
/// let out = tile.compute_xnor(0, true, 0..2).unwrap();
/// assert_eq!(out, vec![true, false]); // 1 XNOR 1 = 1, 0 XNOR 1 = 0
/// ```
#[derive(Debug, Clone)]
pub struct SramTile {
    rows: usize,
    cols: usize,
    banks: usize,
    words_per_row: usize,
    bits: Vec<u64>,
    stats: TileStats,
}

impl SramTile {
    /// Creates a zero-initialized single-bank tile.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self::with_params(TileParams::new(rows, cols))
    }

    /// Creates a zero-initialized tile from generator parameters. The bank
    /// count only widens the upload path's cycle accounting (see
    /// [`TileParams::upload_cycles`]); stored bits, compute kernels, and
    /// every [`TileStats`] counter are identical across bank counts.
    pub fn with_params(params: TileParams) -> Self {
        let words_per_row = params.cols.div_ceil(64);
        SramTile {
            rows: params.rows,
            cols: params.cols,
            banks: params.banks,
            words_per_row,
            bits: vec![0; params.rows * words_per_row],
            stats: TileStats::default(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (bits per row).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of write-port banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// The tile's generator parameters.
    pub fn params(&self) -> TileParams {
        TileParams {
            rows: self.rows,
            cols: self.cols,
            banks: self.banks,
        }
    }

    /// The accumulated event counters.
    pub fn stats(&self) -> &TileStats {
        &self.stats
    }

    /// Resets the event counters (not the stored data).
    pub fn reset_stats(&mut self) {
        self.stats = TileStats::default();
    }

    #[inline]
    fn check(&self, row: usize, col: usize) -> Result<(), AccessError> {
        if row >= self.rows {
            return Err(AccessError::new(format!("row {row} >= {}", self.rows)));
        }
        if col >= self.cols {
            return Err(AccessError::new(format!("col {col} >= {}", self.cols)));
        }
        Ok(())
    }

    #[inline]
    fn bit_unchecked(&self, row: usize, col: usize) -> bool {
        let word = self.bits[row * self.words_per_row + col / 64];
        (word >> (col % 64)) & 1 == 1
    }

    #[inline]
    fn set_bit_unchecked(&mut self, row: usize, col: usize, value: bool) {
        let word = &mut self.bits[row * self.words_per_row + col / 64];
        if value {
            *word |= 1 << (col % 64);
        } else {
            *word &= !(1 << (col % 64));
        }
    }

    /// Writes one bit through the write port.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if `row`/`col` is out of bounds.
    pub fn write_bit(&mut self, row: usize, col: usize, value: bool) -> Result<(), AccessError> {
        self.check(row, col)?;
        self.set_bit_unchecked(row, col, value);
        self.stats.bits_written += 1;
        Ok(())
    }

    /// Writes a full row, starting at column 0.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if `row` is out of bounds or `values` is wider
    /// than the row.
    pub fn write_row(&mut self, row: usize, values: &[bool]) -> Result<(), AccessError> {
        if values.len() > self.cols {
            return Err(AccessError::new(format!(
                "row write of {} bits > {} cols",
                values.len(),
                self.cols
            )));
        }
        self.check(row, 0)?;
        for (col, &v) in values.iter().enumerate() {
            self.set_bit_unchecked(row, col, v);
        }
        self.stats.bits_written += count_u64(values.len());
        Ok(())
    }

    /// Writes `values` into a row starting at `start_col`.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] on out-of-bounds.
    pub fn write_slice(
        &mut self,
        row: usize,
        start_col: usize,
        values: &[bool],
    ) -> Result<(), AccessError> {
        if start_col + values.len() > self.cols {
            return Err(AccessError::new(format!(
                "slice write [{start_col}, {}) > {} cols",
                start_col + values.len(),
                self.cols
            )));
        }
        self.check(row, start_col.min(self.cols.saturating_sub(1)))?;
        for (i, &v) in values.iter().enumerate() {
            self.set_bit_unchecked(row, start_col + i, v);
        }
        self.stats.bits_written += count_u64(values.len());
        Ok(())
    }

    /// Reads one bit in normal mode.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if `row`/`col` is out of bounds.
    pub fn read_bit(&mut self, row: usize, col: usize) -> Result<bool, AccessError> {
        self.check(row, col)?;
        self.stats.bits_read += 1;
        Ok(self.bit_unchecked(row, col))
    }

    /// Reads a column range of a row in normal mode.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] on out-of-bounds.
    pub fn read_range(&mut self, row: usize, cols: Range<usize>) -> Result<Vec<bool>, AccessError> {
        if cols.end > self.cols {
            return Err(AccessError::new(format!(
                "read range end {} > {} cols",
                cols.end, self.cols
            )));
        }
        self.check(row, 0)?;
        self.stats.bits_read += count_u64(cols.len());
        Ok(cols.map(|c| self.bit_unchecked(row, c)).collect())
    }

    /// Peeks a bit without booking any access energy (testing/debug).
    pub fn peek(&self, row: usize, col: usize) -> Option<bool> {
        if row < self.rows && col < self.cols {
            Some(self.bit_unchecked(row, col))
        } else {
            None
        }
    }

    /// One Ising-compute-mode access: drives the RWL pair of `row` with
    /// `input` (and its complement), senses the columns in `sense`, and
    /// returns their XNOR values.
    ///
    /// Physics captured:
    ///
    /// * **every** column of the row discharges its RBL whenever
    ///   `stored XNOR input == 1` — whether or not it is sensed;
    /// * discharges outside `sense` are booked as redundant compute;
    /// * two word-lines pulse per access (true + complement row).
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if `row` is out of bounds or `sense` exceeds
    /// the row width.
    pub fn compute_xnor(
        &mut self,
        row: usize,
        input: bool,
        sense: Range<usize>,
    ) -> Result<Vec<bool>, AccessError> {
        let cols = self.cols;
        self.compute_xnor_windowed(row, input, 0..cols, sense)
    }

    /// Compute access with an explicit *active window*: only columns inside
    /// `active` are precharged (columns that never hold live data are
    /// statically power-gated, a standard column-gating technique), so only
    /// they can discharge. `sense` selects which of the active columns are
    /// read out; active-but-unsensed columns that discharge are booked as
    /// redundant compute.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if `row` is out of bounds, `active` exceeds
    /// the row width, or `sense` is not contained in `active`.
    pub fn compute_xnor_windowed(
        &mut self,
        row: usize,
        input: bool,
        active: Range<usize>,
        sense: Range<usize>,
    ) -> Result<Vec<bool>, AccessError> {
        if active.end > self.cols {
            return Err(AccessError::new(format!(
                "active range end {} > {} cols",
                active.end, self.cols
            )));
        }
        if !sense.is_empty() && (sense.start < active.start || sense.end > active.end) {
            return Err(AccessError::new(format!(
                "sense range {sense:?} outside active window {active:?}"
            )));
        }
        self.check(row, 0)?;
        self.stats.compute_accesses += 1;
        self.stats.rwl_activations += 2;

        // Word-level evaluation: XNOR(S, input) per 64-bit word, masked to
        // the active columns of the row.
        let base = row * self.words_per_row;
        let broadcast = if input { u64::MAX } else { 0 };
        let mut discharges = 0u64;
        let mut useful = 0u64;
        let mut out = Vec::with_capacity(sense.len());
        for w in 0..self.words_per_row {
            let word_start = w * 64;
            let valid_bits = (self.cols - word_start).min(64);
            // Active columns within this word.
            let alo = active.start.max(word_start);
            let ahi = active.end.min(word_start + valid_bits);
            if alo >= ahi {
                continue;
            }
            let span = ahi - alo;
            let amask = if span == 64 {
                u64::MAX
            } else {
                ((1u64 << span) - 1) << (alo - word_start)
            };
            let xnor = !(self.bits[base + w] ^ broadcast) & amask;
            discharges += u64::from(xnor.count_ones());
            // Sensed columns within this word.
            let lo = sense.start.max(word_start);
            let hi = sense.end.min(word_start + valid_bits);
            if lo < hi {
                let sensed = (xnor >> (lo - word_start))
                    & if hi - lo == 64 {
                        u64::MAX
                    } else {
                        (1u64 << (hi - lo)) - 1
                    };
                useful += u64::from(sensed.count_ones());
                for b in 0..(hi - lo) {
                    out.push((sensed >> b) & 1 == 1);
                }
            }
        }
        self.stats.rbl_discharges += discharges;
        self.stats.redundant_discharges += discharges - useful;
        Ok(out)
    }

    /// Packed-output compute access: identical physics and counter updates
    /// to [`SramTile::compute_xnor_windowed`] — one access, one RWL-pair
    /// pulse, the same discharge and redundancy accounting — but the sensed
    /// bits are written *row-aligned* into `out` (the sensed value of
    /// column `c` lands in bit `c % 64` of `out[c / 64]`) instead of
    /// allocating a `Vec<bool>`. The first `ceil(active.end / 64)` words
    /// of `out` are fully overwritten — every bit outside `sense` is zero
    /// — and words beyond that prefix are untouched. This is the
    /// zero-allocation kernel behind the designs' bit-plane fast path.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if `row` is out of bounds, `active` exceeds
    /// the row width, `sense` is not contained in `active`, or `out` is
    /// too narrow to cover `active`.
    pub fn compute_xnor_packed(
        &mut self,
        row: usize,
        input: bool,
        active: Range<usize>,
        sense: Range<usize>,
        out: &mut [u64],
    ) -> Result<(), AccessError> {
        if active.end > self.cols {
            return Err(AccessError::new(format!(
                "active range end {} > {} cols",
                active.end, self.cols
            )));
        }
        if !sense.is_empty() && (sense.start < active.start || sense.end > active.end) {
            return Err(AccessError::new(format!(
                "sense range {sense:?} outside active window {active:?}"
            )));
        }
        let out_words = active.end.div_ceil(64);
        if out.len() < out_words {
            return Err(AccessError::new(format!(
                "packed output of {} words < {out_words} words of active window",
                out.len()
            )));
        }
        self.check(row, 0)?;
        self.stats.compute_accesses += 1;
        self.stats.rwl_activations += 2;
        let base = row * self.words_per_row;
        let broadcast = if input { u64::MAX } else { 0 };
        let mut discharges = 0u64;
        let mut useful = 0u64;
        // Words fully inside both the active and sense windows need no
        // masking: their discharge count and sensed count are the same
        // popcount, so the chunked-lane kernel handles the whole inner run
        // and only the (at most four) window-edge words stay scalar.
        let full0 = active.start.max(sense.start).div_ceil(64);
        let full1 = (active.end / 64).min(sense.end / 64);
        let chunked = !sense.is_empty() && full0 < full1;
        if chunked {
            let stored = &self.bits[base + full0..base + full1];
            lanes::xnor_broadcast_into(stored, broadcast, &mut out[full0..full1]);
            let sensed_ones = lanes::popcount(&out[full0..full1]);
            discharges += sensed_ones;
            useful += sensed_ones;
        }
        for (w, slot) in out.iter_mut().enumerate().take(out_words) {
            if chunked && (full0..full1).contains(&w) {
                continue;
            }
            let word_start = w * 64;
            let valid_bits = (self.cols - word_start).min(64);
            let alo = active.start.max(word_start);
            let ahi = active.end.min(word_start + valid_bits);
            if alo >= ahi {
                *slot = 0;
                continue;
            }
            let span = ahi - alo;
            let amask = if span == 64 {
                u64::MAX
            } else {
                ((1u64 << span) - 1) << (alo - word_start)
            };
            let xnor = !(self.bits[base + w] ^ broadcast) & amask;
            discharges += u64::from(xnor.count_ones());
            let lo = sense.start.max(word_start);
            let hi = sense.end.min(word_start + valid_bits);
            if lo < hi {
                let sspan = hi - lo;
                let smask = if sspan == 64 {
                    u64::MAX
                } else {
                    ((1u64 << sspan) - 1) << (lo - word_start)
                };
                let sensed = xnor & smask;
                useful += u64::from(sensed.count_ones());
                *slot = sensed;
            } else {
                *slot = 0;
            }
        }
        self.stats.rbl_discharges += discharges;
        self.stats.redundant_discharges += discharges - useful;
        Ok(())
    }

    /// Word-parallel bit-plane compute: the zero-allocation equivalent of
    /// one [`SramTile::compute_xnor_bit`] call **per active column**, each
    /// driving that column's RWL pair with its own input bit taken from the
    /// row-aligned `plane` (column `c` reads bit `c % 64` of `plane[c /
    /// 64]`) and sensing exactly that column:
    ///
    /// ```text
    /// for col in active { compute_xnor_bit(row, plane_bit(col), active, col) }
    /// ```
    ///
    /// The counter updates are closed-form rather than per-call: a scalar
    /// call whose input bit is 1 discharges every stored 1 in the active
    /// window (`P` of them) and a call whose input bit is 0 discharges the
    /// remaining `A - P` columns, so the plane's `c1` one-bits contribute
    /// `c1·P + (A−c1)·(A−P)` total discharges; the sensed XNOR ones
    /// (`popcount(!(S ^ plane))` over the window) are useful and the rest
    /// redundant; `A` compute accesses pulse `2·A` word-lines. The
    /// resulting [`TileStats`] delta is bit-identical to the scalar loop
    /// (pinned by proptest).
    ///
    /// Outputs land row-aligned in the first `ceil(active.end / 64)` words
    /// of `out` (zero outside `active`); words beyond that prefix are
    /// untouched, and `plane` is read row-aligned over the same prefix.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if `row` is out of bounds, `active` exceeds
    /// the row width, or `plane`/`out` are too narrow to cover `active`.
    pub fn compute_xnor_plane(
        &mut self,
        row: usize,
        plane: &[u64],
        active: Range<usize>,
        out: &mut [u64],
    ) -> Result<(), AccessError> {
        if active.end > self.cols {
            return Err(AccessError::new(format!(
                "active range end {} > {} cols",
                active.end, self.cols
            )));
        }
        let span_words = active.end.div_ceil(64);
        if plane.len() < span_words || out.len() < span_words {
            return Err(AccessError::new(format!(
                "plane/out of {}/{} words < {span_words} words of active window",
                plane.len(),
                out.len()
            )));
        }
        self.check(row, 0)?;
        let accesses = count_u64(active.len());
        self.stats.compute_accesses += accesses;
        self.stats.rwl_activations += 2 * accesses;
        let base = row * self.words_per_row;
        let mut stored_ones = 0u64; // P: stored 1s inside the active window
        let mut input_ones = 0u64; // c1: plane 1s inside the active window
        let mut useful = 0u64;
        // Words fully covered by the active window (active.end <= cols
        // guarantees they also hold 64 valid bits) take the chunked-lane
        // kernel with no masking; at most two edge words stay scalar. The
        // chunked run computes the same words and popcounts as the masked
        // loop with a full-word mask — only the counter association
        // changes, and addition is associative.
        let full0 = active.start.div_ceil(64);
        let full1 = active.end / 64;
        let chunked = full0 < full1;
        if chunked {
            let stored = &self.bits[base + full0..base + full1];
            let drive = &plane[full0..full1];
            lanes::xnor_into(stored, drive, &mut out[full0..full1]);
            stored_ones += lanes::popcount(stored);
            input_ones += lanes::popcount(drive);
            useful += lanes::popcount(&out[full0..full1]);
        }
        for (w, slot) in out.iter_mut().enumerate().take(span_words) {
            if chunked && (full0..full1).contains(&w) {
                continue;
            }
            let word_start = w * 64;
            let valid_bits = (self.cols - word_start).min(64);
            let alo = active.start.max(word_start);
            let ahi = active.end.min(word_start + valid_bits);
            if alo >= ahi {
                *slot = 0;
                continue;
            }
            let span = ahi - alo;
            let amask = if span == 64 {
                u64::MAX
            } else {
                ((1u64 << span) - 1) << (alo - word_start)
            };
            let stored = self.bits[base + w];
            let xnor = !(stored ^ plane[w]) & amask;
            stored_ones += u64::from((stored & amask).count_ones());
            input_ones += u64::from((plane[w] & amask).count_ones());
            useful += u64::from(xnor.count_ones());
            *slot = xnor;
        }
        let discharges =
            input_ones * stored_ones + (accesses - input_ones) * (accesses - stored_ones);
        self.stats.rbl_discharges += discharges;
        self.stats.redundant_discharges += discharges - useful;
        Ok(())
    }

    /// Batched per-row compute: row `start_row + k` (for `k < n`) is
    /// driven by bit `k` of the row-aligned `drive` words and its sensed
    /// window lands packed in `out[k]`. Identical physics and counter
    /// updates to one [`SramTile::compute_xnor_packed`] call per row —
    /// the per-row discharge, redundancy, access, and word-line sums are
    /// computed in the same order and merely accumulated across rows.
    /// The batch exists so the IC-stationary fast path pays the bounds
    /// checks once per *tuple* instead of once per *neighbor*.
    ///
    /// Restricted to single-word rows (`active.end <= 64`), which is the
    /// IC-stationary shape (R ≤ 32 columns); the sensed value of column
    /// `c` lands in bit `c` of `out[k]`, zero outside `sense`.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if the row span exceeds the tile, `active`
    /// exceeds the row width or one word, `sense` is not contained in
    /// `active`, or `drive`/`out` are too narrow for `n` rows.
    pub fn compute_xnor_row_batch(
        &mut self,
        start_row: usize,
        n: usize,
        drive: &[u64],
        active: Range<usize>,
        sense: Range<usize>,
        out: &mut [u64],
    ) -> Result<(), AccessError> {
        if active.end > self.cols || active.end > 64 {
            return Err(AccessError::new(format!(
                "active range end {} > min({} cols, one word)",
                active.end, self.cols
            )));
        }
        if !sense.is_empty() && (sense.start < active.start || sense.end > active.end) {
            return Err(AccessError::new(format!(
                "sense range {sense:?} outside active window {active:?}"
            )));
        }
        if start_row + n > self.rows {
            return Err(AccessError::new(format!(
                "row batch [{start_row}, {}) > {} rows",
                start_row + n,
                self.rows
            )));
        }
        if drive.len() * 64 < n || out.len() < n {
            return Err(AccessError::new(format!(
                "drive/out of {}/{} entries < {n} rows",
                drive.len() * 64,
                out.len()
            )));
        }
        let span = active.len();
        let amask = if span == 0 {
            0
        } else if span == 64 {
            u64::MAX
        } else {
            ((1u64 << span) - 1) << active.start
        };
        let sspan = sense.len();
        let smask = if sspan == 0 {
            0
        } else if sspan == 64 {
            u64::MAX
        } else {
            ((1u64 << sspan) - 1) << sense.start
        };
        let mut discharges = 0u64;
        let mut useful = 0u64;
        for (k, slot) in out.iter_mut().enumerate().take(n) {
            let stored = self.bits[(start_row + k) * self.words_per_row];
            let broadcast = if (drive[k / 64] >> (k % 64)) & 1 == 1 {
                u64::MAX
            } else {
                0
            };
            let xnor = !(stored ^ broadcast) & amask;
            discharges += u64::from(xnor.count_ones());
            let sensed = xnor & smask;
            useful += u64::from(sensed.count_ones());
            *slot = sensed;
        }
        self.stats.compute_accesses += count_u64(n);
        self.stats.rwl_activations += 2 * count_u64(n);
        self.stats.rbl_discharges += discharges;
        self.stats.redundant_discharges += discharges - useful;
        Ok(())
    }

    /// Batched packed write port: the low `width` bits of `words[k]` land
    /// in row `start_row + k` at `[start_col, start_col + width)`.
    /// Identical cell updates and `bits_written` accounting to one
    /// [`SramTile::write_bits_from_word`] call per row; like
    /// [`SramTile::compute_xnor_row_batch`], it hoists validation out of
    /// the per-neighbor loop and requires the span to sit in one word
    /// (`start_col % 64 + width <= 64`).
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if the span crosses a word boundary or the
    /// row/column span is out of bounds.
    pub fn write_rows_from_words(
        &mut self,
        start_row: usize,
        start_col: usize,
        width: usize,
        words: &[u64],
    ) -> Result<(), AccessError> {
        let off = start_col % 64;
        if off + width > 64 {
            return Err(AccessError::new(format!(
                "batched write [{start_col}, {}) crosses a word boundary",
                start_col + width
            )));
        }
        if start_col + width > self.cols {
            return Err(AccessError::new(format!(
                "batched write [{start_col}, {}) > {} cols",
                start_col + width,
                self.cols
            )));
        }
        if start_row + words.len() > self.rows {
            return Err(AccessError::new(format!(
                "row batch [{start_row}, {}) > {} rows",
                start_row + words.len(),
                self.rows
            )));
        }
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let word_index = start_col / 64;
        for (k, &val) in words.iter().enumerate() {
            let slot = &mut self.bits[(start_row + k) * self.words_per_row + word_index];
            *slot = (*slot & !(mask << off)) | ((val & mask) << off);
        }
        self.stats.bits_written += count_u64(width) * count_u64(words.len());
        Ok(())
    }

    /// Packed write port: writes the low `width` bits of `word` (LSB lands
    /// in `start_col`) through the write port. Identical cell updates and
    /// `bits_written` accounting to [`SramTile::write_slice`] with the
    /// equivalent `&[bool]` slice, without materializing it.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if `width > 64` or the span is out of
    /// bounds.
    pub fn write_bits_from_word(
        &mut self,
        row: usize,
        start_col: usize,
        width: usize,
        word: u64,
    ) -> Result<(), AccessError> {
        if width > 64 {
            return Err(AccessError::new(format!("packed write width {width} > 64")));
        }
        if start_col + width > self.cols {
            return Err(AccessError::new(format!(
                "packed write [{start_col}, {}) > {} cols",
                start_col + width,
                self.cols
            )));
        }
        self.check(row, 0)?;
        let base = row * self.words_per_row;
        let mut remaining = width;
        let mut col = start_col;
        let mut val = word;
        while remaining > 0 {
            let off = col % 64;
            let take = remaining.min(64 - off);
            let mask = if take == 64 {
                u64::MAX
            } else {
                (1u64 << take) - 1
            };
            let slot = &mut self.bits[base + col / 64];
            *slot = (*slot & !(mask << off)) | ((val & mask) << off);
            val = if take == 64 { 0 } else { val >> take };
            col += take;
            remaining -= take;
        }
        self.stats.bits_written += count_u64(width);
        Ok(())
    }

    /// Packed full-row write: stores `width` bits taken LSB-first from
    /// `words` starting at column 0. Identical cell updates and
    /// `bits_written` accounting to [`SramTile::write_row`] with the
    /// unpacked slice — cells beyond `width` are untouched.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if `row` is out of bounds or `width` exceeds
    /// the row or `words`.
    pub fn write_row_words(
        &mut self,
        row: usize,
        words: &[u64],
        width: usize,
    ) -> Result<(), AccessError> {
        if width > self.cols {
            return Err(AccessError::new(format!(
                "row write of {width} bits > {} cols",
                self.cols
            )));
        }
        if width > words.len() * 64 {
            return Err(AccessError::new(format!(
                "row write of {width} bits > {} packed words",
                words.len()
            )));
        }
        self.check(row, 0)?;
        let base = row * self.words_per_row;
        let full = width / 64;
        self.bits[base..base + full].copy_from_slice(&words[..full]);
        let rem = width % 64;
        if rem > 0 {
            let mask = (1u64 << rem) - 1;
            let slot = &mut self.bits[base + full];
            *slot = (*slot & !mask) | (words[full] & mask);
        }
        self.stats.bits_written += count_u64(width);
        Ok(())
    }

    /// Single-column compute access within an active window (the SACHI(n1)
    /// designs sense exactly one bit-line per cycle while the whole active
    /// row discharges). Equivalent to [`SramTile::compute_xnor_windowed`]
    /// with a one-column sense range, without the output allocation.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if bounds are violated or `col` lies outside
    /// `active`.
    pub fn compute_xnor_bit(
        &mut self,
        row: usize,
        input: bool,
        active: Range<usize>,
        col: usize,
    ) -> Result<bool, AccessError> {
        if active.end > self.cols {
            return Err(AccessError::new(format!(
                "active range end {} > {} cols",
                active.end, self.cols
            )));
        }
        if !active.contains(&col) {
            return Err(AccessError::new(format!(
                "sensed col {col} outside active window {active:?}"
            )));
        }
        self.check(row, col)?;
        self.stats.compute_accesses += 1;
        self.stats.rwl_activations += 2;
        let base = row * self.words_per_row;
        let broadcast = if input { u64::MAX } else { 0 };
        let mut discharges = 0u64;
        for w in 0..self.words_per_row {
            let word_start = w * 64;
            let valid_bits = (self.cols - word_start).min(64);
            let alo = active.start.max(word_start);
            let ahi = active.end.min(word_start + valid_bits);
            if alo >= ahi {
                continue;
            }
            let span = ahi - alo;
            let amask = if span == 64 {
                u64::MAX
            } else {
                ((1u64 << span) - 1) << (alo - word_start)
            };
            discharges += u64::from((!(self.bits[base + w] ^ broadcast) & amask).count_ones());
        }
        let result = self.bit_unchecked(row, col) == input;
        self.stats.rbl_discharges += discharges;
        self.stats.redundant_discharges += discharges - u64::from(result);
        Ok(result)
    }

    /// Compute access that senses the *entire* row (SACHI(n3): "`σ_i` is
    /// shared across a complete row with no requirement of bit-line
    /// select").
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if `row` is out of bounds.
    pub fn compute_xnor_full_row(
        &mut self,
        row: usize,
        input: bool,
    ) -> Result<Vec<bool>, AccessError> {
        self.compute_xnor(row, input, 0..self.cols)
    }

    /// Normal-mode range read through a [`FaultInjector`]: the stored
    /// bits are read exactly as [`SramTile::read_range`] would, then the
    /// injector applies transient flips and stuck-at overrides to the
    /// *returned* values (a read fault corrupts the sensed data, not the
    /// cell contents). Returns the possibly-corrupted bits and the number
    /// of transient flips injected. With an inert model this is
    /// bit-identical to `read_range` and consumes no RNG draws.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] on out-of-bounds.
    pub fn read_range_with_faults(
        &mut self,
        row: usize,
        cols: Range<usize>,
        inj: &mut FaultInjector,
    ) -> Result<(Vec<bool>, u64), AccessError> {
        let start = cols.start;
        let mut bits = self.read_range(row, cols)?;
        let flips = inj.corrupt_sram_read(row, start, &mut bits);
        Ok((bits, flips))
    }

    /// Ising-compute access through a [`FaultInjector`]: the discharge
    /// pattern is computed exactly as [`SramTile::compute_xnor`] would,
    /// then transient flips / stuck-at overrides corrupt the *sensed*
    /// outputs. Energy accounting is untouched — a flipped sense
    /// amplifier output costs the same as a correct one. Returns the
    /// sensed values plus the transient flip count.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if `row` is out of bounds or `sense`
    /// exceeds the row width.
    pub fn compute_xnor_with_faults(
        &mut self,
        row: usize,
        input: bool,
        sense: Range<usize>,
        inj: &mut FaultInjector,
    ) -> Result<(Vec<bool>, u64), AccessError> {
        let start = sense.start;
        let mut out = self.compute_xnor(row, input, sense)?;
        let flips = inj.corrupt_sram_read(row, start, &mut out);
        Ok((out, flips))
    }

    /// Fault-injection hook: flips the stored bit at `(row, col)` without
    /// booking any access energy, returning the new value. Models a
    /// particle-strike/retention upset for resilience testing — the
    /// all-digital compute path makes such faults *observable* (the
    /// discharge pattern changes deterministically), unlike the analog
    /// accumulation of BRIM/Ising-CIM where a flipped cell only shifts a
    /// voltage.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if `row`/`col` is out of bounds.
    pub fn inject_bit_flip(&mut self, row: usize, col: usize) -> Result<bool, AccessError> {
        self.check(row, col)?;
        let new = !self.bit_unchecked(row, col);
        self.set_bit_unchecked(row, col, new);
        Ok(new)
    }
}

/// Gathers `len` (≤ 64) bits starting at bit `start` from a packed
/// LSB-first word slice, as produced by the packed compute kernels: bit
/// `start + i` of the slice lands in bit `i` of the result. This is the
/// shift/add decode primitive the bit-plane fast path uses in place of
/// `Vec<bool>` round-trips.
///
/// # Panics
///
/// Panics if `len > 64` or the span exceeds `words.len() * 64`.
#[must_use]
pub fn gather_bits(words: &[u64], start: usize, len: usize) -> u64 {
    assert!(len <= 64, "gather width {len} > 64");
    assert!(
        start
            .checked_add(len)
            .is_some_and(|e| e <= words.len() * 64),
        "gather span [{start}, {start}+{len}) out of range for {} words",
        words.len()
    );
    if len == 0 {
        return 0;
    }
    let off = start % 64;
    let mut val = words[start / 64] >> off;
    let got = 64 - off;
    if got < len {
        val |= words[start / 64 + 1] << got;
    }
    if len == 64 {
        val
    } else {
        val & ((1u64 << len) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile_with_pattern() -> SramTile {
        let mut t = SramTile::new(3, 6);
        t.write_row(0, &[true, false, true, true, false, false])
            .unwrap();
        t.write_row(1, &[false, false, false, false, false, false])
            .unwrap();
        t.write_row(2, &[true, true, true, true, true, true])
            .unwrap();
        t
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut t = tile_with_pattern();
        assert!(t.read_bit(0, 0).unwrap());
        assert!(!t.read_bit(0, 1).unwrap());
        assert_eq!(
            t.read_range(0, 0..6).unwrap(),
            vec![true, false, true, true, false, false]
        );
    }

    #[test]
    fn xnor_against_one_is_identity() {
        let mut t = tile_with_pattern();
        let out = t.compute_xnor(0, true, 0..6).unwrap();
        assert_eq!(out, vec![true, false, true, true, false, false]);
    }

    #[test]
    fn xnor_against_zero_is_complement() {
        let mut t = tile_with_pattern();
        let out = t.compute_xnor(0, false, 0..6).unwrap();
        assert_eq!(out, vec![false, true, false, false, true, true]);
    }

    #[test]
    fn discharge_counts_match_xnor_ones() {
        let mut t = tile_with_pattern();
        // Row 2 all ones, input 1 -> every column discharges.
        t.compute_xnor(2, true, 0..6).unwrap();
        assert_eq!(t.stats().rbl_discharges, 6);
        assert_eq!(t.stats().redundant_discharges, 0);
        assert_eq!(t.stats().rwl_activations, 2);
        assert_eq!(t.stats().compute_accesses, 1);
    }

    #[test]
    fn unsensed_columns_are_redundant_discharges() {
        let mut t = tile_with_pattern();
        // Row 2 all ones, input 1, but only column 0 sensed: 5 redundant.
        let out = t.compute_xnor(2, true, 0..1).unwrap();
        assert_eq!(out, vec![true]);
        assert_eq!(t.stats().rbl_discharges, 6);
        assert_eq!(t.stats().redundant_discharges, 5);
    }

    #[test]
    fn no_discharge_when_xnor_zero() {
        let mut t = tile_with_pattern();
        // Row 1 all zeros, input 1 -> XNOR 0 everywhere, RBL retains.
        t.compute_xnor(1, true, 0..6).unwrap();
        assert_eq!(t.stats().rbl_discharges, 0);
        assert_eq!(t.stats().redundant_discharges, 0);
    }

    #[test]
    fn full_row_compute_has_no_redundancy() {
        let mut t = tile_with_pattern();
        t.compute_xnor_full_row(0, false).unwrap();
        assert_eq!(t.stats().redundant_discharges, 0);
        // Row 0 has three 0 bits; XNOR with 0 -> three discharges.
        assert_eq!(t.stats().rbl_discharges, 3);
    }

    #[test]
    fn energy_ledger_prices_counters() {
        let params = TechnologyParams::default();
        let mut t = tile_with_pattern();
        t.compute_xnor_full_row(2, true).unwrap();
        let ledger = t.stats().energy(&params);
        // 2 RWL activations * 0.05 pJ + 6 discharges * 0.035 pJ + 18 writes * 0.05 pJ.
        let expected = 2.0 * 0.05 + 6.0 * 0.035 + 18.0 * 0.05;
        assert!(
            (ledger.total().get() - expected).abs() < 1e-9,
            "{}",
            ledger.total()
        );
        assert!((t.stats().redundant_energy(&params).get() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut t = SramTile::new(2, 4);
        assert!(t.write_bit(2, 0, true).is_err());
        assert!(t.write_bit(0, 4, true).is_err());
        assert!(t.read_bit(0, 9).is_err());
        assert!(t.compute_xnor(0, true, 0..5).is_err());
        assert!(t.compute_xnor(5, true, 0..1).is_err());
        assert!(t.write_row(0, &[true; 5]).is_err());
        assert!(t.write_slice(0, 2, &[true; 3]).is_err());
        let err = t.write_bit(2, 0, true).unwrap_err();
        assert!(format!("{err}").contains("out of bounds"));
    }

    #[test]
    fn write_slice_places_bits() {
        let mut t = SramTile::new(1, 8);
        t.write_slice(0, 3, &[true, true]).unwrap();
        assert_eq!(t.peek(0, 2), Some(false));
        assert_eq!(t.peek(0, 3), Some(true));
        assert_eq!(t.peek(0, 4), Some(true));
        assert_eq!(t.peek(0, 5), Some(false));
        assert_eq!(t.peek(0, 8), None);
        assert_eq!(t.peek(1, 0), None);
    }

    #[test]
    fn stats_merge_and_reset() {
        let mut a = tile_with_pattern();
        a.compute_xnor_full_row(0, true).unwrap();
        let mut s = TileStats::default();
        s.merge(a.stats());
        s.merge(a.stats());
        assert_eq!(s.rwl_activations, 4);
        a.reset_stats();
        assert_eq!(a.stats().rwl_activations, 0);
        // Data survives a stats reset.
        assert_eq!(a.peek(0, 0), Some(true));
    }

    #[test]
    fn compute_xnor_bit_matches_range_variant() {
        let mut a = tile_with_pattern();
        let mut b = tile_with_pattern();
        for col in 0..6 {
            let single = a.compute_xnor_bit(0, true, 0..6, col).unwrap();
            let ranged = b
                .compute_xnor_windowed(0, true, 0..6, col..col + 1)
                .unwrap();
            assert_eq!(vec![single], ranged, "col {col}");
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.compute_xnor_bit(0, true, 0..6, 6).is_err());
        assert!(a.compute_xnor_bit(0, true, 0..2, 4).is_err());
    }

    #[test]
    fn active_window_gates_discharges() {
        let mut t = tile_with_pattern();
        // Row 2 is all ones; with input 1 every *active* column discharges.
        t.compute_xnor_windowed(2, true, 0..3, 0..3).unwrap();
        assert_eq!(t.stats().rbl_discharges, 3);
        assert_eq!(t.stats().redundant_discharges, 0);
        // Active beyond sensed: the excess is redundant.
        let mut u = tile_with_pattern();
        u.compute_xnor_windowed(2, true, 0..5, 1..2).unwrap();
        assert_eq!(u.stats().rbl_discharges, 5);
        assert_eq!(u.stats().redundant_discharges, 4);
        // Sense outside active is rejected.
        assert!(u.compute_xnor_windowed(2, true, 0..3, 2..5).is_err());
        assert!(u.compute_xnor_windowed(2, true, 0..9, 0..1).is_err());
    }

    fn unpack(words: &[u64], range: Range<usize>) -> Vec<bool> {
        range
            .map(|c| (words[c / 64] >> (c % 64)) & 1 == 1)
            .collect()
    }

    #[test]
    fn packed_write_matches_write_slice() {
        let mut a = SramTile::new(2, 130);
        let mut b = SramTile::new(2, 130);
        // Span columns 60..104: crosses the word 0 / word 1 boundary.
        let word = 0x0f5a_a5f0_1234u64 & ((1u64 << 44) - 1);
        let bits: Vec<bool> = (0..44).map(|i| (word >> i) & 1 == 1).collect();
        a.write_bits_from_word(1, 60, 44, word).unwrap();
        b.write_slice(1, 60, &bits).unwrap();
        for col in 0..130 {
            assert_eq!(a.peek(1, col), b.peek(1, col), "col {col}");
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.write_bits_from_word(0, 100, 44, 0).is_err());
        assert!(a.write_bits_from_word(0, 0, 65, 0).is_err());
        assert!(a.write_bits_from_word(2, 0, 4, 0).is_err());
    }

    #[test]
    fn write_row_words_matches_write_row() {
        let mut a = SramTile::new(1, 130);
        let mut b = SramTile::new(1, 130);
        let words = [u64::MAX, 0x5555_5555_5555_5555, 0x3];
        let width = 100;
        let bits: Vec<bool> = (0..width)
            .map(|c| (words[c / 64] >> (c % 64)) & 1 == 1)
            .collect();
        a.write_row_words(0, &words, width).unwrap();
        b.write_row(0, &bits).unwrap();
        for col in 0..130 {
            assert_eq!(a.peek(0, col), b.peek(0, col), "col {col}");
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.write_row_words(0, &words, 131).is_err());
        assert!(a.write_row_words(0, &words[..1], 80).is_err());
        assert!(a.write_row_words(1, &words, 10).is_err());
    }

    #[test]
    fn packed_compute_matches_windowed() {
        let mut a = tile_with_pattern();
        let mut b = tile_with_pattern();
        let mut out = [0u64; 1];
        a.compute_xnor_packed(0, true, 0..6, 1..4, &mut out)
            .unwrap();
        let want = b.compute_xnor_windowed(0, true, 0..6, 1..4).unwrap();
        assert_eq!(unpack(&out, 1..4), want);
        // Bits outside the sense window stay zero.
        assert_eq!(out[0] & !0b1110, 0);
        assert_eq!(a.stats(), b.stats());
        assert!(a
            .compute_xnor_packed(0, true, 0..9, 0..1, &mut out)
            .is_err());
        assert!(a
            .compute_xnor_packed(0, true, 0..3, 2..5, &mut out)
            .is_err());
        assert!(a.compute_xnor_packed(0, true, 0..6, 0..6, &mut []).is_err());
    }

    #[test]
    fn row_batch_compute_matches_per_row_packed() {
        let mut batch = SramTile::new(5, 12);
        let mut scalar = SramTile::new(5, 12);
        for row in 0..5 {
            let word = (0xa5u64 >> row) ^ (row as u64 * 0x13);
            batch.write_bits_from_word(row, 0, 12, word).unwrap();
            scalar.write_bits_from_word(row, 0, 12, word).unwrap();
        }
        // Drive bits 0b10110: rows 1, 2, 4 driven high.
        let drive = [0b10110u64];
        let mut out = [0u64; 5];
        batch
            .compute_xnor_row_batch(0, 5, &drive, 0..12, 0..8, &mut out)
            .unwrap();
        let mut want = [0u64; 1];
        for (row, &got) in out.iter().enumerate() {
            scalar
                .compute_xnor_packed(row, (drive[0] >> row) & 1 == 1, 0..12, 0..8, &mut want)
                .unwrap();
            assert_eq!(got, want[0], "row {row}");
        }
        assert_eq!(batch.stats(), scalar.stats());
        // Empty batch touches nothing.
        let before = *batch.stats();
        batch
            .compute_xnor_row_batch(0, 0, &drive, 0..12, 0..8, &mut out)
            .unwrap();
        assert_eq!(*batch.stats(), before);
        assert!(batch
            .compute_xnor_row_batch(0, 6, &drive, 0..12, 0..8, &mut out)
            .is_err());
        assert!(batch
            .compute_xnor_row_batch(0, 5, &drive, 0..13, 0..8, &mut out)
            .is_err());
        assert!(batch
            .compute_xnor_row_batch(0, 5, &drive, 0..12, 4..13, &mut out)
            .is_err());
        assert!(batch
            .compute_xnor_row_batch(0, 5, &drive, 0..12, 0..8, &mut out[..4])
            .is_err());
        assert!(SramTile::new(2, 80)
            .compute_xnor_row_batch(0, 2, &drive, 0..80, 0..8, &mut out)
            .is_err());
    }

    #[test]
    fn batched_row_writes_match_per_row_packed_writes() {
        let mut batch = SramTile::new(4, 70);
        let mut scalar = SramTile::new(4, 70);
        let words = [u64::MAX, 0x5a5a, 0, 0x0123_4567_89ab_cdef];
        batch.write_rows_from_words(0, 3, 9, &words).unwrap();
        for (row, &w) in words.iter().enumerate() {
            scalar.write_bits_from_word(row, 3, 9, w).unwrap();
        }
        for row in 0..4 {
            for col in 0..70 {
                assert_eq!(batch.peek(row, col), scalar.peek(row, col), "{row},{col}");
            }
        }
        assert_eq!(batch.stats(), scalar.stats());
        // Word-boundary crossings and out-of-range spans are rejected.
        assert!(batch.write_rows_from_words(0, 60, 9, &words).is_err());
        assert!(batch.write_rows_from_words(0, 66, 9, &words).is_err());
        assert!(batch.write_rows_from_words(1, 0, 9, &words).is_err());
    }

    #[test]
    fn plane_compute_matches_scalar_bit_loop() {
        let mut fast = tile_with_pattern();
        let mut slow = tile_with_pattern();
        let plane = [0b101101u64];
        let mut out = [0u64; 1];
        fast.compute_xnor_plane(0, &plane, 0..6, &mut out).unwrap();
        for col in 0..6 {
            let got = slow
                .compute_xnor_bit(0, (plane[0] >> col) & 1 == 1, 0..6, col)
                .unwrap();
            assert_eq!((out[0] >> col) & 1 == 1, got, "col {col}");
        }
        assert_eq!(fast.stats(), slow.stats());
        // Empty active window: no accesses, no counters, zeroed output.
        let before = *fast.stats();
        fast.compute_xnor_plane(0, &plane, 3..3, &mut out).unwrap();
        assert_eq!(*fast.stats(), before);
        assert_eq!(out[0], 0);
        assert!(fast.compute_xnor_plane(0, &plane, 0..9, &mut out).is_err());
        assert!(fast.compute_xnor_plane(9, &plane, 0..6, &mut out).is_err());
        assert!(fast.compute_xnor_plane(0, &[], 0..6, &mut out).is_err());
    }

    #[test]
    fn gather_bits_crosses_word_boundaries() {
        let words = [0xffff_0000_ffff_0000u64, 0x0000_ffff_0000_ffffu64];
        assert_eq!(gather_bits(&words, 0, 16), 0);
        assert_eq!(gather_bits(&words, 16, 16), 0xffff);
        assert_eq!(gather_bits(&words, 56, 16), 0xff_ff);
        assert_eq!(gather_bits(&words, 64, 64), words[1]);
        assert_eq!(gather_bits(&words, 0, 0), 0);
        assert_eq!(gather_bits(&words, 60, 8), 0xff);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_bits_rejects_overrun() {
        let _ = gather_bits(&[0u64], 60, 8);
    }

    #[test]
    fn injected_fault_changes_the_discharge_pattern_deterministically() {
        let mut healthy = tile_with_pattern();
        let mut faulty = tile_with_pattern();
        let flipped_to = faulty.inject_bit_flip(0, 2).unwrap();
        assert!(!flipped_to, "row 0 col 2 stored 1, fault flips to 0");
        let good = healthy.compute_xnor(0, true, 0..6).unwrap();
        let bad = faulty.compute_xnor(0, true, 0..6).unwrap();
        assert_ne!(good, bad, "fault must be observable in the XNOR output");
        // Exactly one column differs — the digital path localizes it.
        let diffs = good.iter().zip(bad.iter()).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
        // Fault injection books no access energy.
        assert_eq!(
            healthy.stats().rwl_activations,
            faulty.stats().rwl_activations
        );
        assert!(faulty.inject_bit_flip(9, 0).is_err());
    }

    #[test]
    fn faulted_reads_are_identity_under_an_inert_model() {
        use crate::fault::FaultModel;
        let mut t = tile_with_pattern();
        let mut clean = tile_with_pattern();
        let mut inj = FaultModel::new(7).injector(0);
        let (bits, flips) = t.read_range_with_faults(0, 0..6, &mut inj).unwrap();
        assert_eq!(flips, 0);
        assert_eq!(bits, clean.read_range(0, 0..6).unwrap());
        let (out, flips) = t.compute_xnor_with_faults(0, true, 0..6, &mut inj).unwrap();
        assert_eq!(flips, 0);
        assert_eq!(out, clean.compute_xnor(0, true, 0..6).unwrap());
        // Accounting identical to the fault-free path.
        assert_eq!(t.stats(), clean.stats());
    }

    #[test]
    fn faulted_reads_corrupt_outputs_not_cells() {
        use crate::fault::{FaultModel, FaultRate};
        let model = FaultModel::new(3).with_read_ber(FaultRate::from_ppb(1_000_000_000));
        let mut inj = model.injector(0);
        let mut t = tile_with_pattern();
        let (bits, flips) = t.read_range_with_faults(0, 0..6, &mut inj).unwrap();
        assert_eq!(flips, 6, "certainty BER flips every sensed bit");
        assert_eq!(bits, vec![false, true, false, false, true, true]);
        // The stored cells are untouched: a clean read still sees the truth.
        assert_eq!(
            t.read_range(0, 0..6).unwrap(),
            vec![true, false, true, true, false, false]
        );
        let (out, flips) = t.compute_xnor_with_faults(0, true, 2..5, &mut inj).unwrap();
        assert_eq!(flips, 3);
        assert_eq!(out, vec![false, false, true]);
    }

    #[test]
    fn stuck_cell_pins_the_sensed_window() {
        use crate::fault::FaultModel;
        let model = FaultModel::new(0).with_stuck_cell(0, 4, true);
        let mut inj = model.injector(0);
        let mut t = tile_with_pattern();
        // Window 2..6 of row 0: stored [1, 1, 0, 0]; col 4 stuck at 1.
        let (bits, flips) = t.read_range_with_faults(0, 2..6, &mut inj).unwrap();
        assert_eq!(flips, 0);
        assert_eq!(bits, vec![true, true, true, false]);
        assert_eq!(inj.counters().stuck_overrides, 1);
    }

    #[test]
    fn wide_rows_cross_word_boundaries() {
        let mut t = SramTile::new(2, 130);
        t.write_bit(1, 129, true).unwrap();
        t.write_bit(1, 63, true).unwrap();
        t.write_bit(1, 64, true).unwrap();
        assert!(t.read_bit(1, 129).unwrap());
        assert!(t.read_bit(1, 63).unwrap());
        assert!(t.read_bit(1, 64).unwrap());
        assert!(!t.read_bit(1, 128).unwrap());
        let out = t.compute_xnor(1, true, 128..130).unwrap();
        assert_eq!(out, vec![false, true]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A naive reference model: a plain bit matrix with the same
    /// semantics, including discharge counting.
    struct Reference {
        bits: Vec<Vec<bool>>,
    }

    impl Reference {
        fn new(rows: usize, cols: usize) -> Self {
            Reference {
                bits: vec![vec![false; cols]; rows],
            }
        }

        fn xnor(
            &self,
            row: usize,
            input: bool,
            active: std::ops::Range<usize>,
            sense: std::ops::Range<usize>,
        ) -> (Vec<bool>, u64, u64) {
            let mut discharges = 0;
            let mut useful = 0;
            let mut out = Vec::new();
            for col in active.clone() {
                let x = self.bits[row][col] == input;
                if x {
                    discharges += 1;
                }
                if sense.contains(&col) {
                    out.push(x);
                    if x {
                        useful += 1;
                    }
                }
            }
            (out, discharges, discharges - useful)
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        WriteBit {
            row: usize,
            col: usize,
            value: bool,
        },
        WriteSlice {
            row: usize,
            start: usize,
            values: Vec<bool>,
        },
        Xnor {
            row: usize,
            input: bool,
            active_start: usize,
            active_len: usize,
            sense_off: usize,
            sense_len: usize,
        },
    }

    fn op_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..rows, 0..cols, any::<bool>()).prop_map(|(row, col, value)| Op::WriteBit {
                row,
                col,
                value
            }),
            (0..rows, 0..cols, prop::collection::vec(any::<bool>(), 1..8)).prop_map(
                move |(row, start, values)| {
                    let start = start.min(cols - 1);
                    let len = values.len().min(cols - start);
                    Op::WriteSlice {
                        row,
                        start,
                        values: values[..len].to_vec(),
                    }
                }
            ),
            (0..rows, any::<bool>(), 0..cols, 1..cols, 0..cols, 1..cols).prop_map(
                move |(row, input, a_start, a_len, s_off, s_len)| Op::Xnor {
                    row,
                    input,
                    active_start: a_start,
                    active_len: a_len,
                    sense_off: s_off,
                    sense_len: s_len,
                }
            ),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Under arbitrary interleavings of writes and windowed compute
        /// accesses, the word-level tile matches the naive bit-matrix
        /// model: outputs, discharge counts, and redundancy counts.
        #[test]
        fn tile_matches_reference_model(ops in prop::collection::vec(op_strategy(6, 150), 1..40)) {
            let (rows, cols) = (6usize, 150usize);
            let mut tile = SramTile::new(rows, cols);
            let mut reference = Reference::new(rows, cols);
            for op in ops {
                match op {
                    Op::WriteBit { row, col, value } => {
                        tile.write_bit(row, col, value).unwrap();
                        reference.bits[row][col] = value;
                    }
                    Op::WriteSlice { row, start, values } => {
                        tile.write_slice(row, start, &values).unwrap();
                        for (i, &v) in values.iter().enumerate() {
                            reference.bits[row][start + i] = v;
                        }
                    }
                    Op::Xnor { row, input, active_start, active_len, sense_off, sense_len } => {
                        let a_start = active_start.min(cols - 1);
                        let a_end = (a_start + active_len).min(cols);
                        let s_start = (a_start + sense_off).min(a_end);
                        let s_end = (s_start + sense_len).min(a_end);
                        let before = *tile.stats();
                        let got = tile
                            .compute_xnor_windowed(row, input, a_start..a_end, s_start..s_end)
                            .unwrap();
                        let after = *tile.stats();
                        let (want, discharges, redundant) =
                            reference.xnor(row, input, a_start..a_end, s_start..s_end);
                        prop_assert_eq!(got, want);
                        prop_assert_eq!(after.rbl_discharges - before.rbl_discharges, discharges);
                        prop_assert_eq!(
                            after.redundant_discharges - before.redundant_discharges,
                            redundant
                        );
                        prop_assert_eq!(after.rwl_activations - before.rwl_activations, 2);
                    }
                }
            }
        }

        /// `compute_xnor_plane` is bit-identical — packed outputs and
        /// `TileStats` deltas — to the per-column `compute_xnor_bit` loop
        /// it replaces (the closed-form counter contract of the fast path).
        #[test]
        fn plane_kernel_matches_scalar_bit_loop(
            stored in prop::collection::vec(any::<bool>(), 1..150),
            plane in prop::collection::vec(any::<u64>(), 3..4),
            a_start in 0usize..150,
            a_len in 0usize..150,
        ) {
            let cols = stored.len();
            let mut fast = SramTile::new(1, cols);
            let mut slow = SramTile::new(1, cols);
            fast.write_row(0, &stored).unwrap();
            slow.write_row(0, &stored).unwrap();
            let a_start = a_start.min(cols);
            let a_end = (a_start + a_len).min(cols);
            let mut out = [0u64; 3];
            fast.compute_xnor_plane(0, &plane, a_start..a_end, &mut out).unwrap();
            for col in a_start..a_end {
                let bit = (plane[col / 64] >> (col % 64)) & 1 == 1;
                let want = slow.compute_xnor_bit(0, bit, a_start..a_end, col).unwrap();
                prop_assert_eq!((out[col / 64] >> (col % 64)) & 1 == 1, want);
            }
            prop_assert_eq!(fast.stats(), slow.stats());
            // Output bits outside the active window are zero.
            for col in (0..a_start).chain(a_end..cols.div_ceil(64) * 64) {
                prop_assert_eq!((out[col / 64] >> (col % 64)) & 1, 0);
            }
        }

        /// `compute_xnor_packed` matches `compute_xnor_windowed` bit for
        /// bit, counters included.
        #[test]
        fn packed_kernel_matches_windowed(
            stored in prop::collection::vec(any::<bool>(), 1..150),
            input in any::<bool>(),
            a_start in 0usize..150,
            a_len in 0usize..150,
            s_off in 0usize..150,
            s_len in 0usize..150,
        ) {
            let cols = stored.len();
            let mut fast = SramTile::new(1, cols);
            let mut slow = SramTile::new(1, cols);
            fast.write_row(0, &stored).unwrap();
            slow.write_row(0, &stored).unwrap();
            let a_start = a_start.min(cols);
            let a_end = (a_start + a_len).min(cols);
            let s_start = (a_start + s_off).min(a_end);
            let s_end = (s_start + s_len).min(a_end);
            let mut out = [0u64; 3];
            fast.compute_xnor_packed(0, input, a_start..a_end, s_start..s_end, &mut out).unwrap();
            let want = slow.compute_xnor_windowed(0, input, a_start..a_end, s_start..s_end).unwrap();
            let got: Vec<bool> = (s_start..s_end)
                .map(|c| (out[c / 64] >> (c % 64)) & 1 == 1)
                .collect();
            prop_assert_eq!(got, want);
            prop_assert_eq!(fast.stats(), slow.stats());
            for col in (0..s_start).chain(s_end..cols.div_ceil(64) * 64) {
                prop_assert_eq!((out[col / 64] >> (col % 64)) & 1, 0);
            }
        }

        /// The packed write ports place the same cells and book the same
        /// `bits_written` as their `&[bool]` equivalents.
        #[test]
        fn packed_writes_match_bool_writes(
            word in any::<u64>(),
            start in 0usize..150,
            width in 0usize..=64,
            row_words in prop::collection::vec(any::<u64>(), 3..4),
            row_width in 0usize..150,
        ) {
            let cols = 150;
            let mut a = SramTile::new(2, cols);
            let mut b = SramTile::new(2, cols);
            let start = start.min(cols - 1);
            let width = width.min(cols - start);
            let bits: Vec<bool> = (0..width).map(|i| (word >> i) & 1 == 1).collect();
            a.write_bits_from_word(0, start, width, word).unwrap();
            b.write_slice(0, start, &bits).unwrap();
            let row_bits: Vec<bool> = (0..row_width)
                .map(|c| (row_words[c / 64] >> (c % 64)) & 1 == 1)
                .collect();
            a.write_row_words(1, &row_words, row_width).unwrap();
            b.write_row(1, &row_bits).unwrap();
            for row in 0..2 {
                for col in 0..cols {
                    prop_assert_eq!(a.peek(row, col), b.peek(row, col));
                }
            }
            prop_assert_eq!(a.stats(), b.stats());
        }
    }
}
