//! `sachi serve` — the hardened multi-tenant solver daemon — and
//! `sachi submit`, its one-request client.
//!
//! The daemon accepts length-prefixed JSON frames (see
//! [`crate::protocol`]) on a loopback TCP port, admission-controls
//! jobs against a bounded queue, and packs replica ensembles from
//! *different* jobs onto one shared deterministic worker pool
//! (`sachi_core::serve::SolverPool`). The headline invariant: a job's
//! result is byte-identical to the one-shot CLI at any thread count
//! and under any co-tenants, because every replica's seed and schedule
//! derive from the job spec alone.
//!
//! Robustness posture:
//!
//! * **Backpressure, never OOM** — at most `queue_depth` jobs are
//!   admitted-but-unfinished; the next submission gets a typed
//!   `queue-full` rejection (code 5) instead of unbounded buffering.
//! * **Deadlines** — `step_budget` bounds the *work* deterministically;
//!   the wall-clock admission timeout bounds only how long a waiter
//!   blocks. A job unstarted at its deadline is revoked with
//!   `deadline-expired`; a started job is awaited to its deterministic
//!   end, never truncated mid-solve.
//! * **Poison isolation** — each replica runs under `catch_unwind`
//!   inside the pool; a panicking job degrades only its own response
//!   (code 3) while the daemon and co-tenants keep serving.
//! * **Graceful drain** — `shutdown` stops admissions (typed
//!   `shutting-down` rejections), finishes in-flight jobs, joins the
//!   pool, and flushes the final Prometheus exposition to stdout.
//!
//! `GET /metrics` on the same port answers with Prometheus text
//! exposition version 0.0.4, so the one listener serves both the frame
//! protocol and scrapes (the first four bytes disambiguate).

use crate::args::{ServeArgs, SubmitArgs, SubmitOp};
use crate::clock;
use crate::protocol::{
    self, error_body, read_frame, read_frame_body, write_frame, FrameError, Request, MAX_FRAME_LEN,
};
use sachi_core::prelude::{JobLimits, JobPlan, JobSpec, SachiError, ServerReason, SolverPool};
use sachi_obs::{prom, MetricsRegistry};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Mutex};
use std::thread;

/// Upper bound on an HTTP request head (the `/metrics` path needs a
/// few dozen bytes; anything larger is junk).
const MAX_HTTP_HEAD: usize = 4096;

/// The daemon's shared state: one solver pool, one admission gate, one
/// metrics registry.
struct Server {
    pool: SolverPool,
    limits: JobLimits,
    queue_depth: usize,
    admission_timeout_ms: u64,
    /// Jobs admitted and not yet finished (the bounded queue).
    active: AtomicUsize,
    /// Live connections, bounded by the accept loop's `max_conns`.
    conns: AtomicUsize,
    shutting_down: AtomicBool,
    registry: Mutex<MetricsRegistry>,
    /// Own address, for the shutdown self-connect that wakes the
    /// accept loop out of its blocking `incoming()`.
    addr: String,
}

impl Server {
    fn new(args: &ServeArgs, addr: String) -> Server {
        Server {
            pool: SolverPool::with_workers(args.threads),
            limits: JobLimits {
                max_size: args.max_size,
                max_restarts: args.max_restarts,
                max_step_budget: args.max_step_budget,
            },
            queue_depth: args.queue_depth,
            admission_timeout_ms: args.admission_timeout_ms,
            active: AtomicUsize::new(0),
            conns: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            registry: Mutex::new(MetricsRegistry::new()),
            addr,
        }
    }

    fn bump(&self, counter: &str) {
        self.registry
            .lock()
            .expect("metrics registry lock poisoned")
            .counter_add(counter, 1);
    }

    fn exposition(&self) -> String {
        let reg = self
            .registry
            .lock()
            .expect("metrics registry lock poisoned");
        prom::write_exposition(&reg)
    }

    /// Classifies a rejected or failed job into the server counters.
    fn count_failure(&self, e: &SachiError) {
        let counter = match e {
            SachiError::Server {
                reason: ServerReason::QueueFull,
                ..
            } => "server_rejected_queue_full_total",
            SachiError::Server {
                reason: ServerReason::DeadlineExpired,
                ..
            } => "server_rejected_deadline_total",
            SachiError::Server {
                reason: ServerReason::ShuttingDown,
                ..
            } => "server_rejected_shutdown_total",
            SachiError::Server {
                reason: ServerReason::OverLimit,
                ..
            } => "server_rejected_over_limit_total",
            SachiError::Usage(_)
            | SachiError::Parse(_)
            | SachiError::Io(_)
            | SachiError::Config(_) => "server_rejected_invalid_total",
            SachiError::Solve(_)
            | SachiError::FaultDetected { .. }
            | SachiError::FaultBudgetExhausted { .. } => "server_jobs_failed_total",
        };
        self.bump(counter);
    }

    /// Runs one job end to end: admission, the shared pool, the
    /// deadline, fault policy. Returns the ok response body.
    fn solve_body_for(&self, spec: &JobSpec) -> Result<String, SachiError> {
        if self.shutting_down.load(Ordering::Acquire) {
            return Err(SachiError::server(
                ServerReason::ShuttingDown,
                "daemon is draining; no new admissions",
            ));
        }
        spec.admit(&self.limits)?;
        // The bounded queue: claim a slot or reject. `fetch_update`
        // makes check-and-increment atomic under concurrent admits.
        let admitted = self
            .active
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.queue_depth).then_some(n + 1)
            });
        if admitted.is_err() {
            return Err(SachiError::server(
                ServerReason::QueueFull,
                format!("{} jobs already admitted", self.queue_depth),
            ));
        }
        let result = self.run_admitted(spec);
        self.active.fetch_sub(1, Ordering::AcqRel);
        result
    }

    /// The post-admission path; the caller owns the queue slot.
    fn run_admitted(&self, spec: &JobSpec) -> Result<String, SachiError> {
        let plan = JobPlan::from_spec(spec)?;
        let name = plan.name().to_string();
        let edges = plan.graph().num_edges();
        self.bump("server_jobs_admitted_total");
        let handle = self.pool.submit(plan);
        // Wall-clock admission deadline: a job the pool has not
        // *started* by then is revoked (deterministically equivalent
        // to never having been submitted). A started job is awaited to
        // its deterministic end — its duration is bounded by the
        // admission-capped step budget, not by this timer.
        let outcome = match handle
            .receiver()
            .recv_timeout(clock::millis(self.admission_timeout_ms))
        {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => {
                self.pool.revoke(&handle);
                handle.wait()
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err(SachiError::Solve("worker pool disconnected".to_string()))
            }
        }?;
        self.registry
            .lock()
            .expect("metrics registry lock poisoned")
            .merge(&outcome.metrics());
        if spec.fault_ber.is_some() {
            if let Some(e) = outcome.fault_error(spec.fault_policy) {
                return Err(e);
            }
        }
        Ok(protocol::ok_solve_body(&name, edges, spec, &outcome))
    }

    /// Handles one decoded request body; returns the response body and
    /// whether the connection should keep serving.
    fn respond(self: &Arc<Self>, body: &str) -> (String, bool) {
        match protocol::parse_request(body) {
            Ok(Request::Ping) => (protocol::ok_ping_body(), true),
            Ok(Request::Metrics) => (protocol::ok_metrics_body(&self.exposition()), true),
            Ok(Request::Shutdown) => {
                self.shutting_down.store(true, Ordering::Release);
                // The accept loop blocks in `incoming()`; a throwaway
                // self-connection makes it observe the flag now.
                let _ = TcpStream::connect(&self.addr);
                (protocol::ok_shutdown_body(), false)
            }
            Ok(Request::Solve(spec)) => match self.solve_body_for(&spec) {
                Ok(ok) => {
                    self.bump("server_jobs_completed_total");
                    (ok, true)
                }
                Err(e) => {
                    self.count_failure(&e);
                    (error_body("solve", &e), true)
                }
            },
            Err(e) => {
                self.bump("server_requests_malformed_total");
                (error_body("request", &e), true)
            }
        }
    }

    /// Serves one connection: sniffs frames vs. HTTP, then loops until
    /// EOF, a fatal frame error, the I/O timeout, or shutdown.
    fn serve_conn(self: &Arc<Self>, stream: &mut TcpStream) {
        let mut sniff = match read_exact4(stream) {
            Ok(Some(bytes)) => Some(bytes),
            Ok(None) | Err(_) => return,
        };
        if sniff == Some(*b"GET ") {
            self.serve_http(stream);
            return;
        }
        loop {
            // The first iteration re-uses the sniffed bytes as the
            // already-consumed length prefix.
            let body = match sniff.take() {
                Some(prefix) => {
                    let len = usize::try_from(u32::from_be_bytes(prefix)).unwrap_or(usize::MAX);
                    read_frame_body(stream, len, MAX_FRAME_LEN).map(Some)
                }
                None => read_frame(stream, MAX_FRAME_LEN),
            };
            match body {
                Ok(None) => break,
                Ok(Some(text)) => {
                    let (response, keep_going) = self.respond(&text);
                    if write_frame(stream, &response).is_err() || !keep_going {
                        break;
                    }
                }
                Err(e) => {
                    self.bump("server_frames_malformed_total");
                    let mapped = SachiError::from(&e);
                    // Best-effort error response; the peer may be gone.
                    let _ = write_frame(stream, &error_body("frame", &mapped));
                    if e.is_fatal() {
                        break;
                    }
                }
            }
            if self.shutting_down.load(Ordering::Acquire) {
                break;
            }
        }
    }

    /// Minimal HTTP for scrapes: `GET /metrics` answers the Prometheus
    /// text exposition, anything else 404. One request per connection.
    fn serve_http(self: &Arc<Self>, stream: &mut TcpStream) {
        let mut head = Vec::new();
        let mut buf = [0u8; 256];
        while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < MAX_HTTP_HEAD {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => head.extend_from_slice(&buf[..n]),
                Err(_) => return,
            }
        }
        let head = String::from_utf8_lossy(&head);
        let target = head.split_whitespace().next().unwrap_or("");
        let response = if target == "/metrics" {
            self.bump("server_scrapes_total");
            let body = self.exposition();
            format!(
                "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
        } else {
            "HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n".to_string()
        };
        let _ = stream.write_all(response.as_bytes());
    }
}

/// Reads exactly 4 bytes; `Ok(None)` on clean EOF before any byte.
fn read_exact4(stream: &mut TcpStream) -> Result<Option<[u8; 4]>, FrameError> {
    let mut bytes = [0u8; 4];
    let mut filled = 0usize;
    while filled < bytes.len() {
        match stream.read(&mut bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Truncated {
                    expected: bytes.len(),
                    got: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    Ok(Some(bytes))
}

/// Runs the daemon until a `shutdown` request drains it.
///
/// # Errors
///
/// [`SachiError::Io`] when the listener cannot bind.
pub fn run(args: &ServeArgs) -> Result<(), SachiError> {
    let addr = format!("127.0.0.1:{}", args.port);
    let listener =
        TcpListener::bind(&addr).map_err(|e| SachiError::Io(format!("bind {addr}: {e}")))?;
    let server = Arc::new(Server::new(args, addr.clone()));
    println!(
        "sachi serve: listening on {addr} ({} worker threads, queue depth {})",
        server.pool.threads(),
        args.queue_depth
    );
    let io_timeout = clock::millis(args.io_timeout_ms);
    let mut conn_threads = Vec::new();
    for stream in listener.incoming() {
        if server.shutting_down.load(Ordering::Acquire) {
            break;
        }
        let mut stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        server.bump("server_connections_total");
        // Connection cap: the daemon sheds load with a typed response
        // rather than accepting unboundedly.
        let live = server.conns.fetch_add(1, Ordering::AcqRel);
        if live >= args.max_conns {
            server.conns.fetch_sub(1, Ordering::AcqRel);
            server.bump("server_rejected_over_limit_total");
            let e = SachiError::server(
                ServerReason::OverLimit,
                format!("{} connections already serving", args.max_conns),
            );
            let _ = write_frame(&mut stream, &error_body("connect", &e));
            continue;
        }
        let server = Arc::clone(&server);
        conn_threads.push(thread::spawn(move || {
            let _ = stream.set_read_timeout(Some(io_timeout));
            server.serve_conn(&mut stream);
            server.conns.fetch_sub(1, Ordering::AcqRel);
        }));
    }
    // Graceful drain: connections finish (bounded by the I/O timeout),
    // in-flight jobs run to their deterministic end, then the final
    // metrics snapshot goes to stdout.
    for t in conn_threads {
        let _ = t.join();
    }
    server.pool.join();
    println!("{}", server.exposition());
    println!("sachi serve: drained");
    Ok(())
}

/// Sends one request to a running daemon and prints its response.
/// Returns the process exit code: 0 on success, otherwise the typed
/// protocol code from the shared [`SachiError::exit_code`] table.
///
/// # Errors
///
/// [`SachiError::Io`] when the daemon is unreachable,
/// [`SachiError::Parse`] when its response is malformed.
pub fn submit(args: &SubmitArgs) -> Result<u8, SachiError> {
    if matches!(args.op, SubmitOp::FetchMetrics) {
        let body = http_get_metrics(&args.addr)?;
        print!("{body}");
        return Ok(0);
    }
    let body = match &args.op {
        SubmitOp::Solve(spec) => protocol::solve_request_body(spec),
        SubmitOp::Shutdown => protocol::simple_request_body("shutdown"),
        SubmitOp::Raw(text) => text.clone(),
        // FetchMetrics returned above; anything else is a ping.
        SubmitOp::Ping | SubmitOp::FetchMetrics => protocol::simple_request_body("ping"),
    };
    let mut stream = TcpStream::connect(&args.addr)
        .map_err(|e| SachiError::Io(format!("connect {}: {e}", args.addr)))?;
    write_frame(&mut stream, &body)?;
    let response = read_frame(&mut stream, MAX_FRAME_LEN)
        .map_err(|e| SachiError::from(&e))?
        .ok_or_else(|| SachiError::Io("daemon closed without responding".to_string()))?;
    render_response(&response)
}

/// Plain HTTP GET of `/metrics`; returns the exposition body.
fn http_get_metrics(addr: &str) -> Result<String, SachiError> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| SachiError::Io(format!("connect {addr}: {e}")))?;
    let request = format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| SachiError::Io(format!("send scrape: {e}")))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| SachiError::Io(format!("read scrape: {e}")))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| SachiError::Parse("scrape response has no header break".to_string()))?;
    if !head.starts_with("HTTP/1.1 200") {
        let status = head.lines().next().unwrap_or("");
        return Err(SachiError::Io(format!("scrape failed: {status}")));
    }
    Ok(body.to_string())
}

fn num_field(doc: &sachi_obs::json::JsonValue, key: &str) -> Result<f64, SachiError> {
    doc.get(key)
        .and_then(sachi_obs::json::JsonValue::as_num)
        .ok_or_else(|| SachiError::Parse(format!("response missing numeric '{key}'")))
}

/// Renders a framed response for the terminal and extracts its code.
fn render_response(response: &str) -> Result<u8, SachiError> {
    let doc = sachi_obs::json::parse(response)
        .map_err(|e| SachiError::Parse(format!("daemon response: {e}")))?;
    let status = doc
        .get("status")
        .and_then(sachi_obs::json::JsonValue::as_str)
        .ok_or_else(|| SachiError::Parse("response missing 'status'".to_string()))?;
    if status == "error" {
        let code = num_field(&doc, "code")?;
        let message = doc
            .get("message")
            .and_then(sachi_obs::json::JsonValue::as_str)
            .unwrap_or("(no message)");
        eprintln!("error: {message}");
        let code = if (2.0..=255.0).contains(&code) && code.fract() == 0.0 {
            code as u8
        } else {
            2
        };
        return Ok(code);
    }
    let op = doc
        .get("op")
        .and_then(sachi_obs::json::JsonValue::as_str)
        .unwrap_or("");
    match op {
        "ping" => println!("pong"),
        "shutdown" => println!("daemon draining"),
        "metrics" => {
            let exposition = doc
                .get("exposition")
                .and_then(sachi_obs::json::JsonValue::as_str)
                .ok_or_else(|| SachiError::Parse("metrics response missing body".to_string()))?;
            print!("{exposition}");
        }
        "solve" => render_solve(&doc)?,
        other => println!("ok ({other})"),
    }
    Ok(0)
}

/// Prints a solve response. The result line is byte-identical to the
/// one-shot `sachi solve` report line, so scripts (and the CI smoke
/// test) can diff the two front ends directly.
fn render_solve(doc: &sachi_obs::json::JsonValue) -> Result<(), SachiError> {
    let result = doc
        .get("result")
        .ok_or_else(|| SachiError::Parse("solve response missing 'result'".to_string()))?;
    let job = doc
        .get("job")
        .ok_or_else(|| SachiError::Parse("solve response missing 'job'".to_string()))?;
    let energy = num_field(result, "energy")? as i64;
    let sweeps = num_field(result, "sweeps")? as u64;
    let converged = matches!(
        result.get("converged"),
        Some(sachi_obs::json::JsonValue::Bool(true))
    );
    let name = job
        .get("name")
        .and_then(sachi_obs::json::JsonValue::as_str)
        .unwrap_or("?");
    let spins = num_field(job, "spins")? as u64;
    let edges = num_field(job, "edges")? as u64;
    println!("problem : {name} ({spins} spins, {edges} couplings)");
    println!("result  : H = {energy}  ({sweeps} iterations, converged: {converged})");
    let accuracy = num_field(doc, "accuracy")?;
    println!("accuracy: {:.1}%", accuracy * 100.0);
    let best = num_field(result, "best_replica")? as u64;
    println!("replica : best index {best}");
    Ok(())
}
