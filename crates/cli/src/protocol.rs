//! The `sachi serve` wire protocol: length-prefixed JSON frames.
//!
//! A frame is a 4-byte big-endian length followed by that many bytes of
//! UTF-8 JSON. Requests are `{"op": "solve", "job": {...}}`,
//! `{"op": "ping"}`, `{"op": "metrics"}`, or `{"op": "shutdown"}`;
//! responses are `sachi.serve.v1` documents whose `code` field on
//! errors equals the [`SachiError::exit_code`] the one-shot CLI would
//! have exited with (one error table for both front ends).
//!
//! This module sits on the hostile boundary: every byte here arrives
//! from an untrusted client. It is held to the fault-strict lint (no
//! `unwrap`/`expect` on any request path) and the xorshift fuzz test
//! below asserts the decoder returns a typed error — never panics — on
//! truncated frames, oversized length prefixes, invalid UTF-8, and
//! garbage JSON. Decode errors classify into *fatal* (the stream
//! position is lost: truncation, oversize, transport) and *recoverable*
//! (the frame was consumed whole and the connection can keep serving:
//! empty body, bad UTF-8, bad JSON).

use crate::args::{cop_label, design_label, parse_cop, parse_design};
use sachi_core::prelude::{JobOutcome, JobSpec, SachiError};
use sachi_ising::prelude::{LadderKind, RecoveryPolicy, Spin};
use sachi_obs::json::{escape, parse, JsonValue};
use std::fmt;
use std::io::{Read, Write};

/// Response schema identifier.
pub const SCHEMA: &str = "sachi.serve.v1";

/// Hard cap on a frame body (1 MiB). A length prefix beyond this is
/// rejected *before* any allocation — the backpressure-never-OOM rule
/// applied to single frames.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// A typed frame-decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The stream ended inside a frame.
    Truncated {
        /// Bytes the prefix promised.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// The length prefix exceeds the cap.
    Oversized {
        /// Declared body length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// A zero-length body.
    Empty,
    /// The body is not UTF-8.
    BadUtf8,
    /// The transport failed mid-read.
    Io(String),
}

impl FrameError {
    /// True when the stream position is unrecoverable and the
    /// connection must close after the error response. `Empty` and
    /// `BadUtf8` consumed exactly one whole frame, so the stream is
    /// still in sync and the connection can keep serving.
    pub fn is_fatal(&self) -> bool {
        !matches!(self, FrameError::Empty | FrameError::BadUtf8)
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated frame: prefix promised {expected} bytes, got {got}"
                )
            }
            FrameError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Empty => write!(f, "empty frame body"),
            FrameError::BadUtf8 => write!(f, "frame body is not valid UTF-8"),
            FrameError::Io(msg) => write!(f, "transport error: {msg}"),
        }
    }
}

impl From<&FrameError> for SachiError {
    /// Every frame defect is a parse-class protocol error (code 2),
    /// except transport failures which are I/O (also code 2).
    fn from(e: &FrameError) -> Self {
        match e {
            FrameError::Io(msg) => SachiError::Io(format!("frame transport: {msg}")),
            other => SachiError::Parse(format!("frame: {other}")),
        }
    }
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer
/// closed between frames); anything else mid-frame is typed.
///
/// # Errors
///
/// [`FrameError`] on truncation, an oversized or zero length prefix,
/// non-UTF-8 bodies, or transport failure. Never panics.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<String>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0usize;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Truncated {
                    expected: prefix.len(),
                    got: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    let len = usize::try_from(u32::from_be_bytes(prefix)).unwrap_or(usize::MAX);
    read_frame_body(r, len, max).map(Some)
}

/// Reads a frame body whose 4-byte prefix was already consumed (the
/// daemon sniffs the first bytes to tell frames from HTTP `GET`s).
///
/// # Errors
///
/// See [`read_frame`].
pub fn read_frame_body(r: &mut impl Read, len: usize, max: usize) -> Result<String, FrameError> {
    if len == 0 {
        return Err(FrameError::Empty);
    }
    if len > max {
        return Err(FrameError::Oversized { len, max });
    }
    let mut body = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match r.read(&mut body[got..]) {
            Ok(0) => return Err(FrameError::Truncated { expected: len, got }),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    String::from_utf8(body).map_err(|_| FrameError::BadUtf8)
}

/// Writes one frame (prefix + body) and flushes.
///
/// # Errors
///
/// [`SachiError::Io`] on transport failure, [`SachiError::Usage`] when
/// the body exceeds the u32 prefix range.
pub fn write_frame(w: &mut impl Write, body: &str) -> Result<(), SachiError> {
    let len = u32::try_from(body.len())
        .map_err(|_| SachiError::Usage("frame body exceeds the u32 length prefix".to_string()))?;
    w.write_all(&len.to_be_bytes())
        .and_then(|()| w.write_all(body.as_bytes()))
        .and_then(|()| w.flush())
        .map_err(|e| SachiError::Io(format!("write frame: {e}")))
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a job and return its result.
    Solve(JobSpec),
    /// Liveness probe.
    Ping,
    /// The Prometheus exposition, as a framed response.
    Metrics,
    /// Graceful drain: finish in-flight jobs, reject new ones, exit.
    Shutdown,
}

fn usage(msg: String) -> SachiError {
    SachiError::Usage(msg)
}

/// Extracts a non-negative integer field. JSON numbers are f64, so
/// anything non-integral or above 2^53 (where f64 loses exactness) is
/// rejected rather than silently rounded.
fn u64_field(v: &JsonValue, what: &str) -> Result<u64, SachiError> {
    let n = v
        .as_num()
        .ok_or_else(|| usage(format!("{what} must be a number")))?;
    if !n.is_finite() || n < 0.0 || n.fract() != 0.0 || n > 9_007_199_254_740_992.0 {
        return Err(usage(format!(
            "{what} must be a non-negative integer representable in 53 bits"
        )));
    }
    Ok(n as u64)
}

fn usize_field(v: &JsonValue, what: &str) -> Result<usize, SachiError> {
    usize::try_from(u64_field(v, what)?)
        .map_err(|_| usage(format!("{what} does not fit this host's usize")))
}

fn str_field<'a>(v: &'a JsonValue, what: &str) -> Result<&'a str, SachiError> {
    v.as_str()
        .ok_or_else(|| usage(format!("{what} must be a string")))
}

/// Decodes a job object into a [`JobSpec`], strictly: unknown fields
/// are usage errors (a typo'd limit silently ignored would run an
/// unbounded job).
fn parse_job(members: &[(String, JsonValue)]) -> Result<JobSpec, SachiError> {
    let mut spec = JobSpec::default();
    for (key, value) in members {
        match key.as_str() {
            "cop" => {
                spec.cop = parse_cop(str_field(value, "job.cop")?)
                    .map_err(|e| usage(format!("job.cop: {e}")))?
            }
            "size" => spec.size = usize_field(value, "job.size")?,
            "seed" => spec.seed = u64_field(value, "job.seed")?,
            "design" => {
                spec.design = parse_design(str_field(value, "job.design")?)
                    .map_err(|e| usage(format!("job.design: {e}")))?
            }
            "restarts" => spec.restarts = u64_field(value, "job.restarts")?,
            "resolution" => {
                let r = u64_field(value, "job.resolution")?;
                spec.resolution = Some(
                    u32::try_from(r)
                        .map_err(|_| usage("job.resolution exceeds 32 bits".to_string()))?,
                );
            }
            "step_budget" => spec.step_budget = Some(u64_field(value, "job.step_budget")?),
            "fault_ber" => {
                spec.fault_ber = Some(
                    value
                        .as_num()
                        .ok_or_else(|| usage("job.fault_ber must be a number".to_string()))?,
                )
            }
            "fault_seed" => spec.fault_seed = u64_field(value, "job.fault_seed")?,
            "fault_policy" => {
                spec.fault_policy = str_field(value, "job.fault_policy")?
                    .parse::<RecoveryPolicy>()
                    .map_err(|e| usage(format!("job.fault_policy: {e}")))?
            }
            "tempering" => {
                spec.tempering = value
                    .as_bool()
                    .ok_or_else(|| usage("job.tempering must be a boolean".to_string()))?
            }
            "ladder" => {
                spec.ladder = str_field(value, "job.ladder")?
                    .parse::<LadderKind>()
                    .map_err(|e| usage(format!("job.ladder: {e}")))?
            }
            other => return Err(usage(format!("unknown job field '{other}'"))),
        }
    }
    Ok(spec)
}

/// Decodes one request body.
///
/// # Errors
///
/// [`SachiError::Parse`] when the body is not JSON,
/// [`SachiError::Usage`] when it is JSON of the wrong shape. Never
/// panics — this is the fuzzed surface.
pub fn parse_request(body: &str) -> Result<Request, SachiError> {
    let doc = parse(body).map_err(|e| SachiError::Parse(format!("request: {e}")))?;
    let members = doc
        .as_obj()
        .ok_or_else(|| usage("request must be a JSON object".to_string()))?;
    let mut op = None;
    let mut job = None;
    for (key, value) in members {
        match key.as_str() {
            "op" => op = Some(str_field(value, "op")?),
            "job" => job = Some(value),
            other => return Err(usage(format!("unknown request field '{other}'"))),
        }
    }
    let op = op.ok_or_else(|| usage("request needs an 'op' field".to_string()))?;
    match op {
        "solve" => {
            let job = job.ok_or_else(|| usage("solve needs a 'job' object".to_string()))?;
            let members = job
                .as_obj()
                .ok_or_else(|| usage("'job' must be a JSON object".to_string()))?;
            Ok(Request::Solve(parse_job(members)?))
        }
        "ping" | "metrics" | "shutdown" => {
            if job.is_some() {
                return Err(usage(format!("'{op}' takes no 'job' object")));
            }
            Ok(match op {
                "ping" => Request::Ping,
                "metrics" => Request::Metrics,
                _ => Request::Shutdown,
            })
        }
        other => Err(usage(format!(
            "unknown op '{other}' (solve|ping|metrics|shutdown)"
        ))),
    }
}

/// Encodes the request body for a job submission (the `submit` client
/// side of [`parse_request`]; the pair round-trips exactly).
pub fn solve_request_body(spec: &JobSpec) -> String {
    let mut body = format!(
        "{{\"op\":\"solve\",\"job\":{{\"cop\":\"{}\",\"size\":{},\"seed\":{},\"design\":\"{}\",\"restarts\":{}",
        cop_label(spec.cop),
        spec.size,
        spec.seed,
        design_label(spec.design),
        spec.restarts,
    );
    if let Some(r) = spec.resolution {
        body.push_str(&format!(",\"resolution\":{r}"));
    }
    if let Some(b) = spec.step_budget {
        body.push_str(&format!(",\"step_budget\":{b}"));
    }
    if let Some(ber) = spec.fault_ber {
        body.push_str(&format!(
            ",\"fault_ber\":{ber},\"fault_seed\":{},\"fault_policy\":\"{}\"",
            spec.fault_seed, spec.fault_policy
        ));
    }
    if spec.tempering {
        body.push_str(&format!(
            ",\"tempering\":true,\"ladder\":\"{}\"",
            spec.ladder.label()
        ));
    }
    body.push_str("}}");
    body
}

/// Encodes a no-payload request (`ping`, `metrics`, `shutdown`).
pub fn simple_request_body(op: &str) -> String {
    format!("{{\"op\":\"{}\"}}", escape(op))
}

/// Encodes a typed error response. `code` is the shared error table
/// ([`SachiError::exit_code`]); server-class errors additionally carry
/// the machine-readable `reason` label.
pub fn error_body(op: &str, e: &SachiError) -> String {
    let mut body = format!(
        "{{\"schema\":\"{SCHEMA}\",\"status\":\"error\",\"op\":\"{}\",\"code\":{},\"class\":\"{}\"",
        escape(op),
        e.exit_code(),
        e.class(),
    );
    if let SachiError::Server { reason, .. } = e {
        body.push_str(&format!(",\"reason\":\"{}\"", reason.label()));
    }
    body.push_str(&format!(",\"message\":\"{}\"}}", escape(&e.to_string())));
    body
}

/// Encodes the `ping` response.
pub fn ok_ping_body() -> String {
    format!("{{\"schema\":\"{SCHEMA}\",\"status\":\"ok\",\"op\":\"ping\"}}")
}

/// Encodes the `shutdown` acknowledgement (sent before the drain).
pub fn ok_shutdown_body() -> String {
    format!("{{\"schema\":\"{SCHEMA}\",\"status\":\"ok\",\"op\":\"shutdown\"}}")
}

/// Encodes the framed `metrics` response carrying the Prometheus text
/// exposition.
pub fn ok_metrics_body(exposition: &str) -> String {
    format!(
        "{{\"schema\":\"{SCHEMA}\",\"status\":\"ok\",\"op\":\"metrics\",\"exposition\":\"{}\"}}",
        escape(exposition)
    )
}

/// Encodes a completed job: the echoed spec, the best replica's result
/// (with its spins as a `+`/`-` string), the ensemble statistics, and
/// the folded report — the full `RunReport` surface of the one-shot
/// CLI, so a daemon response is comparable field-for-field.
pub fn ok_solve_body(name: &str, edges: usize, spec: &JobSpec, outcome: &JobOutcome) -> String {
    let best = outcome.best.best();
    let spins: String = best
        .spins
        .iter()
        .map(|s| if s == Spin::Up { '+' } else { '-' })
        .collect();
    let stats = &outcome.best.stats;
    let report = &outcome.report;
    let mut body = format!(
        "{{\"schema\":\"{SCHEMA}\",\"status\":\"ok\",\"op\":\"solve\",\
         \"job\":{{\"name\":\"{}\",\"cop\":\"{}\",\"size\":{},\"seed\":{},\"design\":\"{}\",\
         \"restarts\":{},\"spins\":{},\"edges\":{}}}",
        escape(name),
        cop_label(spec.cop),
        spec.size,
        spec.seed,
        design_label(spec.design),
        spec.restarts,
        best.spins.len(),
        edges,
    );
    body.push_str(&format!(
        ",\"result\":{{\"energy\":{},\"sweeps\":{},\"converged\":{},\"flips\":{},\
         \"uphill_accepted\":{},\"uphill_rejected\":{},\"degraded\":{},\"best_replica\":{},\
         \"spins\":\"{spins}\"}}",
        best.energy,
        best.sweeps,
        best.converged,
        best.flips,
        best.uphill_accepted,
        best.uphill_rejected,
        best.degraded,
        outcome.best.best_index,
    ));
    body.push_str(&format!(
        ",\"ensemble\":{{\"replicas\":{},\"converged\":{},\"total_sweeps\":{},\"total_flips\":{},\
         \"degraded\":{}}}",
        stats.replicas, stats.converged, stats.total_sweeps, stats.total_flips, stats.degraded,
    ));
    if spec.tempering {
        body.push_str(&format!(
            ",\"tempering\":{{\"swap_attempts\":{},\"swap_accepted\":{},\"restarts\":{}}}",
            stats.swap_attempts, stats.swap_accepted, stats.tempering_restarts,
        ));
    }
    let best_report = report.reports.get(outcome.best.best_index);
    body.push_str(&format!(
        ",\"report\":{{\"total_cycles\":{},\"compute_cycles\":{},\"load_cycles\":{},\
         \"serial_cycles\":{},\"max_replica_cycles\":{},\"faults_detected\":{},\
         \"faults_injected\":{},\"fault_retries\":{},\"degraded_replicas\":{}}}",
        best_report.map_or(0, |r| r.total_cycles.get()),
        best_report.map_or(0, |r| r.compute_cycles.get()),
        best_report.map_or(0, |r| r.load_cycles.get()),
        report.serial_cycles.get(),
        report.max_replica_cycles.get(),
        report.faults_detected,
        report.faults_injected,
        report.fault_retries,
        report.degraded_replicas,
    ));
    body.push_str(&format!(",\"accuracy\":{}}}", outcome.accuracy));
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use sachi_core::prelude::ServerReason;
    use sachi_workloads::spec::CopKind;

    fn decode(bytes: &[u8]) -> Result<Option<String>, FrameError> {
        let mut cursor: &[u8] = bytes;
        read_frame(&mut cursor, MAX_FRAME_LEN)
    }

    fn frame(body: &str) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, body).unwrap();
        out
    }

    #[test]
    fn frames_round_trip() {
        let body = solve_request_body(&JobSpec::default());
        let bytes = frame(&body);
        assert_eq!(decode(&bytes).unwrap().unwrap(), body);
        // Two frames back to back decode in order.
        let mut two = frame("{\"op\":\"ping\"}");
        two.extend_from_slice(&frame("{\"op\":\"metrics\"}"));
        let mut cursor: &[u8] = &two;
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME_LEN).unwrap().unwrap(),
            "{\"op\":\"ping\"}"
        );
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME_LEN).unwrap().unwrap(),
            "{\"op\":\"metrics\"}"
        );
        assert_eq!(read_frame(&mut cursor, MAX_FRAME_LEN).unwrap(), None);
    }

    #[test]
    fn truncated_frames_are_typed_not_panics() {
        // Prefix promises 10 bytes, stream has 3.
        let mut bytes = vec![0, 0, 0, 10];
        bytes.extend_from_slice(b"abc");
        let err = decode(&bytes).unwrap_err();
        assert_eq!(
            err,
            FrameError::Truncated {
                expected: 10,
                got: 3
            }
        );
        assert!(err.is_fatal());
        // A prefix cut mid-way is also truncation.
        let err = decode(&[0, 0]).unwrap_err();
        assert!(matches!(
            err,
            FrameError::Truncated {
                expected: 4,
                got: 2
            }
        ));
        // Clean EOF before any prefix byte is not an error.
        assert_eq!(decode(&[]).unwrap(), None);
    }

    #[test]
    fn oversized_and_empty_prefixes_are_rejected_before_allocation() {
        let err = decode(&[0xFF, 0xFF, 0xFF, 0xFF]).unwrap_err();
        assert!(matches!(err, FrameError::Oversized { .. }));
        assert!(err.is_fatal());
        let err = decode(&[0, 0, 0, 0]).unwrap_err();
        assert_eq!(err, FrameError::Empty);
        assert!(!err.is_fatal());
    }

    #[test]
    fn invalid_utf8_is_recoverable() {
        let mut bytes = vec![0, 0, 0, 2];
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let err = decode(&bytes).unwrap_err();
        assert_eq!(err, FrameError::BadUtf8);
        assert!(!err.is_fatal());
        let mapped = SachiError::from(&err);
        assert_eq!(mapped.exit_code(), 2);
    }

    #[test]
    fn garbage_json_is_a_typed_parse_error() {
        for body in [
            "{{{",
            "",
            "null",
            "[1,2]",
            "{\"op\":7}",
            "{\"op\":\"levitate\"}",
        ] {
            let err = parse_request(body).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{body:?} -> {err}");
        }
    }

    #[test]
    fn request_round_trips_through_the_builders() {
        let spec = JobSpec {
            cop: CopKind::SatThree,
            size: 40,
            seed: 9,
            restarts: 8,
            resolution: Some(8),
            step_budget: Some(60_000),
            fault_ber: Some(1e-4),
            fault_seed: 3,
            fault_policy: RecoveryPolicy::FailFast,
            tempering: true,
            ladder: LadderKind::Adaptive,
            ..JobSpec::default()
        };
        match parse_request(&solve_request_body(&spec)).unwrap() {
            Request::Solve(got) => assert_eq!(got, spec),
            other => panic!("wrong request {other:?}"),
        }
        assert_eq!(
            parse_request(&simple_request_body("ping")).unwrap(),
            Request::Ping
        );
        assert_eq!(
            parse_request(&simple_request_body("metrics")).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request(&simple_request_body("shutdown")).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn strict_shape_checks_reject_surprises() {
        assert!(parse_request("{\"op\":\"solve\"}").is_err());
        assert!(parse_request("{\"op\":\"solve\",\"job\":3}").is_err());
        assert!(parse_request("{\"op\":\"ping\",\"job\":{}}").is_err());
        assert!(parse_request("{\"op\":\"solve\",\"job\":{},\"extra\":1}").is_err());
        assert!(parse_request("{\"op\":\"solve\",\"job\":{\"warp\":9}}").is_err());
        // Non-integral and out-of-range numbers are usage errors, not
        // silent roundings.
        for body in [
            "{\"op\":\"solve\",\"job\":{\"seed\":1.5}}",
            "{\"op\":\"solve\",\"job\":{\"size\":-4}}",
            "{\"op\":\"solve\",\"job\":{\"seed\":1e300}}",
            "{\"op\":\"solve\",\"job\":{\"restarts\":\"many\"}}",
            "{\"op\":\"solve\",\"job\":{\"tempering\":\"yes\"}}",
            "{\"op\":\"solve\",\"job\":{\"ladder\":\"steep\"}}",
            "{\"op\":\"solve\",\"job\":{\"ladder\":3}}",
        ] {
            let err = parse_request(body).unwrap_err();
            assert!(matches!(err, SachiError::Usage(_)), "{body}");
        }
    }

    #[test]
    fn error_bodies_carry_the_shared_code_table() {
        let body = error_body("solve", &SachiError::Parse("nope".to_string()));
        assert!(body.contains("\"code\":2"));
        assert!(body.contains("\"class\":\"parse\""));
        let body = error_body(
            "solve",
            &SachiError::server(ServerReason::QueueFull, "8 jobs queued"),
        );
        assert!(body.contains("\"code\":5"));
        assert!(body.contains("\"reason\":\"queue-full\""));
        // Error bodies are themselves valid JSON.
        assert!(sachi_obs::json::parse(&body).is_ok());
    }

    /// The lexer-fuzz pattern from `crates/xtask`: a deterministic
    /// xorshift64 stream drives the decoder with adversarial byte
    /// soup — raw bytes, valid-looking prefixes, UTF-8 lead bytes,
    /// JSON punctuation — and every outcome must be a typed result.
    #[test]
    fn frame_decoder_survives_xorshift_fuzz() {
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Weighted alphabet: mostly structural bytes so the decoder's
        // interesting paths (length prefixes, JSON shapes) get hit.
        const ALPHABET: &[u8] = b"{}[]\":,0123456789abcdef \0\x01\x7f\xc0\xff\xfe+-.e";
        for case in 0..600 {
            let mut bytes = Vec::new();
            if case % 3 == 0 {
                // A well-formed prefix over a random (often lying) length.
                let promised = (next() % 40) as u32;
                bytes.extend_from_slice(&promised.to_be_bytes());
            }
            let len = (next() % 48) as usize;
            for _ in 0..len {
                let b = ALPHABET[(next() as usize) % ALPHABET.len()];
                bytes.push(b);
            }
            match decode(&bytes) {
                Ok(Some(body)) => {
                    // Whatever decoded must flow through request
                    // parsing without a panic either.
                    let _ = parse_request(&body);
                }
                Ok(None) => {}
                Err(e) => {
                    // Typed, displayable, and mapped to code 2.
                    assert_eq!(SachiError::from(&e).exit_code(), 2, "{e}");
                }
            }
        }
    }
}
