//! Hand-rolled argument parsing for the `sachi` CLI (no external parser
//! dependency; the grammar is small and fully tested).

use sachi_core::config::DesignKind;
use sachi_core::serve::JobSpec;
use sachi_ising::recovery::RecoveryPolicy;
use sachi_ising::tempering::LadderKind;
use sachi_mem::cache::CacheHierarchy;
use sachi_workloads::spec::CopKind;
use std::fmt;

/// Machine-readable metrics output format for `solve`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Single JSON snapshot (`sachi.metrics.v1` schema) on stdout.
    Json,
    /// Prometheus text exposition format version 0.0.4.
    Prom,
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `sachi solve ...` — functional solve with a full report.
    Solve(SolveArgs),
    /// `sachi compare ...` — run every machine on one problem.
    Compare(SolveArgs),
    /// `sachi estimate ...` — analytic model at arbitrary scale.
    Estimate(EstimateArgs),
    /// `sachi serve ...` — run the multi-tenant solver daemon.
    Serve(ServeArgs),
    /// `sachi submit ...` — submit one request to a running daemon.
    Submit(SubmitArgs),
    /// `sachi info` — print the configured geometry and constants.
    Info,
    /// `sachi help` (or `-h`/`--help`).
    Help,
}

/// Arguments of `serve`. Every knob that bounds a resource rejects
/// zero at parse time: a zero-depth queue, zero-port bind, or
/// zero-millisecond timeout is always a misconfiguration that would
/// otherwise surface as a daemon that admits nothing (or binds an
/// ephemeral port nobody can find).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// TCP port to bind on 127.0.0.1.
    pub port: u16,
    /// Worker threads for the shared solver pool (0 = all cores).
    pub threads: usize,
    /// Bound on jobs admitted but not yet finished (backpressure).
    pub queue_depth: usize,
    /// Wall-clock admission deadline: a job still unstarted after this
    /// many milliseconds is revoked with the deadline-expired code.
    pub admission_timeout_ms: u64,
    /// Per-connection socket read timeout in milliseconds.
    pub io_timeout_ms: u64,
    /// Bound on concurrently served connections.
    pub max_conns: usize,
    /// Admission limit on a job's `step_budget`.
    pub max_step_budget: u64,
    /// Admission limit on a job's `size`.
    pub max_size: usize,
    /// Admission limit on a job's `restarts`.
    pub max_restarts: u64,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            port: 7861,
            threads: 0,
            queue_depth: 8,
            admission_timeout_ms: 10_000,
            io_timeout_ms: 10_000,
            max_conns: 64,
            max_step_budget: 100_000_000,
            max_size: 65_536,
            max_restarts: 256,
        }
    }
}

/// What a `submit` invocation asks the daemon to do. The op flags are
/// mutually exclusive with each other and with job flags.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitOp {
    /// Submit a solve job (the default; built from the job flags).
    Solve(JobSpec),
    /// Liveness probe (`--ping`).
    Ping,
    /// Graceful drain (`--shutdown`).
    Shutdown,
    /// Fetch the Prometheus exposition over HTTP (`--fetch-metrics`).
    FetchMetrics,
    /// Send an arbitrary string as the frame body (`--raw`), for
    /// protocol testing: the daemon must answer with a typed error.
    Raw(String),
}

/// Arguments of `submit`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitArgs {
    /// Daemon address.
    pub addr: String,
    /// The request to send.
    pub op: SubmitOp,
}

impl Default for SubmitArgs {
    fn default() -> Self {
        SubmitArgs {
            addr: "127.0.0.1:7861".to_string(),
            op: SubmitOp::Solve(JobSpec::default()),
        }
    }
}

/// Arguments of `solve`/`compare`.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveArgs {
    /// Which COP to build (mutually exclusive with `file`).
    pub cop: Option<CopKind>,
    /// Problem size (spins; lattice COPs round to a near-square grid).
    pub size: usize,
    /// DIMACS/Gset file to load instead of a generated COP.
    pub file: Option<String>,
    /// Treat `file` as Gset max-cut format.
    pub gset: bool,
    /// Treat `file` as DIMACS CNF (3-SAT clause-penalty encoding).
    pub cnf: bool,
    /// Stationarity design.
    pub design: DesignKind,
    /// IC resolution override.
    pub resolution: Option<u32>,
    /// RNG seed.
    pub seed: u64,
    /// Annealing restarts (ensemble replicas).
    pub restarts: u64,
    /// Worker threads for the replica ensemble (0 = all available
    /// cores). Thread count never changes results, only wall-clock.
    pub threads: usize,
    /// Cache hierarchy preset.
    pub hierarchy: CacheHierarchy,
    /// Transient read bit-error rate (None = perfect memory).
    pub fault_ber: Option<f64>,
    /// Seed of the fault stream (independent of the solve seed).
    pub fault_seed: u64,
    /// Recovery policy applied when parity detects a fault.
    pub fault_policy: RecoveryPolicy,
    /// Deterministic work-domain deadline: total spin updates across
    /// the whole solve (divided among sweeps; see
    /// `SolveOptions::step_budget`). Zero is rejected at parse time.
    pub step_budget: Option<u64>,
    /// Machine-readable metrics output (replaces the human report).
    pub metrics: Option<MetricsFormat>,
    /// Record solve-phase spans and include them in the metrics output.
    pub trace_phases: bool,
    /// Couple the restarts as parallel-tempering rungs with replica
    /// exchange instead of independent runs.
    pub tempering: bool,
    /// Temperature-ladder construction used with `--tempering`.
    pub ladder: LadderKind,
}

impl Default for SolveArgs {
    fn default() -> Self {
        SolveArgs {
            cop: Some(CopKind::MolecularDynamics),
            size: 256,
            file: None,
            gset: false,
            cnf: false,
            design: DesignKind::N3,
            resolution: None,
            seed: 0,
            restarts: 1,
            threads: 0,
            hierarchy: CacheHierarchy::hpca_default(),
            fault_ber: None,
            fault_seed: 0,
            fault_policy: RecoveryPolicy::default(),
            step_budget: None,
            metrics: None,
            trace_phases: false,
            tempering: false,
            ladder: LadderKind::Geometric,
        }
    }
}

/// Arguments of `estimate`.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateArgs {
    /// COP whose Fig. 4 shape to use.
    pub cop: CopKind,
    /// Spin count.
    pub spins: u64,
    /// Stationarity design.
    pub design: DesignKind,
    /// IC resolution override.
    pub resolution: Option<u32>,
    /// Assumed iterations for whole-solve totals.
    pub iterations: u64,
    /// Cache hierarchy preset.
    pub hierarchy: CacheHierarchy,
}

impl Default for EstimateArgs {
    fn default() -> Self {
        EstimateArgs {
            cop: CopKind::MolecularDynamics,
            spins: 1_000_000,
            design: DesignKind::N3,
            resolution: None,
            iterations: 100,
            hierarchy: CacheHierarchy::hpca_default(),
        }
    }
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

fn err(msg: impl Into<String>) -> ArgError {
    ArgError(msg.into())
}

/// The canonical short label for a COP — the first alias
/// [`parse_cop`] accepts, so `cop_label` and `parse_cop` round-trip.
/// The wire protocol uses these labels in both directions.
pub(crate) fn cop_label(kind: CopKind) -> &'static str {
    match kind {
        CopKind::AssetAllocation => "asset",
        CopKind::ImageSegmentation => "imgseg",
        CopKind::TravelingSalesman => "tsp",
        CopKind::MolecularDynamics => "md",
        CopKind::SatThree => "sat",
        CopKind::GraphColoring => "coloring",
        CopKind::JobScheduling => "sched",
    }
}

pub(crate) fn parse_cop(s: &str) -> Result<CopKind, ArgError> {
    match s {
        "asset" | "asset-allocation" => Ok(CopKind::AssetAllocation),
        "imgseg" | "segmentation" | "image-segmentation" => Ok(CopKind::ImageSegmentation),
        "tsp" | "traveling-salesman" => Ok(CopKind::TravelingSalesman),
        "md" | "molecular-dynamics" => Ok(CopKind::MolecularDynamics),
        "sat" | "3sat" | "3-sat" => Ok(CopKind::SatThree),
        "coloring" | "color" | "graph-coloring" => Ok(CopKind::GraphColoring),
        "sched" | "scheduling" | "job-scheduling" => Ok(CopKind::JobScheduling),
        other => Err(err(format!(
            "unknown COP '{other}' (asset|imgseg|tsp|md|sat|coloring|sched)"
        ))),
    }
}

/// The canonical short label for a design — exactly what
/// [`parse_design`] accepts, so the pair round-trips on the wire
/// (`DesignKind::label()` is the long display form, `"SACHI(n3)"`).
pub(crate) fn design_label(kind: DesignKind) -> &'static str {
    match kind {
        DesignKind::N1a => "n1a",
        DesignKind::N1b => "n1b",
        DesignKind::N2 => "n2",
        DesignKind::N3 => "n3",
    }
}

pub(crate) fn parse_design(s: &str) -> Result<DesignKind, ArgError> {
    match s {
        "n1a" => Ok(DesignKind::N1a),
        "n1b" => Ok(DesignKind::N1b),
        "n2" => Ok(DesignKind::N2),
        "n3" => Ok(DesignKind::N3),
        other => Err(err(format!("unknown design '{other}' (n1a|n1b|n2|n3)"))),
    }
}

fn parse_hierarchy(s: &str) -> Result<CacheHierarchy, ArgError> {
    match s {
        "default" | "hpca" => Ok(CacheHierarchy::hpca_default()),
        "desktop" => Ok(CacheHierarchy::desktop()),
        "server" => Ok(CacheHierarchy::server()),
        other => Err(err(format!(
            "unknown hierarchy '{other}' (default|desktop|server)"
        ))),
    }
}

fn take_value<'a>(flag: &str, it: &mut impl Iterator<Item = &'a str>) -> Result<&'a str, ArgError> {
    it.next()
        .ok_or_else(|| err(format!("{flag} needs a value")))
}

fn parse_solve_args<'a>(mut it: impl Iterator<Item = &'a str>) -> Result<SolveArgs, ArgError> {
    let mut args = SolveArgs::default();
    while let Some(flag) = it.next() {
        match flag {
            "--cop" => {
                if args.file.is_some() {
                    return Err(err("--cop and --file are mutually exclusive"));
                }
                args.cop = Some(parse_cop(take_value(flag, &mut it)?)?);
            }
            "--size" => {
                args.size = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|_| err("--size needs an integer"))?
            }
            "--file" => {
                args.file = Some(take_value(flag, &mut it)?.to_string());
                // The generated-COP default gives way to the file.
                args.cop = None;
            }
            "--gset" => args.gset = true,
            "--cnf" => args.cnf = true,
            "--design" => args.design = parse_design(take_value(flag, &mut it)?)?,
            "--resolution" => {
                args.resolution = Some(
                    take_value(flag, &mut it)?
                        .parse()
                        .map_err(|_| err("--resolution needs an integer"))?,
                )
            }
            "--seed" => {
                args.seed = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|_| err("--seed needs an integer"))?
            }
            "--restarts" => {
                args.restarts = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|_| err("--restarts needs an integer"))?
            }
            "--threads" => {
                args.threads = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|_| err("--threads needs an integer (0 = all cores)"))?
            }
            "--hierarchy" => args.hierarchy = parse_hierarchy(take_value(flag, &mut it)?)?,
            "--fault-ber" => {
                let ber: f64 = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|_| err("--fault-ber needs a number in [0, 1]"))?;
                if !(0.0..=1.0).contains(&ber) {
                    return Err(err("--fault-ber needs a number in [0, 1]"));
                }
                args.fault_ber = Some(ber);
            }
            "--fault-seed" => {
                args.fault_seed = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|_| err("--fault-seed needs an integer"))?
            }
            "--fault-policy" => {
                args.fault_policy = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|e: String| err(format!("--fault-policy: {e}")))?
            }
            "--metrics" => {
                args.metrics = Some(match take_value(flag, &mut it)? {
                    "json" => MetricsFormat::Json,
                    "prom" | "prometheus" => MetricsFormat::Prom,
                    other => {
                        return Err(err(format!("unknown metrics format '{other}' (json|prom)")))
                    }
                })
            }
            "--step-budget" => {
                args.step_budget = Some(
                    take_value(flag, &mut it)?
                        .parse()
                        .map_err(|_| err("--step-budget needs an integer"))?,
                )
            }
            "--trace-phases" => args.trace_phases = true,
            "--tempering" => args.tempering = true,
            "--ladder" => {
                args.ladder = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|e: String| err(format!("--ladder: {e}")))?
            }
            other => return Err(err(format!("unknown flag '{other}' for solve/compare"))),
        }
    }
    if args.restarts == 0 {
        return Err(err("--restarts must be at least 1"));
    }
    if args.step_budget == Some(0) {
        return Err(err(
            "--step-budget 0 would run zero sweeps; omit the flag for unbounded",
        ));
    }
    if args.cop.is_none() && args.file.is_none() {
        return Err(err("need --cop or --file"));
    }
    if !args.tempering && args.ladder != LadderKind::Geometric {
        return Err(err("--ladder needs --tempering"));
    }
    if args.gset && args.cnf {
        return Err(err("--gset and --cnf are mutually exclusive"));
    }
    if args.cnf && args.file.is_none() {
        return Err(err("--cnf needs --file"));
    }
    Ok(args)
}

fn parse_estimate_args<'a>(
    mut it: impl Iterator<Item = &'a str>,
) -> Result<EstimateArgs, ArgError> {
    let mut args = EstimateArgs::default();
    while let Some(flag) = it.next() {
        match flag {
            "--cop" => args.cop = parse_cop(take_value(flag, &mut it)?)?,
            "--spins" => {
                args.spins = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|_| err("--spins needs an integer"))?
            }
            "--design" => args.design = parse_design(take_value(flag, &mut it)?)?,
            "--resolution" => {
                args.resolution = Some(
                    take_value(flag, &mut it)?
                        .parse()
                        .map_err(|_| err("--resolution needs an integer"))?,
                )
            }
            "--iterations" => {
                args.iterations = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|_| err("--iterations needs an integer"))?
            }
            "--hierarchy" => args.hierarchy = parse_hierarchy(take_value(flag, &mut it)?)?,
            other => return Err(err(format!("unknown flag '{other}' for estimate"))),
        }
    }
    Ok(args)
}

fn nonzero<T: PartialEq + From<u8>>(value: T, flag: &str) -> Result<T, ArgError> {
    if value == T::from(0u8) {
        return Err(err(format!("{flag} must be at least 1")));
    }
    Ok(value)
}

fn parse_serve_args<'a>(mut it: impl Iterator<Item = &'a str>) -> Result<ServeArgs, ArgError> {
    let mut args = ServeArgs::default();
    while let Some(flag) = it.next() {
        let value = take_value(flag, &mut it)?;
        let bad = |what: &str| err(format!("{flag} needs {what}"));
        match flag {
            "--port" => {
                args.port = nonzero(value.parse().map_err(|_| bad("a port in 1..=65535"))?, flag)?
            }
            "--threads" => {
                args.threads = value
                    .parse()
                    .map_err(|_| bad("an integer (0 = all cores)"))?
            }
            "--queue-depth" => {
                args.queue_depth = nonzero(value.parse().map_err(|_| bad("an integer"))?, flag)?
            }
            "--admission-timeout-ms" => {
                args.admission_timeout_ms =
                    nonzero(value.parse().map_err(|_| bad("milliseconds"))?, flag)?
            }
            "--io-timeout-ms" => {
                args.io_timeout_ms = nonzero(value.parse().map_err(|_| bad("milliseconds"))?, flag)?
            }
            "--max-conns" => {
                args.max_conns = nonzero(value.parse().map_err(|_| bad("an integer"))?, flag)?
            }
            "--max-step-budget" => {
                args.max_step_budget = nonzero(value.parse().map_err(|_| bad("an integer"))?, flag)?
            }
            "--max-size" => {
                args.max_size = nonzero(value.parse().map_err(|_| bad("an integer"))?, flag)?
            }
            "--max-restarts" => {
                args.max_restarts = nonzero(value.parse().map_err(|_| bad("an integer"))?, flag)?
            }
            other => return Err(err(format!("unknown flag '{other}' for serve"))),
        }
    }
    Ok(args)
}

fn parse_submit_args<'a>(mut it: impl Iterator<Item = &'a str>) -> Result<SubmitArgs, ArgError> {
    let mut args = SubmitArgs::default();
    let mut spec = JobSpec::default();
    let mut op_flag: Option<&str> = None;
    let mut job_flag: Option<&str> = None;
    fn set_op<'f>(current: &mut Option<&'f str>, flag: &'f str) -> Result<(), ArgError> {
        if let Some(prev) = current {
            return Err(err(format!("{prev} and {flag} are mutually exclusive")));
        }
        *current = Some(flag);
        Ok(())
    }
    while let Some(flag) = it.next() {
        match flag {
            "--addr" => args.addr = take_value(flag, &mut it)?.to_string(),
            "--ping" | "--shutdown" | "--fetch-metrics" => set_op(&mut op_flag, flag)?,
            "--raw" => {
                set_op(&mut op_flag, flag)?;
                args.op = SubmitOp::Raw(take_value(flag, &mut it)?.to_string());
            }
            "--cop" => {
                job_flag = Some(flag);
                spec.cop = parse_cop(take_value(flag, &mut it)?)?;
            }
            "--size" => {
                job_flag = Some(flag);
                spec.size = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|_| err("--size needs an integer"))?;
            }
            "--seed" => {
                job_flag = Some(flag);
                spec.seed = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|_| err("--seed needs an integer"))?;
            }
            "--design" => {
                job_flag = Some(flag);
                spec.design = parse_design(take_value(flag, &mut it)?)?;
            }
            "--restarts" => {
                job_flag = Some(flag);
                spec.restarts = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|_| err("--restarts needs an integer"))?;
            }
            "--resolution" => {
                job_flag = Some(flag);
                spec.resolution = Some(
                    take_value(flag, &mut it)?
                        .parse()
                        .map_err(|_| err("--resolution needs an integer"))?,
                );
            }
            "--step-budget" => {
                job_flag = Some(flag);
                spec.step_budget = Some(
                    take_value(flag, &mut it)?
                        .parse()
                        .map_err(|_| err("--step-budget needs an integer"))?,
                );
            }
            "--fault-ber" => {
                job_flag = Some(flag);
                spec.fault_ber = Some(
                    take_value(flag, &mut it)?
                        .parse()
                        .map_err(|_| err("--fault-ber needs a number in [0, 1]"))?,
                );
            }
            "--fault-seed" => {
                job_flag = Some(flag);
                spec.fault_seed = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|_| err("--fault-seed needs an integer"))?;
            }
            "--fault-policy" => {
                job_flag = Some(flag);
                spec.fault_policy = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|e: String| err(format!("--fault-policy: {e}")))?;
            }
            "--tempering" => {
                job_flag = Some(flag);
                spec.tempering = true;
            }
            "--ladder" => {
                job_flag = Some(flag);
                spec.ladder = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|e: String| err(format!("--ladder: {e}")))?;
            }
            other => return Err(err(format!("unknown flag '{other}' for submit"))),
        }
    }
    match (op_flag, job_flag) {
        (Some(op), Some(job)) => Err(err(format!(
            "{op} and job flag {job} are mutually exclusive"
        ))),
        (Some("--ping"), None) => {
            args.op = SubmitOp::Ping;
            Ok(args)
        }
        (Some("--shutdown"), None) => {
            args.op = SubmitOp::Shutdown;
            Ok(args)
        }
        (Some("--fetch-metrics"), None) => {
            args.op = SubmitOp::FetchMetrics;
            Ok(args)
        }
        (Some(_), None) => Ok(args), // --raw already stored its payload
        (None, _) => {
            // Job validation is deliberately deferred to the daemon
            // (same admission path as every other client), but the
            // local zero checks mirror `solve` for parity of error
            // messages.
            if spec.restarts == 0 {
                return Err(err("--restarts must be at least 1"));
            }
            if spec.step_budget == Some(0) {
                return Err(err(
                    "--step-budget 0 would run zero sweeps; omit the flag for unbounded",
                ));
            }
            if !spec.tempering && spec.ladder != LadderKind::Geometric {
                return Err(err("--ladder needs --tempering"));
            }
            args.op = SubmitOp::Solve(spec);
            Ok(args)
        }
    }
}

/// Parses a full command line (without the program name).
///
/// # Errors
///
/// Returns [`ArgError`] with a user-facing message on any malformed
/// input.
pub fn parse<'a>(argv: impl IntoIterator<Item = &'a str>) -> Result<Command, ArgError> {
    let mut it = argv.into_iter();
    match it.next() {
        None | Some("help") | Some("-h") | Some("--help") => Ok(Command::Help),
        Some("info") => Ok(Command::Info),
        Some("solve") => Ok(Command::Solve(parse_solve_args(it)?)),
        Some("compare") => Ok(Command::Compare(parse_solve_args(it)?)),
        Some("estimate") => Ok(Command::Estimate(parse_estimate_args(it)?)),
        Some("serve") => Ok(Command::Serve(parse_serve_args(it)?)),
        Some("submit") => Ok(Command::Submit(parse_submit_args(it)?)),
        Some(other) => Err(err(format!(
            "unknown command '{other}' (solve|compare|estimate|serve|submit|info|help)"
        ))),
    }
}

/// The help text.
pub const USAGE: &str = "\
sachi — stationarity-aware, all-digital, near-memory Ising architecture simulator

USAGE:
  sachi solve    [--cop asset|imgseg|tsp|md|sat|coloring|sched] [--size N]
                 [--file PATH [--gset|--cnf]]
                 [--design n1a|n1b|n2|n3] [--resolution R] [--seed S]
                 [--restarts K] [--threads T] [--hierarchy default|desktop|server]
                 [--fault-ber P] [--fault-seed S] [--fault-policy failfast|retry|retry:N]
                 [--metrics json|prom] [--trace-phases]
                 [--tempering [--ladder geometric|adaptive]]
                 (--threads 0, the default, uses every core; restarts run
                  as a deterministic parallel replica ensemble — results
                  are identical at any thread count. --tempering couples
                  the restarts as replica-exchange parallel-tempering
                  rungs on a temperature ladder (--ladder picks the
                  construction: geometric spacing, or adaptive endpoints
                  tuned from the problem's coefficient statistics);
                  swap decisions come from a salted deterministic
                  stream, so tempered runs stay thread-count
                  independent. --fault-ber injects
                  deterministic transient bit flips at probability P per
                  read bit; parity-detected faults follow --fault-policy,
                  retry:N by default. --metrics replaces the human report
                  with one machine-readable snapshot on stdout — json is
                  the sachi.metrics.v1 schema, prom is Prometheus text
                  exposition; --trace-phases adds hierarchical
                  upload/round/h_compute/update/writeback/prefetch spans,
                  metered in solver cycles, to the snapshot.
                  sat/coloring/sched are the seeded Lucas-library
                  extension families: sat generates a critical-ratio
                  3-SAT instance over --size variables, coloring a
                  planted 3-colorable graph on --size vertices, sched a
                  --size-job schedule on 3 machines; --cnf loads a 3-SAT
                  instance from a DIMACS CNF file instead)
  sachi compare  <same flags>         run every machine on one problem
  sachi estimate [--cop ...] [--spins N] [--design ...] [--resolution R]
                 [--iterations I] [--hierarchy ...]
  sachi serve    [--port P] [--threads T] [--queue-depth Q]
                 [--admission-timeout-ms MS] [--io-timeout-ms MS]
                 [--max-conns C] [--max-step-budget B] [--max-size N]
                 [--max-restarts K]
                 (multi-tenant solver daemon on 127.0.0.1:P speaking
                  length-prefixed JSON frames; replica ensembles from
                  different jobs share one deterministic worker pool, so
                  a job's result is byte-identical to the one-shot CLI
                  at any thread count and under any co-tenants. Jobs
                  over the admission limits, past the queue depth, or
                  past the admission deadline are rejected with typed
                  code-5 responses; GET /metrics on the same port serves
                  Prometheus text exposition. All bounds reject 0.)
  sachi submit   [--addr HOST:PORT] [job flags: --cop --size --seed
                 --design --restarts --resolution --step-budget
                 --fault-ber --fault-seed --fault-policy
                 --tempering --ladder]
                 | --ping | --shutdown | --fetch-metrics | --raw BODY
                 (one request to a running daemon; exits with the
                  daemon's response code — 0 ok, 2 usage/parse, 3 solve,
                  4 fault, 5 server rejection. Op flags are mutually
                  exclusive with each other and with job flags.
                  --step-budget also works on solve: it caps total spin
                  updates deterministically, in the work domain.)
  sachi info                          print geometry and technology constants
  sachi help

EXAMPLES:
  sachi solve --cop md --size 1024 --design n3 --restarts 4
  sachi solve --cop md --size 1024 --restarts 16 --threads 8
  sachi solve --file g05.gset --gset --design n3
  sachi solve --cop sat --size 40 --restarts 8
  sachi solve --cop sat --size 40 --restarts 8 --tempering --ladder adaptive
  sachi solve --file data/example12.cnf --cnf --design n2
  sachi solve --cop md --size 1024 --fault-ber 1e-4 --fault-policy retry:5
  sachi solve --cop md --size 256 --metrics json --trace-phases
  sachi compare --cop imgseg --size 144
  sachi estimate --cop tsp --spins 1000000 --hierarchy server
  sachi serve --port 7861 --queue-depth 8 --max-step-budget 1000000
  sachi submit --cop sat --size 40 --restarts 8 --step-budget 60000
  sachi submit --ping
  sachi submit --fetch-metrics
  sachi submit --shutdown
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_solve_with_all_flags() {
        let cmd = parse(
            "solve --cop tsp --size 64 --design n2 --resolution 8 --seed 9 --restarts 3 --threads 2 --hierarchy server"
                .split_whitespace(),
        )
        .unwrap();
        match cmd {
            Command::Solve(a) => {
                assert_eq!(a.cop, Some(CopKind::TravelingSalesman));
                assert_eq!(a.size, 64);
                assert_eq!(a.design, DesignKind::N2);
                assert_eq!(a.resolution, Some(8));
                assert_eq!(a.seed, 9);
                assert_eq!(a.restarts, 3);
                assert_eq!(a.threads, 2);
                assert_eq!(a.hierarchy, CacheHierarchy::server());
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn threads_defaults_to_auto_and_rejects_garbage() {
        let cmd = parse(["solve"]).unwrap();
        match cmd {
            Command::Solve(a) => assert_eq!(a.threads, 0),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(["solve", "--threads", "lots"])
            .unwrap_err()
            .0
            .contains("--threads needs an integer"));
    }

    #[test]
    fn file_mode_clears_cop() {
        let cmd = parse("solve --file graph.txt --gset".split_whitespace()).unwrap();
        match cmd {
            Command::Solve(a) => {
                assert_eq!(a.file.as_deref(), Some("graph.txt"));
                assert!(a.gset);
                assert_eq!(a.cop, None);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn defaults_are_sane() {
        let cmd = parse(["solve"]).unwrap();
        match cmd {
            Command::Solve(a) => {
                assert_eq!(a, SolveArgs::default());
            }
            other => panic!("wrong command {other:?}"),
        }
        assert_eq!(parse([] as [&str; 0]).unwrap(), Command::Help);
        assert_eq!(parse(["--help"]).unwrap(), Command::Help);
        assert_eq!(parse(["info"]).unwrap(), Command::Info);
    }

    #[test]
    fn estimate_flags() {
        let cmd = parse("estimate --cop imgseg --spins 200000 --iterations 50".split_whitespace())
            .unwrap();
        match cmd {
            Command::Estimate(a) => {
                assert_eq!(a.cop, CopKind::ImageSegmentation);
                assert_eq!(a.spins, 200_000);
                assert_eq!(a.iterations, 50);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn error_messages_are_actionable() {
        assert!(parse(["solve", "--cop", "sudoku"])
            .unwrap_err()
            .0
            .contains("unknown COP"));
        assert!(parse(["solve", "--design", "n9"])
            .unwrap_err()
            .0
            .contains("unknown design"));
        assert!(parse(["solve", "--size"])
            .unwrap_err()
            .0
            .contains("needs a value"));
        assert!(parse(["solve", "--size", "many"])
            .unwrap_err()
            .0
            .contains("integer"));
        assert!(parse(["solve", "--restarts", "0"])
            .unwrap_err()
            .0
            .contains("at least 1"));
        assert!(parse(["launch"]).unwrap_err().0.contains("unknown command"));
        assert!(parse(["solve", "--hierarchy", "mainframe"])
            .unwrap_err()
            .0
            .contains("unknown hierarchy"));
        assert!(parse(["estimate", "--wat"])
            .unwrap_err()
            .0
            .contains("unknown flag"));
        assert!(parse(["solve", "--file", "g.txt", "--cop", "md"])
            .unwrap_err()
            .0
            .contains("mutually exclusive"));
    }

    #[test]
    fn fault_flags_parse_and_validate() {
        let cmd = parse(
            "solve --fault-ber 1e-4 --fault-seed 42 --fault-policy retry:5".split_whitespace(),
        )
        .unwrap();
        match cmd {
            Command::Solve(a) => {
                assert_eq!(a.fault_ber, Some(1e-4));
                assert_eq!(a.fault_seed, 42);
                assert_eq!(
                    a.fault_policy,
                    RecoveryPolicy::RefetchRetry { max_retries: 5 }
                );
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(["solve", "--fault-policy", "failfast"]).unwrap() {
            Command::Solve(a) => {
                assert_eq!(a.fault_ber, None);
                assert_eq!(a.fault_policy, RecoveryPolicy::FailFast);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(["solve", "--fault-ber", "2.0"])
            .unwrap_err()
            .0
            .contains("[0, 1]"));
        assert!(parse(["solve", "--fault-ber", "often"])
            .unwrap_err()
            .0
            .contains("[0, 1]"));
        assert!(parse(["solve", "--fault-policy", "hope"])
            .unwrap_err()
            .0
            .contains("--fault-policy"));
    }

    #[test]
    fn metrics_flags_parse_and_validate() {
        match parse("solve --metrics json --trace-phases".split_whitespace()).unwrap() {
            Command::Solve(a) => {
                assert_eq!(a.metrics, Some(MetricsFormat::Json));
                assert!(a.trace_phases);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(["solve", "--metrics", "prometheus"]).unwrap() {
            Command::Solve(a) => assert_eq!(a.metrics, Some(MetricsFormat::Prom)),
            other => panic!("wrong command {other:?}"),
        }
        match parse(["solve"]).unwrap() {
            Command::Solve(a) => {
                assert_eq!(a.metrics, None);
                assert!(!a.trace_phases);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(["solve", "--metrics", "xml"])
            .unwrap_err()
            .0
            .contains("json|prom"));
        assert!(parse(["solve", "--metrics"])
            .unwrap_err()
            .0
            .contains("needs a value"));
    }

    #[test]
    fn tempering_flags_parse_and_validate() {
        match parse("solve --tempering --ladder adaptive --restarts 4".split_whitespace()).unwrap()
        {
            Command::Solve(a) => {
                assert!(a.tempering);
                assert_eq!(a.ladder, LadderKind::Adaptive);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(["solve", "--tempering"]).unwrap() {
            Command::Solve(a) => {
                assert!(a.tempering);
                assert_eq!(a.ladder, LadderKind::Geometric);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(["solve", "--ladder", "adaptive"])
            .unwrap_err()
            .0
            .contains("--ladder needs --tempering"));
        assert!(parse(["solve", "--tempering", "--ladder", "steep"])
            .unwrap_err()
            .0
            .contains("unknown ladder"));
        match parse("submit --tempering --ladder adaptive --restarts 4".split_whitespace()).unwrap()
        {
            Command::Submit(a) => match a.op {
                SubmitOp::Solve(spec) => {
                    assert!(spec.tempering);
                    assert_eq!(spec.ladder, LadderKind::Adaptive);
                }
                other => panic!("wrong op {other:?}"),
            },
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(["submit", "--ladder", "adaptive"])
            .unwrap_err()
            .0
            .contains("--ladder needs --tempering"));
        assert!(parse(["submit", "--tempering", "--ping"])
            .unwrap_err()
            .0
            .contains("mutually exclusive"));
    }

    #[test]
    fn cop_aliases() {
        for (alias, kind) in [
            ("asset", CopKind::AssetAllocation),
            ("asset-allocation", CopKind::AssetAllocation),
            ("segmentation", CopKind::ImageSegmentation),
            ("traveling-salesman", CopKind::TravelingSalesman),
            ("molecular-dynamics", CopKind::MolecularDynamics),
            ("sat", CopKind::SatThree),
            ("3sat", CopKind::SatThree),
            ("coloring", CopKind::GraphColoring),
            ("graph-coloring", CopKind::GraphColoring),
            ("sched", CopKind::JobScheduling),
            ("job-scheduling", CopKind::JobScheduling),
        ] {
            assert_eq!(parse_cop(alias).unwrap(), kind);
        }
    }

    #[test]
    fn cnf_flag_rules() {
        assert!(parse("solve --cnf".split_whitespace()).is_err());
        assert!(parse("solve --file x.cnf --cnf --gset".split_whitespace()).is_err());
        match parse("solve --file x.cnf --cnf".split_whitespace()).unwrap() {
            Command::Solve(a) => {
                assert!(a.cnf);
                assert_eq!(a.file.as_deref(), Some("x.cnf"));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn cop_labels_round_trip_through_parse_cop() {
        for kind in CopKind::EXTENDED {
            assert_eq!(parse_cop(cop_label(kind)).unwrap(), kind);
        }
    }

    #[test]
    fn step_budget_parses_and_rejects_zero() {
        match parse("solve --step-budget 60000".split_whitespace()).unwrap() {
            Command::Solve(a) => assert_eq!(a.step_budget, Some(60_000)),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(["solve", "--step-budget", "0"])
            .unwrap_err()
            .0
            .contains("zero sweeps"));
        assert!(parse(["submit", "--step-budget", "0"])
            .unwrap_err()
            .0
            .contains("zero sweeps"));
    }

    #[test]
    fn serve_defaults_and_flags() {
        assert_eq!(
            parse(["serve"]).unwrap(),
            Command::Serve(ServeArgs::default())
        );
        match parse(
            "serve --port 9000 --threads 2 --queue-depth 3 --admission-timeout-ms 500 \
             --io-timeout-ms 700 --max-conns 5 --max-step-budget 1000 --max-size 64 \
             --max-restarts 4"
                .split_whitespace(),
        )
        .unwrap()
        {
            Command::Serve(a) => {
                assert_eq!(a.port, 9000);
                assert_eq!(a.threads, 2);
                assert_eq!(a.queue_depth, 3);
                assert_eq!(a.admission_timeout_ms, 500);
                assert_eq!(a.io_timeout_ms, 700);
                assert_eq!(a.max_conns, 5);
                assert_eq!(a.max_step_budget, 1_000);
                assert_eq!(a.max_size, 64);
                assert_eq!(a.max_restarts, 4);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(["serve", "--wat", "1"]).is_err());
    }

    #[test]
    fn serve_rejects_every_zero_bound() {
        // Satellite: a zero queue depth, port, timeout, or limit is a
        // usage error at parse time, never a daemon that silently
        // admits nothing.
        for flag in [
            "--port",
            "--queue-depth",
            "--admission-timeout-ms",
            "--io-timeout-ms",
            "--max-conns",
            "--max-step-budget",
            "--max-size",
            "--max-restarts",
        ] {
            let e = parse(["serve", flag, "0"]).unwrap_err();
            assert!(e.0.contains("at least 1"), "{flag}: {e}");
        }
        // --threads 0 stays legal: it means "all cores".
        assert!(parse(["serve", "--threads", "0"]).is_ok());
    }

    #[test]
    fn submit_builds_job_specs_and_ops() {
        match parse(
            "submit --addr 127.0.0.1:9000 --cop sat --size 40 --seed 9 --restarts 8 \
             --step-budget 60000 --fault-ber 1e-4 --fault-policy failfast"
                .split_whitespace(),
        )
        .unwrap()
        {
            Command::Submit(a) => {
                assert_eq!(a.addr, "127.0.0.1:9000");
                match a.op {
                    SubmitOp::Solve(spec) => {
                        assert_eq!(spec.cop, CopKind::SatThree);
                        assert_eq!(spec.size, 40);
                        assert_eq!(spec.seed, 9);
                        assert_eq!(spec.restarts, 8);
                        assert_eq!(spec.step_budget, Some(60_000));
                        assert_eq!(spec.fault_ber, Some(1e-4));
                        assert_eq!(spec.fault_policy, RecoveryPolicy::FailFast);
                    }
                    other => panic!("wrong op {other:?}"),
                }
            }
            other => panic!("wrong command {other:?}"),
        }
        assert_eq!(
            parse(["submit", "--ping"]).unwrap(),
            Command::Submit(SubmitArgs {
                op: SubmitOp::Ping,
                ..SubmitArgs::default()
            })
        );
        match parse(["submit", "--raw", "not json"]).unwrap() {
            Command::Submit(a) => assert_eq!(a.op, SubmitOp::Raw("not json".to_string())),
            other => panic!("wrong command {other:?}"),
        }
        match parse(["submit"]).unwrap() {
            Command::Submit(a) => assert_eq!(a.op, SubmitOp::Solve(JobSpec::default())),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn submit_op_flags_are_mutually_exclusive() {
        assert!(parse(["submit", "--ping", "--shutdown"])
            .unwrap_err()
            .0
            .contains("mutually exclusive"));
        assert!(parse(["submit", "--fetch-metrics", "--raw", "x"])
            .unwrap_err()
            .0
            .contains("mutually exclusive"));
        assert!(parse(["submit", "--ping", "--cop", "md"])
            .unwrap_err()
            .0
            .contains("mutually exclusive"));
        assert!(parse(["submit", "--size", "8", "--shutdown"])
            .unwrap_err()
            .0
            .contains("mutually exclusive"));
        assert!(parse(["submit", "--restarts", "0"])
            .unwrap_err()
            .0
            .contains("at least 1"));
    }
}
