//! Command implementations for the `sachi` CLI.

use crate::args::{EstimateArgs, MetricsFormat, SolveArgs};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi_baselines::prelude::*;
use sachi_bench::{percent, ratio, Table};
use sachi_core::prelude::*;
use sachi_ising::prelude::*;
use sachi_mem::l1cache::{CacheMode, L1Cache};
use sachi_mem::prelude::*;
use sachi_obs::prelude::*;
use sachi_workloads::prelude::*;

/// A built problem: graph plus an optional domain accuracy scorer.
/// (The scorer type is shared with the `serve` session layer so the
/// daemon and the one-shot CLI construct byte-identical problems.)
type AccuracyFn = sachi_core::serve::AccuracyFn;

struct Problem {
    name: String,
    graph: IsingGraph,
    accuracy: Option<AccuracyFn>,
}

fn build_problem(args: &SolveArgs) -> Result<Problem, SachiError> {
    if let Some(path) = &args.file {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SachiError::Io(format!("cannot read {path}: {e}")))?;
        if args.cnf {
            let instance =
                parse_dimacs_cnf(&text).map_err(|e| SachiError::Parse(format!("{path}: {e}")))?;
            let w = SatWorkload::new(path.clone(), instance)
                .map_err(|e| SachiError::Config(format!("{path}: {e}")))?;
            let name = w.name();
            let graph = w.graph().clone();
            return Ok(Problem {
                name,
                graph,
                accuracy: Some(Box::new(move |s| w.accuracy(s))),
            });
        }
        let graph = if args.gset {
            parse_gset(&text).map_err(|e| SachiError::Parse(format!("{path}: {e}")))?
        } else {
            parse_dimacs(&text).map_err(|e| SachiError::Parse(format!("{path}: {e}")))?
        };
        // A pure antiferromagnetic instance reads as weighted max-cut,
        // which gives loaded files an accuracy metric.
        if graph.num_edges() > 0 && graph.edges().all(|(_, _, w)| w <= 0) {
            let w = GenericMaxCut::new(path.clone(), graph);
            let name = w.name();
            let graph = w.graph().clone();
            return Ok(Problem {
                name,
                graph,
                accuracy: Some(Box::new(move |s| w.accuracy(s))),
            });
        }
        return Ok(Problem {
            name: path.clone(),
            graph,
            accuracy: None,
        });
    }
    let kind = args
        .cop
        .ok_or_else(|| SachiError::Usage("need --cop or --file".to_string()))?;
    // Generated COPs come from the shared session layer, so `sachi
    // solve` and a `sachi serve` job with the same spec build the
    // exact same instance (the determinism contract's first half).
    let built = sachi_core::serve::build_cop_problem(kind, args.size, args.seed)?;
    Ok(Problem {
        name: built.name,
        graph: built.graph,
        accuracy: Some(built.accuracy),
    })
}

fn config_for(args: &SolveArgs) -> SachiConfig {
    let mut config = SachiConfig::new(args.design).with_hierarchy(args.hierarchy);
    if let Some(r) = args.resolution {
        config = config.with_resolution(r);
    }
    if args.trace_phases {
        config = config.with_phase_trace();
    }
    if let Some(ber) = args.fault_ber {
        let model =
            FaultModel::new(args.fault_seed).with_read_ber(FaultRate::from_probability(ber));
        config = config.with_fault(FaultProfile::new(model).with_policy(args.fault_policy));
    }
    config
}

fn check_resolution(args: &SolveArgs, graph: &IsingGraph) -> Result<(), SachiError> {
    if let Some(r) = args.resolution {
        let required = graph.bits_required();
        if r < required {
            return Err(SachiError::Config(format!(
                "--resolution {r} cannot represent this problem's coefficients (needs {required}-bit); drop the flag or pass >= {required}"
            )));
        }
    }
    Ok(())
}

/// `sachi solve`.
pub fn solve(args: &SolveArgs) -> Result<(), SachiError> {
    let problem = build_problem(args)?;
    let graph = &problem.graph;
    check_resolution(args, graph)?;
    // --metrics replaces the whole human report with one machine-readable
    // snapshot, so scripts can pipe stdout straight into a parser.
    let human = args.metrics.is_none();
    if human {
        println!(
            "problem : {} ({} spins, {} edges, max degree {}, needs {}-bit ICs)",
            problem.name,
            graph.num_spins(),
            graph.num_edges(),
            graph.max_degree(),
            graph.bits_required()
        );
    }

    let mut rng = StdRng::seed_from_u64(args.seed ^ INIT_SEED_SALT);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let mut opts = SolveOptions::for_graph(graph, args.seed.wrapping_add(1));
    if let Some(budget) = args.step_budget {
        opts = opts.with_step_budget(budget);
    }
    let config = config_for(args);

    let replicas = usize::try_from(args.restarts.max(1))
        .map_err(|_| SachiError::Usage("--restarts too large".to_string()))?;
    if args.tempering {
        opts = opts.with_tempering(sachi_ising::tempering::TemperingOptions::for_graph(
            args.ladder,
            graph,
            replicas,
        ));
    }
    let mut runner = EnsembleRunner::new(replicas);
    if args.threads > 0 {
        runner = runner.with_threads(args.threads);
    }
    // SACHI repurposes the host's L1 data array as the compute substrate
    // (Sec. VII.1): claim it around the ensemble so the exported l1_*
    // metrics carry the real mode-switch and flush accounting of that
    // handover.
    let mut l1 = L1Cache::typical_l1();
    l1.set_mode(CacheMode::IsingCompute);
    let ledger = ReplicaLedger::new(replicas);
    let best_of = runner.run(graph, &init, &opts, |k| {
        ReportingMachine::new(SachiMachine::new(config.clone()), k, &ledger)
    });
    let ensemble = ledger.finish();
    l1.set_mode(CacheMode::Normal);
    let report = ensemble.reports[best_of.best_index].clone();
    let stats = best_of.stats;
    let best_index = best_of.best_index;

    if let Some(format) = args.metrics {
        // Fold order is replica order, never completion order, so the
        // snapshot is identical at any --threads value.
        let mut reg = ensemble.metrics();
        for r in &best_of.replicas {
            r.export_metrics(&mut reg);
        }
        for (name, value) in stats.export_tempering_metrics() {
            reg.counter_add(name, value);
        }
        l1.stats().export(&mut reg);
        reg.counter_add(
            "workload_coeff_saturations",
            sachi_workloads::encode::saturation_count(),
        );
        match format {
            MetricsFormat::Json => print!("{}", write_snapshot(&reg, &report.phase_spans)),
            MetricsFormat::Prom => print!("{}", write_exposition(&reg)),
        }
    }

    let result = best_of.into_best();

    if human {
        println!("design  : {}", report.design.label());
        println!(
            "ensemble: {} replicas over {} threads (best: replica {}, {} converged, {} sweeps total)",
            replicas,
            runner.threads(),
            best_index,
            stats.converged,
            stats.total_sweeps
        );
        if args.tempering {
            println!(
                "temper  : {} ladder, {} swaps accepted / {} attempted, {} rung restarts",
                args.ladder.label(),
                stats.swap_accepted,
                stats.swap_attempts,
                stats.tempering_restarts
            );
        }
        println!(
            "result  : H = {}  ({} iterations, converged: {})",
            result.energy, result.sweeps, result.converged
        );
        if let Some(acc) = &problem.accuracy {
            println!("accuracy: {}", percent(acc(&result.spins)));
        }
        if args.fault_ber.is_some() {
            println!(
                "faults  : {} injected, {} detected, {} retries, {}/{} replicas degraded ({})",
                ensemble.faults_injected,
                ensemble.faults_detected,
                ensemble.fault_retries,
                ensemble.degraded_replicas,
                replicas,
                args.fault_policy
            );
        }
        println!(
            "cycles  : {} total ({} compute, {} loading, {} rounds/iter)",
            report.total_cycles.get(),
            report.compute_cycles.get(),
            report.load_cycles.get(),
            report.rounds_per_sweep
        );
        println!(
            "time    : {}  energy: {}  reuse: {:.1}",
            report.wall_time,
            report.energy.total(),
            report.reuse
        );
        let mut breakdown = Table::new(["component", "energy"]);
        for (c, e) in report.energy.iter() {
            breakdown.row([c.label().to_string(), format!("{e}")]);
        }
        breakdown.print();
        if args.trace_phases && !report.phase_spans.is_empty() {
            println!("phases  : (best replica, cycle domain)");
            print!("{}", render_span_tree(&report.phase_spans));
        }
    }
    if args.fault_ber.is_some() {
        // Fault outcomes surface as typed errors (exit code 4) so sweep
        // scripts can tell "solved despite faults" from "gave up".
        if args.fault_policy == RecoveryPolicy::FailFast && ensemble.degraded_replicas > 0 {
            return Err(SachiError::FaultDetected {
                detected: ensemble.faults_detected,
            });
        }
        let total = u64::try_from(replicas).unwrap_or(u64::MAX);
        if ensemble.degraded_replicas >= total {
            return Err(SachiError::FaultBudgetExhausted {
                degraded: ensemble.degraded_replicas,
                replicas: total,
            });
        }
    }
    Ok(())
}

/// `sachi compare`.
pub fn compare(args: &SolveArgs) -> Result<(), SachiError> {
    if args.fault_ber.is_some() {
        return Err(SachiError::Config(
            "compare cross-checks machines against the golden model and needs a perfect \
             memory hierarchy; drop --fault-ber (use solve for fault sweeps)"
                .to_string(),
        ));
    }
    let problem = build_problem(args)?;
    let graph = &problem.graph;
    check_resolution(args, graph)?;
    println!("problem: {} ({} spins)", problem.name, graph.num_spins());
    let mut rng = StdRng::seed_from_u64(args.seed ^ INIT_SEED_SALT);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let mut opts = SolveOptions::for_graph(graph, args.seed.wrapping_add(1));
    if let Some(budget) = args.step_budget {
        opts = opts.with_step_budget(budget);
    }

    let golden = CpuReferenceSolver::new().solve(graph, &init, &opts);
    let mut table = Table::new(["machine", "H", "iters", "cycles", "energy", "reuse"]);
    for design in DesignKind::ALL {
        let mut config = SachiConfig::new(design).with_hierarchy(args.hierarchy);
        if let Some(r) = args.resolution {
            config = config.with_resolution(r);
        }
        let (result, report) = SachiMachine::new(config).solve_detailed(graph, &init, &opts);
        assert_eq!(
            result.energy, golden.energy,
            "machines must match the golden model"
        );
        table.row([
            design.label().to_string(),
            result.energy.to_string(),
            result.sweeps.to_string(),
            report.total_cycles.get().to_string(),
            format!("{}", report.energy.total()),
            format!("{:.1}", report.reuse),
        ]);
    }
    match BrimMachine::new().solve_detailed(graph, &init, &opts) {
        Ok((result, report)) => {
            table.row([
                "BRIM".to_string(),
                result.energy.to_string(),
                result.sweeps.to_string(),
                report.total_cycles.get().to_string(),
                format!("{}", report.energy.total()),
                format!("{:.1}", report.reuse),
            ]);
        }
        Err(e) => println!("BRIM skipped: {e}"),
    }
    match CimMachine::new().solve_detailed(graph, &init, &opts) {
        Ok((result, report)) => {
            table.row([
                "Ising-CIM".to_string(),
                result.energy.to_string(),
                result.sweeps.to_string(),
                report.total_cycles.get().to_string(),
                format!("{}", report.energy.total()),
                format!("{:.1}", report.reuse),
            ]);
        }
        Err(e) => println!("Ising-CIM skipped: {e}"),
    }
    table.row([
        "CPU golden".to_string(),
        golden.energy.to_string(),
        golden.sweeps.to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    table.print();
    Ok(())
}

/// `sachi estimate`.
pub fn estimate(args: &EstimateArgs) -> Result<(), SachiError> {
    let mut config = SachiConfig::new(args.design).with_hierarchy(args.hierarchy);
    if let Some(r) = args.resolution {
        config = config.with_resolution(r);
    }
    let mut shape = args.cop.standard_shape(args.spins);
    if let Some(r) = args.resolution {
        shape = shape.with_resolution(r);
    }
    let model = PerfModel::new(config);
    let iter = model.iteration(&shape);
    let solve = model.solve(&shape, args.iterations);
    println!(
        "shape    : {} at {} spins (N = {}, R = {})",
        args.cop, shape.spins, shape.neighbors_per_spin, shape.resolution_bits
    );
    println!("design   : {}", args.design.label());
    println!(
        "per iter : {} cycles effective ({} compute, {} load, {} rounds, reuse {})",
        iter.effective_cycles.get(),
        iter.compute_cycles.get(),
        iter.load_cycles.get(),
        iter.rounds,
        iter.reuse
    );
    println!(
        "residency: {} in compute array, DRAM streaming: {}",
        if iter.fits_in_compute {
            "fits"
        } else {
            "overflows"
        },
        if iter.uses_dram { "yes" } else { "no" }
    );
    println!(
        "solve    : {} iterations -> {} cycles, {}, {}",
        args.iterations,
        solve.total_cycles.get(),
        solve.wall_time,
        solve.energy.total()
    );
    let base = PerfModel::new(SachiConfig::new(DesignKind::N1a).with_hierarchy(args.hierarchy));
    println!(
        "vs n1a   : {} speedup per iteration",
        ratio(
            base.iteration(&shape).effective_cycles.get() as f64,
            iter.effective_cycles.get() as f64
        )
    );
    Ok(())
}

/// `sachi info`.
pub fn info() {
    let tech = TechnologyParams::freepdk45();
    println!("SACHI simulator — paper configuration (HPCA 2024, Sec. V)");
    println!();
    for (name, h) in [
        ("default (10KB/160KB)", CacheHierarchy::hpca_default()),
        ("desktop (64KB/1MB)", CacheHierarchy::desktop()),
        ("server (256KB/8MB)", CacheHierarchy::server()),
    ] {
        println!(
            "hierarchy {name}: compute {} tiles x {} rows x {} bits ({}), storage {} ({} ports)",
            h.compute.tiles(),
            h.compute.rows_per_tile(),
            h.compute.row_bits(),
            h.compute.total_bits(),
            h.storage.total_bits(),
            h.storage.read_ports()
        );
    }
    println!();
    println!(
        "technology: {} V, {} cycle, {} array latency",
        tech.vdd_volts, tech.cycle_time, tech.sram_array_latency
    );
    println!(
        "energy    : RWL {}/bit, RBL {}/bit, movement {}/bit, adder {}/bit",
        tech.rwl_energy_per_bit(),
        tech.rbl_energy_per_bit(),
        tech.movement_energy_per_bit(),
        tech.adder_energy_per_bit()
    );
    println!("designs   : n1a/n1b (spin stationary), n2 (IC stationary), n3 (mixed, reuse N*R)");
}
