//! `sachi` — command-line interface to the SACHI Ising architecture
//! simulator. Run `sachi help` for usage.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod args;
mod clock;
mod commands;
mod protocol;
mod serve;

use args::Command;
use sachi_core::error::SachiError;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::parse(argv.iter().map(String::as_str)) {
        Ok(cmd) => cmd,
        Err(e) => {
            // Argument errors share the usage exit class (the `ArgError`
            // type lives in this crate, so map instead of `From`).
            let e = SachiError::Usage(e.0);
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", args::USAGE);
            return ExitCode::from(e.exit_code());
        }
    };
    let outcome = match parsed {
        Command::Help => {
            println!("{}", args::USAGE);
            Ok(())
        }
        Command::Info => {
            commands::info();
            Ok(())
        }
        Command::Solve(a) => commands::solve(&a),
        Command::Compare(a) => commands::compare(&a),
        Command::Estimate(a) => commands::estimate(&a),
        Command::Serve(a) => serve::run(&a),
        Command::Submit(a) => {
            // The submit client exits with the daemon's response code:
            // the wire protocol and the one-shot CLI share one error
            // table, so scripts treat both front ends identically.
            return match serve::submit(&a) {
                Ok(code) => ExitCode::from(code),
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(e.exit_code())
                }
            };
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
