//! The wall-clock shim for the `sachi serve` daemon.
//!
//! The solver's determinism contract bans `std::time` from every module
//! a result can depend on (`xtask analyze` enforces the ban on
//! `serve.rs` and `protocol.rs`). The admission deadline, however, is a
//! genuine wall-clock concern: it bounds how long a *waiter* blocks,
//! never how much *work* a job performs (that is `step_budget`, in the
//! deterministic work domain). This module is therefore the single
//! sanctioned doorway to `std::time` on the server: everything else
//! handles opaque [`Duration`]s minted here, and a timeout can only
//! change *which typed response* a client receives — a job that runs
//! past its admission deadline is revoked before it starts or awaited
//! to its deterministic end, never truncated mid-solve.

use std::time::Duration;

/// Mints the [`Duration`] for a millisecond count. The only
/// `Duration` constructor the server modules may use.
pub fn millis(ms: u64) -> Duration {
    Duration::from_millis(ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millis_round_trips() {
        assert_eq!(millis(0), Duration::ZERO);
        assert_eq!(millis(1_500).as_millis(), 1_500);
    }
}
