//! Spins and packed spin vectors.
//!
//! SACHI's mixed encoding (Sec. IV.C) stores a `+1` spin as bit `1` and a
//! `-1` spin as bit `0`; that convention is baked into [`Spin::bit`] /
//! [`Spin::from_bit`] and used verbatim by the architecture crates.

use std::fmt;

/// A binary Ising spin, `+1` (up) or `-1` (down).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Spin {
    /// `σ = -1`, encoded as bit `0`.
    Down,
    /// `σ = +1`, encoded as bit `1`.
    Up,
}

impl Spin {
    /// The numeric value, `+1` or `-1`.
    #[inline]
    pub const fn value(self) -> i64 {
        match self {
            Spin::Up => 1,
            Spin::Down => -1,
        }
    }

    /// The SACHI bit encoding: `+1 -> 1`, `-1 -> 0`.
    #[inline]
    pub const fn bit(self) -> bool {
        matches!(self, Spin::Up)
    }

    /// Decodes the SACHI bit encoding.
    #[inline]
    pub const fn from_bit(bit: bool) -> Spin {
        if bit {
            Spin::Up
        } else {
            Spin::Down
        }
    }

    /// Constructs from `+1`/`-1`.
    ///
    /// Returns `None` for any other value.
    #[inline]
    pub const fn from_value(v: i64) -> Option<Spin> {
        match v {
            1 => Some(Spin::Up),
            -1 => Some(Spin::Down),
            _ => None,
        }
    }

    /// The opposite spin.
    #[inline]
    #[must_use]
    pub const fn flipped(self) -> Spin {
        match self {
            Spin::Up => Spin::Down,
            Spin::Down => Spin::Up,
        }
    }
}

impl Default for Spin {
    /// Defaults to `+1`, matching a zero-initialized... no: matching the
    /// paper's green "+1" initialization in Fig. 2. (`Down` would encode as
    /// bit 0, but `Default` is a software convenience, not a hardware
    /// reset value.)
    fn default() -> Self {
        Spin::Up
    }
}

impl fmt::Display for Spin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Spin::Up => write!(f, "+1"),
            Spin::Down => write!(f, "-1"),
        }
    }
}

impl std::ops::Neg for Spin {
    type Output = Spin;
    fn neg(self) -> Spin {
        self.flipped()
    }
}

/// A densely packed vector of spins (one bit each).
///
/// ```
/// use sachi_ising::spin::{Spin, SpinVector};
///
/// let mut s = SpinVector::filled(5, Spin::Up);
/// s.set(2, Spin::Down);
/// assert_eq!(s.get(2), Spin::Down);
/// assert_eq!(s.count_up(), 4);
/// assert_eq!(s.iter().map(Spin::value).sum::<i64>(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SpinVector {
    words: Vec<u64>,
    len: usize,
}

impl SpinVector {
    /// Creates a vector of `len` spins, all equal to `init`.
    pub fn filled(len: usize, init: Spin) -> Self {
        let words = len.div_ceil(64);
        let fill = if init.bit() { u64::MAX } else { 0 };
        let mut v = SpinVector {
            words: vec![fill; words],
            len,
        };
        v.mask_tail();
        v
    }

    /// Creates a vector from explicit spins.
    pub fn from_spins(spins: &[Spin]) -> Self {
        let mut v = SpinVector::filled(spins.len(), Spin::Down);
        for (i, &s) in spins.iter().enumerate() {
            v.set(i, s);
        }
        v
    }

    /// Creates a vector with spins drawn uniformly at random.
    pub fn random<R: rand::Rng>(len: usize, rng: &mut R) -> Self {
        let mut v = SpinVector::filled(len, Spin::Down);
        for i in 0..len {
            v.set(i, Spin::from_bit(rng.gen::<bool>()));
        }
        v
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of spins.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector holds no spins.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The spin at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[inline]
    pub fn get(&self, index: usize) -> Spin {
        assert!(
            index < self.len,
            "spin index {index} out of bounds for {}",
            self.len
        );
        Spin::from_bit((self.words[index / 64] >> (index % 64)) & 1 == 1)
    }

    /// Sets the spin at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[inline]
    pub fn set(&mut self, index: usize, spin: Spin) {
        assert!(
            index < self.len,
            "spin index {index} out of bounds for {}",
            self.len
        );
        let word = &mut self.words[index / 64];
        if spin.bit() {
            *word |= 1 << (index % 64);
        } else {
            *word &= !(1 << (index % 64));
        }
    }

    /// Flips the spin at `index` and returns the new value.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn flip(&mut self, index: usize) -> Spin {
        let new = self.get(index).flipped();
        self.set(index, new);
        new
    }

    /// Number of `+1` spins.
    pub fn count_up(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the spins.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            vec: self,
            index: 0,
        }
    }

    /// Collects into a `Vec<Spin>`.
    pub fn to_vec(&self) -> Vec<Spin> {
        self.iter().collect()
    }

    /// Hamming distance to another spin vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn distance(&self, other: &SpinVector) -> usize {
        assert_eq!(self.len, other.len, "spin vectors must have equal length");
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }
}

impl fmt::Debug for SpinVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpinVector[len={}; ", self.len)?;
        for i in 0..self.len.min(32) {
            write!(f, "{}", if self.get(i).bit() { '1' } else { '0' })?;
        }
        if self.len > 32 {
            write!(f, "...")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<Spin> for SpinVector {
    fn from_iter<T: IntoIterator<Item = Spin>>(iter: T) -> Self {
        let spins: Vec<Spin> = iter.into_iter().collect();
        SpinVector::from_spins(&spins)
    }
}

/// Iterator over the spins of a [`SpinVector`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    vec: &'a SpinVector,
    index: usize,
}

impl Iterator for Iter<'_> {
    type Item = Spin;

    fn next(&mut self) -> Option<Spin> {
        if self.index < self.vec.len {
            let s = self.vec.get(self.index);
            self.index += 1;
            Some(s)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vec.len - self.index;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn spin_value_bit_roundtrip() {
        assert_eq!(Spin::Up.value(), 1);
        assert_eq!(Spin::Down.value(), -1);
        assert!(Spin::Up.bit());
        assert!(!Spin::Down.bit());
        assert_eq!(Spin::from_bit(true), Spin::Up);
        assert_eq!(Spin::from_bit(false), Spin::Down);
        assert_eq!(Spin::from_value(1), Some(Spin::Up));
        assert_eq!(Spin::from_value(-1), Some(Spin::Down));
        assert_eq!(Spin::from_value(0), None);
        assert_eq!(Spin::Up.flipped(), Spin::Down);
        assert_eq!(-Spin::Down, Spin::Up);
        assert_eq!(format!("{} {}", Spin::Up, Spin::Down), "+1 -1");
        assert_eq!(Spin::default(), Spin::Up);
    }

    #[test]
    fn vector_get_set_flip() {
        let mut v = SpinVector::filled(100, Spin::Down);
        assert_eq!(v.len(), 100);
        assert!(!v.is_empty());
        assert_eq!(v.count_up(), 0);
        v.set(63, Spin::Up);
        v.set(64, Spin::Up);
        v.set(99, Spin::Up);
        assert_eq!(v.count_up(), 3);
        assert_eq!(v.get(63), Spin::Up);
        assert_eq!(v.get(0), Spin::Down);
        assert_eq!(v.flip(99), Spin::Down);
        assert_eq!(v.count_up(), 2);
    }

    #[test]
    fn filled_up_masks_tail_bits() {
        let v = SpinVector::filled(65, Spin::Up);
        assert_eq!(v.count_up(), 65);
        let w = SpinVector::filled(64, Spin::Up);
        assert_eq!(w.count_up(), 64);
    }

    #[test]
    fn from_spins_and_iter() {
        let spins = [Spin::Up, Spin::Down, Spin::Up];
        let v = SpinVector::from_spins(&spins);
        assert_eq!(v.to_vec(), spins);
        let collected: SpinVector = spins.into_iter().collect();
        assert_eq!(collected, v);
        assert_eq!(v.iter().len(), 3);
    }

    #[test]
    fn distance_counts_differing_spins() {
        let a = SpinVector::from_spins(&[Spin::Up, Spin::Down, Spin::Up]);
        let b = SpinVector::from_spins(&[Spin::Up, Spin::Up, Spin::Down]);
        assert_eq!(a.distance(&b), 2);
        assert_eq!(a.distance(&a), 0);
    }

    #[test]
    fn random_is_seeded_deterministic() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = SpinVector::random(1000, &mut r1);
        let b = SpinVector::random(1000, &mut r2);
        assert_eq!(a, b);
        // Not degenerate: roughly half up.
        let ups = a.count_up();
        assert!(ups > 400 && ups < 600, "ups = {ups}");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let v = SpinVector::filled(3, Spin::Up);
        let _ = v.get(3);
    }

    #[test]
    fn debug_is_nonempty() {
        let v = SpinVector::filled(2, Spin::Up);
        assert!(format!("{v:?}").contains("len=2"));
        let long = SpinVector::filled(40, Spin::Down);
        assert!(format!("{long:?}").contains("..."));
    }
}
