//! Text formats for Ising problem graphs.
//!
//! Two interchange formats are supported so real benchmark instances can
//! be loaded directly:
//!
//! * **DIMACS-style** (`p ising <n> <m>` header, `e u v w` edges,
//!   `f v h` external fields, `c` comments; vertices are 1-indexed) —
//!   round-trippable via [`to_dimacs`] / [`parse_dimacs`];
//! * **Gset** (the Stanford max-cut suite: a `<n> <m>` header line then
//!   `u v w` edge lines, 1-indexed) via [`parse_gset`].
//!
//! Parsers work on any `&str`; callers wire them to files.

use crate::graph::{GraphBuilder, GraphError, IsingGraph};
use std::fmt;

/// Error from parsing a graph file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line could not be interpreted.
    Malformed {
        /// 1-indexed line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The header was missing or appeared twice.
    BadHeader(String),
    /// The resulting graph was structurally invalid.
    Graph(GraphError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::BadHeader(reason) => write!(f, "bad header: {reason}"),
            ParseError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ParseError {
    fn from(e: GraphError) -> Self {
        ParseError::Graph(e)
    }
}

fn malformed(line: usize, reason: impl Into<String>) -> ParseError {
    ParseError::Malformed {
        line,
        reason: reason.into(),
    }
}

/// Parses the DIMACS-style Ising format.
///
/// ```
/// use sachi_ising::io::parse_dimacs;
///
/// let text = "c a triangle\np ising 3 3\ne 1 2 5\ne 2 3 -1\ne 1 3 2\nf 1 4\n";
/// let graph = parse_dimacs(text)?;
/// assert_eq!(graph.num_spins(), 3);
/// assert_eq!(graph.num_edges(), 3);
/// assert_eq!(graph.field(0), 4);
/// # Ok::<(), sachi_ising::io::ParseError>(())
/// ```
///
/// # Errors
///
/// Returns [`ParseError`] on malformed lines, missing/duplicate headers,
/// out-of-range vertices, or duplicate edges.
pub fn parse_dimacs(text: &str) -> Result<IsingGraph, ParseError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut n = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                if builder.is_some() {
                    return Err(ParseError::BadHeader("duplicate 'p' line".into()));
                }
                if parts.next() != Some("ising") {
                    return Err(ParseError::BadHeader("expected 'p ising <n> <m>'".into()));
                }
                n = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::BadHeader("missing vertex count".into()))?;
                // Edge count is advisory; tolerate absence.
                builder = Some(GraphBuilder::new(n));
            }
            Some("e") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| ParseError::BadHeader("'e' before 'p'".into()))?;
                let u: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, "edge needs 'e u v w'"))?;
                let v: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, "edge needs 'e u v w'"))?;
                let w: i32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, "edge needs integer weight"))?;
                if u == 0 || v == 0 {
                    return Err(malformed(lineno, "vertices are 1-indexed"));
                }
                b.push_edge(u - 1, v - 1, w);
            }
            Some("f") => {
                let _ = builder
                    .as_mut()
                    .ok_or_else(|| ParseError::BadHeader("'f' before 'p'".into()))?;
                let v: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, "field needs 'f v h'"))?;
                let h: i32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, "field needs integer value"))?;
                if v == 0 || v > n {
                    return Err(malformed(
                        lineno,
                        format!("field vertex {v} out of 1..={n}"),
                    ));
                }
                builder = Some(
                    builder
                        .take()
                        .expect("checked above")
                        .field((v - 1) as u32, h),
                );
            }
            Some(other) => return Err(malformed(lineno, format!("unknown record '{other}'"))),
            None => {}
        }
    }
    let builder = builder.ok_or_else(|| ParseError::BadHeader("no 'p ising' header".into()))?;
    Ok(builder.build()?)
}

/// Serializes a graph to the DIMACS-style Ising format (1-indexed).
pub fn to_dimacs(graph: &IsingGraph) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "p ising {} {}\n",
        graph.num_spins(),
        graph.num_edges()
    ));
    for (u, v, w) in graph.edges() {
        out.push_str(&format!("e {} {} {}\n", u + 1, v + 1, w));
    }
    for i in 0..graph.num_spins() {
        if graph.field(i) != 0 {
            out.push_str(&format!("f {} {}\n", i + 1, graph.field(i)));
        }
    }
    out
}

/// Parses the Gset max-cut format: header `<n> <m>`, then `u v w` lines
/// (1-indexed). Edge weights are loaded as `J = -w` so that minimizing
/// the Ising energy maximizes the weighted cut.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse_gset(text: &str) -> Result<IsingGraph, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (idx, header) = lines
        .next()
        .ok_or_else(|| ParseError::BadHeader("empty input".into()))?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| malformed(idx + 1, "header needs '<n> <m>'"))?;
    let mut builder = GraphBuilder::new(n);
    for (idx, raw) in lines {
        let lineno = idx + 1;
        let mut parts = raw.split_whitespace();
        let u: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| malformed(lineno, "edge needs 'u v w'"))?;
        let v: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| malformed(lineno, "edge needs 'u v w'"))?;
        let w: i32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| malformed(lineno, "edge needs integer weight"))?;
        if u == 0 || v == 0 {
            return Err(malformed(lineno, "vertices are 1-indexed"));
        }
        builder.push_edge(u - 1, v - 1, -w);
    }
    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::topology;

    #[test]
    fn dimacs_roundtrip() {
        let g = topology::king(4, 4, |i, j| ((i * 3 + j) % 9) as i32 - 4).unwrap();
        let text = to_dimacs(&g);
        let parsed = parse_dimacs(&text).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn dimacs_roundtrip_with_fields() {
        let g = crate::graph::GraphBuilder::new(3)
            .edge(0, 1, 7)
            .edge(1, 2, -2)
            .field(0, 5)
            .field(2, -3)
            .build()
            .unwrap();
        let parsed = parse_dimacs(&to_dimacs(&g)).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn dimacs_tolerates_comments_and_blank_lines() {
        let text = "c hello\n\np ising 2 1\nc mid comment\ne 1 2 3\n\n";
        let g = parse_dimacs(text).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0).next(), Some((1, 3)));
    }

    #[test]
    fn dimacs_rejects_garbage() {
        assert!(matches!(parse_dimacs(""), Err(ParseError::BadHeader(_))));
        assert!(matches!(
            parse_dimacs("e 1 2 3\n"),
            Err(ParseError::BadHeader(_))
        ));
        assert!(matches!(
            parse_dimacs("p ising 2 1\np ising 2 1\n"),
            Err(ParseError::BadHeader(_))
        ));
        assert!(matches!(
            parse_dimacs("p ising 2 1\ne 0 1 3\n"),
            Err(ParseError::Malformed { .. })
        ));
        assert!(matches!(
            parse_dimacs("p ising 2 1\ne 1 two 3\n"),
            Err(ParseError::Malformed { .. })
        ));
        assert!(matches!(
            parse_dimacs("p ising 2 1\nx 1 2\n"),
            Err(ParseError::Malformed { .. })
        ));
        assert!(matches!(
            parse_dimacs("p ising 2 1\nf 3 1\n"),
            Err(ParseError::Malformed { .. })
        ));
        // Duplicate edges surface as GraphError.
        let err = parse_dimacs("p ising 2 2\ne 1 2 3\ne 2 1 4\n").unwrap_err();
        assert!(matches!(err, ParseError::Graph(_)));
        assert!(format!("{err}").contains("duplicate"));
    }

    #[test]
    fn gset_loads_as_maxcut() {
        // A triangle with unit weights.
        let text = "3 3\n1 2 1\n2 3 1\n1 3 1\n";
        let g = parse_gset(text).unwrap();
        assert_eq!(g.num_spins(), 3);
        assert_eq!(g.num_edges(), 3);
        for (_, _, w) in g.edges() {
            assert_eq!(w, -1, "Gset weights load negated for max-cut");
        }
    }

    #[test]
    fn gset_rejects_malformed() {
        assert!(parse_gset("").is_err());
        assert!(parse_gset("abc\n").is_err());
        assert!(parse_gset("2 1\n0 1 1\n").is_err());
        assert!(parse_gset("2 1\n1\n").is_err());
    }

    #[test]
    fn gset_errors_render_actionable_messages() {
        // Malformed header: not a vertex count.
        let err = parse_gset("graph of 800\n1 2 1\n").unwrap_err();
        assert_eq!(err.to_string(), "line 1: header needs '<n> <m>'");
        let err = parse_gset("").unwrap_err();
        assert_eq!(err.to_string(), "bad header: empty input");
        // Bad edge lines point at the offending line number.
        let err = parse_gset("3 2\n1 2 1\n2 three 1\n").unwrap_err();
        assert_eq!(err.to_string(), "line 3: edge needs 'u v w'");
        let err = parse_gset("3 1\n1 2 1.5\n").unwrap_err();
        assert_eq!(err.to_string(), "line 2: edge needs integer weight");
        let err = parse_gset("3 1\n0 2 1\n").unwrap_err();
        assert_eq!(err.to_string(), "line 2: vertices are 1-indexed");
        // Graph-constraint violations pass through the builder.
        let err = parse_gset("2 2\n1 2 1\n2 1 1\n").unwrap_err();
        assert!(matches!(err, ParseError::Graph(_)));
        assert!(err.to_string().starts_with("invalid graph:"), "{err}");
        assert!(err.to_string().contains("duplicate"), "{err}");
        let err = parse_gset("2 1\n1 9 1\n").unwrap_err();
        assert!(matches!(err, ParseError::Graph(_)), "{err}");
        // The source chain exposes the underlying GraphError.
        use std::error::Error;
        assert!(err.source().is_some());
    }

    #[test]
    fn error_display_is_informative() {
        let err = malformed(7, "bad edge");
        assert_eq!(format!("{err}"), "line 7: bad edge");
        let err = ParseError::BadHeader("nope".into());
        assert!(format!("{err}").contains("nope"));
    }
}
