//! Ising problem graphs in compressed sparse row form.
//!
//! A COP maps onto the Ising model as a weighted graph: vertices are spins,
//! edge weights are the interaction coefficients `J_ij`, and each vertex
//! optionally carries an external field `h_i` (Sec. II.A). SACHI's tuple
//! mapping consumes exactly the per-vertex view this CSR layout provides:
//! "each row in the storage array is a tuple for a particular spin,
//! consisting of the neighboring spin states, the connecting ICs, and the
//! external magnetic field" (Fig. 7a).

use std::fmt;

/// Error constructing an [`IsingGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a vertex `>= n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The graph size.
        n: usize,
    },
    /// A self-loop `(i, i)` was supplied; the Ising Hamiltonian has no
    /// diagonal terms.
    SelfLoop {
        /// The vertex with the self-loop.
        vertex: u32,
    },
    /// The same undirected edge was supplied twice.
    DuplicateEdge {
        /// Endpoints of the duplicated edge.
        edge: (u32, u32),
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for graph of {n} spins")
            }
            GraphError::SelfLoop { vertex } => write!(f, "self-loop on vertex {vertex}"),
            GraphError::DuplicateEdge { edge } => {
                write!(f, "duplicate edge ({}, {})", edge.0, edge.1)
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Incremental builder for [`IsingGraph`] ([C-BUILDER]).
///
/// ```
/// use sachi_ising::graph::GraphBuilder;
///
/// let graph = GraphBuilder::new(3)
///     .edge(0, 1, 5)
///     .edge(1, 2, -3)
///     .field(0, 2)
///     .build()?;
/// assert_eq!(graph.num_spins(), 3);
/// assert_eq!(graph.degree(1), 2);
/// # Ok::<(), sachi_ising::graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32, i32)>,
    fields: Vec<i32>,
}

impl GraphBuilder {
    /// Starts a graph over `n` spins with zero fields and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            fields: vec![0; n],
        }
    }

    /// Adds an undirected edge `i -- j` with coefficient `j_ij`.
    #[must_use]
    pub fn edge(mut self, i: u32, j: u32, j_ij: i32) -> Self {
        self.edges.push((i, j, j_ij));
        self
    }

    /// Adds an undirected edge in place (for loops).
    pub fn push_edge(&mut self, i: u32, j: u32, j_ij: i32) -> &mut Self {
        self.edges.push((i, j, j_ij));
        self
    }

    /// Sets the external field of vertex `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    #[must_use]
    pub fn field(mut self, i: u32, h_i: i32) -> Self {
        self.fields[i as usize] = h_i;
        self
    }

    /// Validates and freezes into a CSR [`IsingGraph`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] on out-of-range vertices, self-loops, or
    /// duplicate undirected edges.
    pub fn build(self) -> Result<IsingGraph, GraphError> {
        let n = self.n;
        for &(i, j, _) in &self.edges {
            if i as usize >= n {
                return Err(GraphError::VertexOutOfRange { vertex: i, n });
            }
            if j as usize >= n {
                return Err(GraphError::VertexOutOfRange { vertex: j, n });
            }
            if i == j {
                return Err(GraphError::SelfLoop { vertex: i });
            }
        }
        // Duplicate detection on normalized endpoints.
        let mut normalized: Vec<(u32, u32)> = self
            .edges
            .iter()
            .map(|&(i, j, _)| (i.min(j), i.max(j)))
            .collect();
        normalized.sort_unstable();
        for pair in normalized.windows(2) {
            if pair[0] == pair[1] {
                return Err(GraphError::DuplicateEdge { edge: pair[0] });
            }
        }

        // Degree count, then CSR fill (both directions).
        let mut degree = vec![0usize; n];
        for &(i, j, _) in &self.edges {
            degree[i as usize] += 1;
            degree[j as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut running = 0usize;
        offsets.push(0usize);
        for d in &degree {
            running += d;
            offsets.push(running);
        }
        let total = running;
        let mut neighbors = vec![0u32; total];
        let mut weights = vec![0i32; total];
        let mut cursor = offsets[..n].to_vec();
        for &(i, j, w) in &self.edges {
            let (iu, ju) = (i as usize, j as usize);
            neighbors[cursor[iu]] = j;
            weights[cursor[iu]] = w;
            cursor[iu] += 1;
            neighbors[cursor[ju]] = i;
            weights[cursor[ju]] = w;
            cursor[ju] += 1;
        }
        // Canonicalize: each adjacency list sorted by neighbor id, so two
        // builds of the same graph compare equal regardless of edge
        // insertion order (text-format round-trips rely on this).
        for i in 0..n {
            let range = offsets[i]..offsets[i + 1];
            let mut pairs: Vec<(u32, i32)> = neighbors[range.clone()]
                .iter()
                .copied()
                .zip(weights[range.clone()].iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|&(j, _)| j);
            for (k, (j, w)) in pairs.into_iter().enumerate() {
                neighbors[offsets[i] + k] = j;
                weights[offsets[i] + k] = w;
            }
        }
        Ok(IsingGraph {
            offsets,
            neighbors,
            weights,
            fields: self.fields,
        })
    }
}

/// An immutable Ising problem graph (CSR adjacency, `i32` coefficients).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsingGraph {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
    weights: Vec<i32>,
    fields: Vec<i32>,
}

impl IsingGraph {
    /// Number of spins.
    pub fn num_spins(&self) -> usize {
        self.fields.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of vertex `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_spins()`.
    pub fn degree(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Maximum degree across vertices (the paper's `N`).
    pub fn max_degree(&self) -> usize {
        (0..self.num_spins())
            .map(|i| self.degree(i))
            .max()
            .unwrap_or(0)
    }

    /// Mean degree across vertices.
    pub fn mean_degree(&self) -> f64 {
        if self.num_spins() == 0 {
            return 0.0;
        }
        self.neighbors.len() as f64 / self.num_spins() as f64
    }

    /// External field of vertex `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_spins()`.
    pub fn field(&self, i: usize) -> i32 {
        self.fields[i]
    }

    /// Iterates `(neighbor, J_ij)` pairs of vertex `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_spins()`.
    pub fn neighbors(&self, i: usize) -> Neighbors<'_> {
        let range = self.offsets[i]..self.offsets[i + 1];
        Neighbors {
            neighbors: &self.neighbors[range.clone()],
            weights: &self.weights[range],
            index: 0,
        }
    }

    /// Borrows vertex `i`'s adjacency as raw CSR slices
    /// `(neighbors, weights)`, in the same canonical order
    /// [`IsingGraph::neighbors`] iterates. The zero-overhead view for hot
    /// loops that sum over a whole adjacency list at once.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_spins()`.
    pub fn neighbor_slices(&self, i: usize) -> (&[u32], &[i32]) {
        let range = self.offsets[i]..self.offsets[i + 1];
        (&self.neighbors[range.clone()], &self.weights[range])
    }

    /// The largest absolute coefficient (over `J_ij` and `h_i`).
    pub fn max_abs_coefficient(&self) -> i64 {
        let j = self
            .weights
            .iter()
            .map(|w| (*w as i64).abs())
            .max()
            .unwrap_or(0);
        let h = self
            .fields
            .iter()
            .map(|h| (*h as i64).abs())
            .max()
            .unwrap_or(0);
        j.max(h)
    }

    /// Minimum two's-complement resolution `R` (in bits) that represents
    /// every coefficient of this graph, clamped to at least 2.
    ///
    /// This is the "R" of the paper's reconfigurable mixed encoding; Fig. 4
    /// lists 4-7 bits for the four COPs at 1K spins.
    pub fn bits_required(&self) -> u32 {
        let m = self.max_abs_coefficient();
        let mut bits = 2u32;
        while !(-(1i64 << (bits - 1))..(1i64 << (bits - 1))).contains(&m)
            || !(-(1i64 << (bits - 1))..(1i64 << (bits - 1))).contains(&(-m))
        {
            bits += 1;
        }
        bits
    }

    /// Iterates every undirected edge once as `(i, j, J_ij)` with `i < j`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, i32)> + '_ {
        (0..self.num_spins()).flat_map(move |i| {
            self.neighbors(i)
                .filter(move |&(j, _)| (i as u32) < j)
                .map(move |(j, w)| (i as u32, j, w))
        })
    }
}

/// Iterator over `(neighbor, J_ij)` pairs.
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    neighbors: &'a [u32],
    weights: &'a [i32],
    index: usize,
}

impl Iterator for Neighbors<'_> {
    type Item = (u32, i32);

    fn next(&mut self) -> Option<(u32, i32)> {
        if self.index < self.neighbors.len() {
            let item = (self.neighbors[self.index], self.weights[self.index]);
            self.index += 1;
            Some(item)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.neighbors.len() - self.index;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Neighbors<'_> {}

/// Stock topologies used throughout the paper's evaluation.
pub mod topology {
    use super::{GraphBuilder, GraphError, IsingGraph};

    /// Complete graph over `n` spins (traveling salesman, Fig. 4), with
    /// `weight(i, j)` supplying `J_ij`.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] (cannot occur for well-formed closures).
    pub fn complete(
        n: usize,
        mut weight: impl FnMut(u32, u32) -> i32,
    ) -> Result<IsingGraph, GraphError> {
        let mut b = GraphBuilder::new(n);
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                b.push_edge(i, j, weight(i, j));
            }
        }
        b.build()
    }

    /// King's graph on a `rows x cols` lattice: every cell connects to its
    /// 8 surrounding cells (molecular dynamics, Ising-CIM's native
    /// topology).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`].
    pub fn king(
        rows: usize,
        cols: usize,
        mut weight: impl FnMut(u32, u32) -> i32,
    ) -> Result<IsingGraph, GraphError> {
        let mut b = GraphBuilder::new(rows * cols);
        let id = |r: usize, c: usize| (r * cols + c) as u32;
        for r in 0..rows {
            for c in 0..cols {
                let u = id(r, c);
                // Right, down-left, down, down-right: each undirected edge once.
                if c + 1 < cols {
                    b.push_edge(u, id(r, c + 1), weight(u, id(r, c + 1)));
                }
                if r + 1 < rows {
                    if c > 0 {
                        b.push_edge(u, id(r + 1, c - 1), weight(u, id(r + 1, c - 1)));
                    }
                    b.push_edge(u, id(r + 1, c), weight(u, id(r + 1, c)));
                    if c + 1 < cols {
                        b.push_edge(u, id(r + 1, c + 1), weight(u, id(r + 1, c + 1)));
                    }
                }
            }
        }
        b.build()
    }

    /// 4-connected grid on a `rows x cols` lattice (image segmentation's
    /// pixel graph, Fig. 2).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`].
    pub fn grid4(
        rows: usize,
        cols: usize,
        mut weight: impl FnMut(u32, u32) -> i32,
    ) -> Result<IsingGraph, GraphError> {
        let mut b = GraphBuilder::new(rows * cols);
        let id = |r: usize, c: usize| (r * cols + c) as u32;
        for r in 0..rows {
            for c in 0..cols {
                let u = id(r, c);
                if c + 1 < cols {
                    b.push_edge(u, id(r, c + 1), weight(u, id(r, c + 1)));
                }
                if r + 1 < rows {
                    b.push_edge(u, id(r + 1, c), weight(u, id(r + 1, c)));
                }
            }
        }
        b.build()
    }

    /// Star-shaped sparse graph: vertex 0 connects to every other vertex
    /// (the paper's asset-allocation mapping is "sparingly connected";
    /// see `sachi-workloads::asset` for the exact formulation).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`].
    pub fn star(n: usize, mut weight: impl FnMut(u32) -> i32) -> Result<IsingGraph, GraphError> {
        let mut b = GraphBuilder::new(n);
        for j in 1..n as u32 {
            b.push_edge(0, j, weight(j));
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::topology::*;
    use super::*;

    #[test]
    fn builder_produces_symmetric_adjacency() {
        let g = GraphBuilder::new(4)
            .edge(0, 1, 3)
            .edge(1, 2, -2)
            .edge(2, 3, 7)
            .build()
            .unwrap();
        assert_eq!(g.num_spins(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![(0, 3), (2, -2)]);
        assert_eq!(g.neighbors(2).collect::<Vec<_>>(), vec![(1, -2), (3, 7)]);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        assert!((g.mean_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_bad_edges() {
        assert_eq!(
            GraphBuilder::new(2).edge(0, 5, 1).build().unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 5, n: 2 }
        );
        assert_eq!(
            GraphBuilder::new(2).edge(1, 1, 1).build().unwrap_err(),
            GraphError::SelfLoop { vertex: 1 }
        );
        assert_eq!(
            GraphBuilder::new(3)
                .edge(0, 1, 1)
                .edge(1, 0, 2)
                .build()
                .unwrap_err(),
            GraphError::DuplicateEdge { edge: (0, 1) }
        );
        let msg = format!("{}", GraphError::SelfLoop { vertex: 3 });
        assert!(msg.contains("self-loop"));
    }

    #[test]
    fn fields_are_stored() {
        let g = GraphBuilder::new(2)
            .edge(0, 1, 1)
            .field(0, 9)
            .field(1, -4)
            .build()
            .unwrap();
        assert_eq!(g.field(0), 9);
        assert_eq!(g.field(1), -4);
    }

    #[test]
    fn complete_graph_has_all_pairs() {
        let g = complete(5, |_, _| 1).unwrap();
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.max_degree(), 4);
        for i in 0..5 {
            assert_eq!(g.degree(i), 4);
        }
    }

    #[test]
    fn king_graph_degrees() {
        let g = king(3, 3, |_, _| 1).unwrap();
        // Center cell has 8 neighbors, corners 3, edges 5.
        assert_eq!(g.degree(4), 8);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 5);
        assert_eq!(g.num_edges(), 20);
        assert_eq!(g.max_degree(), 8);
    }

    #[test]
    fn grid4_degrees() {
        let g = grid4(3, 4, |_, _| 1).unwrap();
        assert_eq!(g.num_spins(), 12);
        // Interior degree 4, corner degree 2.
        assert_eq!(g.degree(5), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.num_edges(), 17);
    }

    #[test]
    fn star_is_sparse() {
        let g = star(10, |j| j as i32).unwrap();
        assert_eq!(g.degree(0), 9);
        assert_eq!(g.degree(5), 1);
        assert_eq!(g.neighbors(5).next(), Some((0, 5)));
    }

    #[test]
    fn bits_required_covers_coefficients() {
        let g = GraphBuilder::new(2).edge(0, 1, 127).build().unwrap();
        assert_eq!(g.bits_required(), 8); // 127 fits in 8-bit two's complement
        let g = GraphBuilder::new(2).edge(0, 1, 128).build().unwrap();
        assert_eq!(g.bits_required(), 9); // +128 needs 9 bits
        let g = GraphBuilder::new(2)
            .edge(0, 1, 1)
            .field(0, 3)
            .build()
            .unwrap();
        assert_eq!(g.bits_required(), 3);
        let g = GraphBuilder::new(2).edge(0, 1, 0).build().unwrap();
        assert_eq!(g.bits_required(), 2);
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = king(2, 2, |i, j| (i + j) as i32).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.num_edges());
        for &(i, j, _) in &edges {
            assert!(i < j);
        }
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(3).build().unwrap();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.mean_degree(), 0.0);
        assert_eq!(g.bits_required(), 2);
        let empty = GraphBuilder::new(0).build().unwrap();
        assert_eq!(empty.num_spins(), 0);
        assert_eq!(empty.mean_degree(), 0.0);
    }
}
