//! Replica-exchange parallel tempering over the replica ensemble.
//!
//! The plain [`crate::ensemble::EnsembleRunner`] runs N *independent*
//! annealers — "N lottery tickets". Parallel tempering turns them into a
//! cooperating solver: each replica becomes a *rung* held at a fixed
//! [`TemperatureLadder`] temperature, and at every sweep-boundary
//! exchange point adjacent rungs propose a Metropolis *configuration
//! swap* with probability `min(1, exp((βᵢ − βⱼ)(Eᵢ − Eⱼ)))`. Hot rungs
//! roam the landscape; cold rungs polish — and a good configuration
//! found hot can migrate down the ladder instead of being thrown away.
//!
//! ## Determinism contract
//!
//! The tempered ensemble keeps the plain ensemble's guarantee: results
//! are a pure function of `(master_seed, replica_index)` plus the
//! tempering options, never of thread count or scheduling. Three
//! mechanisms enforce it:
//!
//! 1. **Segmented moves.** A tempered solve is a sequence of *segments*
//!    — ordinary [`IterativeSolver::solve`] calls of
//!    [`TemperingOptions::swap_interval`] sweeps at the rung's constant
//!    ladder temperature ([`crate::anneal::Cooling::Hold`]). Segment
//!    `t` of rung `r` runs with seed `derive_replica_seed(
//!    derive_replica_seed(master, r), t)` — a pure function of the
//!    coordinates, so segments can execute on any worker in any order.
//! 2. **Salted swap stream.** Swap randomness never touches the move
//!    RNG: the decision for `(round, pair)` is a stateless pure
//!    function of `(swap_seed, round, pair)` where `swap_seed =
//!    mix(master ^ SWAP_SEED_SALT)`. The swap phase runs after all of a
//!    round's segments complete (a barrier), single-threaded, in pair
//!    order — thread count stays provably unobservable.
//! 3. **Deterministic restarts.** A rung whose segment made zero flips
//!    for [`RestartPolicy::Reseed`] consecutive rounds is re-randomized
//!    from its own salted SplitMix64 restart stream (the rung's
//!    best-ever snapshot is kept and restored before the final quench).
//!
//! With exchange disabled ([`TemperingOptions::exchange`] `= false`)
//! the runner routes to the plain independent-replica path and the
//! output is byte-identical to the existing ensemble — segmenting a
//! continuous anneal is observable through the RNG stream, so identity
//! is guaranteed by delegation, not by re-derivation (pinned in
//! `tests/ensemble_determinism.rs`).

use crate::anneal::Schedule;
use crate::ensemble::{derive_replica_seed, splitmix64_mix, BestOf, SPLITMIX64_GAMMA};
use crate::graph::IsingGraph;
use crate::hamiltonian::energy;
use crate::solver::{IterativeSolver, SolveOptions, SolveResult};
use crate::spin::SpinVector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Salt folded into the master seed for the swap-decision stream.
/// Distinct from every per-replica move seed by construction: move
/// seeds come out of `derive_replica_seed` (an additive SplitMix64
/// walk), the swap seed out of an XOR fold — the two families never
/// share a generator state.
const SWAP_SEED_SALT: u64 = 0x5AC1_1ADD_E250_11A9;

/// Salt folded into a rung's move seed for its restart stream.
const RESTART_SEED_SALT: u64 = 0x5AC1_2E5E_ED00_0001;

/// A second odd increment for the pair coordinate of the swap stream
/// (γ′ of SplitMix64 folklore; odd ⇒ multiplication is a bijection).
const SWAP_PAIR_GAMMA: u64 = 0xD1B5_4A32_D192_ED03;

/// 2⁻⁵³: scales a 53-bit integer into `[0, 1)`.
const UNIT_53: f64 = 1.0 / 9_007_199_254_740_992.0;

/// How ladder rung temperatures are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderKind {
    /// Geometric spacing between fixed coefficient-range endpoints
    /// (cold `0.5`, hot `2·max|J|` — the plain schedule's start).
    Geometric,
    /// Endpoints tuned from the graph's coefficient statistics: hot at
    /// a fifth of the mean per-spin coupling weight (typical fractional
    /// uphill moves stay likely without scrambling whole spins), cold
    /// at half the smallest nonzero coefficient (the smallest uphill
    /// move is accepted with `e⁻⁴`).
    Adaptive,
}

impl LadderKind {
    /// The CLI/wire label (`geometric` | `adaptive`).
    pub fn label(&self) -> &'static str {
        match self {
            LadderKind::Geometric => "geometric",
            LadderKind::Adaptive => "adaptive",
        }
    }
}

impl std::str::FromStr for LadderKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "geometric" => Ok(LadderKind::Geometric),
            "adaptive" => Ok(LadderKind::Adaptive),
            other => Err(format!("unknown ladder '{other}' (geometric|adaptive)")),
        }
    }
}

/// A fixed set of rung temperatures, ascending (rung 0 is the coldest —
/// ties in the final reduction break toward the lowest index, i.e. the
/// most-polished rung). Inverse temperatures are precomputed so the
/// exchange engine never divides.
#[derive(Debug, Clone, PartialEq)]
pub struct TemperatureLadder {
    temperatures: Vec<f64>,
    betas: Vec<f64>,
    freeze_threshold: f64,
}

impl TemperatureLadder {
    /// Builds a ladder from explicit temperatures (ascending).
    ///
    /// # Panics
    ///
    /// Panics unless every temperature is finite, at or above
    /// `freeze_threshold > 0`, and the sequence is non-decreasing.
    pub fn from_temperatures(temperatures: Vec<f64>, freeze_threshold: f64) -> Self {
        assert!(!temperatures.is_empty(), "ladder needs at least one rung");
        assert!(freeze_threshold > 0.0, "freeze threshold must be positive");
        let mut prev = freeze_threshold;
        for &t in &temperatures {
            assert!(t.is_finite() && t >= freeze_threshold, "rungs must be live");
            assert!(t >= prev, "ladder temperatures must ascend");
            prev = t;
        }
        let betas = temperatures.iter().map(|t| t.recip()).collect();
        TemperatureLadder {
            temperatures,
            betas,
            freeze_threshold,
        }
    }

    /// A geometric ladder of `rungs` temperatures from `cold` to `hot`.
    ///
    /// # Panics
    ///
    /// Panics unless `rungs > 0` and
    /// `freeze_threshold <= cold <= hot`.
    pub fn geometric(cold: f64, hot: f64, rungs: usize, freeze_threshold: f64) -> Self {
        assert!(rungs > 0, "ladder needs at least one rung");
        assert!(cold <= hot, "cold endpoint must not exceed hot");
        let temperatures = interpolate_geometric(cold, hot, rungs);
        Self::from_temperatures(temperatures, freeze_threshold)
    }

    /// The [`LadderKind::Geometric`] ladder for a graph: fixed
    /// coefficient-range endpoints, matching the plain schedule's
    /// conventions ([`Schedule::for_coefficient_range`]).
    pub fn geometric_for_graph(graph: &IsingGraph, rungs: usize) -> Self {
        let hot = (2.0 * graph.max_abs_coefficient().max(1) as f64).max(1.0);
        let threshold = 0.05;
        let cold = 0.5f64.min(hot).max(threshold);
        Self::geometric(cold, hot, rungs, threshold)
    }

    /// The [`LadderKind::Adaptive`] ladder: endpoints tuned from the
    /// graph's coefficient statistics. Hot = one fifth of the mean
    /// per-spin total coupling weight `mean_i(Σ_j |J_ij| + |h_i|)` —
    /// hot enough that moves costing a typical coefficient's worth of
    /// energy stay likely, but cold enough that a full worst-case flip
    /// (`Δ = 2s`) is rare, so the hot rung explores without fully
    /// scrambling (the `0.2` factor is tuned on the seeded quality
    /// corpus, where the tempered ensemble must match or beat
    /// independent restarts in every cell at an equal sweep budget).
    /// Cold = half the smallest nonzero coefficient magnitude (so the
    /// smallest possible uphill move `Δ = 2q` is accepted with `e⁻⁴`).
    pub fn adaptive_for_graph(graph: &IsingGraph, rungs: usize) -> Self {
        let threshold = 0.05;
        let n = graph.num_spins();
        let mut total_weight = 0.0f64;
        let mut min_quantum = i64::MAX;
        for i in 0..n {
            let h = i64::from(graph.field(i)).abs();
            if h > 0 {
                min_quantum = min_quantum.min(h);
            }
            total_weight += h as f64;
        }
        for (_, _, j) in graph.edges() {
            let j = i64::from(j).abs();
            if j > 0 {
                min_quantum = min_quantum.min(j);
            }
            // Each coupling contributes to both endpoints' local field.
            total_weight += 2.0 * j as f64;
        }
        if min_quantum == i64::MAX {
            min_quantum = 1; // edge-free graph: any ladder is fine
        }
        let mean_weight = total_weight * (n.max(1) as f64).recip();
        let hot = (mean_weight * 0.2).max(1.0);
        let cold = (min_quantum as f64 * 0.5).clamp(threshold, hot);
        Self::geometric(cold, hot, rungs, threshold)
    }

    /// Builds the ladder of `kind` for `graph` with `rungs` rungs.
    pub fn for_graph(kind: LadderKind, graph: &IsingGraph, rungs: usize) -> Self {
        match kind {
            LadderKind::Geometric => Self::geometric_for_graph(graph, rungs),
            LadderKind::Adaptive => Self::adaptive_for_graph(graph, rungs),
        }
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.temperatures.len()
    }

    /// True when the ladder has no rungs (unreachable through the
    /// constructors; provided for the `len`/`is_empty` convention).
    pub fn is_empty(&self) -> bool {
        self.temperatures.is_empty()
    }

    /// Rung `r`'s temperature.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn temperature(&self, r: usize) -> f64 {
        self.temperatures
            .get(r)
            .copied()
            .expect("rung index within ladder")
    }

    /// Rung `r`'s inverse temperature (precomputed at construction).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn beta(&self, r: usize) -> f64 {
        self.betas
            .get(r)
            .copied()
            .expect("rung index within ladder")
    }

    /// The freeze threshold shared by every rung's hold schedule.
    pub fn freeze_threshold(&self) -> f64 {
        self.freeze_threshold
    }

    /// The same ladder resampled to `rungs` rungs (geometric between
    /// the existing endpoints). Used when the replica count and the
    /// ladder length disagree.
    ///
    /// # Panics
    ///
    /// Panics if `rungs == 0`.
    pub fn resampled(&self, rungs: usize) -> Self {
        if rungs == self.len() {
            return self.clone();
        }
        assert!(rungs > 0, "ladder needs at least one rung");
        let cold = self
            .temperatures
            .first()
            .copied()
            .expect("ladders are non-empty");
        let hot = self
            .temperatures
            .last()
            .copied()
            .expect("ladders are non-empty");
        let temperatures = interpolate_geometric(cold, hot, rungs);
        Self::from_temperatures(temperatures, self.freeze_threshold)
    }
}

/// `rungs` geometrically spaced values from `cold` to `hot`
/// (log-linear; both endpoints included when `rungs > 1`). Division-
/// free so it stays callable from the exchange engine.
fn interpolate_geometric(cold: f64, hot: f64, rungs: usize) -> Vec<f64> {
    if rungs == 1 {
        // A single rung anneals nothing away: hold it at the cold end
        // where the final reduction looks first.
        return vec![cold];
    }
    let log_cold = cold.ln();
    let log_hot = hot.ln();
    let step = (log_hot - log_cold) * ((rungs - 1) as f64).recip();
    (0..rungs)
        .map(|r| (log_cold + step * r as f64).exp().clamp(cold, hot))
        .collect()
}

/// What to do with a rung that has stopped moving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Leave stalled rungs alone.
    Never,
    /// Re-randomize a rung's spins after this many consecutive
    /// zero-flip rounds, from the rung's deterministic restart stream.
    /// The rung's best-ever snapshot is preserved.
    Reseed {
        /// Consecutive zero-flip rounds before the reseed fires.
        stall_rounds: u32,
    },
}

/// Options controlling a replica-exchange run. Carried inside
/// [`SolveOptions::tempering`]; `None` there means the plain
/// independent-replica ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct TemperingOptions {
    /// The rung temperatures (resampled to the replica count if the
    /// lengths disagree).
    pub ladder: TemperatureLadder,
    /// Sweeps between exchange points (one segment). Clamped to at
    /// least 1.
    pub swap_interval: u64,
    /// When false, the runner routes to the plain independent-replica
    /// path — byte-identical to an ensemble without tempering.
    pub exchange: bool,
    /// Restart policy for stalled rungs.
    pub restart: RestartPolicy,
    /// Run a final greedy quench segment (frozen hold below the freeze
    /// threshold) on every rung after the exchange rounds, within the
    /// reserved sweep budget.
    pub quench: bool,
    /// Start every rung above 0 from an independent deterministic
    /// sample of its restart stream instead of the caller's state
    /// (rung 0 always keeps the caller's spins, so warm starts stay
    /// usable). Matches the initial-state diversity of independent
    /// restarts; disable for pure warm-start refinement.
    pub diversify_inits: bool,
}

impl TemperingOptions {
    /// Default tempering for `graph` with `rungs` replicas and the
    /// given ladder kind.
    pub fn for_graph(kind: LadderKind, graph: &IsingGraph, rungs: usize) -> Self {
        TemperingOptions {
            ladder: TemperatureLadder::for_graph(kind, graph, rungs.max(1)),
            swap_interval: 4,
            exchange: true,
            restart: RestartPolicy::Reseed { stall_rounds: 4 },
            quench: true,
            diversify_inits: true,
        }
    }

    /// Same options with exchange disabled (plain-ensemble delegation).
    #[must_use]
    pub fn without_exchange(mut self) -> Self {
        self.exchange = false;
        self
    }
}

/// The deterministic swap stream's seed for a master seed: an XOR fold
/// through the SplitMix64 finalizer, disjoint by construction from the
/// additive-walk move seeds of [`derive_replica_seed`].
pub fn swap_stream_seed(master_seed: u64) -> u64 {
    splitmix64_mix(master_seed ^ SWAP_SEED_SALT)
}

/// The uniform `[0, 1)` variate deciding swap `(round, pair)`: a
/// stateless pure function, so the decision is identical no matter
/// which thread evaluates it or in what order rounds complete.
pub fn swap_unit(swap_seed: u64, round: u64, pair: u64) -> f64 {
    let z = splitmix64_mix(
        swap_seed
            .wrapping_add(round.wrapping_add(1).wrapping_mul(SPLITMIX64_GAMMA))
            .wrapping_add(pair.wrapping_add(1).wrapping_mul(SWAP_PAIR_GAMMA)),
    );
    (z >> 11) as f64 * UNIT_53
}

/// One segment of work: rung `rung` continues from `spins` under
/// `opts`. Executors must return results in job order.
struct SegmentJob {
    rung: usize,
    spins: SpinVector,
    opts: SolveOptions,
}

/// Per-rung accumulator across segments.
struct RungState {
    spins: SpinVector,
    energy: i64,
    best_energy: i64,
    best_spins: SpinVector,
    stall: u32,
    restarts: u64,
    move_seed: u64,
    sweeps: u64,
    flips: u64,
    uphill_accepted: u64,
    uphill_rejected: u64,
    degraded: bool,
    converged: bool,
    trace: Vec<i64>,
}

impl RungState {
    fn absorb(&mut self, result: SolveResult) {
        self.stall = if result.flips == 0 {
            self.stall.saturating_add(1)
        } else {
            0
        };
        self.sweeps += result.sweeps;
        self.flips += result.flips;
        self.uphill_accepted += result.uphill_accepted;
        self.uphill_rejected += result.uphill_rejected;
        self.degraded |= result.degraded;
        self.converged = result.converged;
        self.trace.extend_from_slice(&result.trace);
        self.energy = result.energy;
        self.spins = result.spins;
        if self.energy < self.best_energy {
            self.best_energy = self.energy;
            self.best_spins = self.spins.clone();
        }
    }
}

/// The constant-temperature segment options for one rung.
fn segment_options(
    base: &SolveOptions,
    temperature: f64,
    freeze_threshold: f64,
    max_sweeps: u64,
    seed: u64,
) -> SolveOptions {
    SolveOptions {
        max_sweeps,
        schedule: Schedule::constant(temperature, freeze_threshold),
        seed,
        record_trace: base.record_trace,
        step_budget: None, // already folded into the segment plan
        cancel: base.cancel.clone(),
        tempering: None, // segments are plain solves
    }
}

/// Runs the replica-exchange ensemble over scoped worker threads.
/// `factory(r)` builds the solver for rung `r`'s segments (called once
/// per segment, so per-replica report sinks see one record per segment
/// and must merge). Byte-identical to [`run_exchange_sequential`] at
/// every thread count.
pub(crate) fn run_exchange<S, F>(
    threads: usize,
    replicas: usize,
    graph: &IsingGraph,
    initial: &SpinVector,
    base: &SolveOptions,
    topts: &TemperingOptions,
    factory: F,
) -> BestOf
where
    S: IterativeSolver,
    F: Fn(usize) -> S + Sync,
{
    let workers = threads.min(replicas).max(1);
    drive(replicas, graph, initial, base, topts, |jobs| {
        let slots: Mutex<Vec<Option<SolveResult>>> =
            Mutex::new((0..jobs.len()).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers.min(jobs.len()).max(1) {
                scope.spawn(|| loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(j) else { break };
                    let mut solver = factory(job.rung);
                    let result = solver.solve(graph, &job.spins, &job.opts);
                    let mut guard = slots
                        .lock()
                        .expect("tempering slot mutex poisoned: a segment panicked");
                    if let Some(slot) = guard.get_mut(j) {
                        *slot = Some(result);
                    }
                });
            }
        });
        slots
            .into_inner()
            .expect("tempering slot mutex poisoned: a segment panicked")
            .into_iter()
            .map(|slot| slot.expect("segment queue covers every job index"))
            .collect()
    })
}

/// Runs the replica-exchange ensemble strictly sequentially on one
/// borrowed solver, in rung order within each round. For deterministic
/// solvers this produces exactly what [`run_exchange`] produces at any
/// thread count.
pub(crate) fn run_exchange_sequential<S: IterativeSolver>(
    solver: &mut S,
    replicas: usize,
    graph: &IsingGraph,
    initial: &SpinVector,
    base: &SolveOptions,
    topts: &TemperingOptions,
) -> BestOf {
    drive(replicas, graph, initial, base, topts, |jobs| {
        jobs.iter()
            .map(|job| solver.solve(graph, &job.spins, &job.opts))
            .collect()
    })
}

/// The shared round engine: plans segments, applies swaps and restarts
/// between rounds, restores per-rung bests, quenches, and reduces.
/// `exec` runs one round's segment jobs and returns results in job
/// order — the only part that differs between the parallel and
/// sequential front ends.
fn drive<E>(
    replicas: usize,
    graph: &IsingGraph,
    initial: &SpinVector,
    base: &SolveOptions,
    topts: &TemperingOptions,
    mut exec: E,
) -> BestOf
where
    E: FnMut(&[SegmentJob]) -> Vec<SolveResult>,
{
    assert!(replicas > 0, "need at least one replica");
    let ladder = topts.ladder.resampled(replicas);
    let budget = base.effective_max_sweeps(graph.num_spins()).max(1);
    let interval = topts.swap_interval.max(1).min(budget);
    let quench_reserve = if topts.quench {
        interval.min(budget.saturating_sub(interval))
    } else {
        0
    };
    let rounds = budget
        .saturating_sub(quench_reserve)
        .checked_div(interval)
        .unwrap_or(1)
        .max(1);
    let swap_seed = swap_stream_seed(base.seed);
    let initial_energy = energy(graph, initial);

    let mut rungs: Vec<RungState> = (0..replicas)
        .map(|r| {
            let move_seed = derive_replica_seed(base.seed, r as u64);
            // Rung 0 refines the caller's state; higher rungs draw the
            // 0th sample of their restart stream so the ensemble has
            // the same initial diversity as independent restarts.
            let (spins, e) = if topts.diversify_inits && r > 0 {
                let seed = derive_replica_seed(splitmix64_mix(move_seed ^ RESTART_SEED_SALT), 0);
                let mut rng = StdRng::seed_from_u64(seed);
                let spins = SpinVector::random(graph.num_spins(), &mut rng);
                let e = energy(graph, &spins);
                (spins, e)
            } else {
                (initial.clone(), initial_energy)
            };
            RungState {
                best_energy: e,
                best_spins: spins.clone(),
                spins,
                energy: e,
                stall: 0,
                restarts: 0,
                move_seed,
                sweeps: 0,
                flips: 0,
                uphill_accepted: 0,
                uphill_rejected: 0,
                degraded: false,
                converged: false,
                trace: Vec::new(),
            }
        })
        .collect();

    let mut swap_attempts = 0u64;
    let mut swap_accepted = 0u64;
    let mut restarts_total = 0u64;

    for round in 0..rounds {
        if base.is_cancelled() {
            break;
        }
        // Segment phase: every rung advances `interval` sweeps at its
        // own constant temperature, on a fresh per-segment seed.
        let jobs: Vec<SegmentJob> = rungs
            .iter()
            .enumerate()
            .map(|(r, st)| SegmentJob {
                rung: r,
                spins: st.spins.clone(),
                opts: segment_options(
                    base,
                    ladder.temperature(r),
                    ladder.freeze_threshold(),
                    interval,
                    derive_replica_seed(st.move_seed, round),
                ),
            })
            .collect();
        let results = exec(&jobs);
        for (st, result) in rungs.iter_mut().zip(results) {
            st.absorb(result);
        }

        // Swap phase: single-threaded, after the round barrier.
        // Even rounds try pairs (0,1), (2,3), …; odd rounds (1,2),
        // (3,4), … (deterministic even/odd alternation). Spins and
        // energies migrate; temperatures stay with their rungs.
        let mut i = (round & 1) as usize;
        while i + 1 < replicas {
            swap_attempts += 1;
            let delta_beta = ladder.beta(i) - ladder.beta(i + 1);
            let (left, right) = rungs.split_at_mut(i + 1);
            let a = left.last_mut().expect("pair index within rung vec");
            let b = right.first_mut().expect("pair index within rung vec");
            let delta = delta_beta * (a.energy as f64 - b.energy as f64);
            let accept = delta >= 0.0 || swap_unit(swap_seed, round, i as u64) < delta.exp();
            if accept {
                std::mem::swap(&mut a.spins, &mut b.spins);
                std::mem::swap(&mut a.energy, &mut b.energy);
                // A migrated configuration may be this rung's best yet.
                for st in [&mut *a, &mut *b] {
                    if st.energy < st.best_energy {
                        st.best_energy = st.energy;
                        st.best_spins = st.spins.clone();
                    }
                }
                swap_accepted += 1;
            }
            i += 2;
        }

        // Restart phase: reseed rungs stalled past the policy's limit.
        if let RestartPolicy::Reseed { stall_rounds } = topts.restart {
            for st in rungs.iter_mut() {
                if st.stall >= stall_rounds {
                    st.restarts += 1;
                    restarts_total += 1;
                    let seed = derive_replica_seed(
                        splitmix64_mix(st.move_seed ^ RESTART_SEED_SALT),
                        st.restarts,
                    );
                    let mut rng = StdRng::seed_from_u64(seed);
                    st.spins = SpinVector::random(graph.num_spins(), &mut rng);
                    st.energy = energy(graph, &st.spins);
                    st.stall = 0;
                }
            }
        }
    }

    // Restore each rung's best-ever snapshot, then greedy-quench it to
    // quiescence within the reserved budget (a frozen hold: downhill
    // and tie-keeping moves only).
    for st in rungs.iter_mut() {
        if st.best_energy < st.energy {
            st.energy = st.best_energy;
            st.spins = st.best_spins.clone();
        }
    }
    if quench_reserve > 0 && !base.is_cancelled() {
        let quench_temperature = ladder.freeze_threshold() * 0.5;
        let jobs: Vec<SegmentJob> = rungs
            .iter()
            .enumerate()
            .map(|(r, st)| SegmentJob {
                rung: r,
                spins: st.spins.clone(),
                opts: segment_options(
                    base,
                    quench_temperature,
                    ladder.freeze_threshold(),
                    quench_reserve,
                    derive_replica_seed(st.move_seed, rounds),
                ),
            })
            .collect();
        let results = exec(&jobs);
        for (st, result) in rungs.iter_mut().zip(results) {
            st.absorb(result);
        }
    }

    let replicas_out: Vec<SolveResult> = rungs
        .into_iter()
        .map(|st| SolveResult {
            spins: st.spins,
            energy: st.energy,
            sweeps: st.sweeps,
            flips: st.flips,
            converged: st.converged,
            trace: st.trace,
            uphill_accepted: st.uphill_accepted,
            uphill_rejected: st.uphill_rejected,
            degraded: st.degraded,
        })
        .collect();
    let mut best_of = BestOf::reduce(replicas_out);
    best_of.stats.swap_attempts = swap_attempts;
    best_of.stats.swap_accepted = swap_accepted;
    best_of.stats.tempering_restarts = restarts_total;
    best_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::EnsembleRunner;
    use crate::graph::topology;
    use crate::solver::CpuReferenceSolver;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frustrated_graph() -> IsingGraph {
        topology::complete(14, |i, j| ((i * 5 + j * 7) % 9) as i32 - 4).expect("valid graph")
    }

    fn tempered_opts(graph: &IsingGraph, seed: u64, kind: LadderKind) -> SolveOptions {
        let mut opts = SolveOptions::for_graph(graph, seed).with_max_sweeps(400);
        opts.tempering = Some(TemperingOptions::for_graph(kind, graph, 4));
        opts
    }

    #[test]
    fn ladder_is_ascending_with_reciprocal_betas() {
        let g = frustrated_graph();
        for kind in [LadderKind::Geometric, LadderKind::Adaptive] {
            let ladder = TemperatureLadder::for_graph(kind, &g, 5);
            assert_eq!(ladder.len(), 5);
            for r in 0..ladder.len() {
                assert!(ladder.temperature(r) >= ladder.freeze_threshold());
                assert!((ladder.beta(r) * ladder.temperature(r) - 1.0).abs() < 1e-12);
                if r > 0 {
                    assert!(ladder.temperature(r) >= ladder.temperature(r - 1));
                }
            }
        }
    }

    #[test]
    fn adaptive_ladder_tracks_coefficient_scale() {
        let small = topology::complete(8, |_, _| 1).expect("valid graph");
        let large = topology::complete(8, |_, _| 50).expect("valid graph");
        let a = TemperatureLadder::adaptive_for_graph(&small, 4);
        let b = TemperatureLadder::adaptive_for_graph(&large, 4);
        assert!(
            b.temperature(3) > a.temperature(3),
            "hot end scales with |J|"
        );
        assert!(
            b.temperature(0) > a.temperature(0),
            "cold end scales with the quantum"
        );
    }

    #[test]
    fn resampled_preserves_endpoints() {
        let ladder = TemperatureLadder::geometric(0.5, 8.0, 4, 0.05);
        let wide = ladder.resampled(7);
        assert_eq!(wide.len(), 7);
        assert!((wide.temperature(0) - 0.5).abs() < 1e-12);
        assert!((wide.temperature(6) - 8.0).abs() < 1e-12);
        assert_eq!(ladder.resampled(4), ladder);
    }

    #[test]
    fn swap_stream_is_stateless_and_salted() {
        let u = swap_unit(swap_stream_seed(9), 3, 1);
        assert_eq!(u, swap_unit(swap_stream_seed(9), 3, 1));
        assert!((0.0..1.0).contains(&u));
        assert_ne!(
            swap_unit(swap_stream_seed(9), 3, 1),
            swap_unit(swap_stream_seed(9), 4, 1)
        );
        assert_ne!(
            swap_unit(swap_stream_seed(9), 3, 1),
            swap_unit(swap_stream_seed(9), 3, 2)
        );
        // The swap seed never collides with any replica move seed.
        for k in 0..4096 {
            assert_ne!(swap_stream_seed(9), derive_replica_seed(9, k));
        }
    }

    #[test]
    fn tempered_run_is_thread_count_independent() {
        let g = frustrated_graph();
        let mut rng = StdRng::seed_from_u64(3);
        let init = SpinVector::random(14, &mut rng);
        let opts = tempered_opts(&g, 17, LadderKind::Adaptive);
        let reference = EnsembleRunner::new(4)
            .with_threads(1)
            .run_reference(&g, &init, &opts);
        for threads in [2, 3, 8] {
            let got = EnsembleRunner::new(4)
                .with_threads(threads)
                .run_reference(&g, &init, &opts);
            assert_eq!(got, reference, "threads = {threads}");
        }
        assert!(reference.stats.swap_attempts > 0);
    }

    #[test]
    fn tempered_sequential_matches_parallel() {
        let g = frustrated_graph();
        let mut rng = StdRng::seed_from_u64(5);
        let init = SpinVector::random(14, &mut rng);
        let opts = tempered_opts(&g, 23, LadderKind::Geometric);
        let runner = EnsembleRunner::new(4).with_threads(4);
        let parallel = runner.run_reference(&g, &init, &opts);
        let mut solver = CpuReferenceSolver::new();
        let sequential = runner.run_sequential(&mut solver, &g, &init, &opts);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn exchange_disabled_delegates_to_the_plain_ensemble() {
        let g = frustrated_graph();
        let mut rng = StdRng::seed_from_u64(7);
        let init = SpinVector::random(14, &mut rng);
        let plain = SolveOptions::for_graph(&g, 31).with_max_sweeps(400);
        let mut disabled = plain.clone();
        disabled.tempering =
            Some(TemperingOptions::for_graph(LadderKind::Adaptive, &g, 4).without_exchange());
        let runner = EnsembleRunner::new(4).with_threads(2);
        assert_eq!(
            runner.run_reference(&g, &init, &plain),
            runner.run_reference(&g, &init, &disabled),
        );
    }

    #[test]
    fn tempered_best_never_loses_to_its_own_rungs_and_respects_budget() {
        let g = frustrated_graph();
        let mut rng = StdRng::seed_from_u64(11);
        let init = SpinVector::random(14, &mut rng);
        let opts = tempered_opts(&g, 41, LadderKind::Adaptive);
        let best_of = EnsembleRunner::new(4).run_reference(&g, &init, &opts);
        let best = best_of.best().energy;
        for r in &best_of.replicas {
            assert!(r.energy >= best);
            assert!(
                r.sweeps <= 400,
                "rung exceeded the sweep budget: {}",
                r.sweeps
            );
        }
        assert_eq!(best_of.stats.replicas, 4);
        assert_eq!(
            best_of.stats.total_sweeps,
            best_of.replicas.iter().map(|r| r.sweeps).sum::<u64>()
        );
    }

    #[test]
    fn quench_polishes_to_a_local_minimum() {
        use crate::hamiltonian::local_field;
        let g = frustrated_graph();
        let mut rng = StdRng::seed_from_u64(13);
        let init = SpinVector::random(14, &mut rng);
        let opts = tempered_opts(&g, 47, LadderKind::Geometric);
        let best_of = EnsembleRunner::new(4).run_reference(&g, &init, &opts);
        let best = best_of.best();
        assert!(best.converged, "quench should reach quiescence");
        // No single flip improves the quenched state.
        for i in 0..g.num_spins() {
            let h = local_field(&g, &best.spins, i);
            let delta = -2 * best.spins.get(i).value() * h;
            assert!(delta >= 0, "spin {i} has a downhill flip left");
        }
    }

    #[test]
    fn restart_policy_reseeds_stalled_rungs() {
        // A stiff complete-graph ferromagnet started in its ground
        // state: any flip costs 2·8·1000 energy, so at the cold rung
        // (T = 0.5) the Metropolis acceptance underflows to exactly 0
        // and no field is ever zero — the cold rung makes zero flips
        // every segment and the stall counter must fire.
        let g = topology::complete(9, |_, _| 1000).expect("valid graph");
        let init = SpinVector::filled(9, crate::spin::Spin::Up);
        let mut opts = SolveOptions::for_graph(&g, 3).with_max_sweeps(600);
        let mut topts = TemperingOptions::for_graph(LadderKind::Geometric, &g, 3);
        topts.swap_interval = 8;
        topts.restart = RestartPolicy::Reseed { stall_rounds: 4 };
        opts.tempering = Some(topts.clone());
        let with_restarts = EnsembleRunner::new(3).run_reference(&g, &init, &opts);
        assert!(with_restarts.stats.tempering_restarts > 0);
        // Reseeding never loses the best-ever state: the ground state
        // seen at round 0 must survive to the verdict.
        assert_eq!(
            with_restarts.best().energy,
            energy(&g, &init),
            "restart discarded the best-ever snapshot"
        );
        opts.tempering = Some(TemperingOptions {
            restart: RestartPolicy::Never,
            ..topts
        });
        let without = EnsembleRunner::new(3).run_reference(&g, &init, &opts);
        assert_eq!(without.stats.tempering_restarts, 0);
    }
}
