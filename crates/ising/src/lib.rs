//! # sachi-ising — Ising-model substrate for the SACHI architecture
//!
//! The iterative Ising machine of the SACHI paper (HPCA 2024) minimizes the
//! Hamiltonian `H = -Σ J_ij σ_i σ_j - Σ h_i σ_i` by repeated local spin
//! updates plus Metropolis annealing. This crate provides that mathematical
//! substrate, independent of any hardware model:
//!
//! * [`spin`] — binary spins with the paper's 1/0 bit encoding and packed
//!   spin vectors;
//! * [`graph`] — CSR problem graphs with the topologies of the evaluation
//!   (complete, King's, grid, star) and builders;
//! * [`hamiltonian`] — eqns. 1–3: global energy, local field `H_σ`, the
//!   sign update rule, and incremental flip deltas;
//! * [`anneal`] — geometric schedules and the Metropolis annealer block;
//! * [`solver`] — the shared solve protocol, the per-spin
//!   [`solver::decide_update`] every machine uses, and the golden-model
//!   [`solver::CpuReferenceSolver`];
//! * [`ensemble`] — the deterministic parallel replica-ensemble engine
//!   (`R` independent replicas over `T` scoped threads, bit-identical
//!   at every `T`);
//! * [`tempering`] — replica-exchange parallel tempering over the
//!   ensemble: temperature ladders, deterministic Metropolis swaps from
//!   a salted SplitMix64 stream, and restart policies for stalled
//!   rungs;
//! * [`recovery`] — the fault-recovery policy (`FailFast` /
//!   `RefetchRetry`) the machines apply when parity detects a
//!   corrupted tuple fetch.
//!
//! ## Example
//!
//! ```
//! use sachi_ising::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A 4x4 ferromagnetic King's-graph lattice (molecular dynamics COP).
//! let graph = topology::king(4, 4, |_, _| 1)?;
//! let mut rng = StdRng::seed_from_u64(1);
//! let init = SpinVector::random(16, &mut rng);
//!
//! let mut solver = CpuReferenceSolver::new();
//! let result = solver.solve(&graph, &init, &SolveOptions::for_graph(&graph, 7));
//! assert!(result.converged);
//! assert_eq!(result.energy, -(graph.num_edges() as i64)); // all aligned
//! # Ok::<(), sachi_ising::graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod anneal;
pub mod ensemble;
pub mod graph;
pub mod hamiltonian;
pub mod io;
pub mod recovery;
pub mod solver;
pub mod spin;
pub mod tempering;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::anneal::{Annealer, Cooling, Schedule};
    pub use crate::ensemble::{derive_replica_seed, BestOf, EnsembleRunner, EnsembleStats};
    pub use crate::graph::{topology, GraphBuilder, GraphError, IsingGraph};
    pub use crate::hamiltonian::{energy, flip_delta, local_field, update_rule};
    pub use crate::io::{parse_dimacs, parse_gset, to_dimacs, ParseError};
    pub use crate::recovery::RecoveryPolicy;
    pub use crate::solver::{
        decide_update, solve_multi_start, CancelToken, CpuReferenceSolver, IterativeSolver,
        SolveOptions, SolveResult,
    };
    pub use crate::spin::{Spin, SpinVector};
    pub use crate::tempering::{
        swap_stream_seed, swap_unit, LadderKind, RestartPolicy, TemperatureLadder, TemperingOptions,
    };
}
