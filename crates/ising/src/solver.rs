//! The iterative solve protocol and the golden-model CPU solver.
//!
//! Every Ising machine in this workspace — the four SACHI stationarity
//! designs, BRIM, and Ising-CIM — executes the *same* algorithm: sweep the
//! spins, update each by the sign rule (eqn. 3), and let the shared
//! annealer block propose Metropolis uphill flips. The paper leans on this
//! ("the number of iterations across SACHI designs is the same, as they all
//! arrive at the same H at the end of each iteration"), and we enforce it:
//! the per-spin decision lives in [`decide_update`], and integration tests
//! assert that every machine's H trajectory equals
//! [`CpuReferenceSolver`]'s.
//!
//! Update visibility is *sequential within a sweep* (an updated spin is
//! seen by later spins of the same sweep). In SACHI hardware this is the
//! storage-array-based update of Fig. 8b: each computed spin is written to
//! the storage array and propagated to the relevant tuples via the
//! adjacency matrix, so tuples computed later in the sweep observe it.

use crate::anneal::{Annealer, Schedule};
use crate::graph::IsingGraph;
use crate::hamiltonian::{energy, local_field, update_rule};
use crate::spin::{Spin, SpinVector};
use crate::tempering::TemperingOptions;
use rand::Rng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared job-level cancellation flag, checked by every solver at
/// sweep boundaries.
///
/// Cancellation is a *control-plane* mechanism for long-lived hosts
/// (the `sachi serve` daemon): when the flag is raised mid-solve the
/// solver stops after the sweep it is on and returns the partial state
/// with `converged = false`. A cancelled result therefore depends on
/// *when* the flag was raised — it is advisory, and hosts that promise
/// deterministic output must discard it (the daemon responds with a
/// typed error instead). A token that is never cancelled is provably
/// inert: the solvers read it once per sweep and never write it, so
/// installing a token changes nothing about an uncancelled run.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Every solver sharing this token stops at its
    /// next sweep boundary. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Options controlling an iterative solve.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Hard cap on sweeps (Hamiltonian iterations).
    pub max_sweeps: u64,
    /// Annealing schedule.
    pub schedule: Schedule,
    /// RNG seed for the annealer block.
    pub seed: u64,
    /// Record the post-sweep energy trace (Fig. 19a).
    pub record_trace: bool,
    /// Optional hard budget on per-spin update *steps* (a timeout guard
    /// expressed in work, not wall-clock, so it stays deterministic).
    /// `None` leaves `max_sweeps` as the only cap.
    pub step_budget: Option<u64>,
    /// Optional job-level cancellation hook, shared across the replicas
    /// of one job. `None` (the default) is equivalent to a token that
    /// is never cancelled.
    pub cancel: Option<CancelToken>,
    /// Optional replica-exchange (parallel tempering) configuration.
    /// Read by [`crate::ensemble::EnsembleRunner`] only — individual
    /// solvers ignore it, and `None` (the default) is the plain
    /// independent-replica ensemble.
    pub tempering: Option<TemperingOptions>,
}

impl SolveOptions {
    /// Options matched to a graph's coefficient range.
    pub fn for_graph(graph: &IsingGraph, seed: u64) -> Self {
        SolveOptions {
            max_sweeps: 10_000,
            schedule: Schedule::for_coefficient_range(graph.max_abs_coefficient()),
            seed,
            record_trace: false,
            step_budget: None,
            cancel: None,
            tempering: None,
        }
    }

    /// Enables trace recording.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Sets the sweep cap.
    #[must_use]
    pub fn with_max_sweeps(mut self, max_sweeps: u64) -> Self {
        self.max_sweeps = max_sweeps;
        self
    }

    /// Sets the step budget (per-spin updates across all sweeps).
    #[must_use]
    pub fn with_step_budget(mut self, steps: u64) -> Self {
        self.step_budget = Some(steps);
        self
    }

    /// Installs a job-level cancellation token (see [`CancelToken`]).
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Enables replica-exchange parallel tempering for ensemble runs
    /// (see [`TemperingOptions`]).
    #[must_use]
    pub fn with_tempering(mut self, tempering: TemperingOptions) -> Self {
        self.tempering = Some(tempering);
        self
    }

    /// True when a token is installed and has been cancelled. Solvers
    /// check this once per sweep and stop early with `converged =
    /// false`; with no token installed it is always false.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// The sweep cap after applying the step budget for a problem of
    /// `num_spins` spins: `min(max_sweeps, max(1, budget / num_spins))`.
    /// Every solver derives its loop bound from this, so a budgeted run
    /// is the same function on every machine and the conformance suites
    /// keep holding with a budget set.
    pub fn effective_max_sweeps(&self, num_spins: usize) -> u64 {
        match self.step_budget {
            None => self.max_sweeps,
            Some(budget) => {
                let spins = u64::try_from(num_spins.max(1)).unwrap_or(u64::MAX);
                self.max_sweeps.min((budget / spins).max(1))
            }
        }
    }
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            max_sweeps: 10_000,
            schedule: Schedule::default(),
            seed: 0,
            record_trace: false,
            step_budget: None,
            cancel: None,
            tempering: None,
        }
    }
}

/// Outcome of an iterative solve.
///
/// Equality is byte-for-byte over every field — the determinism and
/// conformance suites compare whole results across thread counts and
/// machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveResult {
    /// Final spin configuration.
    pub spins: SpinVector,
    /// Final Hamiltonian energy.
    pub energy: i64,
    /// Sweeps executed (the paper's "iterations").
    pub sweeps: u64,
    /// Total spin flips applied.
    pub flips: u64,
    /// True if the solve reached the converged state (no flips in a full
    /// sweep with the annealer frozen) before `max_sweeps`.
    pub converged: bool,
    /// Post-sweep energies, if requested.
    pub trace: Vec<i64>,
    /// Metropolis uphill moves the annealer block accepted.
    pub uphill_accepted: u64,
    /// Metropolis uphill moves the annealer block rejected.
    pub uphill_rejected: u64,
    /// True if the machine hit its fault-recovery budget (or a fail-fast
    /// abort) and the result may be corrupted. Degraded replicas lose
    /// `BestOf` ties to healthy ones.
    pub degraded: bool,
}

impl SolveResult {
    /// Exports the algorithmic outcome into `reg` under the `solver_`
    /// prefix. Counters only — the final energy is a signed quantity
    /// and goes out as a gauge.
    pub fn export_metrics(&self, reg: &mut sachi_obs::MetricsRegistry) {
        reg.counter_add("solver_sweeps", self.sweeps);
        reg.counter_add("solver_flips", self.flips);
        reg.counter_add("solver_uphill_accepted", self.uphill_accepted);
        reg.counter_add("solver_uphill_rejected", self.uphill_rejected);
        reg.counter_add("solver_converged_replicas", u64::from(self.converged));
        reg.counter_add("solver_degraded_replicas", u64::from(self.degraded));
        reg.observe("solver_replica_flips", self.flips);
    }
}

/// The per-spin decision shared by every machine: deterministic sign update
/// (eqn. 3) plus a Metropolis proposal when the deterministic rule keeps
/// the spin.
///
/// Zero-cost flips (`H_σ = 0` ties) are accepted with probability 1/2
/// while the annealer is live — the standard Metropolis treatment.
/// Without it, domain walls (whose motion is a ΔH = 0 move) cannot
/// diffuse and cyclic instances freeze two walls apart from the optimum.
/// Once the annealer freezes, ties keep the current value so sweeps can
/// reach quiescence and the convergence detector can fire.
///
/// Returns the new spin value. Machines presenting the same `h_sigma`
/// sequence to the same-seeded annealer make identical decisions.
#[inline]
pub fn decide_update(current: Spin, h_sigma: i64, annealer: &mut Annealer) -> Spin {
    let desired = update_rule(h_sigma, current);
    if desired != current {
        return desired;
    }
    // Flipping a spin that the sign rule keeps costs ΔH = -2 σ H_σ >= 0.
    let delta = -2 * current.value() * h_sigma;
    if !annealer.is_frozen() {
        if delta == 0 {
            // Tie: heat-bath coin flip.
            if annealer.rng().gen::<bool>() {
                return current.flipped();
            }
        } else if annealer.accept(delta) {
            return current.flipped();
        }
    }
    current
}

/// An iterative Ising machine: anything that can run the solve protocol.
pub trait IterativeSolver {
    /// Runs the solve from `initial` and returns the outcome.
    fn solve(
        &mut self,
        graph: &IsingGraph,
        initial: &SpinVector,
        options: &SolveOptions,
    ) -> SolveResult;
}

/// Golden-model software solver: the exact protocol with none of the
/// hardware modeling. Architecture simulators must match its output
/// bit-for-bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuReferenceSolver;

impl CpuReferenceSolver {
    /// Creates the solver.
    pub fn new() -> Self {
        CpuReferenceSolver
    }
}

impl IterativeSolver for CpuReferenceSolver {
    fn solve(
        &mut self,
        graph: &IsingGraph,
        initial: &SpinVector,
        options: &SolveOptions,
    ) -> SolveResult {
        assert_eq!(
            initial.len(),
            graph.num_spins(),
            "initial spins must match graph size"
        );
        let mut spins = initial.clone();
        let mut annealer = Annealer::new(options.schedule, options.seed);
        let mut trace = Vec::new();
        let mut total_flips = 0u64;
        let mut sweeps = 0u64;
        let mut converged = false;

        let max_sweeps = options.effective_max_sweeps(graph.num_spins());
        while sweeps < max_sweeps {
            if options.is_cancelled() {
                break;
            }
            let mut flips_this_sweep = 0u64;
            for i in 0..graph.num_spins() {
                let h_sigma = local_field(graph, &spins, i);
                let current = spins.get(i);
                let new = decide_update(current, h_sigma, &mut annealer);
                if new != current {
                    spins.set(i, new);
                    flips_this_sweep += 1;
                }
            }
            sweeps += 1;
            total_flips += flips_this_sweep;
            if options.record_trace {
                trace.push(energy(graph, &spins));
            }
            let frozen = annealer.is_frozen();
            annealer.cool();
            if flips_this_sweep == 0 && frozen {
                converged = true;
                break;
            }
        }

        SolveResult {
            energy: energy(graph, &spins),
            spins,
            sweeps,
            flips: total_flips,
            converged,
            trace,
            uphill_accepted: annealer.uphill_accepted(),
            uphill_rejected: annealer.uphill_rejected(),
            degraded: false,
        }
    }
}

/// Runs `restarts` independent solves and returns the best-energy
/// result. Standard practice for simulated annealing, used by the
/// examples and the Fig. 16/19 harnesses.
///
/// Restart `k` runs with the seed
/// [`crate::ensemble::derive_replica_seed`]`(options.seed, k)` — the
/// same derivation the parallel [`crate::ensemble::EnsembleRunner`]
/// uses, so a sequential multi-start through one borrowed solver is
/// bit-identical to a threaded ensemble of the same solver (the
/// conformance suite asserts this).
///
/// # Panics
///
/// Panics if `restarts == 0` or `restarts` overflows `usize`.
pub fn solve_multi_start<S: IterativeSolver>(
    solver: &mut S,
    graph: &IsingGraph,
    initial: &SpinVector,
    options: &SolveOptions,
    restarts: u64,
) -> SolveResult {
    assert!(restarts > 0, "need at least one restart");
    let replicas = usize::try_from(restarts).expect("restart count fits in usize");
    crate::ensemble::EnsembleRunner::new(replicas)
        .run_sequential(solver, graph, initial, options)
        .into_best()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{topology, GraphBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ferromagnet_reaches_ground_state() {
        // King's graph, all J = +1: ground state is all spins aligned.
        let g = topology::king(6, 6, |_, _| 1).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let init = SpinVector::random(36, &mut rng);
        let mut solver = CpuReferenceSolver::new();
        let opts = SolveOptions::for_graph(&g, 7);
        let result = solver.solve(&g, &init, &opts);
        assert!(
            result.converged,
            "did not converge in {} sweeps",
            result.sweeps
        );
        let ups = result.spins.count_up();
        assert!(ups == 0 || ups == 36, "not aligned: {ups} up");
        assert_eq!(result.energy, -(g.num_edges() as i64));
    }

    #[test]
    fn antiferromagnetic_pair_settles() {
        let g = GraphBuilder::new(2).edge(0, 1, -7).build().unwrap();
        let init = SpinVector::from_spins(&[Spin::Up, Spin::Up]);
        let mut solver = CpuReferenceSolver::new();
        let result = solver.solve(&g, &init, &SolveOptions::for_graph(&g, 3));
        assert_eq!(result.energy, -7);
        assert_ne!(result.spins.get(0), result.spins.get(1));
        assert!(result.converged);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = topology::complete(12, |i, j| ((i * 3 + j * 5) % 11) as i32 - 5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let init = SpinVector::random(12, &mut rng);
        let mut solver = CpuReferenceSolver::new();
        let opts = SolveOptions::for_graph(&g, 99).with_trace();
        let a = solver.solve(&g, &init, &opts);
        let b = solver.solve(&g, &init, &opts);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.spins, b.spins);
        assert_eq!(a.sweeps, b.sweeps);
    }

    #[test]
    fn trace_records_every_sweep_and_ends_low() {
        let g = topology::grid4(5, 5, |_, _| 2).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let init = SpinVector::random(25, &mut rng);
        let mut solver = CpuReferenceSolver::new();
        let result = solver.solve(&g, &init, &SolveOptions::for_graph(&g, 5).with_trace());
        assert_eq!(result.trace.len() as u64, result.sweeps);
        assert_eq!(*result.trace.last().unwrap(), result.energy);
        // The trace's final value is its minimum (greedy tail).
        assert_eq!(result.trace.iter().min(), result.trace.last());
    }

    #[test]
    fn max_sweeps_caps_work() {
        let g = topology::complete(20, |i, j| if (i + j) % 2 == 0 { 3 } else { -3 }).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let init = SpinVector::random(20, &mut rng);
        let mut solver = CpuReferenceSolver::new();
        let opts = SolveOptions {
            max_sweeps: 2,
            ..SolveOptions::for_graph(&g, 1)
        };
        let result = solver.solve(&g, &init, &opts);
        assert_eq!(result.sweeps, 2);
        assert!(!result.converged);
    }

    #[test]
    fn step_budget_caps_sweeps() {
        let g = topology::complete(20, |i, j| if (i + j) % 2 == 0 { 3 } else { -3 }).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let init = SpinVector::random(20, &mut rng);
        let mut solver = CpuReferenceSolver::new();
        // 100 steps over 20 spins => 5 sweeps.
        let opts = SolveOptions::for_graph(&g, 1).with_step_budget(100);
        assert_eq!(opts.effective_max_sweeps(20), 5);
        let result = solver.solve(&g, &init, &opts);
        assert!(result.sweeps <= 5);
        // A budget smaller than one sweep still allows a single sweep.
        assert_eq!(opts.clone().with_step_budget(3).effective_max_sweeps(20), 1);
        // max_sweeps stays the binding cap when it is tighter.
        let tight = opts.with_max_sweeps(2);
        assert_eq!(tight.effective_max_sweeps(20), 2);
        // No budget: unchanged.
        assert_eq!(
            SolveOptions::for_graph(&g, 1).effective_max_sweeps(20),
            10_000
        );
        // Degenerate zero-spin problems never divide by zero.
        assert_eq!(tight.effective_max_sweeps(0), 2);
    }

    #[test]
    fn pre_cancelled_token_stops_before_the_first_sweep() {
        let g = topology::complete(20, |i, j| if (i + j) % 2 == 0 { 3 } else { -3 }).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let init = SpinVector::random(20, &mut rng);
        let mut solver = CpuReferenceSolver::new();
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        token.cancel();
        let opts = SolveOptions::for_graph(&g, 1).with_cancel(token);
        assert!(opts.is_cancelled());
        let result = solver.solve(&g, &init, &opts);
        assert_eq!(result.sweeps, 0);
        assert!(!result.converged);
        // The partial state is still a coherent result: the energy
        // matches the untouched initial spins.
        assert_eq!(result.spins, init);
        assert_eq!(result.energy, energy(&g, &init));
    }

    #[test]
    fn uncancelled_token_is_unobservable() {
        let g = topology::complete(16, |i, j| if (i * j) % 3 == 0 { 2 } else { -1 }).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let init = SpinVector::random(16, &mut rng);
        let mut solver = CpuReferenceSolver::new();
        let bare = solver.solve(&g, &init, &SolveOptions::for_graph(&g, 7));
        let tokened = solver.solve(
            &g,
            &init,
            &SolveOptions::for_graph(&g, 7).with_cancel(CancelToken::new()),
        );
        assert_eq!(bare, tokened);
    }

    #[test]
    fn decide_update_follows_sign_rule() {
        let mut a = Annealer::new(Schedule::default(), 0);
        a.freeze();
        assert_eq!(decide_update(Spin::Up, 5, &mut a), Spin::Down);
        assert_eq!(decide_update(Spin::Down, -5, &mut a), Spin::Up);
        // Frozen annealer cannot flip an already-optimal spin.
        assert_eq!(decide_update(Spin::Up, -5, &mut a), Spin::Up);
        assert_eq!(decide_update(Spin::Down, 0, &mut a), Spin::Down);
    }

    #[test]
    fn annealing_escapes_local_minimum_more_often_than_greedy() {
        // A frustrated instance where greedy from a bad start gets stuck:
        // two triangles sharing an edge with mixed signs.
        let g = GraphBuilder::new(4)
            .edge(0, 1, 3)
            .edge(1, 2, 3)
            .edge(0, 2, -3)
            .edge(2, 3, 3)
            .edge(1, 3, -3)
            .build()
            .unwrap();
        let init = SpinVector::from_spins(&[Spin::Up, Spin::Down, Spin::Up, Spin::Down]);
        let mut solver = CpuReferenceSolver::new();
        // Exhaustive ground-state search over 16 configurations.
        let mut best = i64::MAX;
        for mask in 0..16u32 {
            let s: SpinVector = (0..4)
                .map(|b| Spin::from_bit((mask >> b) & 1 == 1))
                .collect();
            best = best.min(energy(&g, &s));
        }
        let hits = (0..20)
            .filter(|&seed| {
                let r = solver.solve(&g, &init, &SolveOptions::for_graph(&g, seed));
                r.energy == best
            })
            .count();
        assert!(
            hits >= 12,
            "annealing found ground state only {hits}/20 times"
        );
    }

    #[test]
    fn multi_start_never_worse_than_single() {
        let g = topology::complete(14, |i, j| ((i * 7 + j * 3) % 13) as i32 - 6).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let init = SpinVector::random(14, &mut rng);
        let mut solver = CpuReferenceSolver::new();
        let opts = SolveOptions::for_graph(&g, 5);
        let single = solver.solve(&g, &init, &opts);
        let multi = solve_multi_start(&mut solver, &g, &init, &opts, 8);
        assert!(multi.energy <= single.energy);
    }

    #[test]
    #[should_panic(expected = "at least one restart")]
    fn zero_restarts_rejected() {
        let g = GraphBuilder::new(2).edge(0, 1, 1).build().unwrap();
        let init = SpinVector::filled(2, Spin::Up);
        let mut solver = CpuReferenceSolver::new();
        let _ = solve_multi_start(&mut solver, &g, &init, &SolveOptions::default(), 0);
    }

    #[test]
    fn empty_graph_converges_immediately() {
        let g = GraphBuilder::new(4).build().unwrap();
        let init = SpinVector::filled(4, Spin::Up);
        let mut solver = CpuReferenceSolver::new();
        let mut opts = SolveOptions::for_graph(&g, 0);
        opts.schedule = Schedule::fast();
        let result = solver.solve(&g, &init, &opts);
        assert!(result.converged);
        assert_eq!(result.energy, 0);
        // Isolated spins sit on H_σ = 0 ties: the live annealer coin-flips
        // them, so flips may be non-zero, but quiescence follows freezing.
    }
}
