//! The Ising Hamiltonian and its local update rule (eqns. 1–3).
//!
//! * eqn. 1: `H = -Σ_ij J_ij σ_i σ_j - Σ_i h_i σ_i` (global energy);
//! * eqn. 2: `H_σ = Σ_j -J_ij σ_j - h_i` (local field of a target spin);
//! * eqn. 3: `σ_i := -1 if H_σ > 0, +1 if H_σ < 0, tie otherwise`.
//!
//! All sums run in `i64`, which cannot overflow for any graph this
//! simulator can hold (`|J| < 2^31`, degree < 2^32 is impossible within
//! addressable memory; practical instances stay far below `2^62`).

use crate::graph::IsingGraph;
use crate::spin::{Spin, SpinVector};

/// Global Hamiltonian energy of `spins` on `graph` (eqn. 1).
///
/// # Panics
///
/// Panics if `spins.len() != graph.num_spins()`.
pub fn energy(graph: &IsingGraph, spins: &SpinVector) -> i64 {
    assert_eq!(
        spins.len(),
        graph.num_spins(),
        "spin vector must match graph size"
    );
    let mut h = 0i64;
    for (i, j, w) in graph.edges() {
        h -= w as i64 * spins.get(i as usize).value() * spins.get(j as usize).value();
    }
    for i in 0..graph.num_spins() {
        h -= graph.field(i) as i64 * spins.get(i).value();
    }
    h
}

/// Local field `H_σ` of target spin `i` (eqn. 2).
///
/// # Panics
///
/// Panics if `i` is out of range or the spin vector size mismatches.
pub fn local_field(graph: &IsingGraph, spins: &SpinVector, i: usize) -> i64 {
    debug_assert_eq!(spins.len(), graph.num_spins());
    let mut h_sigma = -(graph.field(i) as i64);
    // Raw CSR slices: same canonical order as `graph.neighbors(i)`, but
    // without per-item iterator plumbing in the solver's hottest loop.
    let (neighbors, weights) = graph.neighbor_slices(i);
    for (&j, &w) in neighbors.iter().zip(weights.iter()) {
        h_sigma -= w as i64 * spins.get(j as usize).value();
    }
    h_sigma
}

/// The spin update rule (eqn. 3). `tie` is used when `H_σ == 0` (the paper
/// allows either; hardware keeps the current value, which is what callers
/// should pass).
#[inline]
pub fn update_rule(h_sigma: i64, tie: Spin) -> Spin {
    match h_sigma.cmp(&0) {
        std::cmp::Ordering::Greater => Spin::Down,
        std::cmp::Ordering::Less => Spin::Up,
        std::cmp::Ordering::Equal => tie,
    }
}

/// Energy change from flipping spin `i` in the current state:
/// `ΔH = 2 σ_i (Σ_j J_ij σ_j + h_i) = -2 σ_i H_σ`.
///
/// # Panics
///
/// Panics if `i` is out of range.
pub fn flip_delta(graph: &IsingGraph, spins: &SpinVector, i: usize) -> i64 {
    -2 * spins.get(i).value() * local_field(graph, spins, i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{topology, GraphBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_spin(j: i32) -> IsingGraph {
        GraphBuilder::new(2).edge(0, 1, j).build().unwrap()
    }

    #[test]
    fn ferromagnetic_pair_prefers_alignment() {
        let g = two_spin(5);
        let aligned = SpinVector::from_spins(&[Spin::Up, Spin::Up]);
        let anti = SpinVector::from_spins(&[Spin::Up, Spin::Down]);
        assert_eq!(energy(&g, &aligned), -5);
        assert_eq!(energy(&g, &anti), 5);
    }

    #[test]
    fn antiferromagnetic_pair_prefers_antialignment() {
        let g = two_spin(-5);
        let aligned = SpinVector::from_spins(&[Spin::Up, Spin::Up]);
        let anti = SpinVector::from_spins(&[Spin::Up, Spin::Down]);
        assert_eq!(energy(&g, &aligned), 5);
        assert_eq!(energy(&g, &anti), -5);
    }

    #[test]
    fn field_contributes_linearly() {
        let g = GraphBuilder::new(1).field(0, 4).build().unwrap();
        assert_eq!(energy(&g, &SpinVector::from_spins(&[Spin::Up])), -4);
        assert_eq!(energy(&g, &SpinVector::from_spins(&[Spin::Down])), 4);
    }

    #[test]
    fn local_field_matches_definition() {
        // H_sigma(i) = -sum J sigma_j - h_i.
        let g = GraphBuilder::new(3)
            .edge(0, 1, 2)
            .edge(0, 2, -3)
            .field(0, 1)
            .build()
            .unwrap();
        let s = SpinVector::from_spins(&[Spin::Up, Spin::Up, Spin::Down]);
        // -2*(+1) - (-3)*(-1) - 1 = -2 - 3 - 1 = -6.
        assert_eq!(local_field(&g, &s, 0), -6);
    }

    #[test]
    fn update_rule_signs() {
        assert_eq!(update_rule(3, Spin::Up), Spin::Down);
        assert_eq!(update_rule(-3, Spin::Down), Spin::Up);
        assert_eq!(update_rule(0, Spin::Down), Spin::Down);
        assert_eq!(update_rule(0, Spin::Up), Spin::Up);
    }

    #[test]
    fn update_rule_never_increases_energy() {
        let g = topology::king(4, 4, |i, j| ((i * 7 + j * 13) % 9) as i32 - 4).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = SpinVector::random(16, &mut rng);
        for i in 0..16 {
            let before = energy(&g, &s);
            let new = update_rule(local_field(&g, &s, i), s.get(i));
            s.set(i, new);
            let after = energy(&g, &s);
            assert!(
                after <= before,
                "update on {i} raised energy {before} -> {after}"
            );
        }
    }

    #[test]
    fn flip_delta_matches_recomputation() {
        let g = topology::complete(6, |i, j| ((i + 2 * j) % 7) as i32 - 3).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut s = SpinVector::random(6, &mut rng);
        for i in 0..6 {
            let before = energy(&g, &s);
            let predicted = flip_delta(&g, &s, i);
            s.flip(i);
            let after = energy(&g, &s);
            assert_eq!(after - before, predicted, "delta mismatch at {i}");
        }
    }

    #[test]
    #[should_panic(expected = "spin vector must match")]
    fn mismatched_sizes_panic() {
        let g = two_spin(1);
        let s = SpinVector::filled(3, Spin::Up);
        let _ = energy(&g, &s);
    }
}
