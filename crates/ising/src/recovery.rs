//! Recovery policy for detected memory faults.
//!
//! The all-digital SACHI pipeline makes injected faults *detectable*
//! (tuple-row parity flags an odd number of flipped bits), which raises
//! the question of what to do next. [`RecoveryPolicy`] is the answer
//! the solve layer threads from the CLI down to the machines:
//!
//! * [`RecoveryPolicy::FailFast`] — abort the replica on the first
//!   detected fault and surface it as a degraded, non-converged result.
//!   The right choice when any corruption invalidates the experiment.
//! * [`RecoveryPolicy::RefetchRetry`] — re-fetch the corrupted tuple
//!   row from the storage array up to `max_retries` times per read
//!   (each re-fetch costs storage→compute movement cycles and energy);
//!   if the budget is exhausted the replica continues but is flagged
//!   *degraded*, and degraded replicas lose `BestOf` ties to healthy
//!   ones so a corrupted winner is never silently reported.
//!
//! Retries re-draw from the same deterministic fault stream, so the
//! whole recovery trajectory — including how many retries each read
//! needed — is a pure function of `(master seed, fault seed, replica
//! index)` and is byte-identical at any thread count.

use std::fmt;
use std::str::FromStr;

/// What the solve pipeline does when parity detects a corrupted fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Abort the replica on the first detected fault.
    FailFast,
    /// Re-fetch the corrupted row, at most `max_retries` times per read,
    /// then continue with the replica flagged degraded.
    RefetchRetry {
        /// Re-fetch budget per corrupted read.
        max_retries: u32,
    },
}

impl RecoveryPolicy {
    /// The default re-fetch budget.
    pub const DEFAULT_MAX_RETRIES: u32 = 3;
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::RefetchRetry {
            max_retries: RecoveryPolicy::DEFAULT_MAX_RETRIES,
        }
    }
}

impl fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryPolicy::FailFast => write!(f, "failfast"),
            RecoveryPolicy::RefetchRetry { max_retries } => write!(f, "retry:{max_retries}"),
        }
    }
}

impl FromStr for RecoveryPolicy {
    type Err = String;

    /// Parses `failfast`, `retry`, or `retry:N`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "failfast" => Ok(RecoveryPolicy::FailFast),
            "retry" => Ok(RecoveryPolicy::default()),
            other => match other.strip_prefix("retry:") {
                Some(n) => n
                    .parse::<u32>()
                    .map(|max_retries| RecoveryPolicy::RefetchRetry { max_retries })
                    .map_err(|_| format!("invalid retry budget '{n}' (expected retry:N)")),
                None => Err(format!(
                    "unknown recovery policy '{other}' (expected failfast, retry, or retry:N)"
                )),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_spellings() {
        assert_eq!("failfast".parse(), Ok(RecoveryPolicy::FailFast));
        assert_eq!(
            "retry".parse(),
            Ok(RecoveryPolicy::RefetchRetry { max_retries: 3 })
        );
        assert_eq!(
            "retry:7".parse(),
            Ok(RecoveryPolicy::RefetchRetry { max_retries: 7 })
        );
        assert_eq!(
            "retry:0".parse(),
            Ok(RecoveryPolicy::RefetchRetry { max_retries: 0 })
        );
    }

    #[test]
    fn rejects_garbage_with_a_message() {
        let err = "retry:x".parse::<RecoveryPolicy>().unwrap_err();
        assert!(err.contains("retry:N"), "{err}");
        let err = "bogus".parse::<RecoveryPolicy>().unwrap_err();
        assert!(err.contains("failfast"), "{err}");
        assert!("retry:".parse::<RecoveryPolicy>().is_err());
        assert!("FAILFAST".parse::<RecoveryPolicy>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for p in [
            RecoveryPolicy::FailFast,
            RecoveryPolicy::default(),
            RecoveryPolicy::RefetchRetry { max_retries: 9 },
        ] {
            assert_eq!(p.to_string().parse::<RecoveryPolicy>(), Ok(p));
        }
    }
}
