//! Simulated annealing: geometric cooling schedule and the Metropolis
//! acceptance criterion.
//!
//! The paper implements annealing "by probabilistically flipping based on
//! the Metropolis acceptance criterion, comparing likelihood against a
//! predefined value within the annealer block" (Sec. VI.6). The annealer is
//! a small digital block shared by every design, so the *same* schedule and
//! RNG stream must drive every machine for their H trajectories to agree.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the temperature descends between sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cooling {
    /// Multiply by a factor in `(0, 1)` each sweep.
    Geometric(f64),
    /// Subtract a positive step each sweep (clamped at zero).
    Linear(f64),
    /// Hold the temperature constant (a parallel-tempering rung; never
    /// descends on its own).
    Hold,
}

/// Cooling schedule: geometric (the paper's) or linear.
///
/// Temperature starts at `initial_temperature` and descends after every
/// sweep until it falls below `freeze_threshold`, after which the
/// annealer stops proposing uphill flips.
///
/// ```
/// use sachi_ising::anneal::Schedule;
///
/// let s = Schedule::new(8.0, 0.5, 0.1);
/// let temps: Vec<f64> = s.temperatures().take(4).collect();
/// assert_eq!(temps, vec![8.0, 4.0, 2.0, 1.0]);
/// assert_eq!(s.sweeps_until_frozen(), 7); // 8 * 0.5^7 = 0.0625 < 0.1
///
/// let lin = Schedule::linear(8.0, 2.0, 0.1);
/// let temps: Vec<f64> = lin.temperatures().take(4).collect();
/// assert_eq!(temps, vec![8.0, 6.0, 4.0, 2.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Schedule {
    initial_temperature: f64,
    cooling: Cooling,
    freeze_threshold: f64,
}

impl Schedule {
    /// Creates a geometric schedule (the paper's Metropolis annealer).
    ///
    /// # Panics
    ///
    /// Panics unless `initial_temperature > 0`, `0 < cooling_factor < 1`,
    /// and `freeze_threshold > 0`.
    pub fn new(initial_temperature: f64, cooling_factor: f64, freeze_threshold: f64) -> Self {
        assert!(
            initial_temperature > 0.0,
            "initial temperature must be positive"
        );
        assert!(
            (0.0..1.0).contains(&cooling_factor) && cooling_factor > 0.0,
            "cooling factor must be in (0, 1)"
        );
        assert!(freeze_threshold > 0.0, "freeze threshold must be positive");
        Schedule {
            initial_temperature,
            cooling: Cooling::Geometric(cooling_factor),
            freeze_threshold,
        }
    }

    /// Creates a linear schedule (temperature falls by `step` per sweep).
    ///
    /// # Panics
    ///
    /// Panics unless `initial_temperature > 0`, `step > 0`, and
    /// `freeze_threshold > 0`.
    pub fn linear(initial_temperature: f64, step: f64, freeze_threshold: f64) -> Self {
        assert!(
            initial_temperature > 0.0,
            "initial temperature must be positive"
        );
        assert!(step > 0.0, "linear cooling step must be positive");
        assert!(freeze_threshold > 0.0, "freeze threshold must be positive");
        Schedule {
            initial_temperature,
            cooling: Cooling::Linear(step),
            freeze_threshold,
        }
    }

    /// A schedule suited to coefficients of magnitude `max_abs` (start hot
    /// enough to flip against the strongest bond).
    pub fn for_coefficient_range(max_abs: i64) -> Self {
        let t0 = (2.0 * max_abs.max(1) as f64).max(1.0);
        Schedule::new(t0, 0.9, 0.05)
    }

    /// Creates a constant-temperature schedule (a parallel-tempering
    /// rung). A hold *at or above* `freeze_threshold` never freezes; a
    /// hold *below* it is a greedy-descent rung (frozen from sweep 0).
    ///
    /// # Panics
    ///
    /// Panics unless `temperature > 0` and `freeze_threshold > 0`.
    pub fn constant(temperature: f64, freeze_threshold: f64) -> Self {
        assert!(temperature > 0.0, "hold temperature must be positive");
        assert!(freeze_threshold > 0.0, "freeze threshold must be positive");
        Schedule {
            initial_temperature: temperature,
            cooling: Cooling::Hold,
            freeze_threshold,
        }
    }

    /// Quick schedule for unit tests (few sweeps).
    pub fn fast() -> Self {
        Schedule::new(2.0, 0.5, 0.5)
    }

    /// Starting temperature.
    pub fn initial_temperature(&self) -> f64 {
        self.initial_temperature
    }

    /// The cooling rule.
    pub fn cooling(&self) -> Cooling {
        self.cooling
    }

    /// Applies one cooling step to a temperature.
    pub fn cool_once(&self, temperature: f64) -> f64 {
        match self.cooling {
            Cooling::Geometric(f) => temperature * f,
            Cooling::Linear(step) => (temperature - step).max(0.0),
            Cooling::Hold => temperature,
        }
    }

    /// Temperature below which the annealer stops.
    pub fn freeze_threshold(&self) -> f64 {
        self.freeze_threshold
    }

    /// Iterator over the temperature sequence (unbounded; pair with
    /// [`Schedule::sweeps_until_frozen`]).
    pub fn temperatures(&self) -> impl Iterator<Item = f64> {
        let schedule = *self;
        let mut t = self.initial_temperature;
        std::iter::from_fn(move || {
            let current = t;
            t = schedule.cool_once(t);
            Some(current)
        })
    }

    /// Number of sweeps until the temperature drops below the freeze
    /// threshold. A [`Cooling::Hold`] schedule at or above the threshold
    /// never freezes and reports `u64::MAX` (the `while t >= threshold`
    /// loop below would otherwise never terminate); a hold below it is
    /// frozen from sweep 0.
    pub fn sweeps_until_frozen(&self) -> u64 {
        if matches!(self.cooling, Cooling::Hold) {
            return if self.initial_temperature >= self.freeze_threshold {
                u64::MAX
            } else {
                0
            };
        }
        let mut t = self.initial_temperature;
        let mut sweeps = 0;
        while t >= self.freeze_threshold {
            t = self.cool_once(t);
            sweeps += 1;
        }
        sweeps
    }
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule::new(10.0, 0.95, 0.05)
    }
}

/// The annealer block: current temperature plus a seeded RNG.
///
/// ```
/// use sachi_ising::anneal::{Annealer, Schedule};
///
/// let mut a = Annealer::new(Schedule::default(), 42);
/// assert!(a.accept(-5)); // downhill moves always accepted
/// a.freeze();
/// assert!(!a.accept(1)); // frozen: uphill moves always rejected
/// ```
#[derive(Debug, Clone)]
pub struct Annealer {
    schedule: Schedule,
    temperature: f64,
    rng: StdRng,
    uphill_accepted: u64,
    uphill_rejected: u64,
}

impl Annealer {
    /// Creates an annealer at the schedule's initial temperature.
    pub fn new(schedule: Schedule, seed: u64) -> Self {
        Annealer {
            schedule,
            temperature: schedule.initial_temperature(),
            rng: StdRng::seed_from_u64(seed),
            uphill_accepted: 0,
            uphill_rejected: 0,
        }
    }

    /// Current temperature.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Whether the annealer has cooled past the freeze threshold.
    pub fn is_frozen(&self) -> bool {
        self.temperature < self.schedule.freeze_threshold()
    }

    /// Probability of accepting a move with energy change `delta`.
    ///
    /// The `t = 0` path (a `Cooling::Linear` schedule clamps to exactly
    /// `0.0`) is reached only through the frozen arm: `Schedule`
    /// constructors assert `freeze_threshold > 0`, so `temperature = 0 <
    /// threshold` always satisfies [`Annealer::is_frozen`] first and the
    /// division never sees a zero denominator. The explicit
    /// `temperature <= 0` arm pins that invariant structurally rather
    /// than by check ordering — an uphill move at non-positive
    /// temperature has probability exactly `0.0`, never `exp(Δ/0)`.
    pub fn acceptance_probability(&self, delta: i64) -> f64 {
        if delta <= 0 {
            1.0
        } else if self.is_frozen() || self.temperature <= 0.0 {
            0.0
        } else {
            (-(delta as f64) / self.temperature).exp()
        }
    }

    /// Metropolis decision for a move with energy change `delta`.
    /// Downhill and neutral moves are always accepted.
    pub fn accept(&mut self, delta: i64) -> bool {
        if delta <= 0 {
            return true;
        }
        if self.is_frozen() {
            self.uphill_rejected += 1;
            return false;
        }
        let accepted = self.rng.gen::<f64>() < self.acceptance_probability(delta);
        if accepted {
            self.uphill_accepted += 1;
        } else {
            self.uphill_rejected += 1;
        }
        accepted
    }

    /// Cools by one schedule step (call once per sweep).
    pub fn cool(&mut self) {
        self.temperature = self.schedule.cool_once(self.temperature);
    }

    /// Drops the temperature to zero immediately.
    pub fn freeze(&mut self) {
        self.temperature = 0.0;
    }

    /// Uphill moves accepted so far.
    pub fn uphill_accepted(&self) -> u64 {
        self.uphill_accepted
    }

    /// Uphill moves rejected so far.
    pub fn uphill_rejected(&self) -> u64 {
        self.uphill_rejected
    }

    /// Borrow of the internal RNG for auxiliary randomness that must stay
    /// on the same deterministic stream.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_validation() {
        let s = Schedule::new(4.0, 0.5, 1.0);
        assert_eq!(s.initial_temperature(), 4.0);
        assert_eq!(s.sweeps_until_frozen(), 3); // 4, 2, 1 -> 0.5 < 1
    }

    #[test]
    #[should_panic(expected = "cooling factor")]
    fn bad_cooling_factor_rejected() {
        let _ = Schedule::new(1.0, 1.5, 0.1);
    }

    #[test]
    #[should_panic(expected = "initial temperature")]
    fn bad_temperature_rejected() {
        let _ = Schedule::new(0.0, 0.5, 0.1);
    }

    #[test]
    fn coefficient_range_schedule_scales() {
        let small = Schedule::for_coefficient_range(1);
        let large = Schedule::for_coefficient_range(1000);
        assert!(large.initial_temperature() > small.initial_temperature());
        assert!(small.initial_temperature() >= 1.0);
    }

    #[test]
    fn downhill_always_accepted() {
        let mut a = Annealer::new(Schedule::default(), 1);
        for d in [-100, -1, 0] {
            assert!(a.accept(d));
        }
        assert_eq!(a.uphill_accepted() + a.uphill_rejected(), 0);
    }

    #[test]
    fn acceptance_probability_decays_with_delta_and_cooling() {
        let mut a = Annealer::new(Schedule::new(10.0, 0.5, 0.01), 1);
        let p_small = a.acceptance_probability(1);
        let p_big = a.acceptance_probability(50);
        assert!(p_small > p_big);
        let before = a.acceptance_probability(5);
        a.cool();
        let after = a.acceptance_probability(5);
        assert!(after < before);
    }

    #[test]
    fn frozen_annealer_rejects_uphill() {
        let mut a = Annealer::new(Schedule::default(), 1);
        a.freeze();
        assert!(a.is_frozen());
        assert!(!a.accept(1));
        assert!(a.accept(-1));
        assert_eq!(a.acceptance_probability(1), 0.0);
        assert_eq!(a.uphill_rejected(), 1);
    }

    #[test]
    fn same_seed_same_decisions() {
        let deltas = [3, 1, 7, 2, 9, 4, 1, 1, 5];
        let run = |seed| {
            let mut a = Annealer::new(Schedule::default(), seed);
            deltas.iter().map(|&d| a.accept(d)).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn hot_annealer_accepts_some_uphill() {
        let mut a = Annealer::new(Schedule::new(1000.0, 0.99, 0.1), 5);
        let accepted = (0..100).filter(|_| a.accept(1)).count();
        assert!(accepted > 80, "hot annealer accepted only {accepted}/100");
    }

    #[test]
    fn linear_schedule_descends_and_freezes() {
        let s = Schedule::linear(10.0, 3.0, 0.5);
        let temps: Vec<f64> = s.temperatures().take(5).collect();
        assert_eq!(temps, vec![10.0, 7.0, 4.0, 1.0, 0.0]);
        assert_eq!(s.sweeps_until_frozen(), 4);
        assert_eq!(s.cooling(), Cooling::Linear(3.0));
        // Linear cooling clamps at zero, never negative.
        assert_eq!(s.cool_once(1.0), 0.0);
        let mut a = Annealer::new(s, 1);
        for _ in 0..10 {
            a.cool();
        }
        assert!(a.is_frozen());
        assert!(a.temperature() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn linear_schedule_validates_step() {
        let _ = Schedule::linear(1.0, 0.0, 0.1);
    }

    #[test]
    fn linear_and_geometric_solve_equally_well_on_easy_instances() {
        use crate::graph::topology;
        use crate::solver::{CpuReferenceSolver, IterativeSolver, SolveOptions};
        use crate::spin::SpinVector;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = topology::king(5, 5, |_, _| 1).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let init = SpinVector::random(25, &mut rng);
        let mut solver = CpuReferenceSolver::new();
        for schedule in [
            Schedule::new(4.0, 0.9, 0.05),
            Schedule::linear(4.0, 0.2, 0.05),
        ] {
            let opts = SolveOptions {
                schedule,
                ..SolveOptions::for_graph(&g, 3)
            };
            let r = solver.solve(&g, &init, &opts);
            assert!(r.converged);
            let ups = r.spins.count_up();
            assert!(
                ups <= 3 || ups >= 22,
                "{schedule:?} left mixed state: {ups}"
            );
        }
    }

    /// ISSUE 10 satellite: pin the acceptance probability at and below
    /// `freeze_threshold`, including the exact-`0.0` temperature a
    /// `Cooling::Linear` schedule clamps to — never NaN/inf, never a
    /// live `exp(Δ/0)`.
    #[test]
    fn acceptance_probability_pinned_at_and_below_freeze_threshold() {
        // Linear schedule that clamps to exactly 0.0 after four steps.
        let s = Schedule::linear(10.0, 3.0, 0.5);
        let mut a = Annealer::new(s, 1);
        // At the threshold itself (t == 0.5 is *not* frozen: `<` test),
        // the probability is live, finite, and in (0, 1).
        while a.temperature() > s.freeze_threshold() {
            a.cool();
        }
        assert_eq!(a.temperature(), 0.0); // 10 → 7 → 4 → 1 → 0 skips 0.5
                                          // Rebuild to land exactly on a just-below-threshold point.
        let s = Schedule::linear(1.0, 0.75, 0.5);
        let mut a = Annealer::new(s, 1);
        a.cool(); // t = 0.25, below threshold but above zero
        assert!(a.is_frozen());
        let p = a.acceptance_probability(3);
        assert_eq!(p, 0.0, "frozen-but-warm annealer must reject uphill");
        a.cool(); // t = 0.0 exactly (linear clamp)
        assert_eq!(a.temperature(), 0.0);
        for delta in [1, 5, i64::MAX] {
            let p = a.acceptance_probability(delta);
            assert!(p.is_finite(), "t=0, Δ={delta}: p={p}");
            assert_eq!(p, 0.0, "t=0, Δ={delta}");
        }
        // Downhill stays certain at t = 0.
        assert_eq!(a.acceptance_probability(-1), 1.0);
        assert_eq!(a.acceptance_probability(0), 1.0);
        // And the hard-frozen path agrees.
        a.freeze();
        assert_eq!(a.acceptance_probability(1), 0.0);
    }

    #[test]
    fn constant_schedule_holds_temperature() {
        let s = Schedule::constant(2.5, 0.05);
        let temps: Vec<f64> = s.temperatures().take(4).collect();
        assert_eq!(temps, vec![2.5, 2.5, 2.5, 2.5]);
        assert_eq!(s.cooling(), Cooling::Hold);
        assert_eq!(s.cool_once(2.5), 2.5);
        // A hold at/above the threshold never freezes — the closed form
        // must report "never" instead of looping forever.
        assert_eq!(s.sweeps_until_frozen(), u64::MAX);
        let mut a = Annealer::new(s, 1);
        for _ in 0..100 {
            a.cool();
        }
        assert!(!a.is_frozen());
        assert_eq!(a.temperature(), 2.5);
    }

    #[test]
    fn constant_schedule_below_threshold_is_greedy_from_sweep_zero() {
        let s = Schedule::constant(0.01, 0.05);
        assert_eq!(s.sweeps_until_frozen(), 0);
        let mut a = Annealer::new(s, 1);
        assert!(a.is_frozen());
        assert!(!a.accept(1));
        assert!(a.accept(-1));
    }

    #[test]
    #[should_panic(expected = "hold temperature")]
    fn constant_schedule_validates_temperature() {
        let _ = Schedule::constant(0.0, 0.05);
    }

    #[test]
    fn temperatures_iterator_is_geometric() {
        let s = Schedule::new(1.0, 0.1, 0.001);
        let t: Vec<f64> = s.temperatures().take(3).collect();
        assert!((t[0] - 1.0).abs() < 1e-12);
        assert!((t[1] - 0.1).abs() < 1e-12);
        assert!((t[2] - 0.01).abs() < 1e-12);
    }
}
