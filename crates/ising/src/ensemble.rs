//! Deterministic parallel replica-ensemble engine.
//!
//! The paper's evaluation leans on many *independent* annealing runs —
//! the multi-start solves behind Fig. 16/19 and the multicore study of
//! Sec. IV.B.2 — and replica-level parallelism is the cheapest
//! throughput lever: replicas share the problem read-only and never
//! exchange state mid-solve. [`EnsembleRunner`] fans `R` replicas out
//! over `T` scoped worker threads (std-only: the workspace is offline)
//! and reduces to a [`BestOf`].
//!
//! ## The determinism contract
//!
//! Same master seed ⇒ identical spins, energies, and accept/reject
//! counts at every thread count. Three mechanisms enforce it:
//!
//! 1. **Per-replica seeds are a pure function of `(master_seed,
//!    replica_index)`** — a SplitMix64 fold ([`derive_replica_seed`]),
//!    never of thread identity or completion order. The fold is
//!    injective in the index (for a fixed master seed), so no two
//!    replicas ever share an annealer stream.
//! 2. **Workers share an atomic queue of replica indices** and write
//!    each finished [`SolveResult`] into the slot named by its index;
//!    the reduction then scans slots in replica order, so work-stealing
//!    order is unobservable.
//! 3. **Ties in the best-energy reduction break toward the lowest
//!    replica index**, a rule independent of which replica finished
//!    first.
//!
//! `tests/ensemble_determinism.rs` property-tests the contract across
//! thread counts and replica orderings, and `tests/golden_agreement.rs`
//! pins every replica against a sequential golden run with the same
//! derived seed.

use crate::graph::IsingGraph;
use crate::solver::{CpuReferenceSolver, IterativeSolver, SolveOptions, SolveResult};
use crate::spin::SpinVector;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// SplitMix64 finalizer: a bijection on `u64` (Steele, Lea & Flood,
/// "Fast splittable pseudorandom number generators", OOPSLA 2014).
#[inline]
pub(crate) fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The SplitMix64 stream increment (odd, so multiplying by it is a
/// bijection mod 2^64).
pub(crate) const SPLITMIX64_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the annealer seed of replica `replica_index` from the
/// ensemble's `master_seed`.
///
/// This is the `replica_index + 1`-th state of a SplitMix64 stream
/// started at `master_seed`, collapsed algebraically
/// (`state_k = master + (k+1)·γ`) and passed through the SplitMix64
/// output mix. For a fixed master seed the map `index → seed` is
/// injective over the full `u64` index range: `(k+1)·γ` is injective
/// (γ is odd) and the finalizer is a bijection. Results of an ensemble
/// therefore depend only on `(master_seed, replica_index)` — never on
/// thread count or scheduling.
#[inline]
pub fn derive_replica_seed(master_seed: u64, replica_index: u64) -> u64 {
    splitmix64_mix(
        master_seed.wrapping_add(replica_index.wrapping_add(1).wrapping_mul(SPLITMIX64_GAMMA)),
    )
}

/// Aggregate statistics over every replica of an ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnsembleStats {
    /// Replicas run.
    pub replicas: u64,
    /// Replicas that reached convergence before their sweep cap.
    pub converged: u64,
    /// Total sweeps across all replicas.
    pub total_sweeps: u64,
    /// Total spin flips across all replicas.
    pub total_flips: u64,
    /// Total Metropolis uphill moves accepted across all replicas.
    pub uphill_accepted: u64,
    /// Total Metropolis uphill moves rejected across all replicas.
    pub uphill_rejected: u64,
    /// Replicas flagged degraded by fault recovery (exhausted re-fetch
    /// budget or fail-fast abort).
    pub degraded: u64,
    /// Replica-exchange swap decisions evaluated (0 unless the ensemble
    /// ran with parallel tempering).
    pub swap_attempts: u64,
    /// Replica-exchange swaps accepted by the Metropolis criterion.
    pub swap_accepted: u64,
    /// Stalled tempering rungs reseeded by the restart policy.
    pub tempering_restarts: u64,
}

impl EnsembleStats {
    /// The replica-exchange counters as `(name, value)` metric pairs,
    /// in a fixed order, for export through `sachi-obs` metric sinks.
    /// Only the tempering counters live here: the per-replica solver
    /// counters (`solver_*`) and the cycle-domain ensemble fold
    /// (`ensemble_*`) are exported by their own layers, and this list
    /// must not double-count them.
    pub fn export_tempering_metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("tempering_swap_attempts", self.swap_attempts),
            ("tempering_swap_accepted", self.swap_accepted),
            ("tempering_restarts", self.tempering_restarts),
        ]
    }
}

/// The reduction of an ensemble: every replica's result in replica
/// order, the index of the best one, and aggregate statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BestOf {
    /// Per-replica results, indexed by replica (not completion order).
    pub replicas: Vec<SolveResult>,
    /// Index of the lowest-energy *healthy* replica (ties break to the
    /// lowest index). Degraded replicas — flagged by fault recovery —
    /// can win only when every replica is degraded, so a corrupted
    /// result is never silently preferred over a clean one.
    pub best_index: usize,
    /// Aggregate accept/reject and progress statistics.
    pub stats: EnsembleStats,
}

impl BestOf {
    /// Reduces per-replica results (in replica order) to the ensemble
    /// verdict. Public so external schedulers — the `sachi serve` job
    /// pool packs replicas from different jobs onto one worker pool —
    /// can reuse the exact reduction the in-process runner applies;
    /// byte-identical inputs therefore produce byte-identical verdicts
    /// regardless of which host ran the replicas.
    pub fn reduce(replicas: Vec<SolveResult>) -> Self {
        debug_assert!(!replicas.is_empty(), "ensembles have >= 1 replica");
        let mut best_index = 0;
        let mut stats = EnsembleStats {
            replicas: replicas.len() as u64,
            ..EnsembleStats::default()
        };
        // The winner is the replica minimizing the totally ordered key
        // `(degraded, energy)` — health dominates energy — and on exact
        // key ties the LOWEST replica index wins. Strict `<` against the
        // incumbent makes the index rule explicit: a later replica can
        // displace an earlier one only by a strictly smaller key, so the
        // verdict is invariant under reduction order and identical for
        // any permutation of equal-key replicas.
        for (k, r) in replicas.iter().enumerate() {
            let best = &replicas[best_index];
            if (r.degraded, r.energy) < (best.degraded, best.energy) {
                best_index = k;
            }
            stats.converged += u64::from(r.converged);
            stats.total_sweeps += r.sweeps;
            stats.total_flips += r.flips;
            stats.uphill_accepted += r.uphill_accepted;
            stats.uphill_rejected += r.uphill_rejected;
            stats.degraded += u64::from(r.degraded);
        }
        BestOf {
            replicas,
            best_index,
            stats,
        }
    }

    /// The best (lowest-energy) replica's result.
    pub fn best(&self) -> &SolveResult {
        self.replicas
            .get(self.best_index)
            .expect("reduce picks best_index from the replica vec it stores")
    }

    /// Consumes the ensemble, returning the best replica's result.
    pub fn into_best(mut self) -> SolveResult {
        self.replicas.swap_remove(self.best_index)
    }
}

/// Runs `R` independent annealing replicas of one problem over `T`
/// worker threads and reduces to a [`BestOf`].
///
/// Replicas differ only in their annealer seed, derived by
/// [`derive_replica_seed`] from the master seed in
/// [`SolveOptions::seed`]; the initial spins are shared. Any
/// deterministic [`IterativeSolver`] can back the replicas via
/// [`EnsembleRunner::run`]'s per-replica factory.
///
/// ```
/// use sachi_ising::prelude::*;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let graph = topology::king(6, 6, |_, _| 1)?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let init = SpinVector::random(36, &mut rng);
/// let opts = SolveOptions::for_graph(&graph, 7);
///
/// let runner = EnsembleRunner::new(4).with_threads(2);
/// let best_of = runner.run_reference(&graph, &init, &opts);
/// assert_eq!(best_of.replicas.len(), 4);
/// assert_eq!(best_of.best().energy, -(graph.num_edges() as i64));
/// // Identical at any thread count:
/// assert_eq!(
///     best_of,
///     EnsembleRunner::new(4).with_threads(1).run_reference(&graph, &init, &opts),
/// );
/// # Ok::<(), sachi_ising::graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EnsembleRunner {
    replicas: usize,
    threads: usize,
}

impl EnsembleRunner {
    /// Creates a runner for `replicas` replicas over the host's
    /// available parallelism.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn new(replicas: usize) -> Self {
        assert!(replicas > 0, "need at least one replica");
        EnsembleRunner {
            replicas,
            threads: Self::available_threads(),
        }
    }

    /// Overrides the worker-thread count. Thread count never changes
    /// results — only wall-clock.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Replica count.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The host's available parallelism (1 if it cannot be queried).
    pub fn available_threads() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// The [`SolveOptions`] replica `k` runs with: the base options with
    /// the seed replaced by [`derive_replica_seed`]`(base.seed, k)`.
    pub fn replica_options(base: &SolveOptions, replica: usize) -> SolveOptions {
        SolveOptions {
            seed: derive_replica_seed(base.seed, replica as u64),
            ..base.clone()
        }
    }

    /// Runs the ensemble over scoped worker threads. `factory(k)` builds
    /// the solver for replica `k`, so hardware machines can be
    /// instantiated per replica (and capture per-replica report sinks).
    ///
    /// Workers pull replica indices from a shared atomic queue; each
    /// result lands in the slot named by its replica index, so the
    /// output is independent of thread count and work-stealing order
    /// whenever the solver itself is deterministic per seed.
    ///
    /// # Panics
    ///
    /// Panics (poisoning aside) only if a replica's solver panics.
    pub fn run<S, F>(
        &self,
        graph: &IsingGraph,
        initial: &SpinVector,
        base: &SolveOptions,
        factory: F,
    ) -> BestOf
    where
        S: IterativeSolver,
        F: Fn(usize) -> S + Sync,
    {
        if let Some(topts) = base.tempering.as_ref().filter(|t| t.exchange) {
            return crate::tempering::run_exchange(
                self.threads,
                self.replicas,
                graph,
                initial,
                base,
                topts,
                &factory,
            );
        }
        let per_replica: Vec<SolveOptions> = (0..self.replicas)
            .map(|k| Self::replica_options(base, k))
            .collect();
        let slots: Mutex<Vec<Option<SolveResult>>> = Mutex::new(vec![None; self.replicas]);
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(self.replicas);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= self.replicas {
                        break;
                    }
                    let mut solver = factory(k);
                    let result = solver.solve(graph, initial, &per_replica[k]);
                    slots
                        .lock()
                        .expect("ensemble slot mutex poisoned: a replica panicked")[k] =
                        Some(result);
                });
            }
        });

        let replicas: Vec<SolveResult> = slots
            .into_inner()
            .expect("ensemble slot mutex poisoned: a replica panicked")
            .into_iter()
            .map(|slot| slot.expect("work queue covers every replica index"))
            .collect();
        BestOf::reduce(replicas)
    }

    /// Runs the ensemble on the golden-model CPU solver.
    pub fn run_reference(
        &self,
        graph: &IsingGraph,
        initial: &SpinVector,
        base: &SolveOptions,
    ) -> BestOf {
        self.run(graph, initial, base, |_| CpuReferenceSolver::new())
    }

    /// Runs the replicas strictly sequentially (in replica order) on one
    /// borrowed solver. For deterministic solvers this produces exactly
    /// the [`BestOf`] that [`EnsembleRunner::run`] produces at any
    /// thread count — the property the conformance suite asserts.
    pub fn run_sequential<S: IterativeSolver>(
        &self,
        solver: &mut S,
        graph: &IsingGraph,
        initial: &SpinVector,
        base: &SolveOptions,
    ) -> BestOf {
        if let Some(topts) = base.tempering.as_ref().filter(|t| t.exchange) {
            return crate::tempering::run_exchange_sequential(
                solver,
                self.replicas,
                graph,
                initial,
                base,
                topts,
            );
        }
        let replicas: Vec<SolveResult> = (0..self.replicas)
            .map(|k| solver.solve(graph, initial, &Self::replica_options(base, k)))
            .collect();
        BestOf::reduce(replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::topology;
    use crate::solver::SolveOptions;
    use crate::spin::Spin;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frustrated_graph() -> IsingGraph {
        topology::complete(12, |i, j| ((i * 5 + j * 7) % 9) as i32 - 4).unwrap()
    }

    #[test]
    fn seed_derivation_is_injective_over_small_indices() {
        let mut seeds: Vec<u64> = (0..4096).map(|k| derive_replica_seed(99, k)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4096);
    }

    #[test]
    fn seed_derivation_differs_across_masters() {
        assert_ne!(derive_replica_seed(1, 0), derive_replica_seed(2, 0));
        assert_ne!(derive_replica_seed(0, 0), derive_replica_seed(0, 1));
    }

    #[test]
    fn thread_count_is_unobservable() {
        let g = frustrated_graph();
        let mut rng = StdRng::seed_from_u64(3);
        let init = SpinVector::random(12, &mut rng);
        let opts = SolveOptions::for_graph(&g, 17).with_trace();
        let reference = EnsembleRunner::new(5)
            .with_threads(1)
            .run_reference(&g, &init, &opts);
        for threads in [2, 3, 8] {
            let got = EnsembleRunner::new(5)
                .with_threads(threads)
                .run_reference(&g, &init, &opts);
            assert_eq!(got, reference, "threads = {threads}");
        }
    }

    #[test]
    fn sequential_run_matches_parallel_run() {
        let g = frustrated_graph();
        let mut rng = StdRng::seed_from_u64(4);
        let init = SpinVector::random(12, &mut rng);
        let opts = SolveOptions::for_graph(&g, 23);
        let runner = EnsembleRunner::new(6).with_threads(4);
        let parallel = runner.run_reference(&g, &init, &opts);
        let mut solver = CpuReferenceSolver::new();
        let sequential = runner.run_sequential(&mut solver, &g, &init, &opts);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn best_index_breaks_ties_toward_lowest_replica() {
        // An edge-free graph: every replica ends at energy 0, so the
        // reduction must pick replica 0 regardless of scheduling.
        let g = crate::graph::GraphBuilder::new(3).build().unwrap();
        let init = SpinVector::filled(3, Spin::Up);
        let opts = SolveOptions::for_graph(&g, 5).with_max_sweeps(4);
        let best_of = EnsembleRunner::new(7)
            .with_threads(4)
            .run_reference(&g, &init, &opts);
        assert_eq!(best_of.best_index, 0);
        assert!(best_of.replicas.iter().all(|r| r.energy == 0));
    }

    #[test]
    fn stats_aggregate_every_replica() {
        let g = frustrated_graph();
        let mut rng = StdRng::seed_from_u64(6);
        let init = SpinVector::random(12, &mut rng);
        let opts = SolveOptions::for_graph(&g, 31);
        let best_of = EnsembleRunner::new(4)
            .with_threads(2)
            .run_reference(&g, &init, &opts);
        let stats = best_of.stats;
        assert_eq!(stats.replicas, 4);
        assert_eq!(
            stats.total_sweeps,
            best_of.replicas.iter().map(|r| r.sweeps).sum::<u64>()
        );
        assert_eq!(
            stats.total_flips,
            best_of.replicas.iter().map(|r| r.flips).sum::<u64>()
        );
        assert_eq!(
            stats.uphill_accepted + stats.uphill_rejected,
            best_of
                .replicas
                .iter()
                .map(|r| r.uphill_accepted + r.uphill_rejected)
                .sum::<u64>()
        );
        assert_eq!(
            stats.converged as usize,
            best_of.replicas.iter().filter(|r| r.converged).count()
        );
    }

    #[test]
    fn into_best_returns_the_best_replica() {
        let g = frustrated_graph();
        let mut rng = StdRng::seed_from_u64(8);
        let init = SpinVector::random(12, &mut rng);
        let opts = SolveOptions::for_graph(&g, 41);
        let best_of = EnsembleRunner::new(5).run_reference(&g, &init, &opts);
        let best_energy = best_of.best().energy;
        assert!(best_of.replicas.iter().all(|r| r.energy >= best_energy));
        assert_eq!(best_of.into_best().energy, best_energy);
    }

    fn result_with(energy: i64, degraded: bool) -> SolveResult {
        SolveResult {
            spins: SpinVector::filled(1, Spin::Up),
            energy,
            sweeps: 1,
            flips: 0,
            converged: true,
            trace: Vec::new(),
            uphill_accepted: 0,
            uphill_rejected: 0,
            degraded,
        }
    }

    #[test]
    fn degraded_replicas_lose_to_healthy_ones() {
        // The degraded replica has the best raw energy but must not win.
        let best_of = BestOf::reduce(vec![
            result_with(-10, true),
            result_with(-4, false),
            result_with(-7, false),
        ]);
        assert_eq!(best_of.best_index, 2);
        assert_eq!(best_of.stats.degraded, 1);

        // All degraded: fall back to the overall lowest energy.
        let all_bad = BestOf::reduce(vec![result_with(-3, true), result_with(-9, true)]);
        assert_eq!(all_bad.best_index, 1);
        assert_eq!(all_bad.stats.degraded, 2);

        // Ties still break to the lowest index within a health class.
        let tied = BestOf::reduce(vec![
            result_with(-5, true),
            result_with(-5, false),
            result_with(-5, false),
        ]);
        assert_eq!(tied.best_index, 1);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let _ = EnsembleRunner::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = EnsembleRunner::new(1).with_threads(0);
    }
}
