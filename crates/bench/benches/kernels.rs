//! Criterion micro-benchmarks over the simulator's hot kernels: the
//! in-SRAM XNOR access, the mixed-encoding products, golden local-field
//! evaluation, per-design tuple computes, and whole machine sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi_core::prelude::*;
use sachi_ising::prelude::*;
use sachi_mem::prelude::*;
use sachi_workloads::prelude::*;
use std::hint::black_box;

fn bench_sram(c: &mut Criterion) {
    let mut group = c.benchmark_group("sram");
    let mut tile = SramTile::new(100, 800);
    let pattern: Vec<bool> = (0..800).map(|i| i % 3 == 0).collect();
    for row in 0..100 {
        tile.write_row(row, &pattern).unwrap();
    }
    group.bench_function("compute_xnor_full_row_800", |b| {
        b.iter(|| black_box(tile.compute_xnor_full_row(black_box(37), true).unwrap()))
    });
    group.bench_function("compute_xnor_bit_of_800", |b| {
        b.iter(|| {
            black_box(
                tile.compute_xnor_bit(black_box(37), true, 0..800, 399)
                    .unwrap(),
            )
        })
    });
    group.bench_function("write_row_800", |b| {
        b.iter(|| tile.write_row(black_box(11), &pattern).unwrap())
    });
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoding");
    for bits in [4u32, 8, 32] {
        let enc = MixedEncoding::new(bits).unwrap();
        let j = enc.max_value() / 3;
        group.bench_with_input(BenchmarkId::new("xnor_product", bits), &j, |b, &j| {
            b.iter(|| black_box(enc.xnor_product(black_box(j), Spin::Down)))
        });
        group.bench_with_input(
            BenchmarkId::new("reuse_aware_product", bits),
            &j,
            |b, &j| {
                b.iter(|| black_box(enc.reuse_aware_product(black_box(j), Spin::Up, Spin::Down)))
            },
        );
    }
    group.finish();
}

fn bench_local_field(c: &mut Criterion) {
    let mut group = c.benchmark_group("hamiltonian");
    let king = topology::king(32, 32, |i, j| ((i + j) % 7) as i32 - 3).unwrap();
    let complete = topology::complete(256, |i, j| ((i * 3 + j) % 15) as i32 - 7).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let spins_king = SpinVector::random(king.num_spins(), &mut rng);
    let spins_complete = SpinVector::random(complete.num_spins(), &mut rng);
    group.bench_function("local_field_kings_1024", |b| {
        b.iter(|| black_box(local_field(&king, &spins_king, black_box(500))))
    });
    group.bench_function("local_field_complete_256", |b| {
        b.iter(|| black_box(local_field(&complete, &spins_complete, black_box(128))))
    });
    group.bench_function("energy_kings_1024", |b| {
        b.iter(|| black_box(energy(&king, &spins_king)))
    });
    group.finish();
}

fn bench_designs(c: &mut Criterion) {
    let mut group = c.benchmark_group("design_compute_tuple");
    let graph = topology::king(16, 16, |i, j| ((i + j) % 7) as i32 + 1).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let spins = SpinVector::random(graph.num_spins(), &mut rng);
    let store = TupleStore::new(&graph, &spins);
    let enc = MixedEncoding::new(graph.bits_required()).unwrap();
    // An interior tuple with the full 8-neighbor fan-in.
    let tuple = store.tuple(122);
    for design in DesignKind::ALL {
        let d = stationarity(design);
        let (rows, cols) = d.tile_requirements(graph.max_degree(), enc.bits(), 800);
        let mut tile = SramTile::new(rows, cols);
        group.bench_function(design.label(), |b| {
            b.iter(|| {
                let mut ctx = ComputeContext::new();
                black_box(d.compute_tuple(&mut tile, &enc, black_box(tuple), Spin::Up, &mut ctx))
            })
        });
    }
    group.finish();
}

fn bench_machines(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_solve");
    group.sample_size(10);
    let w = MolecularDynamics::new(12, 12, 3);
    let graph = w.graph().clone();
    let mut rng = StdRng::seed_from_u64(3);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(&graph, 4).with_max_sweeps(30);
    group.bench_function("cpu_reference_md144_30sweeps", |b| {
        b.iter(|| {
            let mut solver = CpuReferenceSolver::new();
            black_box(solver.solve(&graph, &init, &opts))
        })
    });
    for design in [DesignKind::N1b, DesignKind::N3] {
        group.bench_function(format!("sachi_{}_md144_30sweeps", design.label()), |b| {
            b.iter(|| {
                let mut machine = SachiMachine::new(SachiConfig::new(design));
                black_box(machine.solve(&graph, &init, &opts))
            })
        });
    }
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    // Resident tiled machine vs scratch machine on the same solve.
    let w = MolecularDynamics::new(12, 12, 5);
    let graph = w.graph().clone();
    let mut rng = StdRng::seed_from_u64(9);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(&graph, 6).with_max_sweeps(20);
    group.bench_function("resident_n3_md144_20sweeps", |b| {
        b.iter(|| {
            let mut machine = ResidentN3Machine::new(SachiConfig::new(DesignKind::N3));
            black_box(machine.solve_detailed(&graph, &init, &opts))
        })
    });
    // L1 cache trace throughput.
    let trace: Vec<u64> = (0..10_000u64)
        .map(|i| (i.wrapping_mul(2654435761) % (1 << 18)) & !0x7)
        .collect();
    group.bench_function("l1_cache_10k_accesses", |b| {
        b.iter(|| {
            let mut l1 = L1Cache::typical_l1();
            black_box(l1.run_trace(trace.iter().copied()).unwrap())
        })
    });
    // DIMACS parse of a lattice graph.
    let text = to_dimacs(&topology::king(20, 20, |i, j| ((i + j) % 9) as i32 - 4).unwrap());
    group.bench_function("parse_dimacs_king400", |b| {
        b.iter(|| black_box(parse_dimacs(black_box(&text)).unwrap()))
    });
    group.finish();
}

fn bench_perf_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_model");
    let model = PerfModel::new(SachiConfig::new(DesignKind::N3));
    let shape = CopKind::TravelingSalesman.standard_shape(1_000_000);
    group.bench_function("iteration_estimate_tsp_1m", |b| {
        b.iter(|| black_box(model.iteration(black_box(&shape))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sram,
    bench_encoding,
    bench_local_field,
    bench_designs,
    bench_machines,
    bench_extensions,
    bench_perf_model
);
criterion_main!(benches);
