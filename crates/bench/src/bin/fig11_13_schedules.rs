//! Figs. 11–13: the per-design compute schedules on the paper's own
//! running example (the Fig. 2 4x3 image with 3-bit ICs) — phase-1
//! cycles, idle time before phases 3–5 activate, XNOR-queue sizing, and
//! SRAM throughput — plus a live functional check that all four designs
//! produce the same `H_σ` from real SRAM discharge patterns.

use sachi_bench::{section, Table};
use sachi_core::prelude::*;
use sachi_ising::prelude::*;
use sachi_mem::prelude::*;

fn schedule_table(n: u64, r: u32, label: &str) {
    section(&format!("schedules for {label} (N = {n}, R = {r})"));
    let mut table = Table::new([
        "design",
        "phase-1 cycles",
        "idle cycles",
        "queue bits",
        "throughput b/cyc",
        "latency",
        "max reuse",
    ]);
    for design in DesignKind::ALL {
        let s = PhaseSchedule::new(design, n, r, 800);
        table.row([
            design.label().to_string(),
            s.phase1_cycles.to_string(),
            s.idle_cycles.to_string(),
            s.queue_bits.to_string(),
            s.throughput_bits_per_cycle.to_string(),
            s.total_latency_cycles.to_string(),
            stationarity(design).max_reuse(n, r).to_string(),
        ]);
    }
    table.print();
}

fn main() {
    // Fig. 11's running example: interior pixel of a 4x3 grid image has
    // N = 4 neighbors at R = 3 bits; the figure highlights 2 of them.
    schedule_table(2, 3, "Fig. 11's highlighted pair");
    schedule_table(4, 3, "a full 4x3-image interior pixel");
    schedule_table(8, 4, "molecular dynamics (King's graph, 4-bit)");
    schedule_table(999, 4, "1K-city TSP (complete graph, 4-bit)");

    section("paper formulas check");
    println!("n1a idle = (R-1)*N + 1, queue = N*(R+1); n1b idle = R, queue = R+1;");
    println!("n2 eliminates the queue with R-bit/cycle reads; n3 reads N*(R+1) bits/cycle.");

    section("functional agreement on the Fig. 2 image graph");
    // Fig. 2: 4x3 image, 4-neighbor edges, J = pixel difference.
    let pixels: [i32; 12] = [40, 45, 180, 175, 42, 170, 185, 178, 38, 44, 172, 168];
    let mut builder = GraphBuilder::new(12);
    for r in 0..3usize {
        for c in 0..4usize {
            let u = (r * 4 + c) as u32;
            if c + 1 < 4 {
                let v = u + 1;
                builder.push_edge(
                    u,
                    v,
                    24 - (pixels[u as usize] - pixels[v as usize]).abs() / 8,
                );
            }
            if r + 1 < 3 {
                let v = u + 4;
                builder.push_edge(
                    u,
                    v,
                    24 - (pixels[u as usize] - pixels[v as usize]).abs() / 8,
                );
            }
        }
    }
    let graph = builder.build().expect("Fig. 2 graph");
    let spins = SpinVector::from_spins(&[
        Spin::Down,
        Spin::Down,
        Spin::Up,
        Spin::Up,
        Spin::Down,
        Spin::Up,
        Spin::Up,
        Spin::Up,
        Spin::Down,
        Spin::Down,
        Spin::Up,
        Spin::Up,
    ]);
    let store = TupleStore::new(&graph, &spins);
    let enc = MixedEncoding::new(graph.bits_required()).expect("resolution in range");
    let mut table = Table::new(["pixel", "golden H_σ", "n1a", "n1b", "n2", "n3"]);
    for i in 0..12 {
        let golden = local_field(&graph, &spins, i);
        let mut row = vec![format!("σ{i}"), golden.to_string()];
        for design in DesignKind::ALL {
            let d = stationarity(design);
            let (rows, cols) = d.tile_requirements(graph.max_degree(), enc.bits(), 800);
            let mut tile = SramTile::new(rows, cols);
            let mut ctx = ComputeContext::new();
            let h = d.compute_tuple(&mut tile, &enc, store.tuple(i), spins.get(i), &mut ctx);
            assert_eq!(h, golden, "{design} diverged at pixel {i}");
            row.push(h.to_string());
        }
        table.row(row);
    }
    table.print();
    println!("all four stationarity designs reproduce the golden local field bit-exactly");
}
