//! Solution quality vs injected bit-error rate across the four
//! stationarity designs.
//!
//! The all-digital pipeline makes memory faults *injectable* and
//! *detectable*: transient flips are drawn from a deterministic
//! SplitMix64 stream at the SRAM read boundary, tuple-row parity
//! detects odd-weight corruption, and the retry policy re-fetches the
//! row on detection. This harness sweeps the read BER and reports how
//! much quality each design loses, how many faults parity caught, and
//! how much recovery work the retries cost — plus two cross-checks:
//! BER 0 is byte-identical to a fault-free run, and the whole fault
//! trajectory is thread-count-independent.
//!
//! `--smoke` runs a reduced sweep for CI.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi_bench::{section, Table};
use sachi_core::prelude::*;
use sachi_ising::prelude::*;
use sachi_mem::prelude::*;

const FAULT_SEED: u64 = 0xFA17;

struct Sweep {
    rows: usize,
    cols: usize,
    replicas: usize,
    bers: &'static [f64],
}

fn ensemble(
    graph: &IsingGraph,
    init: &SpinVector,
    opts: &SolveOptions,
    config: &SachiConfig,
    replicas: usize,
    threads: usize,
) -> (sachi_ising::ensemble::BestOf, EnsembleReport) {
    let ledger = ReplicaLedger::new(replicas);
    let best_of = EnsembleRunner::new(replicas)
        .with_threads(threads)
        .run(graph, init, opts, |k| {
            ReportingMachine::new(SachiMachine::new(config.clone()), k, &ledger)
        });
    (best_of, ledger.finish())
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let sweep = if smoke {
        Sweep {
            rows: 8,
            cols: 8,
            replicas: 2,
            bers: &[0.0, 1e-3],
        }
    } else {
        Sweep {
            rows: 20,
            cols: 20,
            replicas: 4,
            bers: &[0.0, 1e-6, 1e-4, 1e-3, 1e-2],
        }
    };

    section(&format!(
        "quality vs read BER: King's graph {}x{}, {} replicas, {} policy",
        sweep.rows,
        sweep.cols,
        sweep.replicas,
        RecoveryPolicy::default()
    ));
    let graph = topology::king(sweep.rows, sweep.cols, |i, j| ((i + 3 * j) % 7) as i32 - 3)
        .expect("lattice");
    let mut rng = StdRng::seed_from_u64(21);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(&graph, 27);

    let mut t = Table::new([
        "design", "ber", "H", "dH", "injected", "detected", "undet", "retries", "degraded",
    ]);
    for design in DesignKind::ALL {
        let clean_config = SachiConfig::new(design);
        let (golden, _) = ensemble(&graph, &init, &opts, &clean_config, sweep.replicas, 2);
        for &ber in sweep.bers {
            let model = FaultModel::new(FAULT_SEED).with_read_ber(FaultRate::from_probability(ber));
            let config = clean_config.clone().with_fault(FaultProfile::new(model));
            let (best_of, report) = ensemble(&graph, &init, &opts, &config, sweep.replicas, 2);
            if ber == 0.0 {
                // Zero-rate identity: an inert fault model must not
                // perturb the ensemble in any way.
                assert_eq!(best_of, golden, "BER 0 must match the fault-free run");
            }
            // Determinism: the fault trajectory may not depend on the
            // worker-thread count.
            let (rerun, rerun_report) = ensemble(&graph, &init, &opts, &config, sweep.replicas, 1);
            assert_eq!(best_of, rerun, "thread count changed faulted results");
            assert_eq!(
                report.faults_injected, rerun_report.faults_injected,
                "thread count changed the fault stream"
            );
            let undetected: u64 = report.reports.iter().map(|r| r.faults.undetected).sum();
            let best = best_of.into_best();
            t.row([
                design.label().to_string(),
                format!("{ber:.0e}"),
                best.energy.to_string(),
                (best.energy - golden.replicas[golden.best_index].energy).to_string(),
                report.faults_injected.to_string(),
                report.faults_detected.to_string(),
                undetected.to_string(),
                report.fault_retries.to_string(),
                format!("{}/{}", report.degraded_replicas, sweep.replicas),
            ]);
        }
    }
    t.print();
    println!();
    println!("BER 0 is asserted byte-identical to the fault-free golden ensemble,");
    println!("and every faulted point is asserted thread-count-independent. Parity");
    println!("catches all odd-weight corruption; the undetected column counts");
    println!("even-weight aliasing, the quality loss that survives recovery.");
}
