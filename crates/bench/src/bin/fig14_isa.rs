//! Fig. 14: software support — the repurposed `FIST` secondary opcodes
//! and the new `XNORM` instruction, printed as the paper's table and then
//! exercised end-to-end on the micro-executor.

use sachi_bench::{section, Table};
use sachi_core::encoding::MixedEncoding;
use sachi_core::isa::{
    FistSubop, Instruction, MicroExecutor, FIST_PRIMARY_OPCODE, XNORM_PRIMARY_OPCODE,
};
use sachi_ising::spin::Spin;
use sachi_mem::sram::SramTile;

fn main() {
    section("Fig. 14 - instruction table");
    let mut table = Table::new(["instruction", "primary opcode", "secondary opcode", "usage"]);
    table.row([
        "FIST (repurposed x86)".to_string(),
        format!("{FIST_PRIMARY_OPCODE:#04X}"),
        format!("{:#04X}", FistSubop::DramWrite.secondary_opcode()),
        "DRAM write".to_string(),
    ]);
    table.row([
        "FIST (repurposed x86)".to_string(),
        format!("{FIST_PRIMARY_OPCODE:#04X}"),
        format!("{:#04X}", FistSubop::DramToStorage.secondary_opcode()),
        "DRAM to storage array".to_string(),
    ]);
    table.row([
        "FIST (repurposed x86)".to_string(),
        format!("{FIST_PRIMARY_OPCODE:#04X}"),
        format!("{:#04X}", FistSubop::StorageToCompute.secondary_opcode()),
        "storage to compute array".to_string(),
    ]);
    table.row([
        "XNORM DEST,[SRC1],[SRC2],BIT".to_string(),
        format!("{XNORM_PRIMARY_OPCODE:#04X}"),
        "-".to_string(),
        "in-memory XNOR".to_string(),
    ]);
    table.print();

    section("encoded program");
    let program = vec![
        Instruction::Fist {
            subop: FistSubop::DramToStorage,
            addr: 0,
            len: 9,
        },
        Instruction::Fist {
            subop: FistSubop::StorageToCompute,
            addr: 0,
            len: 8,
        },
        Instruction::Xnorm {
            dest: 1,
            src1: 8,
            src2: 0,
            bit: 8,
        },
    ];
    for insn in &program {
        let bytes = insn.encode();
        let hex: Vec<String> = bytes.iter().map(|b| format!("{b:02X}")).collect();
        println!("  {insn:<45} -> [{}]", hex.join(" "));
    }
    let bytes: Vec<u8> = program.iter().flat_map(|i| i.encode()).collect();
    let decoded = Instruction::decode_program(&bytes).expect("well-formed program");
    assert_eq!(decoded, program);
    println!(
        "  ({} bytes total; decoder round-trips exactly)",
        bytes.len()
    );

    section("execution on the micro-machine");
    let enc = MixedEncoding::new(8).expect("8-bit supported");
    let j = -77i64;
    let mut exec = MicroExecutor::new(64, 64, SramTile::new(1, 8));
    exec.write_dram(0, &enc.encode(j).expect("fits 8-bit"))
        .expect("in bounds");
    exec.write_dram(8, &[Spin::Down.bit()]).expect("in bounds");
    exec.run(&program).expect("program executes");
    println!(
        "  J = {j}, σ = -1: XNORM wrote r1 = {} (expected {})",
        exec.register(1),
        -j
    );
    assert_eq!(exec.register(1), -j);
    println!(
        "  tile counters: {} compute accesses, {} RWL pulses, {} RBL discharges",
        exec.tile().stats().compute_accesses,
        exec.tile().stats().rwl_activations,
        exec.tile().stats().rbl_discharges
    );
}
