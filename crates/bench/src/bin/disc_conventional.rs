//! Sec. VII.1: impact on conventional workloads.
//!
//! The paper argues SACHI leaves normal cache operation untouched: the 8T
//! array is unmodified, the extra 2:1 mux is retimed away, and the
//! compute periphery is a separate datapath. The honest cost it *does*
//! have is mode exclusivity — "the cache operates in a single mode at a
//! time" — so a mode switch flushes the L1 and conventional code restarts
//! cold. This harness quantifies both sides with the runtime API.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sachi_bench::{percent, section, Table};
use sachi_core::prelude::*;
use sachi_ising::prelude::*;
use sachi_mem::prelude::*;
use sachi_workloads::prelude::*;

/// A conventional-workload stand-in: mixed sequential / strided / random
/// address trace.
fn conventional_trace(len: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Vec::with_capacity(len);
    for i in 0..len {
        let addr = match i % 4 {
            0 | 1 => (i as u64) * 8,                  // sequential words
            2 => (i as u64 % 512) * 256,              // strided
            _ => rng.gen_range(0..1u64 << 20) & !0x7, // random
        };
        trace.push(addr);
    }
    trace
}

fn main() {
    section("normal-mode behaviour with and without SACHI present");
    // "Without SACHI" = a plain L1; "with SACHI" = the same L1 behind the
    // mode register, never leaving normal mode. Identical by construction
    // — the claim is that the hardware addition does not perturb the
    // normal datapath — and this shows it holds in the model.
    let trace = conventional_trace(100_000, 1);
    let mut plain = L1Cache::typical_l1();
    let (plain_hits, plain_misses) = plain.run_trace(trace.iter().copied()).unwrap();

    let mut ctx = SachiContext::new(SachiConfig::new(DesignKind::N3));
    let (ctx_hits, ctx_misses) = ctx.l1_mut().run_trace(trace.iter().copied()).unwrap();
    assert_eq!((plain_hits, plain_misses), (ctx_hits, ctx_misses));

    let mut t = Table::new(["configuration", "accesses", "hit rate", "read latency"]);
    t.row([
        "plain L1 (no SACHI)".to_string(),
        trace.len().to_string(),
        percent(plain.stats().hit_rate()),
        format!("{}", plain.read_latency()),
    ]);
    t.row([
        "repurposable L1 (SACHI present, normal mode)".to_string(),
        trace.len().to_string(),
        percent(ctx.l1().stats().hit_rate()),
        format!("{}", ctx.l1().read_latency()),
    ]);
    t.print();
    println!("identical hit/miss stream and latency: the added mux is retimed, the");
    println!("compute periphery is a separate datapath (Sec. VII.1).");

    section("the real cost: mode exclusivity across a launch");
    let w = MolecularDynamics::new(40, 40, 7);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(3);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let problem = ctx.upload(graph, &init);

    // Warm phase -> launch -> cold phase.
    let warm = conventional_trace(20_000, 2);
    ctx.l1_mut().run_trace(warm.iter().copied()).unwrap();
    let warm_rate = {
        let mut probe = L1Cache::typical_l1();
        probe.run_trace(warm.iter().copied()).unwrap();
        let (h, m) = probe.run_trace(warm.iter().copied()).unwrap();
        h as f64 / (h + m) as f64
    };
    let launch = ctx.launch(&problem, &SolveOptions::for_graph(graph, 5));
    let (cold_h, cold_m) = ctx.l1_mut().run_trace(warm.iter().copied()).unwrap();
    let cold_rate = cold_h as f64 / (cold_h + cold_m) as f64;

    let mut t2 = Table::new(["phase", "value"]);
    t2.row([
        "re-run hit rate, warm cache (no launch)".to_string(),
        percent(warm_rate),
    ]);
    t2.row([
        "lines flushed entering compute mode".to_string(),
        launch.lines_flushed_entering.to_string(),
    ]);
    t2.row([
        "mode-switch cycles (SPR + flush drain)".to_string(),
        launch.mode_switch_cycles.get().to_string(),
    ]);
    t2.row([
        "solve cycles inside the launch".to_string(),
        launch.report.total_cycles.get().to_string(),
    ]);
    t2.row([
        "re-run hit rate after the launch (cold)".to_string(),
        percent(cold_rate),
    ]);
    t2.print();
    println!(
        "mode-switch overhead is {} of the launch's own cycles — repurposing",
        percent(launch.mode_switch_cycles.get() as f64 / launch.report.total_cycles.get() as f64)
    );
    println!("amortizes as long as compute sessions outlast the cache refill.");
}
