//! Fig. 5: the motivation for reuse-aware compute, demonstrated on live
//! SRAM tiles.
//!
//! (a) CNNs reuse a weight across many activations; (b) the Ising dot
//! product has no native reuse — each `J_ij` belongs to exactly one spin
//! pair; (c) an Ising-CIM-style mapping therefore performs *redundant*
//! computes: with `σ_1..σ_3` in a row and `J_14` driven on the word-line,
//! only `J_14·σ_1` is wanted, but `J_14·σ_2` and `J_14·σ_3` discharge
//! their bit-lines anyway. This harness reproduces that exact scenario
//! bit-for-bit and prices the waste.

use sachi_bench::{ratio, section, Table};
use sachi_core::prelude::*;
use sachi_ising::spin::Spin;
use sachi_mem::prelude::*;

fn main() {
    section("Fig. 5c - the redundant-compute scenario, on a live tile");
    // Spins σ1=+1, σ2=-1, σ3=+1 stored in one row; J14's bit driven on
    // the shared RWL; only column 0 (σ1) is sensed.
    let mut tile = SramTile::new(1, 3);
    tile.write_row(0, &[Spin::Up.bit(), Spin::Down.bit(), Spin::Up.bit()])
        .expect("layout");
    let j14_bit = true;
    let sensed = tile.compute_xnor_bit(0, j14_bit, 0..3, 0).expect("compute");
    let stats = *tile.stats();
    println!("driven J14 bit = 1 against row [σ1=+1, σ2=-1, σ3=+1], sensing only σ1's column:");
    println!("  sensed XNOR(σ1, J14) = {sensed}");
    println!(
        "  bit-lines discharged: {} (useful: {}, redundant: {})",
        stats.rbl_discharges,
        stats.rbl_discharges - stats.redundant_discharges,
        stats.redundant_discharges
    );
    let params = TechnologyParams::freepdk45();
    println!(
        "  redundant energy this access: {}",
        stats.redundant_energy(&params)
    );
    assert_eq!(stats.redundant_discharges, 1); // σ3 discharged uselessly (σ2's XNOR is 0)

    section("reuse per design on the same 8-neighbor tuple (N = 8, R = 4)");
    let enc = MixedEncoding::new(4).expect("4-bit");
    let graph =
        sachi_ising::graph::topology::king(3, 3, |i, j| ((i + j) % 7) as i32 - 3).expect("lattice");
    let spins: sachi_ising::spin::SpinVector = (0..9).map(|i| Spin::from_bit(i % 2 == 0)).collect();
    let store = TupleStore::new(&graph, &spins);
    let tuple = store.tuple(4); // interior: full 8-neighbor fan-in

    let mut table = Table::new([
        "design",
        "RWL bits fetched",
        "useful XNORs",
        "reuse",
        "redundant discharges",
        "wasted energy",
    ]);
    for design in DesignKind::ALL {
        let d = stationarity(design);
        let (rows, cols) = d.tile_requirements(8, 4, 800);
        let mut tile = SramTile::new(rows, cols);
        let mut ctx = ComputeContext::new();
        let h = d.compute_tuple(&mut tile, &enc, tuple, spins.get(4), &mut ctx);
        assert_eq!(h, sachi_ising::hamiltonian::local_field(&graph, &spins, 4));
        table.row([
            design.label().to_string(),
            ctx.rwl_bits_fetched.to_string(),
            ctx.xnor_ops.to_string(),
            format!("{:.1}", ctx.reuse()),
            tile.stats().redundant_discharges.to_string(),
            format!(
                "{}",
                tile.stats()
                    .redundant_energy(&TechnologyParams::freepdk45())
            ),
        ]);
    }
    table.print();

    section("what reuse buys: storage->RWL movement per sweep (1K-spin COPs, 4-bit)");
    let mut t2 = Table::new(["COP", "n1 movement/iter", "n3 movement/iter", "saving"]);
    for kind in sachi_workloads::spec::CopKind::ALL {
        let shape = kind.standard_shape(1_000).with_resolution(4);
        let moved = |k| {
            stationarity(k).driven_bits_per_tuple(shape.neighbors_per_spin, 4, 800) * shape.spins
        };
        let n1 = moved(DesignKind::N1a);
        let n3 = moved(DesignKind::N3);
        t2.row([
            kind.label().to_string(),
            format!("{}", Bits::new(n1)),
            format!("{}", Bits::new(n3)),
            ratio(n1 as f64, n3 as f64),
        ]);
    }
    t2.print();
    println!();
    println!("every driven bit costs 1 pJ of movement (800x an addition) — the");
    println!("reuse ladder is the energy story of Figs. 15c/15e.");
}
