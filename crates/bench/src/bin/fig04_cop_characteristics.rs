//! Fig. 4: real-life COP characteristics — typical problem sizes, graph
//! connectivity, minimum IC resolution, and whether a 1K-spin instance
//! fits in an L1-sized compute array at the native resolution vs a fixed
//! 8-bit one. Motivates the reconfigurable/scalable architecture.

use sachi_bench::{section, Table};
use sachi_core::prelude::*;
use sachi_mem::prelude::*;
use sachi_workloads::prelude::*;

fn fit_label(total_bits: u64, l1: Bits) -> &'static str {
    if l1.holds(Bits::new(total_bits)) {
        "fits in L1"
    } else {
        "exceeds L1"
    }
}

fn main() {
    section("Fig. 4 - COP characteristics (1K spins, 64KB L1 reference)");
    let l1 = Bits::from_kib(64);
    let mut table = Table::new([
        "COP",
        "typical size",
        "connectivity",
        "R (bits)",
        "R-bit footprint",
        "R-bit fit",
        "8-bit footprint",
        "8-bit fit",
    ]);
    for kind in CopKind::ALL {
        let (lo, hi) = kind.typical_size_range();
        let native = kind.standard_shape(1_000);
        let eight = native.with_resolution(8);
        table.row([
            kind.label().to_string(),
            format!("{lo}-{hi}"),
            kind.connectivity().to_string(),
            native.resolution_bits.to_string(),
            format!("{}", Bits::new(native.total_bits())),
            fit_label(native.total_bits(), l1).to_string(),
            format!("{}", Bits::new(eight.total_bits())),
            fit_label(eight.total_bits(), l1).to_string(),
        ]);
    }
    table.print();

    section("accuracy note");
    println!("Fig. 4's R column is the minimum resolution for 90% accuracy at 1K");
    println!("spins; fig19_convergence measures the accuracy-vs-R trade-off on");
    println!("live solves. Deviation from the paper: under our tuple-shape model");
    println!("the sparse COPs (asset allocation) fit in L1 even at 8-bit, whereas");
    println!("the paper's Fig. 4 marks them as exceeding it (see EXPERIMENTS.md).");

    section("paper default geometry");
    let h = CacheHierarchy::hpca_default();
    println!(
        "compute array: {} tiles x {} rows x {} bits = {} | storage array: {} ({} read ports)",
        h.compute.tiles(),
        h.compute.rows_per_tile(),
        h.compute.row_bits(),
        h.compute.total_bits(),
        h.storage.total_bits(),
        h.storage.read_ports()
    );
    // Sanity: the shape-level footprints drive the Fig. 17 round counts.
    let model = PerfModel::new(SachiConfig::new(DesignKind::N3));
    let mut rounds = Table::new(["COP", "rounds/iter @1K", "rounds/iter @1M"]);
    for kind in CopKind::ALL {
        rounds.row([
            kind.label().to_string(),
            model
                .iteration(&kind.standard_shape(1_000))
                .rounds
                .to_string(),
            model
                .iteration(&kind.standard_shape(1_000_000))
                .rounds
                .to_string(),
        ]);
    }
    rounds.print();
}
