//! Fig. 16: SACHI vs genetic algorithm (GA), particle swarm optimization
//! (PSO), and dedicated optimized solvers (OPTSolv) — solution accuracy
//! and execution time for all four COPs.
//!
//! Times: SACHI reports *simulated* time (cycles x 5 ns at the paper's
//! 45 nm clock); the classical solvers report host wall-clock, as the
//! paper measured GALib on an i5. Both are listed; the accuracy columns
//! are the apples-to-apples part.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi_baselines::prelude::*;
use sachi_bench::{duration, percent, section, threads_arg, timed, Table};
use sachi_core::prelude::*;
use sachi_ising::prelude::*;
use sachi_workloads::prelude::*;
use std::time::Duration;

struct Row {
    cop: &'static str,
    sachi_acc: f64,
    sachi_time: Duration,
    pt_acc: f64,
    pt_time: Duration,
    ga_acc: f64,
    ga_time: Duration,
    pso_acc: f64,
    pso_time: Duration,
    opt_acc: f64,
    opt_time: Duration,
    opt_name: &'static str,
}

/// Runs a deterministic replica ensemble of SACHI(n3) over the bench's
/// worker threads and reports the best accuracy across replicas plus
/// the summed simulated time (the serial-equivalent cost, matching the
/// paper's single-machine restart loop). With `tempered` the same
/// replicas exchange configurations on an adaptive temperature ladder
/// instead of annealing independently; the result is still a pure
/// function of (seed, replica count).
fn sachi_ensemble(workload: &dyn Workload, restarts: usize, tempered: bool) -> (f64, Duration) {
    let graph = workload.graph();
    let mut rng = StdRng::seed_from_u64(1);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let mut opts = SolveOptions::for_graph(graph, 1);
    if tempered {
        opts = opts.with_tempering(TemperingOptions::for_graph(
            LadderKind::Adaptive,
            graph,
            restarts,
        ));
    }
    let mut runner = EnsembleRunner::new(restarts);
    if let Some(t) = threads_arg() {
        runner = runner.with_threads(t);
    }
    let ledger = ReplicaLedger::new(restarts);
    let config = SachiConfig::new(DesignKind::N3);
    let best_of = runner.run(graph, &init, &opts, |k| {
        ReportingMachine::new(SachiMachine::new(config.clone()), k, &ledger)
    });
    let best_acc = best_of
        .replicas
        .iter()
        .map(|r| workload.accuracy(&r.spins))
        .fold(0.0f64, f64::max);
    let sim_ns: f64 = ledger
        .finish()
        .reports
        .iter()
        .map(|r| r.wall_time.get())
        .sum();
    (best_acc, Duration::from_nanos(sim_ns as u64))
}

fn main() {
    let mut rows = Vec::new();

    // --- asset allocation ---
    {
        let w = AssetAllocation::new(64, 3);
        let (sachi_acc, sachi_time) = sachi_ensemble(&w, 4, false);
        let (pt_acc, pt_time) = sachi_ensemble(&w, 4, true);
        let (ga, ga_time) = timed(|| run_ga_on_graph(w.graph(), &GaOptions::standard(2)));
        let (pso, pso_time) = timed(|| run_pso_on_graph(w.graph(), &PsoOptions::standard(3)));
        let ((kk, _), opt_time) = timed(|| karmarkar_karp(w.values()));
        rows.push(Row {
            cop: "asset allocation",
            sachi_acc,
            sachi_time,
            pt_acc,
            pt_time,
            ga_acc: w.accuracy(&ga.best_spins()),
            ga_time,
            pso_acc: w.accuracy(&pso.best_spins()),
            pso_time,
            opt_acc: w.accuracy(&kk),
            opt_time,
            opt_name: "Karmarkar-Karp",
        });
    }

    // --- image segmentation ---
    {
        let w = ImageSegmentation::with_options(12, 12, 5, Connectivity::Grid4, 6);
        let (sachi_acc, sachi_time) = sachi_ensemble(&w, 5, false);
        let (pt_acc, pt_time) = sachi_ensemble(&w, 5, true);
        let (ga, ga_time) = timed(|| run_ga_on_graph(w.graph(), &GaOptions::standard(4)));
        let (pso, pso_time) = timed(|| run_pso_on_graph(w.graph(), &PsoOptions::standard(5)));
        let ((labels, _), opt_time) = timed(|| edmonds_karp_segmentation(&w));
        rows.push(Row {
            cop: "image segmentation",
            sachi_acc,
            sachi_time,
            pt_acc,
            pt_time,
            ga_acc: w.accuracy(&ga.best_spins()),
            ga_time,
            pso_acc: w.accuracy(&pso.best_spins()),
            pso_time,
            opt_acc: w.accuracy(&labels),
            opt_time,
            opt_name: "Edmonds-Karp",
        });
    }

    // --- traveling salesman (Lucas tour formulation) ---
    {
        let w = TspTour::new(8, 7);
        let graph = w.graph();
        let (best_acc, sachi_time) = sachi_ensemble(&w, 8, false);
        let (pt_acc, pt_time) = sachi_ensemble(&w, 8, true);
        let (ga, ga_time) = timed(|| run_ga_on_graph(graph, &GaOptions::standard(6)));
        let (pso, pso_time) = timed(|| run_pso_on_graph(graph, &PsoOptions::standard(7)));
        let ((_, opt_len), opt_time) = timed(|| tsp_reference(w.distances()));
        rows.push(Row {
            cop: "traveling salesman",
            sachi_acc: best_acc,
            sachi_time,
            pt_acc,
            pt_time,
            ga_acc: w.accuracy(&ga.best_spins()),
            ga_time,
            pso_acc: w.accuracy(&pso.best_spins()),
            pso_time,
            opt_acc: (w.reference_length() as f64 / opt_len.max(1) as f64).clamp(0.0, 1.0),
            opt_time,
            opt_name: "2-opt (Concorde)",
        });
    }

    // --- molecular dynamics ---
    {
        let w = MolecularDynamics::new(12, 12, 9);
        let (sachi_acc, sachi_time) = sachi_ensemble(&w, 4, false);
        let (pt_acc, pt_time) = sachi_ensemble(&w, 4, true);
        let (ga, ga_time) = timed(|| run_ga_on_graph(w.graph(), &GaOptions::standard(8)));
        let (pso, pso_time) = timed(|| run_pso_on_graph(w.graph(), &PsoOptions::standard(9)));
        let mut rng = StdRng::seed_from_u64(10);
        let init = SpinVector::random(w.graph().num_spins(), &mut rng);
        let ((spins, _), opt_time) = timed(|| lattice_descent(&w, &init, 500));
        rows.push(Row {
            cop: "molecular dynamics",
            sachi_acc,
            sachi_time,
            pt_acc,
            pt_time,
            ga_acc: w.accuracy(&ga.best_spins()),
            ga_time,
            pso_acc: w.accuracy(&pso.best_spins()),
            pso_time,
            opt_acc: w.accuracy(&spins),
            opt_time,
            opt_name: "greedy descent (LAMMPS)",
        });
    }

    section("Fig. 16 - solution accuracy");
    let mut acc = Table::new([
        "COP",
        "SACHI(n3)",
        "SACHI(n3)+PT",
        "GA",
        "PSO",
        "OPTSolv",
        "OPTSolv used",
    ]);
    for r in &rows {
        acc.row([
            r.cop.to_string(),
            percent(r.sachi_acc),
            percent(r.pt_acc),
            percent(r.ga_acc),
            percent(r.pso_acc),
            percent(r.opt_acc),
            r.opt_name.to_string(),
        ]);
    }
    acc.print();

    section("Fig. 16 - execution time (SACHI simulated @5ns cycle; others host wall-clock)");
    let mut time = Table::new(["COP", "SACHI(n3)", "SACHI(n3)+PT", "GA", "PSO", "OPTSolv"]);
    for r in &rows {
        time.row([
            r.cop.to_string(),
            duration(r.sachi_time),
            duration(r.pt_time),
            duration(r.ga_time),
            duration(r.pso_time),
            duration(r.opt_time),
        ]);
    }
    time.print();
    println!();
    println!("paper: SACHI reaches ~100% accuracy with GA below it, PSO between,");
    println!("and outruns the dedicated solvers by 27-34x; see EXPERIMENTS.md for");
    println!("the measured factors and the simulated-vs-host caveat. +PT is the");
    println!("replica-exchange ensemble (same replica count, adaptive ladder);");
    println!("the equal-sweep-budget quality gate lives in disc_quality.");
}
