//! Ablation: storage-array-based update vs local read-modify-write
//! (Fig. 8 and Sec. IV.B).
//!
//! Ising-CIM updates spins *locally* in the compute array: a
//! read-modify-write that (i) makes every compute a 2-step (3+3-cycle)
//! operation and (ii) destroys the original spin value mid-iteration —
//! tolerable on a King's graph (no later reuse of the original value),
//! fatal on graphs with non-local interactions. SACHI instead writes
//! updates to the *storage* array through the adjacency matrix: compute
//! stays 1-cycle (no read-write conflict) and the compute array keeps the
//! original values. The paper quantifies the local-update benefit at
//! 1M spins as only ~0.1x for King's graphs vs ~1.8x for complete graphs
//! — not worth the 2x CPI.

use sachi_bench::{ratio, section, Table};
use sachi_core::prelude::*;
use sachi_workloads::prelude::*;

fn main() {
    section("update policy: cycles per iteration at 1M spins");
    let mut table = Table::new([
        "graph",
        "storage-update CPI (SACHI)",
        "local-RMW CPI (2-step)",
        "RMW penalty",
        "reload rows avoided by RMW",
    ]);
    for kind in [CopKind::MolecularDynamics, CopKind::TravelingSalesman] {
        let shape = kind.standard_shape(1_000_000);
        let est = PerfModel::new(SachiConfig::new(DesignKind::N3)).iteration(&shape);
        // Local RMW doubles the compute step (read-write conflict: one
        // cycle to compute, one to write back in place).
        let rmw_compute = est.compute_cycles.get() * 2;
        // What RMW buys: updated spins are already in place, so the next
        // round's reload of *spin* bits is skipped (IC bits still reload).
        // Spin bits are 1/(R+1) of the resident image.
        let r = shape.resolution_bits as u64;
        let reload_saved = if est.rounds > 1 {
            est.load_cycles.get() / (r + 1)
        } else {
            0
        };
        let rmw_total = rmw_compute + est.load_cycles.get().saturating_sub(reload_saved);
        let storage_total = est.compute_cycles.get() + est.load_cycles.get();
        table.row([
            kind.connectivity().to_string(),
            storage_total.to_string(),
            rmw_total.to_string(),
            ratio(rmw_total as f64, storage_total as f64),
            reload_saved.to_string(),
        ]);
    }
    table.print();
    println!();
    println!("the RMW's reload saving never recovers its doubled compute step:");
    println!("SACHI's storage-array update gets the best of both — 1-cycle");
    println!("compute+update, original spins intact, and (via the adjacency-");
    println!("matrix update of Fig. 8b) tuples that are already fresh when the");
    println!("compute array is re-written for the next round.");

    section("correctness constraint");
    println!("local update destroys the original spin before the iteration ends;");
    println!("on a complete graph every later tuple still needs it. SACHI's");
    println!("functional machine demonstrates the storage-update path on complete");
    println!("graphs (tests/golden_agreement.rs: decision TSP matches the golden");
    println!("model exactly); Ising-CIM's envelope is King's-graph-only for this");
    println!("reason (sachi-baselines::ising_cim rejects anything denser).");
}
