//! Fig. 10: the in-memory XNOR primitive — truth table, discharge/retain
//! behaviour, and a textual rendition of the silicon prototype's
//! oscilloscope capture (precharge / compute / precharge phases).
//!
//! The paper validates the primitive with a TSMC-65nm test structure
//! (Fig. 10d/e); this harness validates the same contract on the
//! functional model: the RBL discharges exactly when `S XNOR J = 1`.

use sachi_bench::{section, Table};
use sachi_mem::prelude::*;

fn waveform(discharges: bool) -> [&'static str; 3] {
    if discharges {
        [
            "1V --------\\",
            "            \\____ 0V   (RBL discharged: XNOR = 1)",
            "re-precharge /---- 1V",
        ]
    } else {
        [
            "1V ----------",
            "  ---------- 1V   (RBL retained: XNOR = 0)",
            "  ---------- 1V",
        ]
    }
}

fn main() {
    section("Fig. 10a-c - XNOR truth table on the 8T pair");
    let mut table = Table::new(["stored S", "driven J", "S XNOR J", "RBL"]);
    for (s, j) in [(true, true), (true, false), (false, true), (false, false)] {
        let mut tile = SramTile::new(1, 1);
        tile.write_bit(0, 0, s).expect("in bounds");
        let out = tile.compute_xnor(0, j, 0..1).expect("in bounds");
        let discharged = tile.stats().rbl_discharges == 1;
        assert_eq!(out[0], s == j, "XNOR contract violated");
        assert_eq!(discharged, s == j, "discharge must signal XNOR = 1");
        table.row([
            (s as u8).to_string(),
            (j as u8).to_string(),
            (out[0] as u8).to_string(),
            if discharged {
                "discharges"
            } else {
                "retains 1V"
            }
            .to_string(),
        ]);
    }
    table.print();

    section("Fig. 10e - the prototype capture, reenacted (S = 1, J = 1)");
    println!("phase 1 (precharge): RBL at 1V");
    println!("phase 2 (compute):   RWL pulse with J = 1");
    for line in waveform(true) {
        println!("   {line}");
    }
    println!("phase 3 (precharge): RBL restored for the next access");

    section("energy per event (paper's extracted constants)");
    let t = TechnologyParams::freepdk45();
    println!("RWL pulse : {} (50 fF at 1V)", t.rwl_energy_per_bit());
    println!("RBL swing : {} (35 fF at 1V)", t.rbl_energy_per_bit());
    println!(
        "array latency {} within the {} cycle",
        t.sram_array_latency, t.cycle_time
    );

    section("100x100 prototype-sized array, full-column check");
    let mut tile = SramTile::new(100, 100);
    for row in 0..100 {
        for col in 0..100 {
            tile.write_bit(row, col, (row + col) % 2 == 0)
                .expect("in bounds");
        }
    }
    let mut discharges = 0u64;
    for row in 0..100 {
        let out = tile.compute_xnor_full_row(row, true).expect("in bounds");
        discharges += out.iter().filter(|&&b| b).count() as u64;
    }
    println!("10,000 bitcells driven with J = 1: {discharges} discharges (expected 5,000 on the checkerboard)");
    assert_eq!(discharges, 5_000);
    assert_eq!(tile.stats().rbl_discharges, 5_000);
}
