//! Solution-quality regression harness over the seeded workload corpus
//! (3-SAT, graph coloring, job scheduling) × all four stationarity
//! designs.
//!
//! Full run: solve every corpus cell on every design, print the
//! best-energy-vs-cycles table, compare against the committed
//! `BENCH_quality.json` (all rows required), and refuse to overwrite
//! the baseline on regression (exit 1). A clean run rewrites the
//! baseline. `--force` skips the comparison for intentional
//! rebaselines (new cells, retuned schedules) — the diff is then the
//! review surface.
//!
//! `--smoke` (CI): solve only the one-cell-per-family smoke subset with
//! the identical solve parameters and compare; never writes. Exit 1 on
//! any regression, exit 2 when the committed baseline is missing or
//! malformed.

use sachi_bench::quality::{
    compare, parse_report, run_cell_measured, run_cell_tempered, tempering_dominance, write_report,
    Tolerance,
};
use sachi_bench::{section, Table};
use sachi_core::prelude::*;
use sachi_workloads::prelude::*;

const BASELINE: &str = "BENCH_quality.json";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let force = args.iter().any(|a| a == "--force");

    let cases = if smoke { smoke_corpus() } else { corpus() };
    section(if smoke {
        "quality corpus (smoke subset)"
    } else {
        "quality corpus (full)"
    });

    let mut baseline_rows = Vec::new();
    let mut tempered_rows = Vec::new();
    let mut table = Table::new([
        "cell", "family", "design", "spins", "energy", "cycles", "accuracy", "metric",
    ]);
    for case in &cases {
        for design in DesignKind::ALL {
            let (row, sweep_budget) = run_cell_measured(case, design);
            let tempered = run_cell_tempered(case, design, sweep_budget);
            for row in [&row, &tempered] {
                table.row([
                    row.id.clone(),
                    row.family.clone(),
                    row.design.clone(),
                    row.spins.to_string(),
                    row.best_energy.to_string(),
                    row.total_cycles.to_string(),
                    format!("{:.4}", row.accuracy),
                    format!("{} {}", row.domain_metric, row.domain_unit),
                ]);
            }
            baseline_rows.push(row);
            tempered_rows.push(tempered);
        }
    }
    table.print();

    // The tempering quality claim, enforced on every run (smoke and
    // full): at an equal sweep budget, replica exchange must match or
    // beat independent restarts in every (cell, design) pair.
    let (violations, strict) = tempering_dominance(&baseline_rows, &tempered_rows);
    if !violations.is_empty() {
        eprintln!("\ntempering regressed against independent restarts:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    println!(
        "\ntempering: matched or beat independent restarts on all {} pairs ({} strictly better)",
        baseline_rows.len(),
        strict
    );

    let mut rows = baseline_rows;
    rows.extend(tempered_rows);

    if smoke {
        let text = match std::fs::read_to_string(BASELINE) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {BASELINE}: {e} (run the full bench to create it)");
                std::process::exit(2);
            }
        };
        let baseline = match parse_report(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{BASELINE}: {e}");
                std::process::exit(2);
            }
        };
        let regressions = compare(&baseline, &rows, Tolerance::default(), false);
        if !regressions.is_empty() {
            eprintln!("\nquality regressions against {BASELINE}:");
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
        println!(
            "\nsmoke: {} cells x {} designs within tolerance of {BASELINE}",
            cases.len(),
            DesignKind::ALL.len()
        );
        return;
    }

    if !force {
        if let Ok(text) = std::fs::read_to_string(BASELINE) {
            match parse_report(&text) {
                Ok(baseline) => {
                    let regressions = compare(&baseline, &rows, Tolerance::default(), true);
                    if !regressions.is_empty() {
                        eprintln!("\nquality regressions against {BASELINE} (not overwritten):");
                        for r in &regressions {
                            eprintln!("  {r}");
                        }
                        eprintln!("rerun with --force to rebaseline intentionally");
                        std::process::exit(1);
                    }
                }
                Err(e) => eprintln!("ignoring malformed {BASELINE}: {e}"),
            }
        }
    }
    std::fs::write(BASELINE, write_report(&rows)).expect("write BENCH_quality.json");
    println!(
        "\nwrote {BASELINE}: {} rows ({} cells x {} designs)",
        rows.len(),
        cases.len(),
        DesignKind::ALL.len()
    );
}
