//! Fig. 15d/e: SACHI(n3) vs Ising-CIM on 2-bit molecular dynamics at 500
//! and 1M atoms (the only COP inside Ising-CIM's King's-graph / unsigned
//! 2-bit envelope), cycles and energy including loading.
//!
//! The 500-atom point additionally runs *functionally* on both machines
//! (bit-level SACHI, behavioural CIM) to confirm identical trajectories;
//! the 1M point uses the parity-tested analytic models, as the paper does.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi_baselines::prelude::*;
use sachi_bench::{ratio, section, Table};
use sachi_core::prelude::*;
use sachi_ising::prelude::*;
use sachi_mem::prelude::*;
use sachi_workloads::prelude::*;

fn main() {
    section("functional cross-check at ~500 atoms (2-bit King's graph)");
    let w = MolecularDynamics::with_resolution(22, 23, 11, 2); // 506 atoms
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(5);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 6);

    let mut sachi = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let (s_result, s_report) = sachi.solve_detailed(graph, &init, &opts);
    let mut cim = CimMachine::new();
    let (c_result, c_report) = cim
        .solve_detailed(graph, &init, &opts)
        .expect("within CIM envelope");
    assert_eq!(
        s_result.energy, c_result.energy,
        "machines must agree functionally"
    );

    let mut func = Table::new(["machine", "iters", "cycles", "energy", "reuse"]);
    func.row([
        "SACHI(n3)".to_string(),
        s_report.sweeps.to_string(),
        s_report.total_cycles.get().to_string(),
        format!("{}", s_report.energy.total()),
        format!("{:.1}", s_report.reuse),
    ]);
    func.row([
        "Ising-CIM".to_string(),
        c_report.sweeps.to_string(),
        c_report.total_cycles.get().to_string(),
        format!("{}", c_report.energy.total()),
        format!("{:.1}", c_report.reuse),
    ]);
    func.print();
    println!(
        "functional: speedup {}, energy gain {}, accuracy {:.2}%",
        ratio(
            c_report.total_cycles.get() as f64,
            s_report.total_cycles.get() as f64
        ),
        ratio(c_report.energy.total().get(), s_report.energy.total().get()),
        w.accuracy(&s_result.spins) * 100.0
    );

    section("Fig. 15d/e - model sweep (paper: ~70x/80x perf, ~40x/75x energy)");
    let tech = TechnologyParams::freepdk45();
    let model = PerfModel::new(SachiConfig::new(DesignKind::N3));
    let cim_model = CimMachine::new();
    let mut table = Table::new([
        "atoms",
        "SACHI cfg",
        "iters",
        "CIM cycles",
        "SACHI cycles",
        "speedup",
        "paper",
        "CIM energy",
        "SACHI energy",
        "gain",
        "paper",
    ]);
    // Iteration counts: measured at 506 atoms; the paper reports iteration
    // counts grow slowly with size for King's graphs — reuse the measured
    // count for 500 and scale modestly for 1M (documented approximation).
    // The 1M point runs twice: with the paper's 160KB storage array
    // (where DRAM re-streaming dominates BOTH designs' energy — Ising-CIM
    // is a scale-out ASIC with enough eDRAM arrays to stay resident, so
    // SACHI's gain collapses) and with the Sec. VII.2 8MB-L2 preset that
    // restores capacity parity.
    let server =
        PerfModel::new(SachiConfig::new(DesignKind::N3).with_hierarchy(CacheHierarchy::server()));
    let iter_points = [
        (500u64, s_report.sweeps, 70.0, 40.0, &model, "160KB L2"),
        (
            1_000_000,
            s_report.sweeps * 2,
            80.0,
            75.0,
            &model,
            "160KB L2",
        ),
        (
            1_000_000,
            s_report.sweeps * 2,
            80.0,
            75.0,
            &server,
            "8MB L2",
        ),
    ];
    for (atoms, iters, paper_perf, paper_energy, model, cfg) in iter_points {
        let shape = WorkloadShape::new(atoms, 8, 2);
        let sachi_est = model.solve(&shape, iters);
        let (arrays, duplicated) = cim_model.partitioning(atoms);
        let payload_bits = atoms * (8 * 2 + 1) + duplicated * 2;
        let cim_cycles = tech.dram_stream_cycles(payload_bits.div_ceil(8)).get()
            + cim_model.cycles_per_sweep(atoms) * iters;
        let cim_energy = tech.movement_energy_per_bit() * payload_bits
            + cim_model.sweep_energy(atoms, 8) * iters;
        table.row([
            atoms.to_string(),
            cfg.to_string(),
            iters.to_string(),
            cim_cycles.to_string(),
            sachi_est.total_cycles.get().to_string(),
            ratio(cim_cycles as f64, sachi_est.total_cycles.get() as f64),
            format!("~{paper_perf}x"),
            format!("{}", cim_energy),
            format!("{}", sachi_est.energy.total()),
            ratio(cim_energy.get(), sachi_est.energy.total().get()),
            format!("~{paper_energy}x"),
        ]);
        let _ = arrays;
    }
    table.print();
    println!();
    println!("reuse: SACHI(n3) = N*R = 16 at 2-bit vs Ising-CIM's 1 (paper: ~16x).");
    println!("CIM modeled per Sec. V.5: 3+3-cycle compute/update, 1.2x eDRAM power,");
    println!("full-row discharge at reuse 1, edge-cell duplication across arrays.");
}
