//! Fig. 18: reconfigurability — CPI at 1M spins as the IC resolution
//! sweeps from 2 to 8 bits, per COP and per design. The n1 designs speed
//! up linearly with fewer bits (fewer bit-serial XNORs); n2/n3 are
//! resolution-independent until row-splitting kicks in.

use sachi_bench::{section, Table};
use sachi_core::prelude::*;
use sachi_workloads::prelude::*;

fn main() {
    for kind in CopKind::ALL {
        section(&format!("Fig. 18 - {kind} CPI vs IC resolution (1M spins)"));
        let mut table = Table::new(["R (bits)", "n1a", "n1b", "n2", "n3"]);
        for bits in 2..=8u32 {
            let shape = kind.standard_shape(1_000_000).with_resolution(bits);
            let cpi = |d| {
                PerfModel::new(SachiConfig::new(d))
                    .iteration(&shape)
                    .effective_cycles
                    .get()
            };
            table.row([
                bits.to_string(),
                cpi(DesignKind::N1a).to_string(),
                cpi(DesignKind::N1b).to_string(),
                cpi(DesignKind::N2).to_string(),
                cpi(DesignKind::N3).to_string(),
            ]);
        }
        table.print();
        // Summarize the sensitivity.
        let growth = |d: DesignKind| {
            let lo = PerfModel::new(SachiConfig::new(d))
                .iteration(&kind.standard_shape(1_000_000).with_resolution(2))
                .effective_cycles
                .get() as f64;
            let hi = PerfModel::new(SachiConfig::new(d))
                .iteration(&kind.standard_shape(1_000_000).with_resolution(8))
                .effective_cycles
                .get() as f64;
            hi / lo
        };
        println!(
            "R=8 vs R=2 growth: n1a {:.2}x  n1b {:.2}x  n2 {:.2}x  n3 {:.2}x",
            growth(DesignKind::N1a),
            growth(DesignKind::N1b),
            growth(DesignKind::N2),
            growth(DesignKind::N3)
        );
    }

    section("note");
    println!("paper: n2/n3 'show no change in CPI'. We reproduce that for every COP");
    println!("whose tuples fit one compute row; for complete-graph TSP a tuple spans");
    println!("multiple rows and higher R adds row splits, so n3 grows mildly (far");
    println!("below n1's linear-in-R growth). Recorded in EXPERIMENTS.md.");
}
