//! Fig. 2: COP-to-Ising mapping, reenacted — the paper's 4x3 image with
//! edge ICs derived from pixel differences, spins randomly initialized,
//! and the Ising machine converging to a segmented image.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi_bench::section;
use sachi_core::prelude::*;
use sachi_ising::prelude::*;
use sachi_workloads::prelude::*;

fn render(spins: &SpinVector, width: usize) -> Vec<String> {
    (0..spins.len() / width)
        .map(|r| {
            (0..width)
                .map(|c| {
                    if spins.get(r * width + c).bit() {
                        '#'
                    } else {
                        '.'
                    }
                })
                .collect()
        })
        .collect()
}

fn main() {
    section("Fig. 2 - mapping a 4x3 image onto the Ising model");
    // A 4x3 image with a bright right half (the figure's two-region toy).
    let w = ImageSegmentation::with_options(4, 3, 2, Connectivity::Grid4, 6);
    let graph = w.graph();
    println!("pixels (grayscale):");
    for r in 0..3 {
        let row: Vec<String> = (0..4)
            .map(|c| format!("{:>3}", w.pixels()[r * 4 + c]))
            .collect();
        println!("  {}", row.join(" "));
    }
    println!("\nedges as interaction coefficients (J = θ - |Δp|, quantized):");
    for (u, v, j) in graph.edges() {
        println!(
            "  σ{u} -- σ{v}: J = {j:>3}  ({})",
            if j > 0 { "same segment" } else { "boundary" }
        );
    }

    section("random initialization -> converged segmentation");
    let mut rng = StdRng::seed_from_u64(3);
    let init = SpinVector::random(12, &mut rng);
    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let mut best: Option<(f64, SolveResult)> = None;
    for seed in 0..6 {
        let (result, _) =
            machine.solve_detailed(graph, &init, &SolveOptions::for_graph(graph, seed));
        let acc = w.accuracy(&result.spins);
        if best.as_ref().is_none_or(|(b, _)| acc > *b) {
            best = Some((acc, result));
        }
    }
    let (acc, result) = best.expect("restarts ran");
    let before = render(&init, 4);
    let after = render(&result.spins, 4);
    println!(
        "  initial (random)      converged ({} iterations)",
        result.sweeps
    );
    for (b, a) in before.iter().zip(after.iter()) {
        println!("  {b}                  {a}");
    }
    println!("\nsegmentation objective satisfied: {:.1}%", acc * 100.0);
    println!("(green +1 / orange -1 in the paper's figure = '#' / '.' here)");
}
