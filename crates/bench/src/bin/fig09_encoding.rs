//! Fig. 9: the mixed-encoding worked table — spins as 1/0 bits, ICs in
//! two's complement, dot products via in-memory XNOR (+1 for negative
//! spins), reproduced for the paper's exact values (R = 9: J = ±135,
//! R = 3: J = ±3) and verified against plain multiplication.

use sachi_bench::{section, Table};
use sachi_core::encoding::MixedEncoding;
use sachi_ising::spin::Spin;

fn hex(enc: &MixedEncoding, value: i64) -> String {
    let bits = enc.encode(value).expect("value in range");
    let word = bits
        .iter()
        .rev()
        .fold(0u64, |acc, &b| (acc << 1) | b as u64);
    format!(
        "{}'h{word:0width$X}",
        enc.bits(),
        width = (enc.bits() as usize).div_ceil(4)
    )
}

fn main() {
    section("Fig. 9 - mixed encoding scheme (paper's worked rows)");
    let enc9 = MixedEncoding::new(9).expect("9-bit supported");
    let enc3 = MixedEncoding::new(3).expect("3-bit supported");

    let mut table = Table::new([
        "spin (S)", "J (R=9)", "enc(J)", "S*J", "J (R=3)", "enc(J)", "S*J",
    ]);
    for (spin, j9, j3) in [
        (Spin::Down, 135i64, 3i64),
        (Spin::Down, -135, -3),
        (Spin::Up, 135, 3),
        (Spin::Up, -135, -3),
    ] {
        table.row([
            format!("{} (bit {})", spin, spin.bit() as u8),
            j9.to_string(),
            hex(&enc9, j9),
            enc9.xnor_product(j9, spin).to_string(),
            j3.to_string(),
            hex(&enc3, j3),
            enc3.xnor_product(j3, spin).to_string(),
        ]);
    }
    table.print();
    println!("(paper's canonical encodings: 135 = 9'h087, -135 = 9'h179, 3 = 3'h3, -3 = 3'h5)");

    section("exhaustive verification");
    let mut checked = 0u64;
    for bits in 2..=12u32 {
        let enc = MixedEncoding::new(bits).expect("in range");
        for j in enc.min_value()..=enc.max_value() {
            for spin in [Spin::Up, Spin::Down] {
                assert_eq!(enc.xnor_product(j, spin), j * spin.value());
                for si in [Spin::Up, Spin::Down] {
                    assert_eq!(enc.reuse_aware_product(j, si, spin), j * spin.value());
                }
                checked += 3;
            }
        }
    }
    println!("XNOR product == signed multiply for every (J, σ) pair at R = 2..=12: {checked} checks passed");

    section("eqn. 5 erratum");
    let enc = MixedEncoding::new(8).expect("in range");
    let j = 42;
    let printed = enc.reuse_aware_product_as_printed(j, Spin::Up, Spin::Down);
    let correct = enc.reuse_aware_product(j, Spin::Up, Spin::Down);
    println!("as printed (+1 on σ_i < 0): J=42, σ_i=+1, σ_j=-1 -> {printed} (expected {correct})");
    println!("the '+1' belongs on σ_j = -1 (cases 2 and 3), not σ_i < 0 (cases 2 and 4); see sachi-core::encoding");
}
