//! Scalar vs bit-plane kernel timing for all four stationarity designs.
//!
//! Four granularities, all on identical inputs through identical
//! `SramTile`s so the comparison isolates the kernel:
//!
//! * **per H-compute** — a dense degree-256, R=8 tuple (the acceptance
//!   shape for the bit-plane fast path), `compute_tuple` vs
//!   `compute_tuple_fast` with a reused [`ComputeScratch`];
//! * **per sweep** — one full update pass over every spin of a King's
//!   graph, tuples prebuilt so the loop measures compute, not mapping;
//! * **per dense sweep** — a full pass over a set of dense degree-256
//!   tuples, `compute_tuple` vs `compute_tuple_soa` against prebuilt
//!   [`TuplePlanes`] SoA arenas — the sweep-level figure the SoA
//!   refactor exists to close (encode work hoisted out of the loop);
//! * **banked sweeps** — metered machine cycles on multi-round King's
//!   lattices, bank_count 1 vs 8, recording how much upload time the
//!   sram22-style banking removes from the critical path.
//!
//! Every timed pair is asserted H-identical first (the differential
//! proptests in `tests/plane_equivalence.rs` prove the full counter
//! contract; this harness re-checks H as a cheap tripwire), then the
//! measured ns/call and speedups are printed and written to
//! `BENCH_perf.json`. The full run asserts the ≥5× acceptance bar on
//! the dense kernel and the ≥6× bar on the dense SoA sweep for every
//! design; `--smoke` runs reduced reps for CI, checks equality only
//! (CI machines are too noisy to gate on a timing ratio), and never
//! writes the baseline — its reduced shapes would replace the
//! committed full-run numbers.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi_bench::{section, Table};
use sachi_core::prelude::*;
use sachi_ising::prelude::*;
use sachi_mem::prelude::*;

/// Dense-kernel acceptance shape: degree 256 at R = 8.
const DENSE_DEGREE: usize = 256;
const DENSE_R: u32 = 8;
/// Row-bit budget for `tile_requirements` (mirrors the proptest suite).
const ROW_BITS: usize = 800;

/// Nanoseconds per call of `f`, amortized over `iters` runs.
fn ns_per_call(iters: u32, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e9 / f64::from(iters)
}

/// A dense tuple with coefficients spanning the full R-bit range. `salt`
/// varies the contents so a sweep over many dense tuples cannot collapse
/// into one memoizable compute.
fn dense_tuple_salted(degree: usize, salt: u64) -> SpinTuple {
    let span = 1i64 << DENSE_R;
    let min = -(1i64 << (DENSE_R - 1));
    SpinTuple {
        target: 0,
        neighbors: (1..=degree).map(|j| j as u32).collect(),
        couplings: (0..degree)
            .map(|k| ((k as i64 * 37 + 11 + salt as i64 * 13).rem_euclid(span) + min) as i32)
            .collect(),
        neighbor_spins: (0..degree)
            .map(|k| {
                if (k as u64 + salt).is_multiple_of(3) {
                    Spin::Down
                } else {
                    Spin::Up
                }
            })
            .collect(),
        field: 17,
    }
}

fn dense_tuple(degree: usize) -> SpinTuple {
    dense_tuple_salted(degree, 0)
}

/// Prebuilds one tuple per spin of `graph` from `spins`.
fn graph_tuples(graph: &IsingGraph, spins: &SpinVector) -> Vec<SpinTuple> {
    (0..graph.num_spins())
        .map(|i| {
            let (neighbors, weights) = graph.neighbor_slices(i);
            SpinTuple {
                target: i as u32,
                neighbors: neighbors.to_vec(),
                couplings: weights.to_vec(),
                neighbor_spins: neighbors.iter().map(|&j| spins.get(j as usize)).collect(),
                field: graph.field(i),
            }
        })
        .collect()
}

struct Measurement {
    design: String,
    scalar_ns: f64,
    plane_ns: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        if self.plane_ns == 0.0 {
            f64::INFINITY
        } else {
            self.scalar_ns / self.plane_ns
        }
    }
}

/// Times one design on one tuple set; asserts H equality per tuple.
fn measure(kind: DesignKind, enc: &MixedEncoding, tuples: &[SpinTuple], iters: u32) -> Measurement {
    let design = stationarity(kind);
    let max_degree = tuples.iter().map(SpinTuple::degree).max().unwrap_or(1);
    let (rows, cols) = design.tile_requirements(max_degree, enc.bits(), ROW_BITS);
    let mut tile = SramTile::new(rows, cols);
    let mut ctx = ComputeContext::new();
    let mut scratch = ComputeScratch::new();

    // Tripwire: both paths agree on H for every tuple before timing.
    for tuple in tuples {
        let hs = design.compute_tuple(&mut tile, enc, tuple, Spin::Up, &mut ctx);
        let hf = design.compute_tuple_fast(&mut tile, enc, tuple, Spin::Up, &mut ctx, &mut scratch);
        assert_eq!(hs, hf, "{kind}: fast path diverged from scalar");
        assert_eq!(hs, tuple.local_field(), "{kind}: H diverged from golden");
    }

    // Warm up, then time. One "call" sweeps the whole tuple set, so the
    // per-call figure divides by the set size afterwards.
    let per_set = |ns: f64| ns / tuples.len().max(1) as f64;
    let scalar_ns = ns_per_call(iters, || {
        for tuple in tuples {
            let h = design.compute_tuple(&mut tile, enc, tuple, Spin::Up, &mut ctx);
            std::hint::black_box(h);
        }
    });
    let plane_ns = ns_per_call(iters, || {
        for tuple in tuples {
            let h =
                design.compute_tuple_fast(&mut tile, enc, tuple, Spin::Up, &mut ctx, &mut scratch);
            std::hint::black_box(h);
        }
    });
    Measurement {
        design: kind.to_string(),
        scalar_ns: per_set(scalar_ns),
        plane_ns: per_set(plane_ns),
    }
}

/// Times one design's full sweep, scalar vs SoA tuple planes; asserts H
/// equality per tuple first. The `TuplePlanes` arenas are built once
/// outside the timed region — exactly the machine's usage, where encode
/// work happens at solve setup, not per sweep.
fn measure_soa(
    kind: DesignKind,
    enc: &MixedEncoding,
    tuples: &[SpinTuple],
    iters: u32,
) -> Measurement {
    let design = stationarity(kind);
    let max_degree = tuples.iter().map(SpinTuple::degree).max().unwrap_or(1);
    let (rows, cols) = design.tile_requirements(max_degree, enc.bits(), ROW_BITS);
    let planes = TuplePlanes::from_tuples(tuples.iter(), enc).expect("bench coefficients fit R");
    let mut tile = SramTile::new(rows, cols);
    let mut ctx = ComputeContext::new();
    let mut scratch = ComputeScratch::new();

    // Tripwire: the SoA path agrees with scalar on H for every tuple.
    for (i, tuple) in tuples.iter().enumerate() {
        let hs = design.compute_tuple(&mut tile, enc, tuple, Spin::Up, &mut ctx);
        let ho = design.compute_tuple_soa(
            &mut tile,
            enc,
            tuple,
            planes.view(i),
            Spin::Up,
            &mut ctx,
            &mut scratch,
        );
        assert_eq!(hs, ho, "{kind}: SoA path diverged from scalar");
        assert_eq!(hs, tuple.local_field(), "{kind}: H diverged from golden");
    }

    let scalar_ns = ns_per_call(iters, || {
        for tuple in tuples {
            let h = design.compute_tuple(&mut tile, enc, tuple, Spin::Up, &mut ctx);
            std::hint::black_box(h);
        }
    });
    let plane_ns = ns_per_call(iters, || {
        for (i, tuple) in tuples.iter().enumerate() {
            let h = design.compute_tuple_soa(
                &mut tile,
                enc,
                tuple,
                planes.view(i),
                Spin::Up,
                &mut ctx,
                &mut scratch,
            );
            std::hint::black_box(h);
        }
    });
    Measurement {
        design: kind.to_string(),
        scalar_ns,
        plane_ns,
    }
}

struct BankedRow {
    design: String,
    lattice: usize,
    spins: usize,
    rounds: u64,
    unbanked_cycles: u64,
    banked_cycles: u64,
}

impl BankedRow {
    fn speedup(&self) -> f64 {
        if self.banked_cycles == 0 {
            f64::INFINITY
        } else {
            self.unbanked_cycles as f64 / self.banked_cycles as f64
        }
    }
}

/// Meters one design on a King's lattice with a compute array small
/// enough to force multi-round sweeps, at bank_count 1 vs `banks`.
/// Banking must be an accounting-only change: the H trajectory is
/// asserted identical before cycles are compared.
fn measure_banked(kind: DesignKind, lattice: usize, banks: usize) -> BankedRow {
    let graph = topology::king(lattice, lattice, |i, j| ((i + 3 * j) % 7) as i32 - 3)
        .expect("king lattice weights fit R=8");
    let mut rng = StdRng::seed_from_u64(41);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(&graph, 41).with_trace();
    let small = CacheHierarchy {
        compute: CacheGeometry::new(2, 4, 64, 1),
        storage: CacheGeometry::sachi_storage_default(),
    };
    let base = SachiConfig::new(kind).with_hierarchy(small);
    let (res_1, rep_1) = SachiMachine::new(base.clone()).solve_detailed(&graph, &init, &opts);
    let (res_b, rep_b) =
        SachiMachine::new(base.with_banks(banks)).solve_detailed(&graph, &init, &opts);
    assert_eq!(
        res_1.trace, res_b.trace,
        "{kind}: banking changed the H trajectory"
    );
    assert_eq!(
        rep_1.compute_cycles, rep_b.compute_cycles,
        "{kind}: banking changed compute cycles"
    );
    assert!(
        rep_1.rounds_per_sweep > 1,
        "{kind}: banked sweep bench must be multi-round"
    );
    BankedRow {
        design: kind.to_string(),
        lattice,
        spins: graph.num_spins(),
        rounds: rep_1.rounds_per_sweep,
        unbanked_cycles: rep_1.total_cycles.get(),
        banked_cycles: rep_b.total_cycles.get(),
    }
}

fn json_rows(rows: &[Measurement], unit: &str) -> String {
    let cells: Vec<String> = rows
        .iter()
        .map(|m| {
            format!(
                "    {{\"design\": \"{}\", \"scalar_{unit}\": {:.1}, \"plane_{unit}\": {:.1}, \"speedup\": {:.2}}}",
                m.design,
                m.scalar_ns,
                m.plane_ns,
                m.speedup()
            )
        })
        .collect();
    cells.join(",\n")
}

fn print_table(title: &str, rows: &[Measurement]) {
    section(title);
    let mut t = Table::new(["design", "scalar ns", "plane ns", "speedup"]);
    for m in rows {
        t.row([
            m.design.clone(),
            format!("{:.1}", m.scalar_ns),
            format!("{:.1}", m.plane_ns),
            format!("{:.2}x", m.speedup()),
        ]);
    }
    t.print();
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let (kernel_iters, sweep_iters, lattice) = if smoke { (3, 2, 8) } else { (200, 40, 24) };
    let enc = MixedEncoding::new(DENSE_R).expect("R = 8 is a valid resolution");

    // Per H-compute: the dense degree-256, R=8 acceptance tuple.
    let dense = [dense_tuple(DENSE_DEGREE)];
    let kernel: Vec<Measurement> = DesignKind::ALL
        .into_iter()
        .map(|kind| measure(kind, &enc, &dense, kernel_iters))
        .collect();
    print_table(
        &format!("ns per H-compute: dense degree-{DENSE_DEGREE}, R={DENSE_R} tuple"),
        &kernel,
    );

    // Per sweep: every spin of a King's graph, tuples prebuilt.
    let graph = topology::king(lattice, lattice, |i, j| ((i + 3 * j) % 7) as i32 - 3)
        .expect("king lattice weights fit R=8");
    let mut rng = StdRng::seed_from_u64(41);
    let spins = SpinVector::random(graph.num_spins(), &mut rng);
    let tuples = graph_tuples(&graph, &spins);
    let sweep: Vec<Measurement> = DesignKind::ALL
        .into_iter()
        .map(|kind| {
            let m = measure(kind, &enc, &tuples, sweep_iters);
            // Re-scale per-tuple ns back up to the full-sweep figure.
            Measurement {
                design: m.design,
                scalar_ns: m.scalar_ns * tuples.len() as f64,
                plane_ns: m.plane_ns * tuples.len() as f64,
            }
        })
        .collect();
    print_table(
        &format!(
            "ns per sweep: {lattice}x{lattice} King's graph ({} spins)",
            graph.num_spins()
        ),
        &sweep,
    );

    // Per dense sweep: a full pass over many distinct dense tuples,
    // scalar vs the SoA tuple-plane path (operands pre-encoded once, as
    // the machine does at solve setup).
    let (dense_count, dense_iters) = if smoke { (4, 2) } else { (64, 10) };
    let dense_set: Vec<SpinTuple> = (0..dense_count)
        .map(|k| dense_tuple_salted(DENSE_DEGREE, k))
        .collect();
    let sweep_dense: Vec<Measurement> = DesignKind::ALL
        .into_iter()
        .map(|kind| {
            let m = measure_soa(kind, &enc, &dense_set, dense_iters);
            Measurement {
                design: m.design,
                scalar_ns: m.scalar_ns,
                plane_ns: m.plane_ns,
            }
        })
        .collect();
    print_table(
        &format!(
            "ns per dense sweep: {dense_count} tuples of degree {DENSE_DEGREE}, R={DENSE_R} \
             (scalar vs SoA planes)"
        ),
        &sweep_dense,
    );

    // Banked sweeps: metered machine cycles at bank_count 1 vs 8 on
    // multi-round lattices.
    const BANKS: usize = 8;
    let banked_lattices: &[usize] = if smoke { &[12] } else { &[24, 48] };
    let banked: Vec<BankedRow> = banked_lattices
        .iter()
        .flat_map(|&l| DesignKind::ALL.into_iter().map(move |k| (k, l)))
        .map(|(kind, l)| measure_banked(kind, l, BANKS))
        .collect();
    section(&format!(
        "metered machine cycles: multi-round King's sweeps, {BANKS}-bank upload overlap"
    ));
    let mut t = Table::new([
        "design", "lattice", "spins", "rounds", "unbanked", "banked", "speedup",
    ]);
    for b in &banked {
        t.row([
            b.design.clone(),
            format!("{0}x{0}", b.lattice),
            b.spins.to_string(),
            b.rounds.to_string(),
            b.unbanked_cycles.to_string(),
            b.banked_cycles.to_string(),
            format!("{:.2}x", b.speedup()),
        ]);
    }
    t.print();

    let banked_json: Vec<String> = banked
        .iter()
        .map(|b| {
            format!(
                "    {{\"design\": \"{}\", \"lattice\": {}, \"spins\": {}, \"rounds\": {}, \
                 \"unbanked_cycles\": {}, \"banked_cycles\": {}, \"banks\": {BANKS}, \
                 \"speedup\": {:.2}}}",
                b.design,
                b.lattice,
                b.spins,
                b.rounds,
                b.unbanked_cycles,
                b.banked_cycles,
                b.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"kernel\": {{\"degree\": {DENSE_DEGREE}, \"r\": {DENSE_R}, \"rows\": [\n{}\n  ]}},\n  \"sweep\": {{\"lattice\": {lattice}, \"spins\": {}, \"rows\": [\n{}\n  ]}},\n  \"sweep_dense\": {{\"degree\": {DENSE_DEGREE}, \"r\": {DENSE_R}, \"tuples\": {dense_count}, \"rows\": [\n{}\n  ]}},\n  \"sweep_banked\": {{\"rows\": [\n{}\n  ]}}\n}}\n",
        json_rows(&kernel, "ns"),
        graph.num_spins(),
        json_rows(&sweep, "ns"),
        json_rows(&sweep_dense, "ns"),
        banked_json.join(",\n"),
    );
    // Only the full run rebaselines: the smoke subset measures reduced
    // shapes (8-lattice, 3 reps) whose timings would silently replace
    // the committed full-run numbers on every CI pass.
    if !smoke {
        std::fs::write("BENCH_perf.json", &json).expect("write BENCH_perf.json");
        println!("\nwrote BENCH_perf.json");
    }

    if smoke {
        println!(
            "smoke: fast==scalar and soa==scalar H equality held for every design at every \
             granularity; banking left the H trajectory and compute cycles bit-identical"
        );
    } else {
        for m in &kernel {
            assert!(
                m.speedup() >= 5.0,
                "{}: dense-kernel speedup {:.2}x is below the 5x acceptance bar",
                m.design,
                m.speedup()
            );
        }
        for m in &sweep_dense {
            assert!(
                m.speedup() >= 6.0,
                "{}: dense SoA sweep speedup {:.2}x is below the 6x acceptance bar",
                m.design,
                m.speedup()
            );
        }
        println!(
            "acceptance: every design >= 5x on the dense degree-{DENSE_DEGREE} kernel and \
             >= 6x on the dense SoA sweep"
        );
    }
}
