//! Ablation: scratch-tile accounting vs the fully physical resident
//! machine.
//!
//! `SachiMachine` bills compute-array residency analytically (layout
//! writes modeled per round); `ResidentN3Machine` places tuples at real
//! bit addresses, writes layouts once per round into real bitcells, and
//! pushes spin updates through the Fig. 8b path into the resident `σ_j`
//! copies. Both must produce the identical H trajectory; this harness
//! compares their accounting so the scratch model's approximations are
//! visible and bounded.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi_bench::{ratio, section, Table};
use sachi_core::prelude::*;
use sachi_ising::prelude::*;
use sachi_mem::prelude::*;
use sachi_workloads::prelude::*;

fn main() {
    section("scratch vs resident accounting (SACHI(n3))");
    let mut table = Table::new([
        "workload",
        "machine",
        "iters",
        "compute cyc",
        "total cyc",
        "energy",
        "SRAM writes",
        "reuse",
    ]);

    let cases: Vec<(String, IsingGraph)> = vec![
        (
            "molecular dynamics 16x16".to_string(),
            MolecularDynamics::new(16, 16, 1).graph().clone(),
        ),
        (
            "image segmentation 14x14".to_string(),
            ImageSegmentation::with_options(14, 14, 2, Connectivity::Grid4, 6)
                .graph()
                .clone(),
        ),
        (
            "decision TSP n=96".to_string(),
            TspDecision::new(96, 3).graph().clone(),
        ),
    ];

    for (name, graph) in cases {
        let mut rng = StdRng::seed_from_u64(5);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let opts = SolveOptions::for_graph(&graph, 7);

        let (s_result, s) = SachiMachine::new(SachiConfig::new(DesignKind::N3))
            .solve_detailed(&graph, &init, &opts);
        let (r_result, r) = ResidentN3Machine::new(SachiConfig::new(DesignKind::N3))
            .solve_detailed(&graph, &init, &opts);
        assert_eq!(
            s_result.energy, r_result.energy,
            "{name}: machines must agree"
        );
        assert_eq!(s_result.sweeps, r_result.sweeps);

        for (label, rep) in [("scratch", &s), ("resident", &r)] {
            table.row([
                name.clone(),
                label.to_string(),
                rep.sweeps.to_string(),
                rep.compute_cycles.get().to_string(),
                rep.total_cycles.get().to_string(),
                format!("{}", rep.energy.total()),
                format!("{}", rep.energy.component(EnergyComponent::SramWrite)),
                format!("{:.1}", rep.reuse),
            ]);
        }
        println!(
            "[{name}: energy delta {} — the scratch model's analytic residency billing vs physical writes]",
            ratio(
                s.energy.total().get().max(r.energy.total().get()),
                s.energy.total().get().min(r.energy.total().get())
            )
        );
    }
    table.print();
    println!();
    println!("identical trajectories and compute cycles; the residual energy gap is");
    println!("the scratch model's analytic write billing vs the resident machine's");
    println!("actual layout-once-plus-update-bits traffic. The analytic perf model");
    println!("(sachi-core::perf) is pinned to the scratch machine; this ablation");
    println!("bounds what that abstraction costs.");
}
