//! Ablation: the counter-based DRAM prefetcher (Sec. IV.A) on/off.
//!
//! With structured CIM access patterns, the controller counts the rows
//! left to compute and issues the next round's fetch just in time. This
//! harness measures how much critical path the prefetcher hides, on a
//! functional run (small arrays force real rounds) and on the analytic
//! model at paper scale.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi_bench::{ratio, section, Table};
use sachi_core::prelude::*;
use sachi_ising::prelude::*;
use sachi_mem::prelude::*;
use sachi_workloads::prelude::*;

fn main() {
    section("functional run (shrunken arrays, molecular dynamics 12x12)");
    let w = MolecularDynamics::new(12, 12, 3);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(4);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 5);
    let tiny = CacheHierarchy {
        compute: CacheGeometry::new(2, 8, 64, 1),
        storage: CacheGeometry::new(1, 8, 64, 2),
    };
    let run = |prefetch: bool| {
        let config = if prefetch {
            SachiConfig::new(DesignKind::N3).with_hierarchy(tiny)
        } else {
            SachiConfig::new(DesignKind::N3)
                .with_hierarchy(tiny)
                .without_prefetch()
        };
        SachiMachine::new(config).solve_detailed(graph, &init, &opts)
    };
    let (res_on, on) = run(true);
    let (res_off, off) = run(false);
    assert_eq!(
        res_on.energy, res_off.energy,
        "ablation must not change results"
    );

    let mut table = Table::new([
        "prefetch",
        "rounds/iter",
        "compute cyc",
        "load cyc",
        "total cyc",
        "prefetches",
    ]);
    table.row([
        "on".to_string(),
        on.rounds_per_sweep.to_string(),
        on.compute_cycles.get().to_string(),
        on.load_cycles.get().to_string(),
        on.total_cycles.get().to_string(),
        on.prefetches.to_string(),
    ]);
    table.row([
        "off".to_string(),
        off.rounds_per_sweep.to_string(),
        off.compute_cycles.get().to_string(),
        off.load_cycles.get().to_string(),
        off.total_cycles.get().to_string(),
        off.prefetches.to_string(),
    ]);
    table.print();
    println!(
        "prefetch hides {} of the critical path ({} speedup)",
        off.total_cycles.get() - on.total_cycles.get(),
        ratio(off.total_cycles.get() as f64, on.total_cycles.get() as f64)
    );

    section("analytic model at paper scale (per-iteration CPI)");
    let mut model_table =
        Table::new(["workload", "spins", "CPI w/ prefetch", "CPI w/o", "speedup"]);
    for (kind, spins) in [
        (CopKind::MolecularDynamics, 1_000_000u64),
        (CopKind::ImageSegmentation, 1_000_000),
        (CopKind::TravelingSalesman, 100_000),
    ] {
        let shape = kind.standard_shape(spins);
        let on = PerfModel::new(SachiConfig::new(DesignKind::N3)).iteration(&shape);
        let off =
            PerfModel::new(SachiConfig::new(DesignKind::N3).without_prefetch()).iteration(&shape);
        model_table.row([
            kind.label().to_string(),
            spins.to_string(),
            on.effective_cycles.get().to_string(),
            off.effective_cycles.get().to_string(),
            ratio(
                off.effective_cycles.get() as f64,
                on.effective_cycles.get() as f64,
            ),
        ]);
    }
    model_table.print();
    println!();
    println!("the prefetcher converts round loading from additive to overlapped;");
    println!("its threshold covers DRAM-to-storage plus storage-to-compute latency");
    println!("(PrefetchCounter in sachi-mem::dram), so data arrives exactly when");
    println!("the previous round drains.");
}
