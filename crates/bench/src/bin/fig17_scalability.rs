//! Fig. 17: scalability — cycles per Hamiltonian iteration (CPI) for spin
//! counts from 500 to 1M across all four COPs and all four SACHI designs,
//! including the compute-array-overflow regimes the paper annotates, plus
//! the HD/UHD-video segmentation points (2M and 8M pixels).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi_bench::{duration, section, threads_arg, timed, Table};
use sachi_core::prelude::*;
use sachi_ising::prelude::*;
use sachi_workloads::prelude::*;

const SIZES: [u64; 7] = [500, 1_000, 10_000, 100_000, 200_000, 300_000, 1_000_000];

fn main() {
    for kind in CopKind::ALL {
        section(&format!("Fig. 17 - {kind} CPI vs spins"));
        let mut table = Table::new([
            "spins",
            "n1a",
            "n1b",
            "n2",
            "n3",
            "n3 rounds",
            "n3 fits L1?",
            "streams DRAM?",
        ]);
        for spins in SIZES {
            let shape = kind.standard_shape(spins);
            let est = |d| PerfModel::new(SachiConfig::new(d)).iteration(&shape);
            let n3 = est(DesignKind::N3);
            table.row([
                spins.to_string(),
                est(DesignKind::N1a).effective_cycles.get().to_string(),
                est(DesignKind::N1b).effective_cycles.get().to_string(),
                est(DesignKind::N2).effective_cycles.get().to_string(),
                n3.effective_cycles.get().to_string(),
                n3.rounds.to_string(),
                if n3.fits_in_compute { "yes" } else { "no" }.to_string(),
                if n3.uses_dram { "yes" } else { "no" }.to_string(),
            ]);
        }
        table.print();
    }

    section("Fig. 17(v) - video-scale image segmentation (paper: ~1e9 and ~2e10 CPI)");
    let mut video = Table::new(["pixels", "label", "n3 CPI", "n3 rounds"]);
    for (pixels, label) in [
        (2_073_600u64, "HD video (1920x1080)"),
        (8_294_400, "UHD video (3840x2160)"),
    ] {
        let shape = CopKind::ImageSegmentation.standard_shape(pixels);
        let est = PerfModel::new(SachiConfig::new(DesignKind::N3)).iteration(&shape);
        video.row([
            pixels.to_string(),
            label.to_string(),
            est.effective_cycles.get().to_string(),
            est.rounds.to_string(),
        ]);
    }
    video.print();

    // Replica-level scaling, measured: the same 8-replica SACHI(n3)
    // ensemble at increasing worker-thread counts. Results are asserted
    // identical at every T (the determinism contract); speedups are
    // host wall-clock and are cross-checked against the model-side
    // `EnsembleReport::ideal_speedup` schedule bound.
    section("replica-ensemble scaling (8 SACHI(n3) replicas, molecular dynamics 24x24)");
    let md = MolecularDynamics::new(24, 24, 13);
    let graph = md.graph();
    let mut rng = StdRng::seed_from_u64(17);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 19);
    let replicas = 8usize;
    let config = SachiConfig::new(DesignKind::N3);
    let thread_counts: Vec<usize> = threads_arg().map_or_else(|| vec![1, 2, 4, 8], |t| vec![1, t]);

    let mut baseline: Option<(sachi_ising::ensemble::BestOf, f64)> = None;
    let mut ideal = None;
    let mut ts = Table::new([
        "threads",
        "wall-clock",
        "speedup",
        "model bound",
        "identical?",
    ]);
    for &t in &thread_counts {
        let ledger = ReplicaLedger::new(replicas);
        let (best_of, wall) = timed(|| {
            EnsembleRunner::new(replicas)
                .with_threads(t)
                .run(graph, &init, &opts, |k| {
                    ReportingMachine::new(SachiMachine::new(config.clone()), k, &ledger)
                })
        });
        let report = ledger.finish();
        let bound = report.ideal_speedup(t);
        if ideal.is_none() {
            ideal = Some(report);
        }
        let (identical, secs1) = match &baseline {
            None => (true, wall.as_secs_f64()),
            Some((b, s1)) => (*b == best_of, *s1),
        };
        assert!(identical, "thread count changed ensemble results");
        ts.row([
            t.to_string(),
            duration(wall),
            format!("{:.2}x", secs1 / wall.as_secs_f64().max(1e-12)),
            format!("{bound:.2}x"),
            if identical { "yes" } else { "NO" }.to_string(),
        ]);
        if baseline.is_none() {
            baseline = Some((best_of, wall.as_secs_f64()));
        }
    }
    ts.print();
    println!("(speedup is host wall-clock; the model bound is the deterministic");
    println!("longest-first schedule over the measured per-replica cycle counts)");

    // The same ensemble with replica exchange turned on. The swap RNG is
    // salted off the master seed — never off thread identity or the
    // execution schedule — so the determinism contract carries over:
    // every thread count must produce byte-identical results and swap
    // statistics.
    section("replica-exchange scaling (same 8 rungs, adaptive ladder)");
    let pt_opts = SolveOptions::for_graph(graph, 19).with_tempering(TemperingOptions::for_graph(
        LadderKind::Adaptive,
        graph,
        replicas,
    ));
    let mut pt_baseline: Option<(sachi_ising::ensemble::BestOf, f64)> = None;
    let mut pt_table = Table::new(["threads", "wall-clock", "speedup", "swaps", "identical?"]);
    for &t in &thread_counts {
        let ledger = ReplicaLedger::new(replicas);
        let (best_of, wall) = timed(|| {
            EnsembleRunner::new(replicas)
                .with_threads(t)
                .run(graph, &init, &pt_opts, |k| {
                    ReportingMachine::new(SachiMachine::new(config.clone()), k, &ledger)
                })
        });
        drop(ledger);
        let (identical, secs1) = match &pt_baseline {
            None => (true, wall.as_secs_f64()),
            Some((b, s1)) => (*b == best_of, *s1),
        };
        assert!(
            identical,
            "thread count changed replica-exchange ensemble results"
        );
        pt_table.row([
            t.to_string(),
            duration(wall),
            format!("{:.2}x", secs1 / wall.as_secs_f64().max(1e-12)),
            format!(
                "{}/{}",
                best_of.stats.swap_accepted, best_of.stats.swap_attempts
            ),
            if identical { "yes" } else { "NO" }.to_string(),
        ]);
        if pt_baseline.is_none() {
            pt_baseline = Some((best_of, wall.as_secs_f64()));
        }
    }
    pt_table.print();

    section("paper's qualitative annotations");
    println!("(i)   n3 fastest everywhere; (ii) n2 ~= n3 for single-neighbor COPs;");
    println!("(iii) n1a trails n1b via blockwise tile fill; (iv) TSP has the highest");
    println!("CPI for the N-dependent designs; (v) video-scale points stream rounds.");
    println!("Deviation: at overflow scale n2's Rx-larger footprint can cost it tile");
    println!("parallelism vs n1b (capacity/throughput crossover), see EXPERIMENTS.md.");
}
