//! Fig. 17: scalability — cycles per Hamiltonian iteration (CPI) for spin
//! counts from 500 to 1M across all four COPs and all four SACHI designs,
//! including the compute-array-overflow regimes the paper annotates, plus
//! the HD/UHD-video segmentation points (2M and 8M pixels).

use sachi_bench::{section, Table};
use sachi_core::prelude::*;
use sachi_workloads::prelude::*;

const SIZES: [u64; 7] = [500, 1_000, 10_000, 100_000, 200_000, 300_000, 1_000_000];

fn main() {
    for kind in CopKind::ALL {
        section(&format!("Fig. 17 - {kind} CPI vs spins"));
        let mut table = Table::new([
            "spins",
            "n1a",
            "n1b",
            "n2",
            "n3",
            "n3 rounds",
            "n3 fits L1?",
            "streams DRAM?",
        ]);
        for spins in SIZES {
            let shape = kind.standard_shape(spins);
            let est = |d| PerfModel::new(SachiConfig::new(d)).iteration(&shape);
            let n3 = est(DesignKind::N3);
            table.row([
                spins.to_string(),
                est(DesignKind::N1a).effective_cycles.get().to_string(),
                est(DesignKind::N1b).effective_cycles.get().to_string(),
                est(DesignKind::N2).effective_cycles.get().to_string(),
                n3.effective_cycles.get().to_string(),
                n3.rounds.to_string(),
                if n3.fits_in_compute { "yes" } else { "no" }.to_string(),
                if n3.uses_dram { "yes" } else { "no" }.to_string(),
            ]);
        }
        table.print();
    }

    section("Fig. 17(v) - video-scale image segmentation (paper: ~1e9 and ~2e10 CPI)");
    let mut video = Table::new(["pixels", "label", "n3 CPI", "n3 rounds"]);
    for (pixels, label) in [
        (2_073_600u64, "HD video (1920x1080)"),
        (8_294_400, "UHD video (3840x2160)"),
    ] {
        let shape = CopKind::ImageSegmentation.standard_shape(pixels);
        let est = PerfModel::new(SachiConfig::new(DesignKind::N3)).iteration(&shape);
        video.row([
            pixels.to_string(),
            label.to_string(),
            est.effective_cycles.get().to_string(),
            est.rounds.to_string(),
        ]);
    }
    video.print();

    section("paper's qualitative annotations");
    println!("(i)   n3 fastest everywhere; (ii) n2 ~= n3 for single-neighbor COPs;");
    println!("(iii) n1a trails n1b via blockwise tile fill; (iv) TSP has the highest");
    println!("CPI for the N-dependent designs; (v) video-scale points stream rounds.");
    println!("Deviation: at overflow scale n2's Rx-larger footprint can cost it tile");
    println!("parallelism vs n1b (capacity/throughput crossover), see EXPERIMENTS.md.");
}
