//! Sec. IV.B.2's scaling philosophy taken to multiple cores: partition
//! the tuples across cores and let only cross-partition spin updates
//! touch the interconnect. Locality-aware partitions of lattice COPs
//! scale nearly linearly; complete graphs are interconnect-bound no
//! matter how they are split.

use sachi_bench::{section, Table};
use sachi_core::prelude::*;
use sachi_ising::graph::topology;

fn main() {
    section("multi-core scaling: King's graph 128x128 (16,384 atoms)");
    let king = topology::king(128, 128, |_, _| 1).expect("lattice");
    let model = MulticoreModel::new(SachiConfig::new(DesignKind::N3));
    let mut t = Table::new([
        "cores",
        "partition",
        "cut edges",
        "core cyc",
        "interconnect cyc",
        "speedup",
    ]);
    for cores in [1usize, 2, 4, 8, 16] {
        for (label, p) in [
            ("contiguous", Partition::contiguous(king.num_spins(), cores)),
            (
                "interleaved",
                Partition::interleaved(king.num_spins(), cores),
            ),
        ] {
            let est = model.estimate(&king, &p);
            t.row([
                cores.to_string(),
                label.to_string(),
                est.cut_edges.to_string(),
                est.core_cycles.get().to_string(),
                est.interconnect_cycles.get().to_string(),
                format!("{:.2}x", est.speedup_vs_single),
            ]);
        }
    }
    t.print();

    section("multi-core scaling: complete graph (1,024 cities)");
    let complete =
        topology::complete(1_024, |i, j| ((i + j) % 15) as i32 + 1).expect("complete graph");
    let mut t2 = Table::new([
        "cores",
        "cut edges",
        "core cyc",
        "interconnect cyc",
        "speedup",
    ]);
    for cores in [1usize, 4, 16] {
        let est = model.estimate(&complete, &Partition::contiguous(1_024, cores));
        t2.row([
            cores.to_string(),
            est.cut_edges.to_string(),
            est.core_cycles.get().to_string(),
            est.interconnect_cycles.get().to_string(),
            format!("{:.2}x", est.speedup_vs_single),
        ]);
    }
    t2.print();
    println!();
    println!("lattice COPs: contiguous partitions keep the cut (and hence the");
    println!("inter-core update traffic) tiny, so cores scale. Complete graphs cut");
    println!("most edges under any partition — the interconnect becomes the limit,");
    println!("which is why the paper stresses minimizing inter-core interactions.");
}
