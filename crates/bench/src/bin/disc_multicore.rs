//! Sec. IV.B.2's scaling philosophy taken to multiple cores: partition
//! the tuples across cores and let only cross-partition spin updates
//! touch the interconnect. Locality-aware partitions of lattice COPs
//! scale nearly linearly; complete graphs are interconnect-bound no
//! matter how they are split.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi_bench::{duration, section, threads_arg, timed, Table};
use sachi_core::prelude::*;
use sachi_ising::prelude::*;

fn main() {
    section("multi-core scaling: King's graph 128x128 (16,384 atoms)");
    let king = topology::king(128, 128, |_, _| 1).expect("lattice");
    let model = MulticoreModel::new(SachiConfig::new(DesignKind::N3));
    let mut t = Table::new([
        "cores",
        "partition",
        "cut edges",
        "core cyc",
        "interconnect cyc",
        "speedup",
    ]);
    for cores in [1usize, 2, 4, 8, 16] {
        for (label, p) in [
            ("contiguous", Partition::contiguous(king.num_spins(), cores)),
            (
                "interleaved",
                Partition::interleaved(king.num_spins(), cores),
            ),
        ] {
            let est = model.estimate(&king, &p);
            t.row([
                cores.to_string(),
                label.to_string(),
                est.cut_edges.to_string(),
                est.core_cycles.get().to_string(),
                est.interconnect_cycles.get().to_string(),
                format!("{:.2}x", est.speedup_vs_single),
            ]);
        }
    }
    t.print();

    section("multi-core scaling: complete graph (1,024 cities)");
    let complete =
        topology::complete(1_024, |i, j| ((i + j) % 15) as i32 + 1).expect("complete graph");
    let mut t2 = Table::new([
        "cores",
        "cut edges",
        "core cyc",
        "interconnect cyc",
        "speedup",
    ]);
    for cores in [1usize, 4, 16] {
        let est = model.estimate(&complete, &Partition::contiguous(1_024, cores));
        t2.row([
            cores.to_string(),
            est.cut_edges.to_string(),
            est.core_cycles.get().to_string(),
            est.interconnect_cycles.get().to_string(),
            format!("{:.2}x", est.speedup_vs_single),
        ]);
    }
    t2.print();
    println!();
    println!("lattice COPs: contiguous partitions keep the cut (and hence the");
    println!("inter-core update traffic) tiny, so cores scale. Complete graphs cut");
    println!("most edges under any partition — the interconnect becomes the limit,");
    println!("which is why the paper stresses minimizing inter-core interactions.");

    // The other axis of multi-core use: run independent replicas, one
    // per core, instead of partitioning one instance. Replicas share
    // nothing mid-solve, so their scaling has no interconnect term —
    // measured below on a real threaded ensemble and compared against
    // the partition-parallel estimates above.
    section("replica-parallel alternative (8 SACHI(n3) replicas, King's graph 32x32)");
    let small = topology::king(32, 32, |i, j| ((i + 3 * j) % 7) as i32 - 3).expect("lattice");
    let mut rng = StdRng::seed_from_u64(23);
    let init = SpinVector::random(small.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(&small, 29);
    let replicas = 8usize;
    let config = SachiConfig::new(DesignKind::N3);
    let thread_counts: Vec<usize> = threads_arg().map_or_else(|| vec![1, 2, 4, 8], |t| vec![1, t]);

    let mut t3 = Table::new([
        "threads",
        "wall-clock",
        "measured speedup",
        "replica bound",
        "partition speedup",
    ]);
    let mut first: Option<(sachi_ising::ensemble::BestOf, f64)> = None;
    for &threads in &thread_counts {
        let ledger = ReplicaLedger::new(replicas);
        let (best_of, wall) = timed(|| {
            EnsembleRunner::new(replicas)
                .with_threads(threads)
                .run(&small, &init, &opts, |k| {
                    ReportingMachine::new(SachiMachine::new(config.clone()), k, &ledger)
                })
        });
        let report = ledger.finish();
        let partition = model
            .estimate(&small, &Partition::contiguous(small.num_spins(), threads))
            .speedup_vs_single;
        let secs1 = match &first {
            None => wall.as_secs_f64(),
            Some((baseline, s1)) => {
                assert_eq!(baseline, &best_of, "thread count changed ensemble results");
                *s1
            }
        };
        t3.row([
            threads.to_string(),
            duration(wall),
            format!("{:.2}x", secs1 / wall.as_secs_f64().max(1e-12)),
            format!("{:.2}x", report.ideal_speedup(threads)),
            format!("{partition:.2}x"),
        ]);
        if first.is_none() {
            first = Some((best_of, wall.as_secs_f64()));
        }
    }
    t3.print();
    println!();
    println!("replica parallelism needs no interconnect (its bound is the");
    println!("longest-first schedule of measured replica cycles) but multiplies");
    println!("throughput, not single-solution latency; partitioning attacks the");
    println!("latency of one large instance and pays the cut-edge traffic above.");
}
