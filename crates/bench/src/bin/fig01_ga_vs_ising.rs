//! Fig. 1: Ising machines vs genetic algorithms for traveling salesman
//! and image segmentation — (top) solution accuracy under an
//! iso-performance budget, (bottom) execution time under an iso-accuracy
//! target, normalized to Ising.
//!
//! Both solvers run the same objective on the host here (the Ising side
//! is the golden-model software solver), so the time comparison is
//! algorithm-vs-algorithm, free of the simulated-vs-host caveat.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi_baselines::prelude::*;
use sachi_bench::{duration, percent, ratio, section, timed, Table};
use sachi_ising::prelude::*;
use sachi_workloads::prelude::*;
use std::time::Duration;

/// Best-of-restarts Ising anneal, returning (accuracy, host time).
fn ising_solve(workload: &dyn Workload, restarts: u64) -> (f64, Duration) {
    let graph = workload.graph();
    let mut solver = CpuReferenceSolver::new();
    let mut rng = StdRng::seed_from_u64(42);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let mut best = 0.0f64;
    let (_, elapsed) = timed(|| {
        for seed in 0..restarts {
            let r = solver.solve(graph, &init, &SolveOptions::for_graph(graph, seed));
            best = best.max(workload.accuracy(&r.spins));
        }
    });
    (best, elapsed)
}

/// GA accuracy under a fixed budget, and host time to reach `target`
/// accuracy (doubling generations; capped).
fn ga_solve(workload: &dyn Workload, target: f64, seed: u64) -> (f64, Option<Duration>) {
    let graph = workload.graph();
    let budget = run_ga_on_graph(graph, &GaOptions::standard(seed));
    let budget_acc = workload.accuracy(&budget.best_spins());

    let mut generations = 25u64;
    let mut reached = None;
    while generations <= 3_200 {
        let opts = GaOptions {
            generations,
            ..GaOptions::standard(seed)
        };
        let (outcome, t) = timed(|| run_ga_on_graph(graph, &opts));
        if workload.accuracy(&outcome.best_spins()) >= target {
            reached = Some(t);
            break;
        }
        generations *= 2;
    }
    (budget_acc, reached)
}

fn main() {
    section("Fig. 1 - GA vs Ising (iso-performance accuracy, iso-accuracy time)");
    let mut table = Table::new([
        "benchmark",
        "Ising acc",
        "GA acc",
        "Ising time",
        "GA time to Ising acc",
        "GA/Ising time",
    ]);

    // (a) traveling salesman (Lucas tour encoding, 8 cities = 64 spins).
    {
        let w = TspTour::new(8, 3);
        let (ising_acc, ising_time) = ising_solve(&w, 8);
        // Iso-accuracy target: 98% of what Ising achieved (GA rarely ties
        // it exactly).
        let target = ising_acc * 0.98;
        let (ga_acc, ga_time) = ga_solve(&w, target, 5);
        table.row([
            "traveling salesman".to_string(),
            percent(ising_acc),
            percent(ga_acc),
            duration(ising_time),
            ga_time.map_or("never (capped)".to_string(), duration),
            ga_time.map_or("inf".to_string(), |t| {
                ratio(t.as_secs_f64(), ising_time.as_secs_f64())
            }),
        ]);
    }

    // (b) image segmentation (12x12 grid).
    {
        let w = ImageSegmentation::with_options(12, 12, 7, Connectivity::Grid4, 6);
        let (ising_acc, ising_time) = ising_solve(&w, 6);
        let target = ising_acc * 0.98;
        let (ga_acc, ga_time) = ga_solve(&w, target, 9);
        table.row([
            "image segmentation".to_string(),
            percent(ising_acc),
            percent(ga_acc),
            duration(ising_time),
            ga_time.map_or("never (capped)".to_string(), duration),
            ga_time.map_or("inf".to_string(), |t| {
                ratio(t.as_secs_f64(), ising_time.as_secs_f64())
            }),
        ]);
    }
    table.print();
    println!();
    println!("paper: Ising > 99% accuracy vs GA < 95%; GA needs 2-6x the time at");
    println!("iso-accuracy. Both solvers run on the host here (algorithm-level");
    println!("comparison; the architecture-level gap is Figs. 15-18's subject).");
}
