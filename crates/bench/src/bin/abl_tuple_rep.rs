//! Ablation: tuple-rep on/off (Sec. IV.B.1).
//!
//! Tuple-rep replicates each shared IC into both endpoints' tuples so
//! every `H_σ` is self-contained. Without it, computing a tuple whose
//! shared IC lives in the *other* endpoint's tuple forces a cross-tuple
//! re-read of the storage array — the interdependency and control
//! overhead the paper warns about. The machine counts those re-reads;
//! this harness prices them.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi_bench::{section, Table};
use sachi_core::prelude::*;
use sachi_ising::prelude::*;
use sachi_workloads::prelude::*;

fn main() {
    section("ablation: tuple-rep (storage overhead vs re-read traffic)");
    let mut table = Table::new([
        "workload",
        "iters",
        "re-reads (no rep)",
        "re-read cycles (2-port L2)",
        "compute cycles",
        "slowdown",
        "extra storage w/ rep",
    ]);

    let cases: Vec<(String, IsingGraph)> = vec![
        (
            "molecular dynamics 16x16".to_string(),
            MolecularDynamics::new(16, 16, 1).graph().clone(),
        ),
        (
            "image segmentation 16x16".to_string(),
            ImageSegmentation::with_options(16, 16, 2, Connectivity::Grid4, 6)
                .graph()
                .clone(),
        ),
        (
            "decision TSP n=64".to_string(),
            TspDecision::new(64, 3).graph().clone(),
        ),
    ];

    for (name, graph) in cases {
        let mut rng = StdRng::seed_from_u64(7);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let opts = SolveOptions::for_graph(&graph, 9);

        let (result_rep, with_rep) = SachiMachine::new(SachiConfig::new(DesignKind::N3))
            .solve_detailed(&graph, &init, &opts);
        let (result_norep, without) =
            SachiMachine::new(SachiConfig::new(DesignKind::N3).without_tuple_rep())
                .solve_detailed(&graph, &init, &opts);
        assert_eq!(
            result_rep.energy, result_norep.energy,
            "ablation must not change results"
        );
        assert_eq!(with_rep.cross_tuple_rereads, 0);

        // Each cross-tuple re-read is a storage access that contends with
        // the update path; with 2 read ports it costs ~1 cycle each and
        // serializes into the round (the "performance bottlenecks with
        // control overhead" of Sec. IV.B.1).
        let reread_cycles = without.cross_tuple_rereads / 2;
        let slowdown = (with_rep.compute_cycles.get() + reread_cycles) as f64
            / with_rep.compute_cycles.get() as f64;
        // Tuple-rep's cost: each edge's IC is stored twice instead of once.
        let r = with_rep.resolution_bits as u64;
        let extra_bits = graph.num_edges() as u64 * r;

        table.row([
            name,
            with_rep.sweeps.to_string(),
            without.cross_tuple_rereads.to_string(),
            reread_cycles.to_string(),
            with_rep.compute_cycles.get().to_string(),
            format!("{slowdown:.2}x"),
            format!("{}", sachi_mem::units::Bits::new(extra_bits)),
        ]);
    }
    table.print();
    println!();
    println!("tuple-rep trades one duplicated IC copy per edge for zero cross-tuple");
    println!("reads: denser graphs pay more storage but avoid proportionally more");
    println!("interdependent accesses (the 1:1 tuple-to-row mapping of Fig. 7b).");

    section("reuse check");
    let shape = CopKind::MolecularDynamics.standard_shape(1_000);
    let est = PerfModel::new(SachiConfig::new(DesignKind::N3)).iteration(&shape);
    println!(
        "with tuple-rep, SACHI(n3) sustains reuse {} with fully independent tuples",
        est.reuse
    );
    println!("(cross-tuple re-reads would serialize the tiles and cap parallelism)");
}
