//! Discrepancy audit: analytic `PerfModel` vs functional-sim metered
//! cycles.
//!
//! The repo carries two cycle accounts of the same architecture: the
//! closed-form `PerfModel` (used by `sachi estimate` and the
//! scalability figures) and the functional `SachiMachine` (which meters
//! every round it actually executes). On **uniform-degree** graphs the
//! closed form's uniform-`N` assumption holds exactly, so its per-sweep
//! compute cycles must reproduce the machine's metered
//! `machine_compute_cycles` to the cycle — any drift there is a model
//! bug, and this harness asserts it to zero. Load cycles legitimately
//! differ (the machine meters cold first-sweep fills and actual
//! round-by-round storage traffic), so the load-side drift is reported
//! as a signed cycle delta rather than asserted.
//!
//! `--smoke` runs a reduced sweep for CI; the drift table doubles as
//! the CI drift report.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi_bench::{section, Table};
use sachi_core::prelude::*;
use sachi_ising::prelude::*;
use sachi_mem::cache::{CacheGeometry, CacheHierarchy};
use sachi_workloads::spec::WorkloadShape;

/// A ring C_n: the smallest uniform-degree topology (N = 2).
fn ring(n: usize) -> IsingGraph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        let j = (i + 1) % n;
        b.push_edge(
            u32::try_from(i).expect("bench sizes fit u32"),
            u32::try_from(j).expect("bench sizes fit u32"),
            if i % 2 == 0 { 1 } else { -1 },
        );
    }
    b.build().expect("ring is a valid graph")
}

fn drift_percent(measured: u64, predicted: u64) -> f64 {
    if predicted == 0 {
        return if measured == 0 { 0.0 } else { f64::INFINITY };
    }
    (measured as f64 - predicted as f64) / predicted as f64 * 100.0
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke {
        &[24, 48]
    } else {
        &[24, 64, 128, 256]
    };

    section("PerfModel vs functional machine: cycle drift on uniform-degree graphs");
    let mut table = Table::new([
        "graph",
        "design",
        "N",
        "R",
        "sweeps",
        "compute",
        "closed",
        "drift",
        "load delta",
    ]);
    let mut worst_load_delta = 0i64;
    for &n in sizes {
        let complete = topology::complete(n, |i, j| if (i + j) % 2 == 0 { 1 } else { -1 })
            .expect("complete graph builds");
        for (name, graph) in [("complete", complete), ("ring", ring(n))] {
            // Uniform degree is the precondition for exactness; make the
            // harness fail loudly if a topology edit breaks it.
            assert!(
                (0..graph.num_spins()).all(|i| graph.degree(i) == graph.max_degree()),
                "{name} graph must be uniform-degree"
            );
            let shape = WorkloadShape::new(
                u64::try_from(graph.num_spins()).expect("bench sizes fit u64"),
                u64::try_from(graph.max_degree()).expect("degrees fit u64"),
                graph.bits_required(),
            );
            for design in DesignKind::ALL {
                let config = SachiConfig::new(design);
                let mut machine = SachiMachine::new(config.clone());
                let mut rng = StdRng::seed_from_u64(0xD21F);
                let init = SpinVector::random(graph.num_spins(), &mut rng);
                let opts = SolveOptions::for_graph(&graph, 17);
                let (_, report) = machine.solve_detailed(&graph, &init, &opts);

                let est = PerfModel::new(config).iteration(&shape);
                let predicted_compute = est.compute_cycles.get() * report.sweeps;
                let measured_compute = report.compute_cycles.get();
                let compute_drift = drift_percent(measured_compute, predicted_compute);
                // The load account has no exactness claim: the machine
                // meters cold first-sweep fills and real round traffic
                // the per-sweep closed form amortizes away. Report the
                // signed cycle delta instead of a ratio (the closed
                // form is legitimately zero for resident problems).
                let load_delta = i64::try_from(report.load_cycles.get()).unwrap_or(i64::MAX)
                    - i64::try_from(est.load_cycles.get() * report.sweeps).unwrap_or(i64::MAX);
                worst_load_delta = worst_load_delta.max(load_delta.abs());
                table.row([
                    format!("{name}({n})"),
                    design.label().to_string(),
                    shape.neighbors_per_spin.to_string(),
                    shape.resolution_bits.to_string(),
                    report.sweeps.to_string(),
                    measured_compute.to_string(),
                    predicted_compute.to_string(),
                    format!("{compute_drift:+.2}%"),
                    format!("{load_delta:+}"),
                ]);
                assert_eq!(
                    measured_compute,
                    predicted_compute,
                    "{name}({n})/{}: closed-form compute cycles must be exact on \
                     uniform-degree graphs ({compute_drift:+.3}% drift)",
                    design.label()
                );
                assert_eq!(
                    report.rounds_per_sweep,
                    est.rounds,
                    "{name}({n})/{}: round count must agree",
                    design.label()
                );
            }
        }
    }
    table.print();
    println!();
    println!(
        "compute drift: 0.00% everywhere (asserted); worst |load delta|: {worst_load_delta} \
         cycles (expected nonzero: the machine meters cold fills the per-sweep closed form \
         amortizes)"
    );

    // --- banked + prefetch overlap: the multi-round regime ---
    //
    // With a compute array too small for the problem, every sweep
    // reloads round by round and the prefetcher overlaps round k+1's
    // upload with round k's compute. Here BOTH accounts are exact: the
    // closed form's per-chunk load (rows / banks, sram22-style banking)
    // must reproduce the machine's metered load cycles to the cycle, at
    // every bank count, with overlap enabled.
    section("Banked + prefetch overlap: drift on multi-round sweeps");
    let small = CacheHierarchy {
        compute: CacheGeometry::new(2, 4, 64, 1),
        storage: CacheGeometry::sachi_storage_default(),
    };
    let bank_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut banked = Table::new([
        "banks",
        "design",
        "rounds",
        "sweeps",
        "compute",
        "load",
        "closed load",
        "drift",
    ]);
    let graph = topology::complete(36, |i, j| if (i + j) % 2 == 0 { 1 } else { -1 })
        .expect("complete graph builds");
    let shape = WorkloadShape::new(36, 35, graph.bits_required());
    for &banks in bank_counts {
        for design in DesignKind::ALL {
            let config = SachiConfig::new(design)
                .with_hierarchy(small)
                .with_banks(banks);
            let mut machine = SachiMachine::new(config.clone());
            let mut rng = StdRng::seed_from_u64(0xD21F);
            let init = SpinVector::random(graph.num_spins(), &mut rng);
            let opts = SolveOptions::for_graph(&graph, 17);
            let (_, report) = machine.solve_detailed(&graph, &init, &opts);

            let est = PerfModel::new(config).iteration(&shape);
            assert!(
                est.rounds > 1,
                "banked section must exercise multi-round sweeps"
            );
            let predicted_compute = est.compute_cycles.get() * report.sweeps;
            let predicted_load = est.load_cycles.get() * report.sweeps;
            let measured_compute = report.compute_cycles.get();
            let measured_load = report.load_cycles.get();
            let load_drift = drift_percent(measured_load, predicted_load);
            banked.row([
                banks.to_string(),
                design.label().to_string(),
                report.rounds_per_sweep.to_string(),
                report.sweeps.to_string(),
                measured_compute.to_string(),
                measured_load.to_string(),
                predicted_load.to_string(),
                format!("{load_drift:+.2}%"),
            ]);
            assert_eq!(
                report.rounds_per_sweep,
                est.rounds,
                "banks={banks}/{}: round count must agree",
                design.label()
            );
            assert_eq!(
                measured_compute,
                predicted_compute,
                "banks={banks}/{}: banking must not perturb compute cycles",
                design.label()
            );
            assert_eq!(
                measured_load,
                predicted_load,
                "banks={banks}/{}: closed-form banked load must be exact \
                 ({load_drift:+.3}% drift)",
                design.label()
            );
        }
    }
    banked.print();
    println!();
    println!("banked load drift: 0.00% everywhere (asserted) with prefetch overlap enabled");
}
