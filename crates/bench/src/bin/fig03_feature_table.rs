//! Fig. 3: SACHI vs the state-of-the-art Ising architectures — the
//! qualitative feature table, with every checkable cell *verified
//! against the implementation's own constants and envelope checks*
//! rather than just printed.

use sachi_baselines::brim::{BRIM_MAX_NODES, BRIM_MAX_RESOLUTION};
use sachi_baselines::ising_cim::CIM_MAX_RESOLUTION;
use sachi_baselines::prelude::*;
use sachi_bench::{section, Table};
use sachi_core::prelude::*;
use sachi_ising::graph::topology;

fn main() {
    section("Fig. 3 - SACHI vs BRIM vs Ising-CIM");
    let mut t = Table::new(["property", "BRIM", "Ising-CIM", "SACHI"]);
    t.row([
        "dedicated accelerator",
        "yes",
        "yes",
        "no - repurposes L1 cache",
    ]);
    t.row(["Ising machine", "physical", "iterative", "iterative"]);
    t.row([
        "architecture",
        "coupled oscillator",
        "in-memory (eDRAM)",
        "near-memory (8T SRAM)",
    ]);
    t.row(["ADC/DAC", "yes", "no", "no"]);
    t.row([
        "problem size / graphs".to_string(),
        format!("{BRIM_MAX_NODES} nodes / all graphs"),
        "any size / King's graph".to_string(),
        "any size / all graphs".to_string(),
    ]);
    t.row([
        "max compute resolution".to_string(),
        format!("signed {BRIM_MAX_RESOLUTION}-bit"),
        format!("unsigned {CIM_MAX_RESOLUTION}-bit"),
        "reconfigurable, up to signed 32-bit".to_string(),
    ]);
    t.row([
        "reuse",
        "1 (one compute per fetched bit)",
        "1",
        "up to N*R (reuse-aware)",
    ]);
    t.row(["memory array modifications", "n/a", "yes", "no"]);
    t.print();

    section("each checkable cell, verified against the implementation");
    // BRIM: 1000 nodes, signed 4-bit.
    let brim = BrimMachine::new();
    assert!(brim
        .check_limits(&topology::star(1_000, |_| 7).expect("graph"))
        .is_ok());
    assert!(brim
        .check_limits(&topology::star(1_001, |_| 1).expect("graph"))
        .is_err());
    assert!(brim
        .check_limits(&topology::star(4, |_| 8).expect("graph"))
        .is_err()); // 8 needs 5 bits
    println!("BRIM      : accepts 1000 nodes at 4-bit, rejects 1001 nodes and 5-bit ICs");

    // Ising-CIM: King's graph, unsigned 2-bit.
    let cim = CimMachine::new();
    assert!(cim
        .check_limits(&topology::king(4, 4, |_, _| 3).expect("graph"))
        .is_ok());
    assert!(cim
        .check_limits(&topology::king(4, 4, |_, _| 4).expect("graph"))
        .is_err());
    assert!(cim
        .check_limits(&topology::king(4, 4, |_, _| -1).expect("graph"))
        .is_err());
    assert!(cim
        .check_limits(&topology::complete(10, |_, _| 1).expect("graph"))
        .is_err());
    println!("Ising-CIM : accepts 2-bit King's graphs, rejects signed/wider ICs and dense graphs");

    // SACHI: any graph, any resolution 2..=32, DAC-free by construction.
    assert!(MixedEncoding::new(32).is_ok());
    assert!(MixedEncoding::new(33).is_err());
    for kind in DesignKind::ALL {
        let d = stationarity(kind);
        assert!(d.max_reuse(8, 4) >= 1);
    }
    assert_eq!(stationarity(DesignKind::N3).max_reuse(999, 4), 3_996);
    println!("SACHI     : encodes 2..=32-bit signed ICs, computes all graph types,");
    println!("            reuse up to N*R = 3996 on a 1K-city complete graph,");
    println!("            and the energy ledger has no DAC/ADC component to book.");

    // "No memory array modifications": the compute path uses the same
    // SramTile writes/reads the normal mode uses (one code path).
    println!("            the compute mode runs on the unmodified 8T tile model");
    println!("            (sachi-mem::sram has a single array implementation).");
}
