//! Fig. 19: time to solution / solution quality — (a) Hamiltonian energy
//! vs iteration for asset allocation with simulated annealing, (b) the
//! solution-time ladder from SACHI(n1) to SACHI(n3), (c) iterations to
//! iso-accuracy vs IC resolution, (d) solution accuracy vs IC resolution.
//!
//! Fig. 19a in the paper uses 1M assets; we run a functionally identical
//! scaled-down instance (500 assets — the complete-graph expansion makes
//! the instance quadratic) and note the substitution in EXPERIMENTS.md.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi_bench::{percent, section, threads_arg, Table};
use sachi_core::prelude::*;
use sachi_ising::prelude::*;
use sachi_workloads::prelude::*;

fn main() {
    // --- (a) H vs iteration ---
    section("Fig. 19a - Hamiltonian energy vs iteration (asset allocation, 500 assets)");
    let w = AssetAllocation::new(500, 21);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(2);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 3).with_trace();
    // Best-of-4 deterministic replica ensemble: the plotted trace is the
    // lowest-energy replica's, and is identical at any --threads value.
    let mut runner = EnsembleRunner::new(4);
    if let Some(t) = threads_arg() {
        runner = runner.with_threads(t);
    }
    let best_of = runner.run_reference(graph, &init, &opts);
    println!(
        "ensemble: {} replicas over {} threads; best replica {} ({} sweeps total)",
        best_of.replicas.len(),
        runner.threads(),
        best_of.best_index,
        best_of.stats.total_sweeps
    );
    let result = best_of.best().clone();
    let trace = &result.trace;
    let stride = (trace.len() / 12).max(1);
    // Normalize descent progress: 1.0 at the first recorded H, 0.0 at the
    // converged H.
    let h_first = *trace.first().expect("non-empty trace") as f64;
    let h_last = *trace.last().expect("non-empty trace") as f64;
    let span = (h_first - h_last).abs().max(1.0);
    let progress = |h: i64| (h as f64 - h_last) / span;
    let mut ta = Table::new(["iteration", "H", "remaining descent"]);
    for (i, h) in trace.iter().enumerate().step_by(stride) {
        ta.row([
            (i + 1).to_string(),
            h.to_string(),
            format!("{:.3}", progress(*h)),
        ]);
    }
    ta.row([
        trace.len().to_string(),
        trace.last().unwrap().to_string(),
        format!("{:.3}", progress(*trace.last().unwrap())),
    ]);
    ta.print();
    println!(
        "converged after {} iterations; final accuracy {} (SA uphill flips escape local minima)",
        result.sweeps,
        percent(w.accuracy(&result.spins))
    );

    // --- (b) solution-time ladder ---
    section("Fig. 19b - solution time from SACHI(n1) to SACHI(n3)");
    let md = MolecularDynamics::new(16, 16, 5);
    let mg = md.graph();
    let mut rng = StdRng::seed_from_u64(4);
    let minit = SpinVector::random(mg.num_spins(), &mut rng);
    let mopts = SolveOptions::for_graph(mg, 5);
    let mut tb = Table::new(["design", "iterations", "cycles", "time", "vs n1a"]);
    let mut n1a_time = 0.0f64;
    for design in DesignKind::ALL {
        let (_, report) =
            SachiMachine::new(SachiConfig::new(design)).solve_detailed(mg, &minit, &mopts);
        if design == DesignKind::N1a {
            n1a_time = report.wall_time.get();
        }
        tb.row([
            design.label().to_string(),
            report.sweeps.to_string(),
            report.total_cycles.get().to_string(),
            format!("{}", report.wall_time),
            format!("{:.1}x", n1a_time / report.wall_time.get()),
        ]);
    }
    tb.print();
    println!("(the iteration count is identical across designs — only CPI changes)");

    // --- (c) iterations to iso-accuracy vs resolution ---
    section("Fig. 19c - iterations to reach 99.5% accuracy vs IC resolution");
    const TARGET: f64 = 0.995;
    const CAP: u64 = 512;
    let sweeps_to_target = |bits: u32, seed: u64| -> Option<u64> {
        let w = AssetAllocation::with_resolution(40, seed, bits);
        let graph = w.graph();
        let mut rng = StdRng::seed_from_u64(seed);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let mut solver = CpuReferenceSolver::new();
        let mut cap = 1u64;
        while cap <= CAP {
            let opts = SolveOptions::for_graph(graph, seed + 100).with_max_sweeps(cap);
            let r = solver.solve(graph, &init, &opts);
            if w.accuracy(&r.spins) >= TARGET {
                return Some(r.sweeps);
            }
            if r.converged {
                return None;
            }
            cap *= 2;
        }
        None
    };
    let mut tc = Table::new([
        "R (bits)",
        "mean iterations (8 seeds)",
        "runs reaching target",
    ]);
    for bits in [2u32, 4, 8, 16, 32] {
        let mut total = 0u64;
        let mut reached = 0u64;
        for seed in 0..8 {
            match sweeps_to_target(bits, seed) {
                Some(s) => {
                    total += s;
                    reached += 1;
                }
                None => total += CAP,
            }
        }
        tc.row([
            bits.to_string(),
            format!("{:.0}", total as f64 / 8.0),
            format!("{reached}/8"),
        ]);
    }
    tc.print();
    println!("(paper: iterations rise sharply below 8-bit; 32-bit needs the fewest)");

    // --- (d) accuracy vs resolution at convergence ---
    section("Fig. 19d - converged solution accuracy vs IC resolution");
    let mut td = Table::new([
        "R (bits)",
        "asset allocation",
        "image segmentation",
        "molecular dynamics",
    ]);
    for bits in [2u32, 4, 6, 8, 16, 32] {
        let mut cells = vec![bits.to_string()];
        // Asset allocation.
        let mut acc = 0.0;
        for seed in 0..6u64 {
            let w = AssetAllocation::with_resolution(40, seed, bits);
            let graph = w.graph();
            let mut rng = StdRng::seed_from_u64(seed);
            let init = SpinVector::random(graph.num_spins(), &mut rng);
            let r = CpuReferenceSolver::new().solve(
                graph,
                &init,
                &SolveOptions::for_graph(graph, seed + 7),
            );
            acc += w.accuracy(&r.spins);
        }
        cells.push(percent(acc / 6.0));
        // Image segmentation.
        let mut acc = 0.0;
        for seed in 0..4u64 {
            let w = ImageSegmentation::with_options(10, 10, seed, Connectivity::Grid4, bits);
            let graph = w.graph();
            let mut rng = StdRng::seed_from_u64(seed);
            let init = SpinVector::random(graph.num_spins(), &mut rng);
            let r = CpuReferenceSolver::new().solve(
                graph,
                &init,
                &SolveOptions::for_graph(graph, seed + 9),
            );
            acc += w.accuracy(&r.spins);
        }
        cells.push(percent(acc / 4.0));
        // Molecular dynamics.
        let mut acc = 0.0;
        for seed in 0..4u64 {
            let w = MolecularDynamics::with_resolution(10, 10, seed, bits);
            let graph = w.graph();
            let mut rng = StdRng::seed_from_u64(seed);
            let init = SpinVector::random(graph.num_spins(), &mut rng);
            let r = CpuReferenceSolver::new().solve(
                graph,
                &init,
                &SolveOptions::for_graph(graph, seed + 11),
            );
            acc += w.accuracy(&r.spins);
        }
        cells.push(percent(acc / 4.0));
        td.row(cells);
    }
    td.print();
    println!("(paper: 4-bit drops below 90% for the precision-hungry COPs while");
    println!("8-bit retains accuracy with a smaller footprint than 32-bit)");
}
