//! Sec. VII.2: impact of larger L1/L2 caches — 1M-spin traveling salesman
//! on the 10KB/160KB, 64KB/1MB, and 256KB/8MB presets (paper: 5x/8x and
//! 16x/20x performance/energy gains over the base configuration), plus
//! the no-benchmark-degrades check.

use sachi_bench::{ratio, section, Table};
use sachi_core::prelude::*;
use sachi_mem::prelude::*;
use sachi_workloads::prelude::*;

fn main() {
    section("Sec. VII.2 - cache scaling for 1M-spin TSP on SACHI(n3)");
    let shape = CopKind::TravelingSalesman.standard_shape(1_000_000);
    let presets: [(&str, CacheHierarchy, &str); 3] = [
        (
            "10KB/160KB (paper default)",
            CacheHierarchy::hpca_default(),
            "1x/1x",
        ),
        ("64KB/1MB", CacheHierarchy::desktop(), "~5x/8x"),
        ("256KB/8MB", CacheHierarchy::server(), "~16x/20x"),
    ];
    let base = PerfModel::new(SachiConfig::new(DesignKind::N3)).iteration(&shape);
    let mut table = Table::new([
        "preset",
        "CPI",
        "speedup",
        "energy/iter",
        "energy gain",
        "paper",
        "rounds",
    ]);
    for (name, hierarchy, paper) in presets {
        let est = PerfModel::new(SachiConfig::new(DesignKind::N3).with_hierarchy(hierarchy))
            .iteration(&shape);
        table.row([
            name.to_string(),
            est.effective_cycles.get().to_string(),
            ratio(
                base.effective_cycles.get() as f64,
                est.effective_cycles.get() as f64,
            ),
            format!("{}", est.energy.total()),
            ratio(base.energy.total().get(), est.energy.total().get()),
            paper.to_string(),
            est.rounds.to_string(),
        ]);
    }
    table.print();

    section("no benchmark degrades with larger caches");
    let mut check = Table::new(["COP", "base CPI", "64KB/1MB", "256KB/8MB", "monotone?"]);
    for kind in CopKind::ALL {
        let s = kind.standard_shape(1_000_000);
        let cpi = |h| {
            PerfModel::new(SachiConfig::new(DesignKind::N3).with_hierarchy(h))
                .iteration(&s)
                .effective_cycles
                .get()
        };
        let (b, d, v) = (
            cpi(CacheHierarchy::hpca_default()),
            cpi(CacheHierarchy::desktop()),
            cpi(CacheHierarchy::server()),
        );
        check.row([
            kind.label().to_string(),
            b.to_string(),
            d.to_string(),
            v.to_string(),
            (d <= b && v <= d).to_string(),
        ]);
    }
    check.print();
    println!();
    println!("mechanisms: wider rows fit more N*R per row (fewer splits), larger");
    println!("capacity cuts reload rounds, and a bigger L2 keeps driven operands");
    println!("out of DRAM. Larger arrays cost slightly more per access (RBL/RWL");
    println!("capacitance) but the performance gain dominates, as the paper argues.");
}
