//! Fig. 15a–c: SACHI(n3) vs BRIM at 1K spins / 4-bit ICs — reuse table,
//! cycles per solve, and energy per solve (including loading), for all
//! four COPs.
//!
//! Methodology mirrors the paper's (Sec. V.5): the *iteration count* comes
//! from a live golden-model solve of a real 1K-spin instance (every
//! machine shares it — "they all arrive at the same H"), while per-
//! iteration cycles/energy come from each machine's architecture model at
//! the Fig. 15 shape (1K spins, 4-bit).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi_baselines::prelude::*;
use sachi_bench::{ratio, section, timed, Table};
use sachi_core::prelude::*;
use sachi_ising::prelude::*;
use sachi_mem::prelude::*;
use sachi_workloads::prelude::*;

/// Paper-reported factors for Fig. 15 (SACHI(n3) over BRIM).
const PAPER: [(&str, f64, f64, f64); 4] = [
    // (cop, perf, energy, reuse)
    ("asset allocation", 36.0, 72.0, 4.0),
    ("image segmentation", 286.0, 80.0, 200.0),
    ("traveling salesman", 300.0, 75.0, 4000.0),
    ("molecular dynamics", 160.0, 79.0, 32.0),
];

fn golden_iterations(graph: &IsingGraph, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, seed ^ 0xf00d).with_max_sweeps(400);
    CpuReferenceSolver::new().solve(graph, &init, &opts).sweeps
}

fn instance_graph(kind: CopKind) -> (IsingGraph, String) {
    match kind {
        CopKind::AssetAllocation => {
            let w = AssetAllocation::with_resolution(1_000, 1, 4);
            (w.graph().clone(), w.name())
        }
        CopKind::ImageSegmentation => {
            let w = ImageSegmentation::with_options(32, 31, 2, Connectivity::Dense(3), 4);
            (w.graph().clone(), w.name())
        }
        CopKind::TravelingSalesman => {
            let w = TspDecision::with_resolution(1_000, 3, 4);
            (w.graph().clone(), w.name())
        }
        CopKind::MolecularDynamics => {
            let w = MolecularDynamics::with_resolution(32, 32, 4, 4);
            (w.graph().clone(), w.name())
        }
        // Fig. 15 compares the paper's four COPs only; the extension
        // families (CopKind::EXTENDED tail) are covered by disc_quality.
        other => unreachable!("fig15 is driven by CopKind::ALL, got {other}"),
    }
}

fn main() {
    let tech = TechnologyParams::freepdk45();
    let brim = BrimMachine::new();
    let model = PerfModel::new(SachiConfig::new(DesignKind::N3));

    section("Fig. 15a - reuse (1K spins, 4-bit ICs)");
    let mut reuse_table = Table::new(["COP", "BRIM", "Ising-CIM", "SACHI(n3)", "paper SACHI(n3)"]);
    for (kind, paper) in CopKind::ALL.iter().zip(PAPER.iter()) {
        let shape = kind.standard_shape(1_000).with_resolution(4);
        reuse_table.row([
            kind.label().to_string(),
            "1".to_string(),
            "1".to_string(),
            model.iteration(&shape).reuse.to_string(),
            format!("~{}", paper.3),
        ]);
    }
    reuse_table.print();

    section("Fig. 15b/c - cycles and energy to solve (including loading)");
    let mut table = Table::new([
        "COP",
        "iters",
        "BRIM cycles",
        "SACHI cycles",
        "speedup",
        "paper",
        "BRIM energy",
        "SACHI energy",
        "gain",
        "paper",
    ]);
    for (kind, paper) in CopKind::ALL.iter().zip(PAPER.iter()) {
        let ((graph, name), build_time) = timed(|| instance_graph(*kind));
        let (iters, solve_time) = timed(|| golden_iterations(&graph, 7));
        eprintln!(
            "[{name}: built in {:?}, golden solve {:?}]",
            build_time, solve_time
        );

        let shape = kind.standard_shape(1_000).with_resolution(4);
        let n = shape.neighbors_per_spin;

        // SACHI(n3): analytic solve estimate (parity-tested vs the
        // functional machine).
        let sachi = model.solve(&shape, iters);

        // BRIM: IC programming + serial sweeps.
        let program_bits = 2 * graph.num_edges() as u64 * 4;
        let brim_cycles = tech.dram_stream_cycles(program_bits.div_ceil(8)).get()
            + brim.cycles_per_sweep(shape.spins, n) * iters;
        let brim_energy = tech.movement_energy_per_bit() * program_bits
            + brim.sweep_energy(shape.spins, n, 4) * iters;

        table.row([
            kind.label().to_string(),
            iters.to_string(),
            brim_cycles.to_string(),
            sachi.total_cycles.get().to_string(),
            ratio(brim_cycles as f64, sachi.total_cycles.get() as f64),
            format!("~{}x", paper.1),
            format!("{}", brim_energy),
            format!("{}", sachi.energy.total()),
            ratio(brim_energy.get(), sachi.energy.total().get()),
            format!("~{}x", paper.2),
        ]);
    }
    table.print();
    println!();
    println!("notes: BRIM modeled per Sec. V.5 (best case 4 cycles + sequential DAC,");
    println!("serial spin updates, 250mW-scaled oscillator fabric, reuse 1).");
    println!("Shape match expected, not absolute factors; see EXPERIMENTS.md.");
}
