//! The solution-quality regression harness behind `disc_quality` and
//! `BENCH_quality.json` — what `BENCH_perf.json` does for speed, this
//! does for quality.
//!
//! Every (corpus cell × design) pair solves deterministically (fixed
//! restart seeds, the slow quality schedule), producing one
//! [`QualityRow`]: best energy, total machine cycles across restarts,
//! domain accuracy, and the family's raw domain metric. Rows serialize
//! into the `sachi.quality.v1` schema and [`compare`] checks a fresh
//! run against the committed baseline under the stated tolerance
//! policy (DESIGN.md):
//!
//! * accuracy may drop at most [`Tolerance::accuracy_drop`] (0.02);
//! * cycles may grow at most ×[`Tolerance::cycle_ratio`] (1.25);
//! * best energy may worsen at most [`Tolerance::energy_slack`] (2)
//!   absolute — solves are deterministic, so any real drift is a code
//!   change, but the slack keeps harmless schedule retunes from
//!   blocking;
//! * a baseline row missing from the current run is always a
//!   regression; improvements never fail.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi_core::prelude::*;
use sachi_ising::prelude::*;
use sachi_obs::json::{self, JsonValue};
use sachi_workloads::prelude::*;

/// Restarts per (cell, design): the committed baseline and every
/// comparison run must use the same value or cycles won't line up.
pub const QUALITY_RESTARTS: u64 = 4;

/// One (corpus cell, design) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityRow {
    /// Corpus cell id (e.g. `sat_n20_planted`).
    pub id: String,
    /// Workload family label (`3-sat`, `graph coloring`, `job scheduling`).
    pub family: String,
    /// Design key (`n1a`, `n1b`, `n2`, `n3`).
    pub design: String,
    /// Encoded problem size in spins.
    pub spins: u64,
    /// Best Ising energy over the restarts.
    pub best_energy: i64,
    /// Machine cycles summed over all restarts.
    pub total_cycles: u64,
    /// Domain accuracy of the best state, in `[0, 1]`.
    pub accuracy: f64,
    /// The family's raw domain metric of the best state.
    pub domain_metric: i64,
    /// Unit of `domain_metric` (`satisfied_weight`, `conflicts`,
    /// `makespan`).
    pub domain_unit: String,
    /// Whether the `--smoke` subset includes this cell.
    pub smoke: bool,
}

/// Short stable key for a design (JSON row field).
pub fn design_key(design: DesignKind) -> &'static str {
    match design {
        DesignKind::N1a => "n1a",
        DesignKind::N1b => "n1b",
        DesignKind::N2 => "n2",
        DesignKind::N3 => "n3",
    }
}

/// Solves one corpus cell on one design: [`QUALITY_RESTARTS`] restarts
/// from a seeded random state each, slow quality schedule, best energy
/// kept, cycles summed. Fully deterministic — thread count, wall
/// clock, and host never appear in the row.
pub fn run_cell(case: &CorpusCase, design: DesignKind) -> QualityRow {
    run_cell_measured(case, design).0
}

/// [`run_cell`] plus the total sweeps the restarts actually executed —
/// the budget a tempered comparison run must live within (see
/// [`run_cell_tempered`]).
pub fn run_cell_measured(case: &CorpusCase, design: DesignKind) -> (QualityRow, u64) {
    let graph = case.graph();
    let mut machine = SachiMachine::new(SachiConfig::new(design));
    let mut best: Option<SolveResult> = None;
    let mut total_cycles = 0u64;
    let mut total_sweeps = 0u64;
    for restart in 0..QUALITY_RESTARTS {
        let mut rng = StdRng::seed_from_u64(restart);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let opts = SolveOptions {
            schedule: Schedule::new((2 * graph.max_abs_coefficient().max(1)) as f64, 0.95, 0.05),
            ..SolveOptions::for_graph(graph, restart)
        };
        let (result, report) = machine.solve_detailed(graph, &init, &opts);
        total_cycles = total_cycles.saturating_add(report.total_cycles.get());
        total_sweeps = total_sweeps.saturating_add(result.sweeps);
        if best.as_ref().is_none_or(|b| result.energy < b.energy) {
            best = Some(result);
        }
    }
    let best = best.expect("QUALITY_RESTARTS > 0");
    let (domain_metric, unit) = case.domain_metric(&best.spins);
    let domain_unit = unit.to_string();
    let row = QualityRow {
        id: case.id.to_string(),
        family: case.kind().label().to_string(),
        design: design_key(design).to_string(),
        spins: graph.num_spins() as u64,
        best_energy: best.energy,
        total_cycles,
        accuracy: case.accuracy(&best.spins),
        domain_metric,
        domain_unit,
        smoke: case.smoke,
    };
    (row, total_sweeps)
}

/// Suffix distinguishing tempered rows from their independent-restart
/// twins in `BENCH_quality.json` (same cell, `+pt` appended to the id).
pub const TEMPERED_SUFFIX: &str = "+pt";

/// Solves one corpus cell with replica-exchange parallel tempering at
/// an *equal sweep budget*: the [`QUALITY_RESTARTS`] independent
/// restarts of [`run_cell`] become that many coupled rungs, and the
/// per-rung sweep cap is `sweep_budget / QUALITY_RESTARTS` (rounded
/// up), where `sweep_budget` is the total the baseline restarts
/// actually executed. The row id carries the [`TEMPERED_SUFFIX`] so
/// the tempered corpus regresses independently of the baseline one.
pub fn run_cell_tempered(case: &CorpusCase, design: DesignKind, sweep_budget: u64) -> QualityRow {
    let graph = case.graph();
    let rungs = usize::try_from(QUALITY_RESTARTS).expect("small constant");
    let per_rung = sweep_budget.div_ceil(QUALITY_RESTARTS).max(1);
    let mut rng = StdRng::seed_from_u64(0);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions {
        schedule: Schedule::new((2 * graph.max_abs_coefficient().max(1)) as f64, 0.95, 0.05),
        ..SolveOptions::for_graph(graph, 0)
    }
    .with_max_sweeps(per_rung)
    .with_tempering(TemperingOptions::for_graph(
        LadderKind::Adaptive,
        graph,
        rungs,
    ));
    let ledger = ReplicaLedger::new(rungs);
    let best_of = EnsembleRunner::new(rungs)
        .with_threads(1)
        .run(graph, &init, &opts, |k| {
            ReportingMachine::new(SachiMachine::new(SachiConfig::new(design)), k, &ledger)
        });
    let report = ledger.finish();
    let total_cycles = report
        .reports
        .iter()
        .fold(0u64, |acc, r| acc.saturating_add(r.total_cycles.get()));
    let best = best_of.best();
    let (domain_metric, unit) = case.domain_metric(&best.spins);
    QualityRow {
        id: format!("{}{}", case.id, TEMPERED_SUFFIX),
        family: case.kind().label().to_string(),
        design: design_key(design).to_string(),
        spins: graph.num_spins() as u64,
        best_energy: best.energy,
        total_cycles,
        accuracy: case.accuracy(&best.spins),
        domain_metric,
        domain_unit: unit.to_string(),
        smoke: case.smoke,
    }
}

/// Checks the tempering quality claim over paired rows: for every
/// `(cell, design)` the tempered row must match or beat the baseline
/// best energy at its equal sweep budget. Returns `(messages, strict)`
/// — one message per violated pair, plus the count of cells the
/// tempered run *strictly* improved.
pub fn tempering_dominance(
    baseline: &[QualityRow],
    tempered: &[QualityRow],
) -> (Vec<String>, usize) {
    let mut violations = Vec::new();
    let mut strict = 0usize;
    for base in baseline {
        let twin = format!("{}{}", base.id, TEMPERED_SUFFIX);
        let Some(pt) = tempered
            .iter()
            .find(|r| r.id == twin && r.design == base.design)
        else {
            violations.push(format!("{}/{}: no tempered twin row", base.id, base.design));
            continue;
        };
        if pt.best_energy > base.best_energy {
            violations.push(format!(
                "{}/{}: tempered energy {} worse than independent restarts {}",
                base.id, base.design, pt.best_energy, base.best_energy
            ));
        } else if pt.best_energy < base.best_energy {
            strict += 1;
        }
    }
    (violations, strict)
}

/// Renders rows as a `sachi.quality.v1` document.
pub fn write_report(rows: &[QualityRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"sachi.quality.v1\",\n");
    out.push_str(&format!("  \"master_seed\": {CORPUS_MASTER_SEED},\n"));
    out.push_str(&format!("  \"restarts\": {QUALITY_RESTARTS},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"family\": \"{}\", \"design\": \"{}\", \"spins\": {}, \
             \"best_energy\": {}, \"total_cycles\": {}, \"accuracy\": {:.6}, \
             \"domain_metric\": {}, \"domain_unit\": \"{}\", \"smoke\": {}}}{}\n",
            json::escape(&r.id),
            json::escape(&r.family),
            json::escape(&r.design),
            r.spins,
            r.best_energy,
            r.total_cycles,
            r.accuracy,
            r.domain_metric,
            json::escape(&r.domain_unit),
            r.smoke,
            sep,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn row_str(obj: &JsonValue, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("row missing string field '{key}'"))
}

fn row_num(obj: &JsonValue, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(JsonValue::as_num)
        .ok_or_else(|| format!("row missing numeric field '{key}'"))
}

/// Parses a `sachi.quality.v1` document back into rows.
///
/// # Errors
///
/// Returns a message naming the first malformed field (wrong schema
/// tag, missing key, or a type mismatch).
pub fn parse_report(text: &str) -> Result<Vec<QualityRow>, String> {
    let doc = json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema tag")?;
    if schema != "sachi.quality.v1" {
        return Err(format!("unexpected schema '{schema}'"));
    }
    let rows = doc
        .get("rows")
        .and_then(JsonValue::as_arr)
        .ok_or("missing rows array")?;
    rows.iter()
        .map(|obj| {
            let smoke = match obj.get("smoke") {
                Some(JsonValue::Bool(b)) => *b,
                _ => return Err("row missing boolean field 'smoke'".to_string()),
            };
            Ok(QualityRow {
                id: row_str(obj, "id")?,
                family: row_str(obj, "family")?,
                design: row_str(obj, "design")?,
                spins: row_num(obj, "spins")? as u64,
                best_energy: row_num(obj, "best_energy")? as i64,
                total_cycles: row_num(obj, "total_cycles")? as u64,
                accuracy: row_num(obj, "accuracy")?,
                domain_metric: row_num(obj, "domain_metric")? as i64,
                domain_unit: row_str(obj, "domain_unit")?,
                smoke,
            })
        })
        .collect()
}

/// The stated regression tolerances (see module docs and DESIGN.md).
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Maximum allowed absolute accuracy drop.
    pub accuracy_drop: f64,
    /// Maximum allowed `current / baseline` cycle ratio.
    pub cycle_ratio: f64,
    /// Maximum allowed absolute best-energy worsening.
    pub energy_slack: i64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            accuracy_drop: 0.02,
            cycle_ratio: 1.25,
            energy_slack: 2,
        }
    }
}

/// Compares `current` rows against the committed `baseline`, returning
/// one message per regression (empty = pass). Only baseline rows whose
/// `(id, design)` appears in `current` are compared unless
/// `require_all` is set — the smoke subset passes `false`, the full
/// run `true`.
pub fn compare(
    baseline: &[QualityRow],
    current: &[QualityRow],
    tol: Tolerance,
    require_all: bool,
) -> Vec<String> {
    let mut regressions = Vec::new();
    for base in baseline {
        let found = current
            .iter()
            .find(|r| r.id == base.id && r.design == base.design);
        let Some(cur) = found else {
            if require_all {
                regressions.push(format!(
                    "{}/{}: row missing from current run",
                    base.id, base.design
                ));
            }
            continue;
        };
        if cur.accuracy < base.accuracy - tol.accuracy_drop {
            regressions.push(format!(
                "{}/{}: accuracy {:.4} dropped below baseline {:.4} - {:.2}",
                cur.id, cur.design, cur.accuracy, base.accuracy, tol.accuracy_drop
            ));
        }
        if (cur.total_cycles as f64) > base.total_cycles as f64 * tol.cycle_ratio {
            regressions.push(format!(
                "{}/{}: cycles {} exceed baseline {} x {:.2}",
                cur.id, cur.design, cur.total_cycles, base.total_cycles, tol.cycle_ratio
            ));
        }
        if cur.best_energy > base.best_energy.saturating_add(tol.energy_slack) {
            regressions.push(format!(
                "{}/{}: best energy {} worse than baseline {} + {}",
                cur.id, cur.design, cur.best_energy, base.best_energy, tol.energy_slack
            ));
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> QualityRow {
        QualityRow {
            id: "sat_n20_planted".into(),
            family: "3-sat".into(),
            design: "n3".into(),
            spins: 106,
            best_energy: -12,
            total_cycles: 123_456,
            accuracy: 0.987654,
            domain_metric: 86,
            domain_unit: "satisfied_weight".into(),
            smoke: true,
        }
    }

    #[test]
    fn report_round_trips() {
        let rows = vec![
            sample_row(),
            QualityRow {
                id: "sched_j12_m3".into(),
                family: "job scheduling".into(),
                design: "n1a".into(),
                spins: 36,
                best_energy: 4_807,
                total_cycles: 99,
                accuracy: 1.0,
                domain_metric: 23,
                domain_unit: "makespan".into(),
                smoke: false,
            },
        ];
        let text = write_report(&rows);
        let parsed = parse_report(&text).expect("round trip");
        assert_eq!(parsed.len(), rows.len());
        for (a, b) in rows.iter().zip(&parsed) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.design, b.design);
            assert_eq!(a.best_energy, b.best_energy);
            assert_eq!(a.total_cycles, b.total_cycles);
            assert!((a.accuracy - b.accuracy).abs() < 1e-6);
            assert_eq!(a.domain_metric, b.domain_metric);
            assert_eq!(a.smoke, b.smoke);
        }
    }

    #[test]
    fn parse_rejects_wrong_schema_and_missing_fields() {
        assert!(parse_report("{\"schema\": \"sachi.metrics.v1\", \"rows\": []}").is_err());
        assert!(parse_report("{\"rows\": []}").is_err());
        let no_smoke = "{\"schema\": \"sachi.quality.v1\", \"rows\": [{\"id\": \"x\"}]}";
        assert!(parse_report(no_smoke).is_err());
    }

    #[test]
    fn identical_rows_pass() {
        let rows = vec![sample_row()];
        assert!(compare(&rows, &rows, Tolerance::default(), true).is_empty());
    }

    #[test]
    fn perturbed_baseline_fails_each_dimension() {
        let current = vec![sample_row()];
        // Baseline claims better accuracy than we now achieve.
        let mut acc = sample_row();
        acc.accuracy += 0.05;
        assert_eq!(
            compare(&[acc], &current, Tolerance::default(), true).len(),
            1
        );
        // Baseline claims fewer cycles.
        let mut cyc = sample_row();
        cyc.total_cycles /= 2;
        assert_eq!(
            compare(&[cyc], &current, Tolerance::default(), true).len(),
            1
        );
        // Baseline claims lower (better) energy.
        let mut en = sample_row();
        en.best_energy -= 100;
        assert_eq!(
            compare(&[en], &current, Tolerance::default(), true).len(),
            1
        );
        // Baseline row absent from the current run.
        let mut gone = sample_row();
        gone.id = "sat_n40_critical".into();
        let gone = [gone];
        assert_eq!(
            compare(&gone, &current, Tolerance::default(), true).len(),
            1
        );
        assert!(compare(&gone, &current, Tolerance::default(), false).is_empty());
    }

    #[test]
    fn improvements_never_fail() {
        let base = vec![sample_row()];
        let mut better = sample_row();
        better.accuracy += 0.01;
        better.total_cycles -= 10_000;
        better.best_energy -= 5;
        assert!(compare(&base, &[better], Tolerance::default(), true).is_empty());
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let base = vec![sample_row()];
        let mut drift = sample_row();
        drift.accuracy -= 0.015;
        drift.total_cycles = (drift.total_cycles as f64 * 1.2) as u64;
        drift.best_energy += 2;
        assert!(compare(&base, &[drift], Tolerance::default(), true).is_empty());
    }

    #[test]
    fn design_keys_are_stable() {
        let keys: Vec<&str> = DesignKind::ALL.iter().map(|&d| design_key(d)).collect();
        assert_eq!(keys, ["n1a", "n1b", "n2", "n3"]);
    }
}
