//! # sachi-bench — harnesses regenerating every figure of the SACHI paper
//!
//! One binary per paper artifact (`cargo run -p sachi-bench --release
//! --bin <name>`); EXPERIMENTS.md records paper-vs-measured for each:
//!
//! | binary | artifact |
//! |---|---|
//! | `fig01_ga_vs_ising` | Fig. 1 — GA vs Ising accuracy & iso-accuracy time |
//! | `fig02_mapping` | Fig. 2 — COP-to-Ising mapping on the paper's 4×3 image |
//! | `fig03_feature_table` | Fig. 3 — feature table vs prior Ising architectures |
//! | `fig04_cop_characteristics` | Fig. 4 — COP sizes, resolutions, L1 fit |
//! | `fig05_reuse_motivation` | Fig. 5 — reuse-aware compute motivation on live tiles |
//! | `fig09_encoding` | Fig. 9 — mixed-encoding worked table |
//! | `fig10_bitline` | Fig. 10 — in-memory XNOR primitive & discharge behaviour |
//! | `fig11_13_schedules` | Figs. 11–13 — per-design schedules & queues |
//! | `fig14_isa` | Fig. 14 — ISA table + a real XNORM program |
//! | `fig15_brim` | Fig. 15a–c — reuse, cycles, energy vs BRIM |
//! | `fig15_cim` | Fig. 15d–e — cycles, energy vs Ising-CIM |
//! | `fig16_solvers` | Fig. 16 — GA/PSO/OPTSolv quality & time |
//! | `fig17_scalability` | Fig. 17 — CPI vs spins (500 → 1M, +2M/8M pixels) |
//! | `fig18_reconfigurability` | Fig. 18 — CPI vs IC resolution |
//! | `fig19_convergence` | Fig. 19 — H traces, time ladder, resolution effects |
//! | `disc_cache_scaling` | Sec. VII.2 — cache-size presets |
//! | `disc_conventional` | Sec. VII.1 — impact on conventional workloads |
//! | `disc_multicore` | Sec. IV.B.2 — multi-core scaling |
//! | `disc_faults` | robustness — quality vs injected read BER, parity + retry recovery |
//! | `disc_drift` | model audit — PerfModel closed form vs functional-sim metered cycles |
//! | `abl_tuple_rep` | ablation — tuple-rep on/off |
//! | `abl_residency` | ablation — analytic residency billing vs physical resident machine |
//! | `abl_prefetch` | ablation — prefetcher on/off |
//! | `abl_update_policy` | ablation — storage-update vs RMW local update |
//! | `perf_kernels` | perf — scalar vs bit-plane kernel ns/H-compute and ns/sweep (writes `BENCH_perf.json`) |
//! | `disc_quality` | quality — seeded corpus (SAT/coloring/scheduling) × designs, regression-gated (writes `BENCH_quality.json`) |
//!
//! The crate also ships Criterion micro-benchmarks over the hot kernels
//! (`cargo bench -p sachi-bench`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod quality;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prints a section header.
pub fn section(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Runs a closure, returning its result and wall-clock duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// A fixed-width text table for harness output.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Display>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn row<S: Display>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(
                widths
                    .iter()
                    .map(|w| w + 2)
                    .sum::<usize>()
                    .saturating_sub(2),
            ),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Parses a `--threads N` flag out of an argument list (see
/// [`threads_arg`]). `N == 0` reads as "auto", i.e. `None`.
pub fn threads_from<I>(args: I) -> Option<usize>
where
    I: IntoIterator<Item = String>,
{
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        if a == "--threads" {
            return args.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0);
        }
    }
    None
}

/// Worker-thread override for the replica-ensemble benches: parses
/// `--threads N` from the process arguments. `None` (flag absent or
/// `N == 0`) means "use every available core". Thread count never
/// changes bench results — only wall-clock.
pub fn threads_arg() -> Option<usize> {
    threads_from(std::env::args().skip(1))
}

/// Formats a ratio as "12.3x".
pub fn ratio(numerator: f64, denominator: f64) -> String {
    if denominator == 0.0 {
        return "inf".to_string();
    }
    format!("{:.1}x", numerator / denominator)
}

/// Formats a fraction as a percentage.
pub fn percent(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

/// Formats a `Duration` compactly.
pub fn duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]).row(["b", "12345"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("12345"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn threads_flag_parses_with_auto_fallback() {
        fn argv(s: &str) -> impl Iterator<Item = String> + '_ {
            s.split_whitespace().map(str::to_string)
        }
        assert_eq!(threads_from(argv("--threads 8")), Some(8));
        assert_eq!(threads_from(argv("--release --threads 2 --x")), Some(2));
        assert_eq!(threads_from(argv("--threads 0")), None);
        assert_eq!(threads_from(argv("--threads lots")), None);
        assert_eq!(threads_from(argv("--no-threads")), None);
        assert_eq!(threads_from(argv("")), None);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(ratio(30.0, 10.0), "3.0x");
        assert_eq!(ratio(1.0, 0.0), "inf");
        assert_eq!(percent(0.5), "50.0%");
        assert_eq!(duration(Duration::from_millis(2500)), "2.50s");
        assert_eq!(duration(Duration::from_micros(1500)), "1.5ms");
        assert_eq!(duration(Duration::from_nanos(2500)), "2.5us");
        let (v, d) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(d.as_secs() < 10);
    }
}
