//! Job scheduling on identical machines (Lucas Sec. 6.3, P||Cmax as a
//! QUBO; paper Sec. VII workload library extension).
//!
//! One-hot encoding: spin `x_{j,α}` means "job `j` runs on machine `α`".
//! Minimizing the makespan is NP-hard; the standard Ising relaxation
//! minimizes the *sum of squared machine loads*, whose minimum over
//! valid assignments is attained by the most balanced schedule:
//!
//! ```text
//! H = A·Σ_j (1 − Σ_α x_{j,α})²  +  Σ_α (Σ_j p_j·x_{j,α})²
//! ```
//!
//! Dropping a job from its one-hot block removes `p_j` from one squared
//! load, which can lower the balance term by at most
//! `p_j·(2·L − p_j) ≤ p_max·2·Σp`; the one-hot weight
//! `A = 1 + 2·p_max·Σp` therefore strictly dominates it and the ground
//! state always assigns every job exactly once. Decoding is total
//! (lowest set machine bit, else machine 0) and quality is reported as
//! `lower_bound / makespan ∈ (0, 1]`, where the bound is
//! `max(⌈Σp / m⌉, p_max)`.

use crate::corpus::SplitMix64;
use crate::encode::EncodeError;
use crate::qubo::{QuboBuilder, QuboProblem};
use crate::spec::{CopKind, Workload, WorkloadShape};
use sachi_ising::graph::IsingGraph;
use sachi_ising::spin::{Spin, SpinVector};

/// A P||Cmax instance: job durations plus an identical-machine count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulingInstance {
    durations: Vec<i64>,
    machines: usize,
}

impl SchedulingInstance {
    /// Creates an instance.
    ///
    /// # Panics
    ///
    /// Panics if there are no jobs, fewer than two machines, or a
    /// non-positive duration.
    pub fn new(durations: Vec<i64>, machines: usize) -> Self {
        assert!(!durations.is_empty(), "need at least one job");
        assert!(machines >= 2, "need at least two machines");
        assert!(
            durations.iter().all(|&p| p > 0),
            "durations must be positive"
        );
        SchedulingInstance {
            durations,
            machines,
        }
    }

    /// A seeded instance with `jobs` durations drawn uniformly from
    /// `1..=max_duration` off a SplitMix64 stream.
    ///
    /// # Panics
    ///
    /// Panics if `jobs == 0`, `machines < 2`, or `max_duration == 0`.
    pub fn random(jobs: usize, machines: usize, max_duration: i64, seed: u64) -> Self {
        assert!(max_duration > 0, "max duration must be positive");
        let mut rng = SplitMix64::new(seed);
        let durations = (0..jobs)
            .map(|_| (rng.below(max_duration as u64) as i64).saturating_add(1))
            .collect();
        SchedulingInstance::new(durations, machines)
    }

    /// Job durations.
    pub fn durations(&self) -> &[i64] {
        &self.durations
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.durations.len()
    }

    /// Number of identical machines.
    pub fn num_machines(&self) -> usize {
        self.machines
    }

    /// Total work `Σp` (saturating).
    pub fn total_duration(&self) -> i64 {
        self.durations
            .iter()
            .fold(0i64, |acc, &p| acc.saturating_add(p))
    }

    /// Longest single job `p_max`.
    pub fn max_duration(&self) -> i64 {
        self.durations.iter().copied().max().unwrap_or(0)
    }

    /// The classical makespan lower bound `max(⌈Σp / m⌉, p_max)`.
    pub fn lower_bound(&self) -> i64 {
        let total = self.total_duration();
        let m = self.machines as i64;
        let balanced = total.saturating_add(m - 1) / m;
        balanced.max(self.max_duration())
    }

    /// Makespan of an explicit assignment (job -> machine).
    ///
    /// # Panics
    ///
    /// Panics if the assignment has the wrong length or names a machine
    /// out of range.
    pub fn makespan(&self, assignment: &[usize]) -> i64 {
        assert_eq!(assignment.len(), self.num_jobs(), "one machine per job");
        let mut loads = vec![0i64; self.machines];
        for (j, &m) in assignment.iter().enumerate() {
            assert!(m < self.machines, "machine out of range");
            loads[m] = loads[m].saturating_add(self.durations[j]);
        }
        loads.into_iter().max().unwrap_or(0)
    }
}

/// A scheduling instance encoded as an Ising problem (`jobs · machines`
/// one-hot spins, job-major).
#[derive(Debug, Clone)]
pub struct SchedulingWorkload {
    name: String,
    instance: SchedulingInstance,
    problem: QuboProblem,
    one_hot_weight: i64,
}

impl SchedulingWorkload {
    /// Encodes with the dominance weight `A = 1 + 2·p_max·Σp`.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::CoefficientOverflow`] when a coupling or
    /// field leaves the `i32` range (large durations drive the squared
    /// load term there quickly).
    pub fn new(name: impl Into<String>, instance: SchedulingInstance) -> Result<Self, EncodeError> {
        let a = instance
            .max_duration()
            .saturating_mul(instance.total_duration())
            .saturating_mul(2)
            .saturating_add(1);
        Self::with_one_hot_weight(name, instance, a)
    }

    /// Encodes with an explicit one-hot weight (overflow regression
    /// tests drive this with adversarial values).
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::CoefficientOverflow`] as for
    /// [`SchedulingWorkload::new`].
    ///
    /// # Panics
    ///
    /// Panics if the weight is non-positive.
    pub fn with_one_hot_weight(
        name: impl Into<String>,
        instance: SchedulingInstance,
        one_hot_weight: i64,
    ) -> Result<Self, EncodeError> {
        assert!(one_hot_weight > 0, "penalty weight must be positive");
        let jobs = instance.num_jobs();
        let machines = instance.num_machines();
        let idx = |j: usize, m: usize| j.saturating_mul(machines).saturating_add(m);
        let mut q = QuboBuilder::new(jobs.saturating_mul(machines));
        for j in 0..jobs {
            let block: Vec<usize> = (0..machines).map(|m| idx(j, m)).collect();
            q.exactly_k_penalty(&block, 1, one_hot_weight);
        }
        // Σ_α (Σ_j p_j·x_{j,α})² expands to p_j² on the diagonal (linear,
        // since x² = x) and 2·p_i·p_j per same-machine job pair.
        for m in 0..machines {
            for j in 0..jobs {
                let pj = instance.durations()[j];
                q.linear(idx(j, m), pj.saturating_mul(pj));
                for i in 0..j {
                    let pi = instance.durations()[i];
                    q.quadratic(
                        idx(i, m),
                        idx(j, m),
                        pi.saturating_mul(pj).saturating_mul(2),
                    );
                }
            }
        }
        let problem = q.build()?;
        Ok(SchedulingWorkload {
            name: name.into(),
            instance,
            problem,
            one_hot_weight,
        })
    }

    /// The underlying instance.
    pub fn instance(&self) -> &SchedulingInstance {
        &self.instance
    }

    /// The encoded QUBO.
    pub fn problem(&self) -> &QuboProblem {
        &self.problem
    }

    /// The one-hot penalty weight `A`.
    pub fn one_hot_weight(&self) -> i64 {
        self.one_hot_weight
    }

    /// Total decoding: each job goes to its lowest set machine bit, or
    /// machine 0 when its block is empty.
    pub fn decode_assignment(&self, spins: &SpinVector) -> Vec<usize> {
        let m = self.instance.num_machines();
        (0..self.instance.num_jobs())
            .map(|j| (0..m).find(|&a| spins.get(j * m + a).bit()).unwrap_or(0))
            .collect()
    }

    /// Jobs whose one-hot block does not hold exactly one set bit.
    pub fn one_hot_violations(&self, spins: &SpinVector) -> usize {
        let m = self.instance.num_machines();
        (0..self.instance.num_jobs())
            .filter(|&j| (0..m).filter(|&a| spins.get(j * m + a).bit()).count() != 1)
            .count()
    }

    /// Makespan of the repaired decoding.
    pub fn makespan(&self, spins: &SpinVector) -> i64 {
        self.instance.makespan(&self.decode_assignment(spins))
    }

    /// Lifts an explicit assignment to its one-hot spin state.
    ///
    /// # Panics
    ///
    /// Panics if the assignment has the wrong length or names a machine
    /// out of range.
    pub fn encode_assignment(&self, assignment: &[usize]) -> SpinVector {
        let jobs = self.instance.num_jobs();
        let m = self.instance.num_machines();
        assert_eq!(assignment.len(), jobs, "one machine per job");
        let mut spins = SpinVector::filled(jobs.saturating_mul(m), Spin::Down);
        for (j, &a) in assignment.iter().enumerate() {
            assert!(a < m, "machine out of range");
            spins.set(j.saturating_mul(m).saturating_add(a), Spin::Up);
        }
        spins
    }
}

impl Workload for SchedulingWorkload {
    fn kind(&self) -> CopKind {
        CopKind::JobScheduling
    }

    fn name(&self) -> String {
        format!(
            "sched({}, jobs={}, machines={})",
            self.name,
            self.instance.num_jobs(),
            self.instance.num_machines()
        )
    }

    fn graph(&self) -> &IsingGraph {
        self.problem.graph()
    }

    fn shape(&self) -> WorkloadShape {
        let graph = self.problem.graph();
        WorkloadShape::new(
            graph.num_spins() as u64,
            (graph.max_degree() as u64).max(1),
            graph.bits_required().max(2),
        )
    }

    /// `lower_bound / makespan` of the repaired decoding — 1.0 means a
    /// provably optimal schedule.
    fn accuracy(&self, spins: &SpinVector) -> f64 {
        let makespan = self.makespan(spins);
        if makespan <= 0 {
            return 0.0;
        }
        (self.instance.lower_bound() as f64 / makespan as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sachi_ising::prelude::*;

    #[test]
    fn objective_matches_direct_penalty_evaluation() {
        let inst = SchedulingInstance::random(6, 3, 9, 11);
        let w = SchedulingWorkload::new("unit", inst).unwrap();
        let jobs = w.instance().num_jobs();
        let machines = w.instance().num_machines();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let spins = SpinVector::random(jobs * machines, &mut rng);
            let mut expected = 0i64;
            for j in 0..jobs {
                let ones = (0..machines)
                    .filter(|&m| spins.get(j * machines + m).bit())
                    .count() as i64;
                expected += w.one_hot_weight() * (1 - ones) * (1 - ones);
            }
            for m in 0..machines {
                let load: i64 = (0..jobs)
                    .filter(|&j| spins.get(j * machines + m).bit())
                    .map(|j| w.instance().durations()[j])
                    .sum();
                expected += load * load;
            }
            assert_eq!(w.problem().objective(&spins), expected);
        }
    }

    #[test]
    fn balanced_assignment_is_the_valid_optimum() {
        // Durations 3,3,2,2,1,1 on 2 machines: perfect 6/6 split exists.
        let inst = SchedulingInstance::new(vec![3, 3, 2, 2, 1, 1], 2);
        let w = SchedulingWorkload::new("balance", inst).unwrap();
        let balanced = w.encode_assignment(&[0, 1, 0, 1, 0, 1]);
        let skewed = w.encode_assignment(&[0, 0, 0, 0, 0, 0]);
        assert!(w.problem().objective(&balanced) < w.problem().objective(&skewed));
        assert_eq!(w.makespan(&balanced), 6);
        assert_eq!(w.instance().lower_bound(), 6);
        assert!((w.accuracy(&balanced) - 1.0).abs() < 1e-12);
        assert_eq!(w.makespan(&skewed), 12);
    }

    #[test]
    fn one_hot_weight_dominates_dropping_a_job() {
        let inst = SchedulingInstance::random(8, 3, 20, 3);
        let w = SchedulingWorkload::new("dominance", inst.clone()).unwrap();
        // Start from every job on machine 0, then clear each job's block
        // entirely: the one-hot penalty must always exceed the balance
        // savings.
        let all_zero = w.encode_assignment(&vec![0; inst.num_jobs()]);
        let base = w.problem().objective(&all_zero);
        for j in 0..inst.num_jobs() {
            let mut spins = all_zero.clone();
            spins.set(j * inst.num_machines(), Spin::Down);
            assert!(
                w.problem().objective(&spins) > base,
                "dropping job {j} must not pay"
            );
        }
    }

    #[test]
    fn solver_finds_a_near_balanced_schedule() {
        let inst = SchedulingInstance::random(8, 2, 6, 7);
        let w = SchedulingWorkload::new("solve", inst).unwrap();
        let graph = w.graph();
        let mut best = i64::MAX;
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = SpinVector::random(graph.num_spins(), &mut rng);
            let mut solver = CpuReferenceSolver::new();
            let r = solver.solve(graph, &init, &SolveOptions::for_graph(graph, seed + 60));
            if w.one_hot_violations(&r.spins) == 0 {
                best = best.min(w.makespan(&r.spins));
            }
        }
        let lb = w.instance().lower_bound();
        assert!(
            best <= lb.saturating_mul(2),
            "best makespan {best} should be within 2x of bound {lb}"
        );
    }

    #[test]
    fn generator_is_deterministic_and_in_range() {
        let a = SchedulingInstance::random(10, 3, 9, 4);
        let b = SchedulingInstance::random(10, 3, 9, 4);
        assert_eq!(a, b);
        assert_ne!(a, SchedulingInstance::random(10, 3, 9, 5));
        assert!(a.durations().iter().all(|&p| (1..=9).contains(&p)));
    }

    #[test]
    fn oversized_durations_overflow_loudly() {
        let inst = SchedulingInstance::new(vec![1 << 20, 1 << 20, 1 << 20], 2);
        let err = SchedulingWorkload::new("overflow", inst).expect_err("must not clamp");
        assert!(matches!(err, EncodeError::CoefficientOverflow { .. }));
    }

    #[test]
    fn lower_bound_covers_both_regimes() {
        // Balanced regime: ceil(10/3) = 4 dominates p_max = 3.
        assert_eq!(
            SchedulingInstance::new(vec![3, 3, 2, 2], 3).lower_bound(),
            4
        );
        // Long-job regime: p_max = 9 dominates ceil(12/3) = 4.
        assert_eq!(
            SchedulingInstance::new(vec![9, 1, 1, 1], 3).lower_bound(),
            9
        );
    }
}
