//! Graph k-coloring over seeded random graphs (Lucas-library extension,
//! paper Sec. VII.3).
//!
//! One-hot encoding: spin `x_{v,c}` means "vertex `v` takes color `c`".
//! Two penalty families, both zero exactly on proper colorings:
//!
//! ```text
//! H = A·Σ_v (1 − Σ_c x_{v,c})²  +  B·Σ_{(u,v)∈E} Σ_c x_{u,c}·x_{v,c}
//! ```
//!
//! The one-hot weight `A` defaults to `B·(deg_max + 1)` so dropping a
//! vertex out of its one-hot block can never pay for the conflicts it
//! hides. Decoding is total: any spin state maps to a coloring (lowest
//! set color bit, else color 0), and the domain metric — conflicting
//! edges under that repaired coloring — is defined for every machine
//! state, not only for valid one-hot ones.

use crate::corpus::SplitMix64;
use crate::encode::EncodeError;
use crate::qubo::{QuboBuilder, QuboProblem};
use crate::spec::{CopKind, Workload, WorkloadShape};
use sachi_ising::graph::IsingGraph;
use sachi_ising::spin::SpinVector;
use std::collections::BTreeSet;

/// A k-coloring instance: an undirected graph plus a color budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColoringInstance {
    n: usize,
    k: usize,
    edges: Vec<(usize, usize)>,
}

impl ColoringInstance {
    /// Creates an instance; edges are normalized to `(min, max)` order
    /// and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`, an endpoint is out of range, or an edge is a
    /// self-loop.
    pub fn new(n: usize, k: usize, edges: Vec<(usize, usize)>) -> Self {
        assert!(k >= 2, "need at least two colors");
        let mut normalized = BTreeSet::new();
        for (u, v) in edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            assert!(u != v, "self-loops not allowed");
            normalized.insert((u.min(v), u.max(v)));
        }
        ColoringInstance {
            n,
            k,
            edges: normalized.into_iter().collect(),
        }
    }

    /// An Erdős–Rényi `G(n, p)` instance with `p = density_bp / 10_000`,
    /// drawn from a SplitMix64 stream (same seed, same bytes, every run
    /// and thread).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `density_bp > 10_000`.
    pub fn gnp(n: usize, k: usize, density_bp: u32, seed: u64) -> Self {
        assert!(density_bp <= 10_000, "density is in basis points");
        let mut rng = SplitMix64::new(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.below(10_000) < u64::from(density_bp) {
                    edges.push((u, v));
                }
            }
        }
        ColoringInstance::new(n, k, edges)
    }

    /// A planted (guaranteed k-colorable) instance: vertices get hidden
    /// classes first and only cross-class pairs become edges, so the
    /// hidden classes are a proper coloring. Returns the instance and
    /// the planted classes.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `density_bp > 10_000`.
    pub fn planted(n: usize, k: usize, density_bp: u32, seed: u64) -> (Self, Vec<usize>) {
        assert!(k >= 2, "need at least two colors");
        assert!(density_bp <= 10_000, "density is in basis points");
        let mut rng = SplitMix64::new(seed);
        let classes: Vec<usize> = (0..n).map(|_| rng.below(k as u64) as usize).collect();
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if classes[u] != classes[v] && rng.below(10_000) < u64::from(density_bp) {
                    edges.push((u, v));
                }
            }
        }
        (ColoringInstance::new(n, k, edges), classes)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Color budget.
    pub fn num_colors(&self) -> usize {
        self.k
    }

    /// The normalized edge list.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Maximum vertex degree.
    pub fn max_degree(&self) -> usize {
        let mut degree = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            degree[u] = degree[u].saturating_add(1);
            degree[v] = degree[v].saturating_add(1);
        }
        degree.into_iter().max().unwrap_or(0)
    }

    /// Number of monochromatic edges under `colors`.
    pub fn conflicts(&self, colors: &[usize]) -> usize {
        self.edges
            .iter()
            .filter(|&&(u, v)| colors[u] == colors[v])
            .count()
    }
}

/// A k-coloring instance encoded as an Ising problem (`n·k` one-hot
/// spins, vertex-major).
#[derive(Debug, Clone)]
pub struct ColoringWorkload {
    name: String,
    instance: ColoringInstance,
    problem: QuboProblem,
    one_hot_weight: i64,
    conflict_weight: i64,
}

impl ColoringWorkload {
    /// Encodes with the default weights: conflicts at 1, one-hot at
    /// `deg_max + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::CoefficientOverflow`] when a weight pushes
    /// an accumulated coupling or field out of the `i32` range.
    pub fn new(name: impl Into<String>, instance: ColoringInstance) -> Result<Self, EncodeError> {
        let a = (instance.max_degree() as i64).saturating_add(1);
        Self::with_weights(name, instance, a, 1)
    }

    /// Encodes with explicit penalty weights (the overflow regression
    /// tests drive this with adversarial values).
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::CoefficientOverflow`] as for
    /// [`ColoringWorkload::new`].
    ///
    /// # Panics
    ///
    /// Panics if either weight is non-positive.
    pub fn with_weights(
        name: impl Into<String>,
        instance: ColoringInstance,
        one_hot_weight: i64,
        conflict_weight: i64,
    ) -> Result<Self, EncodeError> {
        assert!(
            one_hot_weight > 0 && conflict_weight > 0,
            "penalty weights must be positive"
        );
        let n = instance.num_vertices();
        let k = instance.num_colors();
        let idx = |v: usize, c: usize| v.saturating_mul(k).saturating_add(c);
        let mut q = QuboBuilder::new(n.saturating_mul(k));
        for v in 0..n {
            let block: Vec<usize> = (0..k).map(|c| idx(v, c)).collect();
            q.exactly_k_penalty(&block, 1, one_hot_weight);
        }
        for &(u, v) in instance.edges() {
            for c in 0..k {
                q.quadratic(idx(u, c), idx(v, c), conflict_weight);
            }
        }
        let problem = q.build()?;
        Ok(ColoringWorkload {
            name: name.into(),
            instance,
            problem,
            one_hot_weight,
            conflict_weight,
        })
    }

    /// The underlying instance.
    pub fn instance(&self) -> &ColoringInstance {
        &self.instance
    }

    /// The encoded QUBO.
    pub fn problem(&self) -> &QuboProblem {
        &self.problem
    }

    /// The one-hot penalty weight `A`.
    pub fn one_hot_weight(&self) -> i64 {
        self.one_hot_weight
    }

    /// The conflict penalty weight `B`.
    pub fn conflict_weight(&self) -> i64 {
        self.conflict_weight
    }

    /// Total decoding: every vertex maps to its lowest set color bit, or
    /// color 0 when its block is empty — defined for any machine state.
    pub fn decode_colors(&self, spins: &SpinVector) -> Vec<usize> {
        let k = self.instance.num_colors();
        (0..self.instance.num_vertices())
            .map(|v| (0..k).find(|&c| spins.get(v * k + c).bit()).unwrap_or(0))
            .collect()
    }

    /// Vertices whose one-hot block does not hold exactly one set bit.
    pub fn one_hot_violations(&self, spins: &SpinVector) -> usize {
        let k = self.instance.num_colors();
        (0..self.instance.num_vertices())
            .filter(|&v| (0..k).filter(|&c| spins.get(v * k + c).bit()).count() != 1)
            .count()
    }

    /// Monochromatic edges under the repaired decoding.
    pub fn conflicts(&self, spins: &SpinVector) -> usize {
        self.instance.conflicts(&self.decode_colors(spins))
    }

    /// Lifts an explicit coloring to its one-hot spin state.
    ///
    /// # Panics
    ///
    /// Panics if a color is out of range or the coloring is the wrong
    /// length.
    pub fn encode_colors(&self, colors: &[usize]) -> SpinVector {
        let n = self.instance.num_vertices();
        let k = self.instance.num_colors();
        assert_eq!(colors.len(), n, "coloring must cover every vertex");
        let mut spins = SpinVector::filled(n.saturating_mul(k), sachi_ising::spin::Spin::Down);
        for (v, &c) in colors.iter().enumerate() {
            assert!(c < k, "color out of range");
            spins.set(
                v.saturating_mul(k).saturating_add(c),
                sachi_ising::spin::Spin::Up,
            );
        }
        spins
    }
}

impl Workload for ColoringWorkload {
    fn kind(&self) -> CopKind {
        CopKind::GraphColoring
    }

    fn name(&self) -> String {
        format!(
            "coloring({}, n={}, k={}, |E|={})",
            self.name,
            self.instance.num_vertices(),
            self.instance.num_colors(),
            self.instance.edges().len()
        )
    }

    fn graph(&self) -> &IsingGraph {
        self.problem.graph()
    }

    fn shape(&self) -> WorkloadShape {
        let graph = self.problem.graph();
        WorkloadShape::new(
            graph.num_spins() as u64,
            (graph.max_degree() as u64).max(1),
            graph.bits_required().max(2),
        )
    }

    /// Fraction of edges properly colored under the repaired decoding
    /// (1.0 on edgeless graphs).
    fn accuracy(&self, spins: &SpinVector) -> f64 {
        let edges = self.instance.edges().len();
        if edges == 0 {
            return 1.0;
        }
        1.0 - self.conflicts(spins) as f64 / edges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sachi_ising::prelude::*;

    #[test]
    fn objective_matches_direct_penalty_evaluation() {
        let (inst, _) = ColoringInstance::planted(6, 3, 6_000, 3);
        let w = ColoringWorkload::new("unit", inst).unwrap();
        let n = w.instance().num_vertices();
        let k = w.instance().num_colors();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let spins = SpinVector::random(n * k, &mut rng);
            // Direct evaluation of the two penalty families.
            let mut expected = 0i64;
            for v in 0..n {
                let ones = (0..k).filter(|&c| spins.get(v * k + c).bit()).count() as i64;
                expected += w.one_hot_weight() * (1 - ones) * (1 - ones);
            }
            for &(u, v) in w.instance().edges() {
                for c in 0..k {
                    if spins.get(u * k + c).bit() && spins.get(v * k + c).bit() {
                        expected += w.conflict_weight();
                    }
                }
            }
            assert_eq!(w.problem().objective(&spins), expected);
        }
    }

    #[test]
    fn planted_classes_are_a_zero_energy_coloring() {
        let (inst, classes) = ColoringInstance::planted(10, 3, 5_000, 17);
        let w = ColoringWorkload::new("planted", inst).unwrap();
        let spins = w.encode_colors(&classes);
        assert_eq!(w.problem().objective(&spins), 0);
        assert_eq!(w.conflicts(&spins), 0);
        assert_eq!(w.one_hot_violations(&spins), 0);
        assert!((w.accuracy(&spins) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decode_repairs_any_state() {
        let inst = ColoringInstance::new(3, 3, vec![(0, 1), (1, 2)]);
        let w = ColoringWorkload::new("repair", inst).unwrap();
        // All-down state: every vertex repairs to color 0 -> all edges
        // conflict.
        let down = SpinVector::filled(9, Spin::Down);
        assert_eq!(w.decode_colors(&down), vec![0, 0, 0]);
        assert_eq!(w.conflicts(&down), 2);
        assert_eq!(w.one_hot_violations(&down), 3);
        assert!(w.accuracy(&down) < 1e-12);
        // Multi-hot picks the lowest set bit.
        let mut multi = down.clone();
        multi.set(1, Spin::Up); // vertex 0, color 1
        multi.set(2, Spin::Up); // vertex 0, color 2
        assert_eq!(w.decode_colors(&multi)[0], 1);
    }

    #[test]
    fn solver_colors_a_planted_graph() {
        let (inst, _) = ColoringInstance::planted(8, 3, 6_000, 23);
        let w = ColoringWorkload::new("solve", inst).unwrap();
        let graph = w.graph();
        let mut best = usize::MAX;
        for seed in 0..24 {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = SpinVector::random(graph.num_spins(), &mut rng);
            let mut solver = CpuReferenceSolver::new();
            // Slower-than-default schedule: this asserts solution
            // quality, not convergence speed.
            let opts = SolveOptions {
                schedule: Schedule::new(
                    (2 * graph.max_abs_coefficient().max(1)) as f64,
                    0.95,
                    0.05,
                ),
                ..SolveOptions::for_graph(graph, seed + 40)
            };
            let r = solver.solve(graph, &init, &opts);
            best = best.min(w.conflicts(&r.spins));
        }
        assert_eq!(best, 0, "a planted 3-coloring must be reachable");
    }

    #[test]
    fn generator_is_deterministic_and_normalized() {
        let a = ColoringInstance::gnp(12, 3, 2_500, 4);
        let b = ColoringInstance::gnp(12, 3, 2_500, 4);
        assert_eq!(a, b);
        assert_ne!(a, ColoringInstance::gnp(12, 3, 2_500, 5));
        for &(u, v) in a.edges() {
            assert!(u < v, "edges normalized to (min, max)");
        }
        // Density extremes.
        assert!(ColoringInstance::gnp(10, 2, 0, 1).edges().is_empty());
        assert_eq!(ColoringInstance::gnp(10, 2, 10_000, 1).edges().len(), 45);
    }

    #[test]
    fn oversized_weights_overflow_loudly() {
        let inst = ColoringInstance::gnp(6, 3, 8_000, 2);
        let err = ColoringWorkload::with_weights("overflow", inst, i64::MAX / 2, 1)
            .expect_err("must not clamp");
        assert!(matches!(err, EncodeError::CoefficientOverflow { .. }));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_rejected() {
        let _ = ColoringInstance::new(3, 2, vec![(1, 1)]);
    }
}
