//! # sachi-workloads — the COPs of the SACHI evaluation
//!
//! Section V.2 of the SACHI paper (HPCA 2024) evaluates four combinatorial
//! optimization problems. Each is implemented here as a [`spec::Workload`]:
//! a concrete Ising graph to iterate on, plus the architectural
//! [`spec::WorkloadShape`] (spins, neighbors `N`, resolution `R`) that the
//! cycle/energy models of `sachi-core` and `sachi-baselines` consume, plus
//! a domain-level accuracy metric.
//!
//! * [`asset`] — $80M number partitioning across `m` assets;
//! * [`segmentation`] — max-cut foreground/background split of a synthetic
//!   image (Fig. 2);
//! * [`tsp`] — the paper's decision-version TSP on the complete distance
//!   graph, plus a full Lucas tour formulation for solution-quality
//!   studies;
//! * [`molecular`] — King's-graph ferromagnet with a known ground state;
//! * [`quantize`] — the shared R-bit IC quantizer (Fig. 19c/d sweeps);
//! * [`maxcut`] — cut-weight helpers and the greedy reference.
//!
//! Beyond the paper's four, the Lucas-library extension families back
//! the quality-regression corpus:
//!
//! * [`sat`] — 3-SAT/max-SAT via clause penalties (one ancilla per
//!   clause, Boros–Hammer quadratization);
//! * [`coloring`] — graph k-coloring (one-hot blocks + conflict edges);
//! * [`scheduling`] — P||Cmax makespan scheduling (one-hot blocks +
//!   squared machine loads);
//! * [`corpus`] — the seeded instance corpus behind `disc_quality`.
//!
//! ## Example
//!
//! ```
//! use sachi_workloads::prelude::*;
//! use sachi_ising::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let w = MolecularDynamics::new(6, 6, 1);
//! let mut rng = StdRng::seed_from_u64(2);
//! let init = SpinVector::random(w.graph().num_spins(), &mut rng);
//! let mut solver = CpuReferenceSolver::new();
//! let result = solver.solve(w.graph(), &init, &SolveOptions::for_graph(w.graph(), 3));
//! assert!(w.accuracy(&result.spins) > 0.9);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod asset;
pub mod coloring;
pub mod corpus;
pub mod encode;
pub mod generic;
pub mod lucas;
pub mod maxcut;
pub mod molecular;
pub mod quantize;
pub mod qubo;
pub mod sat;
pub mod scheduling;
pub mod segmentation;
pub mod spec;
pub mod tsp;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::asset::AssetAllocation;
    pub use crate::coloring::{ColoringInstance, ColoringWorkload};
    pub use crate::corpus::{corpus, smoke_corpus, CorpusCase, SplitMix64, CORPUS_MASTER_SEED};
    pub use crate::encode::{checked_coefficient, saturation_count, EncodeError};
    pub use crate::generic::GenericMaxCut;
    pub use crate::lucas::{self, InputGraph};
    pub use crate::maxcut::{best_cut_reference, cut_weight, flip_gain};
    pub use crate::molecular::MolecularDynamics;
    pub use crate::quantize::quantize_to_bits;
    pub use crate::qubo::{QuboBuilder, QuboProblem};
    pub use crate::sat::{parse_dimacs_cnf, Clause, Lit, SatInstance, SatWorkload};
    pub use crate::scheduling::{SchedulingInstance, SchedulingWorkload};
    pub use crate::segmentation::{Connectivity, ImageSegmentation};
    pub use crate::spec::{CopKind, Workload, WorkloadShape};
    pub use crate::tsp::{two_opt_tour, TspDecision, TspTour};
}
