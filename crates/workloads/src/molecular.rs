//! Molecular dynamics, Sec. V.2d: atomic spin states on a King's graph.
//!
//! "Given a set of atoms in a molecule connected as King's graph, this
//! identifies the atomic spin states in the lowest energy configuration" —
//! a ferromagnetic lattice where `J_ij` is the (positive) force of
//! attraction between neighboring atoms. The ground state is fully
//! aligned, which gives this COP an *exactly known* optimum: ideal for
//! accuracy calibration of every machine in the workspace.

use crate::quantize::quantize_to_bits;
use crate::spec::{CopKind, Workload, WorkloadShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sachi_ising::graph::{topology, IsingGraph};
use sachi_ising::spin::SpinVector;

/// A molecular-dynamics (King's-graph ferromagnet) instance.
#[derive(Debug, Clone)]
pub struct MolecularDynamics {
    rows: usize,
    cols: usize,
    graph: IsingGraph,
    resolution_bits: u32,
    total_bond_weight: i64,
    seed: u64,
}

impl MolecularDynamics {
    /// Builds a `rows x cols` lattice with the Fig. 4 default resolution
    /// (4-bit).
    ///
    /// # Panics
    ///
    /// Panics if the lattice has fewer than 2 atoms.
    pub fn new(rows: usize, cols: usize, seed: u64) -> Self {
        Self::with_resolution(
            rows,
            cols,
            seed,
            CopKind::MolecularDynamics.typical_resolution_bits(),
        )
    }

    /// Builds a lattice with explicit bond resolution. Ising-CIM
    /// comparisons use `bits = 2` (its hardware maximum).
    ///
    /// # Panics
    ///
    /// Panics if the lattice has fewer than 2 atoms or `bits` is outside
    /// `2..=32`.
    pub fn with_resolution(rows: usize, cols: usize, seed: u64, bits: u32) -> Self {
        assert!(rows * cols >= 2, "lattice must have at least 2 atoms");
        let mut rng = StdRng::seed_from_u64(seed);
        // Positive attraction strengths, then quantize to R bits.
        // Generate one strength per undirected edge, in build order.
        let mut raw: Vec<i64> = Vec::new();
        let _ = topology::king(rows, cols, |_, _| {
            raw.push(rng.gen_range(1..=1_000));
            0 // placeholder weight, replaced below
        })
        .expect("king lattice construction cannot fail");
        let quantized = quantize_to_bits(&raw, bits);
        // Rebuild with quantized positive weights (the closure above ran in
        // the same deterministic order).
        let mut k = 0usize;
        let graph = topology::king(rows, cols, |_, _| {
            let w = quantized[k].max(1);
            k = k.saturating_add(1);
            w
        })
        .expect("king lattice construction cannot fail");
        drop(raw);
        let total_bond_weight = graph.edges().map(|(_, _, w)| w as i64).sum();
        MolecularDynamics {
            rows,
            cols,
            graph,
            resolution_bits: bits,
            total_bond_weight,
            seed,
        }
    }

    /// Lattice rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Lattice columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The exactly known ground-state energy: `-Σ J` (all aligned).
    pub fn ground_energy(&self) -> i64 {
        -self.total_bond_weight
    }

    /// Weight of satisfied (aligned) bonds under `spins`.
    pub fn satisfied_bond_weight(&self, spins: &SpinVector) -> i64 {
        self.graph
            .edges()
            .filter(|&(i, j, _)| spins.get(i as usize) == spins.get(j as usize))
            .map(|(_, _, w)| w as i64)
            .sum()
    }
}

impl Workload for MolecularDynamics {
    fn kind(&self) -> CopKind {
        CopKind::MolecularDynamics
    }

    fn name(&self) -> String {
        format!(
            "molecular-dynamics({}x{}, R={}, seed={})",
            self.rows, self.cols, self.resolution_bits, self.seed
        )
    }

    fn graph(&self) -> &IsingGraph {
        &self.graph
    }

    fn shape(&self) -> WorkloadShape {
        WorkloadShape::new(
            (self.rows * self.cols) as u64,
            8.min((self.rows * self.cols - 1) as u64),
            self.resolution_bits,
        )
    }

    /// Fraction of bond weight satisfied — exactly 1.0 at the ground state.
    fn accuracy(&self, spins: &SpinVector) -> f64 {
        if self.total_bond_weight == 0 {
            return 1.0;
        }
        self.satisfied_bond_weight(spins) as f64 / self.total_bond_weight as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sachi_ising::prelude::*;

    #[test]
    fn bonds_are_positive_and_quantized() {
        let w = MolecularDynamics::new(5, 5, 1);
        let limit = (1 << (4 - 1)) - 1; // 4-bit max magnitude
        for (_, _, j) in w.graph().edges() {
            assert!(j >= 1 && j <= limit, "bond {j} outside [1, {limit}]");
        }
        assert_eq!(w.rows(), 5);
        assert_eq!(w.cols(), 5);
    }

    #[test]
    fn ground_state_is_all_aligned() {
        let w = MolecularDynamics::new(4, 4, 2);
        let up = SpinVector::filled(16, Spin::Up);
        let down = SpinVector::filled(16, Spin::Down);
        assert_eq!(energy(w.graph(), &up), w.ground_energy());
        assert_eq!(energy(w.graph(), &down), w.ground_energy());
        assert!((w.accuracy(&up) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solver_reaches_ground_state() {
        let w = MolecularDynamics::new(6, 6, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let init = SpinVector::random(36, &mut rng);
        let mut solver = CpuReferenceSolver::new();
        // Best of a few restarts: single SA runs land in domain-wall
        // local optima now and then.
        let r = solve_multi_start(
            &mut solver,
            w.graph(),
            &init,
            &SolveOptions::for_graph(w.graph(), 5),
            4,
        );
        assert!(r.converged);
        let acc = w.accuracy(&r.spins);
        assert!(acc > 0.98, "accuracy {acc}");
    }

    #[test]
    fn shape_is_kings_graph() {
        let w = MolecularDynamics::new(10, 10, 5);
        let s = w.shape();
        assert_eq!(s.spins, 100);
        assert_eq!(s.neighbors_per_spin, 8);
        assert_eq!(s.resolution_bits, 4);
        assert_eq!(w.graph().max_degree(), 8);
        assert_eq!(w.kind(), CopKind::MolecularDynamics);
        assert!(w.name().contains("10x10"));
    }

    #[test]
    fn accuracy_decreases_with_misaligned_spins() {
        let w = MolecularDynamics::new(4, 4, 6);
        let up = SpinVector::filled(16, Spin::Up);
        let mut one_flip = up.clone();
        one_flip.flip(5);
        assert!(w.accuracy(&one_flip) < w.accuracy(&up));
        assert!(w.accuracy(&one_flip) > 0.5);
    }

    #[test]
    fn two_bit_variant_for_ising_cim() {
        let w = MolecularDynamics::with_resolution(5, 5, 7, 2);
        for (_, _, j) in w.graph().edges() {
            assert_eq!(j, 1, "2-bit signed positive bonds can only be 1");
        }
        assert_eq!(w.shape().resolution_bits, 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = MolecularDynamics::new(6, 4, 11);
        let b = MolecularDynamics::new(6, 4, 11);
        assert_eq!(a.ground_energy(), b.ground_energy());
        assert_eq!(
            a.graph().edges().collect::<Vec<_>>(),
            b.graph().edges().collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_single_atom() {
        let _ = MolecularDynamics::new(1, 1, 0);
    }
}
