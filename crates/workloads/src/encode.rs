//! Checked workload-to-Ising coefficient encoding.
//!
//! The Ising graph stores couplings and fields as `i32`. Workload
//! generators accumulate objectives in `i64`, so the final conversion
//! can overflow — and a silent `clamp` at that boundary corrupts the
//! encoded Hamiltonian without a trace (the solver then happily
//! optimizes a *different* problem). This module makes the conversion
//! loud: [`checked_coefficient`] returns a typed [`EncodeError`]
//! (mapped to `SachiError::Config`, exit code 2, by `sachi-core`) and
//! bumps a process-wide saturation counter that the CLI exports as the
//! `workload_coeff_saturations` metric.

use sachi_ising::graph::GraphError;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of rejected (out-of-`i32`-range) coefficient
/// conversions. Monotonic; exported as `workload_coeff_saturations`.
static SATURATIONS: AtomicU64 = AtomicU64::new(0);

/// Number of coefficient conversions rejected for overflow so far in
/// this process.
pub fn saturation_count() -> u64 {
    SATURATIONS.load(Ordering::Relaxed)
}

/// Errors from encoding a workload into an Ising graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A coefficient left the `i32` range the graph can represent.
    /// Rescale or re-quantize the workload instead of truncating it.
    CoefficientOverflow {
        /// Which coefficient family overflowed ("coupling", "field").
        what: &'static str,
        /// The offending value.
        value: i64,
    },
    /// The underlying graph construction failed.
    Graph(GraphError),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::CoefficientOverflow { what, value } => write!(
                f,
                "{what} coefficient {value} exceeds the i32 range the Ising graph stores; \
                 rescale or quantize the workload (silent clamping would corrupt the Hamiltonian)"
            ),
            EncodeError::Graph(e) => write!(f, "graph construction failed: {e}"),
        }
    }
}

impl std::error::Error for EncodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EncodeError::Graph(e) => Some(e),
            EncodeError::CoefficientOverflow { .. } => None,
        }
    }
}

impl From<GraphError> for EncodeError {
    fn from(e: GraphError) -> Self {
        EncodeError::Graph(e)
    }
}

/// Converts an `i64` coefficient to the graph's `i32` domain, erroring
/// (and bumping [`saturation_count`]) when the value does not fit.
pub fn checked_coefficient(what: &'static str, value: i64) -> Result<i32, EncodeError> {
    i32::try_from(value).map_err(|_| {
        SATURATIONS.fetch_add(1, Ordering::Relaxed);
        EncodeError::CoefficientOverflow { what, value }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_convert_without_counting() {
        let before = saturation_count();
        assert_eq!(checked_coefficient("coupling", 0), Ok(0));
        assert_eq!(
            checked_coefficient("coupling", i64::from(i32::MAX)),
            Ok(i32::MAX)
        );
        assert_eq!(
            checked_coefficient("field", i64::from(i32::MIN)),
            Ok(i32::MIN)
        );
        assert_eq!(saturation_count(), before);
    }

    #[test]
    fn overflow_errors_and_counts() {
        let before = saturation_count();
        let err =
            checked_coefficient("coupling", i64::from(i32::MAX) + 1).expect_err("out of range");
        assert_eq!(
            err,
            EncodeError::CoefficientOverflow {
                what: "coupling",
                value: i64::from(i32::MAX) + 1
            }
        );
        let err = checked_coefficient("field", i64::from(i32::MIN) - 1).expect_err("out of range");
        assert!(format!("{err}").contains("field coefficient"));
        // Other tests run concurrently against the same process-wide
        // counter, so assert growth, not an exact value.
        assert!(saturation_count() >= before + 2);
    }

    #[test]
    fn graph_errors_wrap_with_source() {
        let graph_err = sachi_ising::graph::GraphBuilder::new(1)
            .edge(0, 0, 1)
            .build()
            .expect_err("self loop rejected");
        let wrapped = EncodeError::from(graph_err.clone());
        assert_eq!(wrapped, EncodeError::Graph(graph_err));
        assert!(std::error::Error::source(&wrapped).is_some());
        assert!(format!("{wrapped}").contains("graph construction failed"));
    }
}
