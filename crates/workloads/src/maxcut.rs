//! Max-cut helpers shared by the cut-style workloads (image segmentation
//! and decision TSP).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi_ising::graph::IsingGraph;
use sachi_ising::spin::SpinVector;

/// Cut weight of `spins` on `graph`: sum of `|J|` over edges whose
/// endpoints differ.
pub fn cut_weight(graph: &IsingGraph, spins: &SpinVector) -> i64 {
    graph
        .edges()
        .filter(|&(i, j, _)| spins.get(i as usize) != spins.get(j as usize))
        .map(|(_, _, w)| (w as i64).abs())
        .sum()
}

/// Multi-start greedy local-search max-cut, used as an accuracy reference.
/// Bounded effort: restarts shrink as the graph grows.
pub fn best_cut_reference(graph: &IsingGraph, seed: u64) -> i64 {
    let n = graph.num_spins();
    if n == 0 {
        return 0;
    }
    let restarts = if n <= 512 {
        5
    } else if n <= 4_096 {
        3
    } else {
        1
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_cafe);
    let mut best = 0i64;
    for _ in 0..restarts {
        let mut spins = SpinVector::random(n, &mut rng);
        let mut improved = true;
        while improved {
            improved = false;
            for i in 0..n {
                let mut gain = 0i64;
                for (j, w) in graph.neighbors(i) {
                    let cut_now = spins.get(i) != spins.get(j as usize);
                    gain += (w as i64).abs() * if cut_now { -1 } else { 1 };
                }
                if gain > 0 {
                    spins.flip(i);
                    improved = true;
                }
            }
        }
        best = best.max(cut_weight(graph, &spins));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sachi_ising::graph::{topology, GraphBuilder};
    use sachi_ising::spin::Spin;

    #[test]
    fn cut_weight_counts_crossing_edges() {
        let g = GraphBuilder::new(3)
            .edge(0, 1, -5)
            .edge(1, 2, 3)
            .build()
            .unwrap();
        let s = SpinVector::from_spins(&[Spin::Up, Spin::Down, Spin::Down]);
        assert_eq!(cut_weight(&g, &s), 5);
        let all = SpinVector::filled(3, Spin::Up);
        assert_eq!(cut_weight(&g, &all), 0);
    }

    #[test]
    fn reference_finds_optimal_bipartite_cut() {
        // A 4-cycle is bipartite: best cut takes all 4 edges.
        let g = GraphBuilder::new(4)
            .edge(0, 1, -2)
            .edge(1, 2, -2)
            .edge(2, 3, -2)
            .edge(3, 0, -2)
            .build()
            .unwrap();
        assert_eq!(best_cut_reference(&g, 0), 8);
    }

    #[test]
    fn reference_is_local_optimum_on_complete_graph() {
        let g = topology::complete(10, |i, j| -(((i + j) % 5 + 1) as i32)).unwrap();
        let best = best_cut_reference(&g, 1);
        assert!(best > 0);
        // Upper bound: total |weight|.
        let total: i64 = g.edges().map(|(_, _, w)| (w as i64).abs()).sum();
        assert!(best <= total);
        // Complete graphs have cut >= half of total at a local optimum.
        assert!(best * 2 >= total, "cut {best} below half of {total}");
    }

    #[test]
    fn empty_graph_reference_is_zero() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert_eq!(best_cut_reference(&g, 3), 0);
    }
}
